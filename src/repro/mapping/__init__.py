"""Communication-aware partition-to-GPU mapping (Section 3.2).

* :mod:`repro.mapping.problem` -- the mapping problem (Eqs. III.1-III.7)
  and the shared assignment evaluator,
* :mod:`repro.mapping.solver_milp` -- MILP backend (scipy / HiGHS),
* :mod:`repro.mapping.milp_model` -- the persistent compiled MILP model
  (compile once per structural signature, rebind the numeric payload,
  warm-start HiGHS from an incumbent via a MIP start),
* :mod:`repro.mapping.solver_bb` -- from-scratch branch-and-bound backend,
* :mod:`repro.mapping.greedy` -- communication-unaware baselines (the
  previous work's workload balancing, round-robin),
* :mod:`repro.mapping.kernel` -- the compiled evaluation kernel
  (precomputed route tables, O(degree) incremental delta scoring),
* :mod:`repro.mapping.batch` -- vectorized population scoring over the
  kernel's tables (NumPy structure-of-arrays, pure-python fallback),
* :mod:`repro.mapping.metaheuristic` -- population simulated annealing
  on the batch evaluator (the portfolio's opt-in escape tier),
* :mod:`repro.mapping.repair` -- incremental re-mapping after a
  platform delta (seed from the old assignment, evict the stranded,
  polish under ``tmax + alpha * migration_bytes``),
* :mod:`repro.mapping.result` -- mapping results and their breakdowns,
* :mod:`repro.mapping.budget` -- deterministic solve budgets shared by
  every backend (and the escalation tiers of the service portfolio).
"""

from repro.mapping.batch import BatchEvaluator
from repro.mapping.budget import BUDGET_TIERS, TIER_ORDER, SolveBudget
from repro.mapping.greedy import (
    contiguous_mapping,
    lpt_mapping,
    round_robin_mapping,
)
from repro.mapping.kernel import (
    DeltaEvaluator,
    EvalKernel,
    canonical_gpu_fold,
    compile_kernel,
)
from repro.mapping.metaheuristic import solve_metaheuristic
from repro.mapping.milp_model import (
    MODEL_CACHE,
    CompiledMilpModel,
    MilpModelCache,
    milp_signature,
)
from repro.mapping.problem import Broadcast, MappingProblem, build_mapping_problem
from repro.mapping.refine import refine_mapping
from repro.mapping.repair import (
    REPAIR_ALPHA,
    RepairResult,
    migration_cost_bytes,
    solve_repair,
    translate_assignment,
)
from repro.mapping.result import MappingResult
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.solver_milp import MilpNoIncumbent, solve_milp

__all__ = [
    "BUDGET_TIERS",
    "BatchEvaluator",
    "Broadcast",
    "CompiledMilpModel",
    "DeltaEvaluator",
    "EvalKernel",
    "MODEL_CACHE",
    "MappingProblem",
    "MappingResult",
    "MilpModelCache",
    "MilpNoIncumbent",
    "REPAIR_ALPHA",
    "RepairResult",
    "SolveBudget",
    "TIER_ORDER",
    "build_mapping_problem",
    "canonical_gpu_fold",
    "compile_kernel",
    "contiguous_mapping",
    "lpt_mapping",
    "migration_cost_bytes",
    "milp_signature",
    "refine_mapping",
    "round_robin_mapping",
    "solve_branch_and_bound",
    "solve_metaheuristic",
    "solve_milp",
    "solve_repair",
    "translate_assignment",
]
