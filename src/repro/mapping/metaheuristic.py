"""Population metaheuristic over the batch evaluator.

The portfolio's refine stage is a single first-improvement walk — great
at draining an easy basin, stuck at its first local optimum.  This
module adds the classic escape machinery as one deterministic tier:
seeded multi-start local search (a *population* of independent walks),
simulated annealing acceptance under a deterministic SplitMix64
temperature schedule, and kick/restart perturbation for stagnated
walks.  Every step prices the whole population in one
:meth:`~repro.mapping.batch.BatchEvaluator.batch_tmax` call.

**Approximate-rank / exact-accept contract.**  Population scores are
only trusted to *rank* candidates; before any candidate can become (or
replace) the incumbent that this solver returns or the service caches,
it is rescored through the bit-exact scalar kernel
(:meth:`~repro.mapping.kernel.EvalKernel.full_tmax`) and accepted only
on a strict scalar improvement.  The returned mapping's ``tmax`` is
therefore bit-identical to
:meth:`~repro.mapping.problem.MappingProblem.tmax` no matter what the
batch path did, and the rescore count is reported in ``solve_stats``.

**Determinism and anytime monotonicity.**  All randomness flows from
one :class:`~repro.synth.rng.SynthRng` stream seeded by
``(mh_seed, population)`` — never by wall clock, thread, or process —
so equal inputs give equal mappings anywhere.  The temperature at round
``r`` is ``T0 * ALPHA**r``, a function of the *absolute* round index
(never of the total round count), and nothing else reads ``rounds``;
a budget with more rounds therefore replays the smaller budget's
trajectory exactly and extends it — the strict work-superset that makes
``mh_rounds`` an anytime knob (the incumbent only ever improves).

>>> from repro.gpu.topology import default_topology
>>> from repro.mapping.problem import MappingProblem
>>> p = MappingProblem(times=[400.0, 300.0, 200.0, 100.0],
...                    edges={(0, 1): 64.0, (2, 3): 64.0},
...                    host_io=[(64.0, 0.0)] + [(0.0, 0.0)] * 3,
...                    topology=default_topology(2))
>>> result = solve_metaheuristic(p, rounds=8, population=8, seed=1)
>>> result.solver, result.tmax == p.tmax(list(result.assignment))
('metaheuristic', True)
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

from repro.mapping.batch import (
    BatchEvaluator,
    apply_moves,
    kick_population,
    sample_moves,
)
from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import (
    contiguous_assignment,
    lpt_assignment,
    round_robin_assignment,
)
from repro.mapping.kernel import EvalKernel
from repro.mapping.result import MappingResult, make_result

__all__ = ["solve_metaheuristic"]

#: defaults for standalone use (``--mapper metaheuristic`` with a budget
#: whose metaheuristic knobs are zero); the portfolio stage only runs
#: when the budget sets the knobs explicitly
DEFAULT_ROUNDS = 32
DEFAULT_POPULATION = 64

#: initial temperature as a fraction of the seed incumbent's objective
T0_FRACTION = 0.05
#: geometric cooling per round — applied to the absolute round index
ALPHA = 0.90
#: rounds a moved partition stays barred for its candidate
TABU_TENURE = 3
#: rounds without per-candidate improvement before a kick
KICK_AFTER = 6
#: random reassignments per kick
KICK_STRENGTH = 3

_U64 = float(1 << 64)


def solve_metaheuristic(
    problem,
    budget: Union[SolveBudget, str, None] = None,
    topo_order: Optional[Sequence[int]] = None,
    *,
    rounds: Optional[int] = None,
    population: Optional[int] = None,
    seed: Optional[int] = None,
    incumbent: Optional[Sequence[int]] = None,
    kernel: Optional[EvalKernel] = None,
) -> MappingResult:
    """Population simulated annealing with exact incumbent acceptance.

    ``budget`` supplies the ``mh_rounds`` / ``mh_population`` /
    ``mh_seed`` knobs (falling back to the module defaults when zero);
    the keyword arguments override individual knobs.  ``incumbent``
    seeds the population with a known-good assignment — the result is
    then never worse than it.  ``kernel`` reuses a prebuilt
    :class:`~repro.mapping.kernel.EvalKernel` (the portfolio passes its
    own).

    The result's ``solver`` is ``"metaheuristic"``; ``solve_stats``
    reports ``mh_rounds``, ``mh_population``, and ``mh_rescores`` (how
    many candidates were rescored through the scalar kernel).

    >>> from repro.gpu.topology import default_topology
    >>> from repro.mapping.problem import MappingProblem
    >>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> solve_metaheuristic(p, rounds=4, population=4, seed=0).tmax
    5.0
    """
    from repro.synth.rng import SynthRng

    if budget is None:
        budget = SolveBudget.default()
    elif isinstance(budget, str):
        budget = SolveBudget.tier(budget)
    rounds = rounds if rounds is not None else (
        budget.mh_rounds or DEFAULT_ROUNDS
    )
    population = population if population is not None else (
        budget.mh_population or DEFAULT_POPULATION
    )
    if rounds < 0 or population < 1:
        raise ValueError("need rounds >= 0 and population >= 1")
    seed = seed if seed is not None else budget.mh_seed
    if kernel is None:
        kernel = EvalKernel(problem)
    batch = BatchEvaluator(kernel)
    num_gpus = problem.num_gpus
    rng = SynthRng(f"metaheuristic|{seed}|{population}")

    # -- seeded multi-start population ---------------------------------
    order = (
        list(topo_order)
        if topo_order is not None
        else list(range(problem.num_partitions))
    )
    bases: List[List[int]] = []
    if incumbent is not None:
        bases.append(list(incumbent))
    bases.append(lpt_assignment(problem))
    bases.append(round_robin_assignment(problem))
    bases.append(contiguous_assignment(problem, order))
    pop = [list(b) for b in bases[:population]]
    fill = 0
    while len(pop) < population:
        # diversify the rest: progressively harder kicks of the bases
        source = bases[fill % len(bases)]
        strength = 1 + fill // len(bases)
        pop.extend(
            kick_population([source], num_gpus, rng, strength=strength)
        )
        fill += 1

    scores = batch.batch_tmax(pop)
    best_idx = min(range(len(pop)), key=scores.__getitem__)
    best_tmax = kernel.full_tmax(pop[best_idx])  # exact-accept gateway
    best_assign = list(pop[best_idx])
    rescores = 1
    t0 = T0_FRACTION * best_tmax

    tabu: List[dict] = [{} for _ in range(population)]
    stagnant = [0] * population
    for r in range(rounds):
        temperature = t0 * (ALPHA ** r)
        masks = [
            frozenset(p for p, expiry in t.items() if expiry > r)
            for t in tabu
        ]
        moves = sample_moves(pop, num_gpus, rng, tabu=masks)
        neighbors = apply_moves(pop, moves)
        nscores = batch.batch_tmax(neighbors)
        for c, move in enumerate(moves):
            if move is None:
                stagnant[c] += 1
                continue
            delta = nscores[c] - scores[c]
            if delta < 0:
                accept = True
            elif temperature > 0.0:
                u = rng.next_u64() / _U64
                accept = u < math.exp(-delta / temperature)
            else:
                accept = False
            if accept:
                pop[c] = neighbors[c]
                scores[c] = nscores[c]
                tabu[c][move[0]] = r + 1 + TABU_TENURE
                stagnant[c] = 0 if delta < 0 else stagnant[c] + 1
            else:
                stagnant[c] += 1
        # exact-accept: batch scores only *nominate* an incumbent; the
        # scalar kernel decides
        c_best = min(range(len(pop)), key=scores.__getitem__)
        if scores[c_best] < best_tmax:
            exact = kernel.full_tmax(pop[c_best])
            rescores += 1
            if exact < best_tmax:
                best_tmax = exact
                best_assign = list(pop[c_best])
        stale = [c for c in range(population) if stagnant[c] >= KICK_AFTER]
        if stale:
            pop = kick_population(
                pop, num_gpus, rng, strength=KICK_STRENGTH, only=stale
            )
            scores = batch.batch_tmax(pop)
            for c in stale:
                stagnant[c] = 0
                tabu[c].clear()

    return make_result(
        problem,
        best_assign,
        "metaheuristic",
        optimal=False,
        stats=(
            ("mh_population", float(population)),
            ("mh_rescores", float(rescores)),
            ("mh_rounds", float(rounds)),
        ),
        kernel=kernel,
    )
