"""Deterministic solve budgets for the mapping solvers.

The MILP backend historically ran under a 10-second *wall-clock* limit,
which made large instances irreproducible: the same instance solved on a
loaded machine could time out at a different incumbent than on an idle
one.  A :class:`SolveBudget` replaces that with *deterministic* work
caps — a branch-and-bound node limit for HiGHS, a search-node limit for
the from-scratch solver, a local-search step limit for the refiner — so
two runs of the same instance always do the same work and return the
same mapping.  Wall-clock limits still exist, but only as an explicit
opt-in (the ``time_limit_s`` field, or the ``REPRO_MILP_TIME_LIMIT_S``
environment variable for the old behaviour).

Budgets are also the currency of the anytime solver portfolio
(:mod:`repro.service.portfolio`): the named *tiers* below form an
escalation ladder — each tier is a strict superset of the work of the
one before it, which is what makes the portfolio's answer quality
monotone in the budget.

=========== ============================================================
``instant`` greedy heuristics + local search only; microseconds
``small``   adds a bounded branch-and-bound improvement pass
``default`` adds the MILP under its deterministic node cap
``ample``   MILP with a large node cap and a zero optimality gap
=========== ============================================================

>>> BUDGET_TIERS["instant"].use_milp, BUDGET_TIERS["ample"].mip_rel_gap
(False, 0.0)
>>> SolveBudget.tier("default").name
'default'
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional

#: deterministic HiGHS node cap of the default budget — the amount of
#: search the old 10 s wall-clock limit bought on the reference 1-core
#: box, now load-independent: per-instance solve times stay within a
#: few seconds of the historical ones (DES-16 g4 explores ~150 nodes
#: either way; perma-hard instances like DES-4 g4 stop in ~3 s instead
#: of burning the full 10 s).  Capped solves return a near-optimal
#: incumbent (~0.6-3% gap on the paper instances) that the flow's
#: heuristic fallback polishes, exactly like a wall-clock timeout did.
#: Callers who want proofs use the ``ample`` tier's 200k-node cap —
#: the differential harness and the portfolio's top tier do.
DEFAULT_MILP_NODE_LIMIT = 150

#: environment variable restoring an (irreproducible) wall-clock limit
WALL_CLOCK_ENV = "REPRO_MILP_TIME_LIMIT_S"


def normalize_wall_clock(value) -> Optional[float]:
    """Canonicalize a wall-clock cap: empty/zero mean *unset*.

    ``REPRO_MILP_TIME_LIMIT_S=0`` used to slip through the env var's
    string-truthiness check as ``time_limit_s=0.0``, which the solver
    then silently ignored — while still perturbing every cache key that
    embeds :meth:`SolveBudget.key_parts`.  All wall-clock inputs (env
    var, ``with_wall_clock``, the legacy ``time_limit_s=`` argument,
    direct construction) funnel through here: ``None``, empty/blank
    strings, and ``0`` all normalize to ``None`` (no limit); negative
    values are rejected.

    >>> normalize_wall_clock(None), normalize_wall_clock(""), normalize_wall_clock("0")
    (None, None, None)
    >>> normalize_wall_clock(0), normalize_wall_clock(2.5)
    (None, 2.5)
    >>> normalize_wall_clock(-1)
    Traceback (most recent call last):
        ...
    ValueError: wall-clock limit must be >= 0, got -1.0
    """
    if value is None:
        return None
    if isinstance(value, str):
        value = value.strip()
        if not value:
            return None
    value = float(value)
    if value < 0:
        raise ValueError(f"wall-clock limit must be >= 0, got {value}")
    if value == 0:
        return None
    return value


@dataclass(frozen=True)
class SolveBudget:
    """How much work each solver stage of a mapping solve may spend.

    All limits are deterministic (node/step counts), so equal budgets on
    equal instances produce equal mappings.  ``time_limit_s`` adds a
    wall-clock cap on the MILP *on top of* the node cap — it is ``None``
    by default and should stay opt-in, because it reintroduces
    machine-load-dependent results.

    ``use_bb`` / ``use_milp`` gate whole portfolio stages; the plain
    ``ilp`` mapper only reads the MILP fields.

    The field defaults *are* the ``default`` tier, so a caller
    customizing one knob (``SolveBudget(milp_node_limit=500)``) keeps
    every other limit exactly as documented for that tier:

    >>> SolveBudget() == SolveBudget.tier("default")
    True
    """

    #: tier label ("instant", "small", "default", "ample", or "custom")
    name: str = "default"
    #: HiGHS branch-and-bound node cap (``None`` = unlimited)
    milp_node_limit: Optional[int] = DEFAULT_MILP_NODE_LIMIT
    #: opt-in wall-clock cap in seconds (``None`` = no wall-clock limit)
    time_limit_s: Optional[float] = None
    #: MILP relative optimality gap
    mip_rel_gap: float = 0.01
    #: search-node cap of the from-scratch branch-and-bound solver
    bb_node_limit: int = 20_000
    #: local-search step cap of the refinement pass
    refine_steps: int = 64
    #: whether the portfolio runs the branch-and-bound stage
    use_bb: bool = True
    #: whether the portfolio runs the MILP stage
    use_milp: bool = True
    #: metaheuristic-stage round cap; ``0`` (the default everywhere,
    #: including every named tier) skips the stage, keeping existing
    #: budgets, cache keys, and golden answers byte-identical
    mh_rounds: int = 0
    #: metaheuristic population size (``0`` skips the stage)
    mh_population: int = 0
    #: SplitMix64 seed token of the metaheuristic RNG stream
    mh_seed: int = 0

    def __post_init__(self) -> None:
        # one normalization point: every construction path (tiers, env
        # var, with_wall_clock, legacy time_limit_s args, replace())
        # lands here, so a zero cap can never leak into cache keys
        object.__setattr__(
            self, "time_limit_s", normalize_wall_clock(self.time_limit_s)
        )

    @classmethod
    def tier(cls, name: str) -> "SolveBudget":
        """The named budget tier.

        >>> SolveBudget.tier("small").use_milp
        False
        >>> SolveBudget.tier("warp")
        Traceback (most recent call last):
            ...
        ValueError: unknown budget tier 'warp'; known: ample, default, instant, small
        """
        try:
            return BUDGET_TIERS[name]
        except KeyError:
            raise ValueError(
                f"unknown budget tier {name!r}; "
                f"known: {', '.join(sorted(BUDGET_TIERS))}"
            ) from None

    @classmethod
    def default(cls) -> "SolveBudget":
        """The default budget, honouring the wall-clock opt-in.

        With ``REPRO_MILP_TIME_LIMIT_S`` set in the environment, the
        returned budget carries that wall-clock cap (the pre-budget
        behaviour); otherwise it is the deterministic ``default`` tier.
        The value passes :func:`normalize_wall_clock`, so ``"0"`` and
        ``""`` mean "no limit" rather than a zero-second cap.

        >>> SolveBudget.default().name
        'default'
        """
        budget = BUDGET_TIERS["default"]
        wall = normalize_wall_clock(os.environ.get(WALL_CLOCK_ENV))
        if wall is not None:
            budget = replace(budget, time_limit_s=wall)
        return budget

    def with_wall_clock(self, time_limit_s: Optional[float]) -> "SolveBudget":
        """A copy carrying an explicit wall-clock cap (normalized — a
        zero/empty cap unsets the limit, negatives raise).

        >>> SolveBudget.tier("ample").with_wall_clock(5.0).time_limit_s
        5.0
        >>> SolveBudget.tier("ample").with_wall_clock(0) == SolveBudget.tier("ample")
        True
        """
        return replace(self, time_limit_s=normalize_wall_clock(time_limit_s))

    def key_parts(self) -> Dict[str, object]:
        """The budget as cache-key knobs (see :func:`repro.flow.stage_key`).

        Wall-clock caps are deliberately part of the key: a time-limited
        solve is not interchangeable with a deterministic one.

        >>> SolveBudget.tier("default").key_parts()["milp_node_limit"]
        150
        """
        return asdict(self)


#: the portfolio's escalation ladder, cheapest first; each tier does a
#: strict superset of the previous tier's work (anytime monotonicity)
BUDGET_TIERS: Dict[str, SolveBudget] = {
    "instant": SolveBudget(
        name="instant", use_bb=False, use_milp=False, refine_steps=64,
    ),
    "small": SolveBudget(
        name="small", use_milp=False, bb_node_limit=20_000, refine_steps=64,
    ),
    "default": SolveBudget(),  # the field defaults, by construction
    "ample": SolveBudget(
        name="ample", bb_node_limit=2_000_000,
        milp_node_limit=200_000, mip_rel_gap=0.0, refine_steps=256,
    ),
}

#: tier names ordered cheapest -> most thorough
TIER_ORDER = ("instant", "small", "default", "ample")
