"""Local-search refinement of a mapping.

When the MILP hits its time budget on very large partition counts, its
incumbent can sit a few percent off.  This pass polishes any assignment
with first-improvement local search over two moves:

* **move**: reassign one partition to another GPU,
* **swap**: exchange the GPUs of two partitions.

Every step is scored with the shared evaluator
(:meth:`MappingProblem.tmax`), so improvements are real under exactly the
objective the solvers target.  The search is deterministic and stops at a
local optimum or the step budget.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result


def refine_mapping(
    problem: MappingProblem,
    assignment: Sequence[int],
    max_steps: int = 1000,
    use_swaps: bool = True,
) -> MappingResult:
    """Polish ``assignment`` by greedy local search; returns the result.

    The returned result's ``solver`` field is ``"<refined>"`` and
    ``optimal`` is False (local optimum, not a proof).
    """
    current = list(assignment)
    if len(current) != problem.num_partitions:
        raise ValueError("assignment length mismatch")
    best = problem.tmax(current)
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        move = _best_single_move(problem, current, best)
        if move is not None:
            pid, gpu, score = move
            current[pid] = gpu
            best = score
            improved = True
            steps += 1
            continue
        if use_swaps:
            swap = _best_swap(problem, current, best)
            if swap is not None:
                a, b, score = swap
                current[a], current[b] = current[b], current[a]
                best = score
                improved = True
                steps += 1
    result = make_result(
        problem, current, "refined", optimal=False,
        stats=(("refine_steps", float(steps)),),
    )
    return result


def _best_single_move(
    problem: MappingProblem, assignment: List[int], best: float
) -> Optional[Tuple[int, int, float]]:
    """First strictly-improving single-partition move, if any."""
    for pid in _by_weight(problem):
        original = assignment[pid]
        for gpu in range(problem.num_gpus):
            if gpu == original:
                continue
            assignment[pid] = gpu
            score = problem.tmax(assignment)
            assignment[pid] = original
            if score < best - 1e-9:
                return pid, gpu, score
    return None


def _best_swap(
    problem: MappingProblem, assignment: List[int], best: float
) -> Optional[Tuple[int, int, float]]:
    """First strictly-improving pairwise swap, if any."""
    order = _by_weight(problem)
    for i, a in enumerate(order):
        for b in order[i + 1:]:
            if assignment[a] == assignment[b]:
                continue
            assignment[a], assignment[b] = assignment[b], assignment[a]
            score = problem.tmax(assignment)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            if score < best - 1e-9:
                return a, b, score
    return None


def _by_weight(problem: MappingProblem) -> List[int]:
    """Partitions in descending workload order (heavy movers first)."""
    return sorted(
        range(problem.num_partitions), key=lambda p: -problem.times[p]
    )
