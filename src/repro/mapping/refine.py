"""Local-search refinement of a mapping.

When the MILP hits its work budget on very large partition counts, its
incumbent can sit a few percent off.  This pass polishes any assignment
with first-improvement local search over two moves:

* **move**: reassign one partition to another GPU,
* **swap**: exchange the GPUs of two partitions.

Every step is scored through the compiled evaluation kernel
(:mod:`repro.mapping.kernel`), whose delta scorer prices a candidate
move in O(degree of the moved partition) instead of re-walking every
PDG edge — the same objective as the shared evaluator, bit for bit, so
improvements are real under exactly the objective the solvers target.
The search is deterministic and stops at a local optimum or the step
budget (historically 1000 steps; now that a step costs microseconds the
default budget is 10x larger, which changes nothing on instances that
converge — first-improvement search almost always does — and simply
stops truncating the rare pathological ones).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.mapping.kernel import DeltaEvaluator, EvalKernel
from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result


def refine_mapping(
    problem: MappingProblem,
    assignment: Sequence[int],
    max_steps: int = 10_000,
    use_swaps: bool = True,
    kernel: Optional[EvalKernel] = None,
) -> MappingResult:
    """Polish ``assignment`` by greedy local search; returns the result.

    The returned result's ``solver`` field is ``"refined"`` and
    ``optimal`` is False (local optimum, not a proof).  ``kernel``
    reuses a prebuilt :class:`~repro.mapping.kernel.EvalKernel` (the
    portfolio passes its own); omitted, one is compiled for the call.

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> refine_mapping(p, [0, 0, 0, 0]).tmax
    5.0
    """
    if len(assignment) != problem.num_partitions:
        raise ValueError("assignment length mismatch")
    if kernel is None:
        kernel = EvalKernel(problem)
    state = DeltaEvaluator(kernel, assignment)
    best = state.tmax()
    order = _by_weight(problem)  # descending workload, computed once
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        move = _best_single_move(state, order, best)
        if move is not None:
            pid, gpu, score = move
            state.apply_move(pid, gpu)
            best = score
            improved = True
            steps += 1
            continue
        if use_swaps:
            swap = _best_swap(state, order, best)
            if swap is not None:
                a, b, score = swap
                state.apply_swap(a, b)
                best = score
                improved = True
                steps += 1
    result = make_result(
        problem, list(state.assignment()), "refined", optimal=False,
        stats=(("refine_steps", float(steps)),), kernel=kernel,
    )
    return result


def _best_single_move(
    state: DeltaEvaluator, order: Sequence[int], best: float
) -> Optional[Tuple[int, int, float]]:
    """First strictly-improving single-partition move, if any."""
    num_gpus = state.kernel.num_gpus
    assign = state.assign
    for pid in order:
        original = assign[pid]
        for gpu in range(num_gpus):
            if gpu == original:
                continue
            score = state.score_move(pid, gpu)
            if score < best - 1e-9:
                return pid, gpu, score
    return None


def _best_swap(
    state: DeltaEvaluator, order: Sequence[int], best: float
) -> Optional[Tuple[int, int, float]]:
    """First strictly-improving pairwise swap, if any."""
    assign = state.assign
    for i, a in enumerate(order):
        for b in order[i + 1:]:
            if assign[a] == assign[b]:
                continue
            score = state.score_swap(a, b)
            if score < best - 1e-9:
                return a, b, score
    return None


def _by_weight(problem: MappingProblem) -> List[int]:
    """Partitions in descending workload order (heavy movers first)."""
    return sorted(
        range(problem.num_partitions), key=lambda p: -problem.times[p]
    )
