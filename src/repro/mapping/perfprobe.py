"""Deterministic perf probes for the compiled evaluation kernel.

The perf-regression harness (``benchmarks/test_bench_kernel.py``, the
``make perf-check`` gate, ``BENCH_kernel.json``) needs problems that are
(a) big enough that evaluation cost is dominated by real work rather
than fixture noise, and (b) built without the profiling/partitioning
front half so a gate run costs seconds.  This module provides a pinned
*quick corpus* of synthetic :class:`~repro.mapping.problem.MappingProblem`
instances (seeded, byte counts integral like real workloads) plus the
shared rate-measurement helpers.

All asserted perf bars are *ratios measured in the same process* (delta
scoring vs full evaluation), so they hold on a loaded single-core box;
absolute rates are recorded for the trajectory, never asserted.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

from repro.gpu.platforms import build_platform
from repro.gpu.topology import GpuTopology, default_topology
from repro.mapping.greedy import lpt_assignment
from repro.mapping.kernel import DeltaEvaluator, EvalKernel
from repro.mapping.problem import Broadcast, MappingProblem

#: the perf bar shared by ``make perf-check`` and the kernel benchmark:
#: delta probes must beat interpreted full evaluation by this factor
MIN_DELTA_RATIO = 10.0

#: batch-evaluation bar: candidates/second through one
#: :meth:`~repro.mapping.batch.BatchEvaluator.batch_tmax` call must beat
#: the interpreted per-candidate loop by this factor
MIN_BATCH_RATIO = 10.0

#: population size the batch bar is measured at — the metaheuristic
#: tier's working shape, and where the SoA layout amortizes best
BATCH_POPULATION = 256

#: MILP model-reuse bar: rebinding a cached compiled model must beat a
#: full rebuild (the legacy row-by-row builder plus scipy's conversion
#: to solver-ready arrays) by this factor.  The asserted ratio covers
#: *model preparation* only — the branch-and-bound solve that follows is
#: bit-identical on both sides (pinned by ``tests/test_milp_model.py``),
#: so preparation is the entire difference between the paths, and
#: folding hundreds of milliseconds of identical HiGHS work into both
#: numerator and denominator would only bury the signal under solver
#: noise.  Measured headroom is ~80-300x; the bar stays at 1.5x so it
#: gates the *existence* of reuse, not a microbenchmark.
MIN_MILP_REUSE_RATIO = 1.5


def _chain_problem(parts: int, topology: GpuTopology, seed: int) -> MappingProblem:
    """A pipeline chain: the shape of DES/FFT-style PDGs."""
    rng = random.Random(seed)
    times = [float(rng.randrange(1_000, 100_000)) for _ in range(parts)]
    edges = {
        (i, i + 1): float(rng.randrange(64, 8192))
        for i in range(parts - 1)
    }
    host_io = [(0.0, 0.0)] * parts
    host_io[0] = (4096.0, 0.0)
    host_io[-1] = (0.0, 4096.0)
    return MappingProblem(
        times=times, edges=edges, host_io=host_io, topology=topology
    )


def _web_problem(parts: int, topology: GpuTopology, seed: int) -> MappingProblem:
    """An irregular DAG with fan-outs, broadcasts, and scattered I/O."""
    rng = random.Random(seed)
    times = [float(rng.randrange(1_000, 100_000)) for _ in range(parts)]
    edges = {}
    for i in range(parts):
        for j in range(i + 1, min(parts, i + 9)):
            if rng.random() < 0.3:
                edges[(i, j)] = float(rng.randrange(64, 8192))
    broadcasts = [
        Broadcast(
            src=rng.randrange(parts // 2),
            nbytes=float(rng.randrange(256, 2048)),
            destinations=tuple(
                sorted({rng.randrange(parts) for _ in range(5)})
            ),
        )
        for _ in range(3)
    ]
    host_io = [
        (
            float(rng.randrange(64, 1024)) if rng.random() < 0.2 else 0.0,
            float(rng.randrange(64, 1024)) if rng.random() < 0.2 else 0.0,
        )
        for _ in range(parts)
    ]
    return MappingProblem(
        times=times, edges=edges, host_io=host_io, topology=topology,
        broadcasts=broadcasts,
    )


def quick_corpus() -> List[Tuple[str, MappingProblem]]:
    """The pinned probe problems: chain / web shapes on three machines.

    Sizes follow the paper's largest apps (DES N=32 maps ~200
    partitions), which is exactly where the O(degree) delta scorer
    separates from the O(E + L + P) full evaluations.

    >>> [(label, p.num_partitions) for label, p in quick_corpus()]
    [('chain-192@g4', 192), ('web-160@deep-tree-8', 160), ('web-128@mixed-box', 128)]
    """
    return [
        ("chain-192@g4", _chain_problem(192, default_topology(4), seed=11)),
        ("web-160@deep-tree-8",
         _web_problem(160, build_platform("deep-tree-8"), seed=22)),
        ("web-128@mixed-box",
         _web_problem(128, build_platform("mixed-box"), seed=33)),
    ]


def _rate(fn, min_wall_s: float, repeats: int = 3) -> float:
    """Calls/second of ``fn``: the best of ``repeats`` windows.

    Taking the *fastest* window (the ``timeit`` convention) measures the
    code, not whatever else the single-core box was doing at the time;
    GC is paused for the same reason.  Each window runs ``fn`` for at
    least ``min_wall_s`` wall-clock.
    """
    import gc

    best = 0.0
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            calls = 0
            start = time.perf_counter()
            deadline = start + min_wall_s
            while True:
                fn()
                calls += 1
                now = time.perf_counter()
                if now >= deadline:
                    break
            best = max(best, calls / (now - start))
    finally:
        if was_enabled:
            gc.enable()
    return best


def measure_eval_rates(
    problem: MappingProblem, min_wall_s: float = 0.1, seed: int = 0
) -> Dict[str, float]:
    """Evals/second of the three scoring paths on one problem.

    * ``interp_full_per_s`` — the interpreted evaluator
      (:meth:`MappingProblem.tmax`), what every solver paid pre-kernel;
    * ``kernel_full_per_s`` — :meth:`EvalKernel.full_tmax`;
    * ``delta_move_per_s`` — :meth:`DeltaEvaluator.score_move` probes,
      cycling over the refine-style (partition, GPU) move neighborhood;
    * ``delta_vs_interp`` / ``delta_vs_kernel`` — the speedup ratios.

    Each rate is the best of three measurement windows (see
    :func:`_rate`), so the ratios stay stable under background load.
    """
    rng = random.Random(seed)
    assignment = lpt_assignment(problem)
    kernel = EvalKernel(problem)
    state = DeltaEvaluator(kernel, assignment)
    moves = [
        (pid, gpu)
        for pid in range(problem.num_partitions)
        for gpu in range(problem.num_gpus)
        if gpu != assignment[pid]
    ]
    rng.shuffle(moves)
    score_move = state.score_move

    def scan():
        # the refine-style neighborhood scan: one probe per move
        for pid, gpu in moves:
            score_move(pid, gpu)

    interp = _rate(lambda: problem.tmax(assignment), min_wall_s)
    full = _rate(lambda: kernel.full_tmax(assignment), min_wall_s)
    delta = _rate(scan, min_wall_s) * len(moves)
    return {
        "interp_full_per_s": interp,
        "kernel_full_per_s": full,
        "delta_move_per_s": delta,
        "delta_vs_interp": delta / interp,
        "delta_vs_kernel": delta / full,
    }


def measure_batch_rates(
    problem: MappingProblem,
    min_wall_s: float = 0.1,
    seed: int = 0,
    population: int = BATCH_POPULATION,
) -> Dict[str, float]:
    """Candidates/second of population scoring on one problem.

    * ``batch_cand_per_s`` — one
      :meth:`~repro.mapping.batch.BatchEvaluator.batch_tmax` call over a
      ``population``-sized random assignment matrix, scaled to
      per-candidate throughput;
    * ``interp_full_per_s`` / ``kernel_full_per_s`` — the scalar loops
      scoring the *same* population one candidate at a time;
    * ``batch_vs_interp`` / ``batch_vs_kernel`` — the speedup ratios.

    The population is handed to the batch path as a prebuilt int64
    matrix: the bar measures the evaluator, not Python-list conversion
    (callers that keep populations as lists pay roughly one extra
    scalar-loop candidate's worth of conversion per call).

    Raises ``RuntimeError`` when NumPy is unavailable — the fallback
    path is a correctness feature, not a perf claim, so there is no
    ratio to measure (callers skip the gate instead).
    """
    from repro.mapping.batch import BatchEvaluator, _np

    rng = random.Random(seed)
    kernel = EvalKernel(problem)
    evaluator = BatchEvaluator(kernel, use_numpy=True)
    pop = [
        [rng.randrange(problem.num_gpus)
         for _ in range(problem.num_partitions)]
        for _ in range(population)
    ]
    matrix = _np.asarray(pop, dtype=_np.int64)

    def interp_loop():
        for candidate in pop:
            problem.tmax(candidate)

    def kernel_loop():
        for candidate in pop:
            kernel.full_tmax(candidate)

    batch = _rate(lambda: evaluator.batch_tmax(matrix), min_wall_s)
    interp = _rate(interp_loop, min_wall_s)
    full = _rate(kernel_loop, min_wall_s)
    return {
        "batch_cand_per_s": batch * population,
        "interp_full_per_s": interp * population,
        "kernel_full_per_s": full * population,
        "batch_vs_interp": batch / interp,
        "batch_vs_kernel": batch / full,
    }


def milp_sweep_shapes() -> List[Tuple[str, MappingProblem]]:
    """Sweep-grid repeat shapes for the MILP model-reuse probe.

    The flow's sweep grid re-solves the *same* graph structure across
    platforms and budgets — exactly the repeat pattern the model cache
    amortizes.  These shapes sit at MILP scale (the paper's ILP runs top
    out near ~50 partitions), where the legacy rebuild cost is real but
    a probe stays cheap.

    >>> [label for label, _ in milp_sweep_shapes()]
    ['chain-24@g2', 'chain-32@g4', 'web-24@mixed-box']
    """
    return [
        ("chain-24@g2", _chain_problem(24, default_topology(2), seed=7)),
        ("chain-32@g4", _chain_problem(32, default_topology(4), seed=7)),
        ("web-24@mixed-box",
         _web_problem(24, build_platform("mixed-box"), seed=9)),
    ]


def measure_milp_reuse_rates(
    problem: MappingProblem, min_wall_s: float = 0.1
) -> Dict[str, float]:
    """Model preparations/second of the two MILP front halves.

    * ``rebuild_prep_per_s`` — the legacy path every solve used to pay:
      :class:`~repro.mapping.solver_milp._Builder` building the
      constraint blocks row by row, then scipy's conversion to the
      canonical CSC arrays the solver consumes;
    * ``rebind_prep_per_s`` — :meth:`CompiledMilpModel.bind` stamping a
      numeric payload into the cached structure;
    * ``reuse_vs_rebuild`` — the speedup ratio the cache buys per
      repeat solve of a structure.

    See :data:`MIN_MILP_REUSE_RATIO` for why the solve itself (identical
    on both sides) stays out of the asserted ratio.
    """
    from scipy.optimize._milp import _constraints_to_components

    from repro.mapping.milp_model import CompiledMilpModel
    from repro.mapping.solver_milp import _Builder

    model = CompiledMilpModel(problem)

    def rebuild():
        builder = _Builder(problem, True)
        builder.build()
        a, _, _ = _constraints_to_components(builder.constraints)
        a = a.tocsc()
        a.sort_indices()

    rebuild_rate = _rate(rebuild, min_wall_s)
    rebind_rate = _rate(lambda: model.bind(problem), min_wall_s)
    return {
        "rebuild_prep_per_s": rebuild_rate,
        "rebind_prep_per_s": rebind_rate,
        "reuse_vs_rebuild": rebind_rate / rebuild_rate,
    }


def measure_milp_reuse_rates_gated(
    problem: MappingProblem,
) -> Dict[str, float]:
    """:func:`measure_milp_reuse_rates` with the gate's one-retry
    policy (same semantics as :func:`measure_eval_rates_gated`)."""
    rates = measure_milp_reuse_rates(problem)
    if rates["reuse_vs_rebuild"] < MIN_MILP_REUSE_RATIO:
        rates = measure_milp_reuse_rates(problem, min_wall_s=0.4)
    return rates


def measure_batch_rates_gated(
    problem: MappingProblem, seed: int = 0
) -> Dict[str, float]:
    """:func:`measure_batch_rates` with the gate's one-retry policy
    (same semantics as :func:`measure_eval_rates_gated`)."""
    rates = measure_batch_rates(problem, seed=seed)
    if rates["batch_vs_interp"] < MIN_BATCH_RATIO:
        rates = measure_batch_rates(problem, min_wall_s=0.4, seed=seed)
    return rates


def measure_eval_rates_gated(
    problem: MappingProblem, seed: int = 0
) -> Dict[str, float]:
    """:func:`measure_eval_rates` with the gate's one-retry policy: a
    measurement under :data:`MIN_DELTA_RATIO` is repeated once with
    longer windows before being reported (absorbs scheduler hiccups on
    a loaded box; a real regression fails twice)."""
    rates = measure_eval_rates(problem, seed=seed)
    if rates["delta_vs_interp"] < MIN_DELTA_RATIO:
        rates = measure_eval_rates(problem, min_wall_s=0.4, seed=seed)
    return rates
