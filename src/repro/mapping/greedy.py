"""Communication-unaware mapping baselines.

``lpt_mapping`` is the previous work's style of multi-GPU mapping:
balance workload across GPUs (longest-processing-time list scheduling)
with no model of inter-GPU communication.  Combined with
``peer_to_peer=False`` in the problem (all traffic through the host, as
[7] executes) this reproduces the baseline the paper compares against.

``round_robin_mapping`` deals partitions out in topological order — the
crudest pipeline mapping, used by the ablation benchmarks.

Each heuristic is split into an ``*_assignment`` function that builds
the raw assignment (no scoring at all) and a ``*_mapping`` wrapper that
scores it into a :class:`~repro.mapping.result.MappingResult`.  The
solver portfolio uses the assignment forms and ranks the seeds through
the compiled kernel (:mod:`repro.mapping.kernel`) in one batch instead
of paying a full interpreted evaluation per seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result


def lpt_assignment(
    problem: MappingProblem,
    workloads: Optional[Sequence[float]] = None,
) -> List[int]:
    """The LPT assignment itself, unscored (see :func:`lpt_mapping`)."""
    weights = list(workloads) if workloads is not None else list(problem.times)
    if len(weights) != problem.num_partitions:
        raise ValueError("workload vector length mismatch")
    slowdown = problem.gpu_slowdown or [1.0] * problem.num_gpus
    order = sorted(range(problem.num_partitions), key=lambda p: -weights[p])
    loads = [0.0] * problem.num_gpus
    assignment = [0] * problem.num_partitions
    for pid in order:
        gpu = min(
            range(problem.num_gpus),
            key=lambda j: loads[j] + weights[pid] * slowdown[j],
        )
        assignment[pid] = gpu
        loads[gpu] += weights[pid] * slowdown[gpu]
    return assignment


def lpt_mapping(
    problem: MappingProblem,
    workloads: Optional[Sequence[float]] = None,
    kernel=None,
) -> MappingResult:
    """Longest-processing-time workload balancing (communication-blind).

    ``workloads`` overrides the balance key — the previous work balances
    *static* workload (it has no performance model), so callers pass
    static work estimates to emulate it; the default balances the PEE
    fragment times.  ``kernel`` scores the result through a prebuilt
    :class:`~repro.mapping.kernel.EvalKernel` instead of the
    interpreted evaluator (same numbers, bit for bit).

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> lpt_mapping(p).tmax
    5.0
    """
    assignment = lpt_assignment(problem, workloads=workloads)
    return make_result(
        problem, assignment, "greedy-lpt", optimal=False, kernel=kernel
    )


def round_robin_assignment(problem: MappingProblem) -> List[int]:
    """The round-robin deal, unscored (see :func:`round_robin_mapping`)."""
    return [pid % problem.num_gpus for pid in range(problem.num_partitions)]


def round_robin_mapping(
    problem: MappingProblem, kernel=None
) -> MappingResult:
    """Deal partitions to GPUs in index (topological) order.

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[1.0, 1.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 3,
    ...                    topology=default_topology(2))
    >>> round_robin_mapping(p).assignment
    (0, 1, 0)
    """
    return make_result(
        problem, round_robin_assignment(problem), "round-robin",
        optimal=False, kernel=kernel,
    )


def contiguous_assignment(
    problem: MappingProblem,
    order: Optional[Sequence[int]] = None,
) -> List[int]:
    """The contiguous-blocks split, unscored (see
    :func:`contiguous_mapping`)."""
    order = list(order) if order is not None else list(range(problem.num_partitions))
    if sorted(order) != list(range(problem.num_partitions)):
        raise ValueError("order must be a permutation of all partitions")
    gpus = problem.num_gpus
    times = [problem.times[pid] for pid in order]
    lo = max(times) if times else 0.0
    hi = sum(times)

    def blocks_needed(threshold: float) -> int:
        blocks, acc = 1, 0.0
        for t in times:
            if acc + t > threshold:
                blocks += 1
                acc = t
            else:
                acc += t
        return blocks

    for _ in range(48):  # bisection to float precision
        mid = (lo + hi) / 2
        if blocks_needed(mid) <= gpus:
            hi = mid
        else:
            lo = mid
    threshold = hi
    assignment = [0] * problem.num_partitions
    gpu, acc = 0, 0.0
    for pid, t in zip(order, times):
        if acc + t > threshold and gpu + 1 < gpus:
            gpu += 1
            acc = 0.0
        assignment[pid] = gpu
        acc += t
    return assignment


def contiguous_mapping(
    problem: MappingProblem,
    order: Optional[Sequence[int]] = None,
    kernel=None,
) -> MappingResult:
    """Split a topological order into contiguous per-GPU blocks.

    For chain-shaped PDGs (DES, FFT, ...) contiguous blocks minimize the
    number of cut edges — exactly G-1 — so this is a strong seed/fallback
    when the MILP times out on hundreds of partitions.  The block
    boundary threshold is found by binary search on the bottleneck block
    time (the classic linear-partitioning argument).

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[1.0, 1.0, 1.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> contiguous_mapping(p).assignment
    (0, 0, 1, 1)
    """
    return make_result(
        problem, contiguous_assignment(problem, order=order), "contiguous",
        optimal=False, kernel=kernel,
    )
