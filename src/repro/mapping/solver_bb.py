"""From-scratch branch-and-bound solver for the mapping problem.

A depth-first search over partition-to-GPU assignments (partitions visited
in descending workload order) with three admissible lower bounds:

* *monotonicity*: GPU times and link loads only grow as the assignment is
  extended, so the current bottleneck already bounds the final one,
* *balance*: the final bottleneck is at least the total workload divided
  by the GPU count,
* *indivisibility*: every unassigned partition must land somewhere, so the
  largest remaining fragment time is a bound too.

The incumbent starts from the greedy LPT solution.  For the paper-scale
instances (P up to ~130 partitions) the MILP backend is the workhorse;
branch-and-bound serves as the independent cross-check on small/medium
instances and as the no-scipy fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import lpt_mapping
from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result


def solve_branch_and_bound(
    problem: MappingProblem,
    max_nodes: Optional[int] = None,
    budget: Optional[SolveBudget] = None,
    incumbent: Optional[Sequence[int]] = None,
) -> MappingResult:
    """Exact DFS branch-and-bound; returns the best assignment found.

    ``optimal`` is False in the (rare) event the node budget is
    exhausted first.  The node budget comes from ``max_nodes`` when
    given, else from ``budget.bb_node_limit``, else the historical
    2-million-node default — all deterministic, so equal budgets yield
    equal results.

    ``incumbent`` seeds the search with an externally-found assignment
    (the portfolio passes its best-so-far); the search then only spends
    nodes on subtrees that can still beat it.  Omitted, the greedy LPT
    solution seeds the search as before.
    """
    parts = problem.num_partitions
    gpus = problem.num_gpus
    if gpus == 1 or parts == 0:
        return make_result(problem, [0] * parts, "branch-and-bound", True)

    if max_nodes is None:
        max_nodes = budget.bb_node_limit if budget is not None else 2_000_000
    if incumbent is not None:
        incumbent = list(incumbent)
        if len(incumbent) != parts:
            raise ValueError("incumbent length mismatch")
    else:
        incumbent = list(lpt_mapping(problem).assignment)
    best = problem.tmax(incumbent)
    order = sorted(range(parts), key=lambda p: -problem.times[p])
    # admissible even for heterogeneous GPUs: every partition runs at
    # least as fast as on the fastest (lowest-slowdown) device
    fastest = (
        min(problem.gpu_slowdown) if problem.gpu_slowdown is not None else 1.0
    )
    balance_bound = sum(problem.times) * fastest / gpus

    search = _Search(problem, order, balance_bound, max_nodes)
    search.run(incumbent, best)
    return make_result(
        problem,
        search.best_assignment,
        "branch-and-bound",
        optimal=not search.exhausted_budget,
        stats=(("nodes", float(search.nodes)),),
    )


class _Search:
    def __init__(
        self,
        problem: MappingProblem,
        order: Sequence[int],
        balance_bound: float,
        max_nodes: int,
    ) -> None:
        self.problem = problem
        self.order = order
        self.balance_bound = balance_bound
        self.max_nodes = max_nodes
        self.nodes = 0
        self.exhausted_budget = False
        self.best_assignment: List[int] = []
        self.best = float("inf")
        self.assignment: List[Optional[int]] = [None] * problem.num_partitions
        self.gpu_times = [0.0] * problem.num_gpus
        # adjacency of the PDG restricted to assigned neighbours
        self._in_edges: List[List[tuple]] = [[] for _ in range(problem.num_partitions)]
        self._out_edges: List[List[tuple]] = [[] for _ in range(problem.num_partitions)]
        for (i, j), nbytes in problem.edges.items():
            self._out_edges[i].append((j, nbytes))
            self._in_edges[j].append((i, nbytes))
        self.link_loads = [0.0] * problem.topology.num_links
        # per-link cost constants (heterogeneous platforms have one
        # LinkSpec per link; hoisted out of the hot bottleneck loop)
        self._link_latency = [
            link.spec.latency_ns for link in problem.topology.links
        ]
        self._link_inv_bw = [
            1.0 / link.spec.bandwidth_bytes_per_ns
            for link in problem.topology.links
        ]
        # broadcast bookkeeping: per group, how many placed destinations
        # sit on each GPU (the route is charged on the 0 -> 1 transition)
        self._bcast_by_src: List[List[int]] = [[] for _ in range(problem.num_partitions)]
        self._bcast_by_dst: List[List[int]] = [[] for _ in range(problem.num_partitions)]
        for g_idx, group in enumerate(problem.broadcasts):
            self._bcast_by_src[group.src].append(g_idx)
            for j in set(group.destinations):
                self._bcast_by_dst[j].append(g_idx)
        self._bcast_counts: List[Dict[int, int]] = [
            {} for _ in problem.broadcasts
        ]

    # ------------------------------------------------------------------
    def run(self, incumbent: List[int], best: float) -> None:
        self.best_assignment = list(incumbent)
        self.best = best
        self._dfs(0)

    def _dfs(self, depth: int) -> None:
        if self.exhausted_budget:
            return
        self.nodes += 1
        if self.nodes > self.max_nodes:
            self.exhausted_budget = True
            return
        if depth == len(self.order):
            tmax = self._current_bottleneck()
            if tmax < self.best:
                self.best = tmax
                self.best_assignment = [g for g in self.assignment]  # type: ignore
            return
        pid = self.order[depth]
        fastest = (
            min(self.problem.gpu_slowdown)
            if self.problem.gpu_slowdown is not None
            else 1.0
        )
        remaining_max = fastest * max(
            (self.problem.times[p] for p in self.order[depth:]), default=0.0
        )
        for gpu in range(self.problem.num_gpus):
            delta_links = self._place(pid, gpu)
            bound = max(
                self._current_bottleneck(), self.balance_bound, remaining_max
            )
            if bound < self.best:
                self._dfs(depth + 1)
            self._unplace(pid, gpu, delta_links)

    # ------------------------------------------------------------------
    def _place(self, pid: int, gpu: int) -> List[tuple]:
        self.assignment[pid] = gpu
        self.gpu_times[gpu] += self.problem.time_on(pid, gpu)
        deltas: List[tuple] = []
        topo = self.problem.topology

        def add(route, nbytes):
            for link in route:
                self.link_loads[link] += nbytes
                deltas.append((link, nbytes))

        for other, nbytes in self._out_edges[pid]:
            dst = self.assignment[other]
            if dst is not None and dst != gpu:
                add(self._route(gpu, dst), nbytes)
        for other, nbytes in self._in_edges[pid]:
            src = self.assignment[other]
            if src is not None and src != gpu:
                add(self._route(src, gpu), nbytes)
        # broadcasts where pid is the source: charge one copy per GPU
        # already hosting a destination
        for g_idx in self._bcast_by_src[pid]:
            group = self.problem.broadcasts[g_idx]
            dest_gpus = {
                self.assignment[j]
                for j in group.destinations
                if self.assignment[j] is not None
            }
            dest_gpus.discard(gpu)
            for dst in dest_gpus:
                add(self._route(gpu, dst), group.nbytes)
        # broadcasts where pid is a destination: charge the route only on
        # this GPU's first destination of the group
        for g_idx in self._bcast_by_dst[pid]:
            group = self.problem.broadcasts[g_idx]
            counts = self._bcast_counts[g_idx]
            counts[gpu] = counts.get(gpu, 0) + 1
            src_gpu = self.assignment[group.src]
            if counts[gpu] == 1 and src_gpu is not None and src_gpu != gpu:
                add(self._route(src_gpu, gpu), group.nbytes)
        if self.problem.include_host_io:
            inp, out = self.problem.host_io[pid]
            if inp:
                add(topo.route_from_host(gpu), inp)
            if out:
                add(topo.route_to_host(gpu), out)
        return deltas

    def _route(self, src: int, dst: int):
        topo = self.problem.topology
        if self.problem.peer_to_peer:
            return topo.route(src, dst)
        return topo.route_via_host(src, dst)

    def _unplace(self, pid: int, gpu: int, deltas: List[tuple]) -> None:
        self.assignment[pid] = None
        self.gpu_times[gpu] -= self.problem.time_on(pid, gpu)
        for g_idx in self._bcast_by_dst[pid]:
            counts = self._bcast_counts[g_idx]
            counts[gpu] -= 1
            if not counts[gpu]:
                del counts[gpu]
        for link, nbytes in deltas:
            self.link_loads[link] -= nbytes

    def _current_bottleneck(self) -> float:
        comm = 0.0
        for link, load in enumerate(self.link_loads):
            if load:
                t = self._link_latency[link] + load * self._link_inv_bw[link]
                if t > comm:
                    comm = t
        return max(max(self.gpu_times), comm)
