"""From-scratch branch-and-bound solver for the mapping problem.

A depth-first search over partition-to-GPU assignments (partitions visited
in descending workload order) with three admissible lower bounds:

* *monotonicity*: GPU times and link loads only grow as the assignment is
  extended, so the current bottleneck already bounds the final one,
* *balance*: the final bottleneck is at least the total workload divided
  by the GPU count,
* *indivisibility*: every unassigned partition must land somewhere, so the
  largest remaining fragment time is a bound too.

The incumbent starts from the greedy LPT solution.  For the paper-scale
instances (P up to ~130 partitions) the MILP backend is the workhorse;
branch-and-bound serves as the independent cross-check on small/medium
instances and as the no-scipy fallback.

The search runs on the compiled evaluation kernel
(:mod:`repro.mapping.kernel`): routes come from the kernel's G x G table
instead of per-transfer tree walks, per-node invariants (the fastest-GPU
slowdown, the max remaining fragment time) are precomputed once as
suffix arrays, and the communication bottleneck is maintained
*incrementally* from each placement's link deltas — placements only
ever grow loads, so the comm bottleneck along a DFS path is monotone
and one saved float per frame replaces the historical every-node scan
over all links.  (The GPU side stays a fresh max over the G per-GPU
floats: see the note in ``_Search`` for why that preserves the
pre-kernel solver's float semantics bit for bit.)  The search tree,
pruning decisions, and returned assignment are identical to the
pre-kernel solver's (pinned by the golden corpus test); only the
per-node cost changed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import lpt_mapping
from repro.mapping.kernel import EvalKernel
from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result


def solve_branch_and_bound(
    problem: MappingProblem,
    max_nodes: Optional[int] = None,
    budget: Optional[SolveBudget] = None,
    incumbent: Optional[Sequence[int]] = None,
    kernel: Optional[EvalKernel] = None,
) -> MappingResult:
    """Exact DFS branch-and-bound; returns the best assignment found.

    ``optimal`` is False in the (rare) event the node budget is
    exhausted first.  The node budget comes from ``max_nodes`` when
    given, else from ``budget.bb_node_limit``, else the historical
    2-million-node default — all deterministic, so equal budgets yield
    equal results.

    ``incumbent`` seeds the search with an externally-found assignment
    (the portfolio passes its best-so-far); the search then only spends
    nodes on subtrees that can still beat it.  Omitted, the greedy LPT
    solution seeds the search as before.  ``kernel`` reuses a prebuilt
    :class:`~repro.mapping.kernel.EvalKernel`; omitted, one is compiled
    for the call.

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> result = solve_branch_and_bound(p)
    >>> result.tmax, result.optimal
    (5.0, True)
    """
    parts = problem.num_partitions
    gpus = problem.num_gpus
    if gpus == 1 or parts == 0:
        return make_result(problem, [0] * parts, "branch-and-bound", True)

    if max_nodes is None:
        max_nodes = budget.bb_node_limit if budget is not None else 2_000_000
    if kernel is None:
        kernel = EvalKernel(problem)
    if incumbent is not None:
        incumbent = list(incumbent)
        if len(incumbent) != parts:
            raise ValueError("incumbent length mismatch")
    else:
        incumbent = list(lpt_mapping(problem, kernel=kernel).assignment)
    best = kernel.full_tmax(incumbent)
    order = sorted(range(parts), key=lambda p: -problem.times[p])
    # admissible even for heterogeneous GPUs: every partition runs at
    # least as fast as on the fastest (lowest-slowdown) device
    fastest = (
        min(problem.gpu_slowdown) if problem.gpu_slowdown is not None else 1.0
    )
    balance_bound = sum(problem.times) * fastest / gpus

    search = _Search(kernel, order, balance_bound, max_nodes)
    search.run(incumbent, best)
    return make_result(
        problem,
        search.best_assignment,
        "branch-and-bound",
        optimal=not search.exhausted_budget,
        stats=(("nodes", float(search.nodes)),),
        kernel=kernel,
    )


class _Search:
    def __init__(
        self,
        kernel: EvalKernel,
        order: Sequence[int],
        balance_bound: float,
        max_nodes: int,
    ) -> None:
        problem = kernel.problem
        self.kernel = kernel
        self.problem = problem
        self.order = order
        self.balance_bound = balance_bound
        self.max_nodes = max_nodes
        self.nodes = 0
        self.exhausted_budget = False
        self.best_assignment: List[int] = []
        self.best = float("inf")
        self.assignment: List[Optional[int]] = [None] * problem.num_partitions
        self.gpu_times = [0.0] * problem.num_gpus
        self.link_loads = [0.0] * problem.topology.num_links
        #: the *communication* bottleneck of the current partial
        #: placement; placements only add load and link loads are sums
        #: of byte counts (exact float arithmetic), so it is maintained
        #: incrementally and saved/restored around each child placement.
        #: The GPU side stays a fresh max over the G floats: fragment
        #: times carry arbitrary mantissas, so the historical
        #: place/unplace round-trips leave last-ulp drift in
        #: ``gpu_times`` that a fresh scan (what the pre-kernel solver
        #: did at every node) observes — re-scanning G values keeps the
        #: search tree bit-identical to the pre-kernel solver's at
        #: O(G) instead of O(G + L + routes) per node
        self.comm_bottleneck = 0.0
        # hoisted per-node invariants (recomputed at every one of the
        # up-to-max_nodes search nodes before the kernel port):
        # fastest-GPU slowdown and the suffix max of remaining fragment
        # times along the fixed visit order
        fastest = (
            min(problem.gpu_slowdown)
            if problem.gpu_slowdown is not None
            else 1.0
        )
        suffix = [0.0] * (len(order) + 1)
        for depth in range(len(order) - 1, -1, -1):
            t = problem.times[order[depth]]
            suffix[depth] = t if t > suffix[depth + 1] else suffix[depth + 1]
        self._remaining_max = [fastest * t for t in suffix]
        # broadcast bookkeeping: per group, how many placed destinations
        # sit on each GPU (the route is charged on the 0 -> 1 transition)
        self._bcast_counts: List[dict] = [{} for _ in kernel.broadcasts]

    # ------------------------------------------------------------------
    def run(self, incumbent: List[int], best: float) -> None:
        self.best_assignment = list(incumbent)
        self.best = best
        self._dfs(0)

    def _dfs(self, depth: int) -> None:
        if self.exhausted_budget:
            return
        self.nodes += 1
        if self.nodes > self.max_nodes:
            self.exhausted_budget = True
            return
        if depth == len(self.order):
            tmax = max(max(self.gpu_times), self.comm_bottleneck)
            if tmax < self.best:
                self.best = tmax
                self.best_assignment = [g for g in self.assignment]  # type: ignore
            return
        pid = self.order[depth]
        remaining_max = self._remaining_max[depth]
        balance_bound = self.balance_bound
        gpu_times = self.gpu_times
        for gpu in range(self.kernel.num_gpus):
            saved_bottleneck = self.comm_bottleneck
            deltas = self._place(pid, gpu)
            bound = max(gpu_times)
            if self.comm_bottleneck > bound:
                bound = self.comm_bottleneck
            if balance_bound > bound:
                bound = balance_bound
            if remaining_max > bound:
                bound = remaining_max
            if bound < self.best:
                self._dfs(depth + 1)
            self._unplace(pid, gpu, deltas)
            self.comm_bottleneck = saved_bottleneck

    # ------------------------------------------------------------------
    def _place(self, pid: int, gpu: int) -> List[tuple]:
        kernel = self.kernel
        self.assignment[pid] = gpu
        self.gpu_times[gpu] += kernel.ptime[pid][gpu]
        deltas: List[tuple] = []
        loads = self.link_loads
        latency = kernel.latency
        inv_bw = kernel.inv_bandwidth
        routes = kernel.routes
        assignment = self.assignment
        bottleneck = self.comm_bottleneck

        def add(route, nbytes):
            nonlocal bottleneck
            for link in route:
                load = loads[link] + nbytes
                loads[link] = load
                deltas.append((link, nbytes))
                if load:  # latency is charged only on used links
                    t = latency[link] + load * inv_bw[link]
                    if t > bottleneck:
                        bottleneck = t

        for other, nbytes in kernel.out_edges[pid]:
            dst = assignment[other]
            if dst is not None and dst != gpu:
                add(routes[gpu][dst], nbytes)
        for other, nbytes in kernel.in_edges[pid]:
            src = assignment[other]
            if src is not None and src != gpu:
                add(routes[src][gpu], nbytes)
        # broadcasts where pid is the source: charge one copy per GPU
        # already hosting a destination
        for g_idx in kernel.bcast_by_src[pid]:
            _src, nbytes, dests = kernel.broadcasts[g_idx]
            dest_gpus = {
                assignment[j] for j in dests if assignment[j] is not None
            }
            dest_gpus.discard(gpu)
            for dst in dest_gpus:
                add(routes[gpu][dst], nbytes)
        # broadcasts where pid is a destination: charge the route only on
        # this GPU's first destination of the group
        for g_idx in kernel.bcast_by_dst[pid]:
            src_pid, nbytes, _dests = kernel.broadcasts[g_idx]
            counts = self._bcast_counts[g_idx]
            counts[gpu] = counts.get(gpu, 0) + 1
            src_gpu = assignment[src_pid]
            if counts[gpu] == 1 and src_gpu is not None and src_gpu != gpu:
                add(routes[src_gpu][gpu], nbytes)
        if kernel.include_host_io:
            inp, out = kernel.host_io[pid]
            if inp:
                add(kernel.host_in_routes[gpu], inp)
            if out:
                add(kernel.host_out_routes[gpu], out)
        self.comm_bottleneck = bottleneck
        return deltas

    def _unplace(self, pid: int, gpu: int, deltas: List[tuple]) -> None:
        self.assignment[pid] = None
        self.gpu_times[gpu] -= self.kernel.ptime[pid][gpu]
        for g_idx in self.kernel.bcast_by_dst[pid]:
            counts = self._bcast_counts[g_idx]
            counts[gpu] -= 1
            if not counts[gpu]:
                del counts[gpu]
        loads = self.link_loads
        for link, nbytes in deltas:
            loads[link] -= nbytes
