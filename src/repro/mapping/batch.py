"""Vectorized population scoring over the compiled kernel's tables.

:class:`~repro.mapping.kernel.EvalKernel` made scoring one assignment
cheap and :class:`~repro.mapping.kernel.DeltaEvaluator` made scoring one
*move* cheap; the metaheuristic tier (:mod:`repro.mapping.metaheuristic`)
instead wants thousands of unrelated candidates priced per step.
:class:`BatchEvaluator` lays the kernel's flattened edge / route /
compute tables out as structure-of-arrays NumPy buffers and scores a
whole population in a handful of vectorized passes; without NumPy it
falls back to a pure-python loop over the same tables, so the dependency
stays optional.

**Exactness invariant.**  ``batch_tmax`` is *bit-identical* to looping
:meth:`~repro.mapping.problem.MappingProblem.tmax` — not approximately
equal.  Float sums do not commute, so the vectorized path reproduces the
interpreted evaluator's accumulation orders exactly:

* Per-link loads are folded by one ``np.bincount`` over a single index
  sequence whose per-candidate order is exactly the evaluator's: PDG
  edges in ``problem.edges`` iteration order (each edge's route links in
  route order), then broadcast groups in order (destinations ascending,
  as ``sorted(dest_gpus)`` yields them), then host I/O per partition
  ascending, input route before output route.  ``np.bincount``
  accumulates float64 weights sequentially in array order, so each
  load's fold order is the scalar one.  Candidates own disjoint bins
  (``candidate * (L + 1) + link``), so interleaving *across* candidates
  never reorders any single fold.
* Variable-length routes, inactive broadcast destinations, and padding
  all land in a per-candidate *dummy bin* that is dropped after the
  fold — no masking multiplications that could perturb floats.
* Per-GPU compute times are folded the same way (ascending partition
  id per GPU), and link times divide by bandwidth (never multiply by a
  reciprocal), matching the scalar kernel ulp for ulp.

``tests/test_batch_properties.py`` fuzzes this equivalence across the
named platforms, adversarial random float problems, and the
NumPy-vs-fallback pair.

>>> from repro.gpu.topology import default_topology
>>> from repro.mapping.problem import MappingProblem
>>> p = MappingProblem(times=[4.0, 3.0, 2.0], edges={(0, 1): 64.0},
...                    host_io=[(64.0, 0.0), (0.0, 0.0), (0.0, 64.0)],
...                    topology=default_topology(2))
>>> be = BatchEvaluator(EvalKernel(p))
>>> pop = [[0, 0, 1], [0, 1, 1], [1, 1, 1]]
>>> be.batch_tmax(pop) == [p.tmax(a) for a in pop]
True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.mapping.kernel import EvalKernel, canonical_gpu_fold

if TYPE_CHECKING:  # imported lazily: repro.synth pulls in the full flow
    from repro.synth.rng import SynthRng

try:  # NumPy is optional: the fallback path keeps deps light
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via use_numpy=False
    _np = None

__all__ = [
    "BatchEvaluator",
    "apply_moves",
    "kick_population",
    "sample_moves",
]

#: the population size the vectorized path is tuned for (buffers are
#: cached per size; other sizes work, they just build fresh buffers)
DEFAULT_POPULATION = 256


class BatchEvaluator:
    """Structure-of-arrays population scorer over one compiled kernel.

    ``use_numpy`` selects the path: ``None`` (default) auto-detects,
    ``True`` requires NumPy (raises if missing), ``False`` forces the
    pure-python fallback — the property suite runs both and asserts
    bitwise equality.  :attr:`vectorized` reports which path is live.
    """

    def __init__(
        self, kernel: EvalKernel, use_numpy: Optional[bool] = None
    ) -> None:
        self.kernel = kernel
        if use_numpy is None:
            use_numpy = _np is not None
        elif use_numpy and _np is None:
            raise RuntimeError("NumPy requested but not importable")
        self.vectorized = bool(use_numpy)
        if self.vectorized:
            self._build_tables()

    # ------------------------------------------------------------------
    # table construction (once per problem)
    # ------------------------------------------------------------------
    def _build_tables(self) -> None:
        np = _np
        k = self.kernel
        G, L, P = k.num_gpus, k.num_links, k.num_partitions
        self._G, self._L, self._P = G, L, P
        #: bins per candidate: one per link plus the shared dummy bin
        self._stride = L + 1
        dummy = L
        # GPU-pair route rows, dummy-padded to the longest route; the
        # diagonal stays all-dummy because the evaluator skips
        # same-GPU edges entirely
        S = max((len(r) for row in k.routes for r in row), default=0) or 1
        rt = np.full((G * G, S), dummy, dtype=np.int64)
        for s in range(G):
            for d in range(G):
                if s != d:
                    route = k.routes[s][d]
                    rt[s * G + d, : len(route)] = route
        self._rt, self._S = rt, S
        # per-GPU host rows: input route then output route, each padded
        SH = max(
            [len(r) for r in k.host_in_routes]
            + [len(r) for r in k.host_out_routes] + [1]
        )
        htab = np.full((G, 2 * SH), dummy, dtype=np.int64)
        for g in range(G):
            route = k.host_in_routes[g]
            htab[g, : len(route)] = route
            route = k.host_out_routes[g]
            htab[g, SH: SH + len(route)] = route
        self._htab, self._SH = htab, SH
        self._ei = np.array([e[0] for e in k.edge_list], dtype=np.int64)
        self._ej = np.array([e[1] for e in k.edge_list], dtype=np.int64)
        self._ew = np.array([e[2] for e in k.edge_list])
        self._E = len(k.edge_list)
        self._bc = [
            (src, nbytes, np.array(dests, dtype=np.int64))
            for src, nbytes, dests in k.broadcasts
        ]
        self._hio = [
            (pid, inp, out)
            for pid, (inp, out) in enumerate(k.host_io)
            if (inp or out) and k.include_host_io
        ]
        self._hpids = np.array([h[0] for h in self._hio], dtype=np.int64)
        self._H = len(self._hio)
        self._K = (
            self._E * S + len(self._bc) * G * S + self._H * 2 * SH
        )
        self._ptime_flat = np.array(k.ptime).reshape(-1) if P else (
            np.zeros(0)
        )
        self._pidbase = (np.arange(P) * G)[:, None]
        self._lat = np.array(k.latency)[None, :]
        self._bw = np.array(k.bandwidth)[None, :]
        self._per_n: dict = {}

    def _buffers(self, N: int):
        """Per-population-size scratch: pre-offset gather tables (the
        candidate's bin offset is baked into every table row, so no
        pass over the index buffer ever adds offsets), the expanded
        weight vector, and reusable gather buffers."""
        got = self._per_n.get(N)
        if got is not None:
            return got
        np = _np
        G, S, SH = self._G, self._S, self._SH
        n = np.arange(N)
        off = n * self._stride
        rt_off = np.ascontiguousarray(
            (self._rt[:, None, :] + off[None, :, None]).reshape(-1, S)
        )
        ht_off = np.ascontiguousarray(
            (self._htab[:, None, :] + off[None, :, None]).reshape(
                -1, 2 * SH
            )
        )
        # weights in the exact section order of the index buffer
        parts = [np.repeat(self._ew, S * N)]
        for _src, nbytes, _dests in self._bc:
            parts.append(np.full(G * N * S, nbytes))
        if self._H:
            hw = np.empty((self._H, 2 * SH))
            for i, (_pid, inp, out) in enumerate(self._hio):
                hw[i, :SH] = inp
                hw[i, SH:] = out
            parts.append(np.repeat(hw, N, axis=0).reshape(-1))
        weights = np.concatenate(parts) if parts else np.zeros(0)
        got = self._per_n[N] = (
            n,
            off + self._L,  # per-candidate dummy bin ids
            rt_off,
            ht_off,
            weights,
            n * self._G,
            np.empty(self._K * N, dtype=np.int64),
            np.empty((max(self._E, 1), N), dtype=np.int64),
            np.empty((max(self._P, 1), N), dtype=np.int64),
        )
        return got

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def batch_tmax(
        self, assignments: Sequence[Sequence[int]]
    ) -> List[float]:
        """Score every assignment; bit-identical to the scalar loop.

        Accepts any N x P sequence-of-sequences (or an ndarray) and
        returns one float per candidate, in order.

        >>> from repro.gpu.topology import default_topology
        >>> from repro.mapping.problem import MappingProblem
        >>> p = MappingProblem(times=[2.0, 1.0], edges={},
        ...                    host_io=[(0.0, 0.0), (0.0, 0.0)],
        ...                    topology=default_topology(2))
        >>> BatchEvaluator(EvalKernel(p)).batch_tmax([[0, 1], [0, 0]])
        [2.0, 3.0]
        """
        if not self.vectorized:
            return [self._score_one(a) for a in assignments]
        np = _np
        A = np.asarray(assignments, dtype=np.int64)
        if A.ndim != 2 and A.size == 0:
            return []
        if A.ndim != 2 or A.shape[1] != self.kernel.num_partitions:
            raise ValueError(
                "expected an N x num_partitions assignment matrix"
            )
        N = A.shape[0]
        if N == 0:
            return []
        if A.size and (A.min() < 0 or A.max() >= self._G):
            raise ValueError("GPU id out of range in population")
        return self._batch_numpy(A).tolist()

    def _batch_numpy(self, A):
        np = _np
        A = np.ascontiguousarray(A.T)  # (P, N): candidates are columns
        P, N = A.shape
        G, S, L, E = self._G, self._S, self._L, self._E
        (narange, dummy_bins, rt_off, ht_off, weights, goff, idx,
         pairbuf, gbuf) = self._buffers(N)
        pos = 0
        # -- PDG edges: (E, N, S) rows, one row gather per candidate pair
        if E:
            pair = np.take(A, self._ei, axis=0, out=pairbuf[:E])
            pair *= G
            pair += np.take(A, self._ej, axis=0)
            pair *= N
            pair += narange
            np.take(
                rt_off, pair.reshape(-1), axis=0,
                out=idx[pos:pos + E * S * N].reshape(E * N, S),
            )
            pos += E * S * N
        # -- broadcasts: per group, destination GPUs ascending ----------
        for src_pid, _nbytes, dests in self._bc:
            sec = idx[pos:pos + G * S * N].reshape(G, N, S)
            src = A[src_pid]
            dest_map = np.take(A, dests, axis=0)
            active = np.zeros((G, N), dtype=bool)
            active[dest_map, narange[None, :]] = True
            active[src, narange] = False  # the source GPU is discarded
            pairs = (
                src[None, :] * G + np.arange(G)[:, None]
            ) * N + narange
            np.take(rt_off, pairs.reshape(-1), axis=0,
                    out=sec.reshape(G * N, S))
            np.copyto(
                sec, dummy_bins[None, :, None], where=~active[:, :, None]
            )
            pos += G * S * N
        # -- host I/O: partitions ascending, input cols then output ----
        if self._H:
            gi = np.take(A, self._hpids, axis=0)
            gi *= N
            gi += narange
            width = 2 * self._SH
            np.take(
                ht_off, gi.reshape(-1), axis=0,
                out=idx[pos:pos + self._H * width * N].reshape(
                    self._H * N, width),
            )
            pos += self._H * width * N
        loads = np.bincount(
            idx[:pos], weights=weights[:pos],
            minlength=N * self._stride,
        ).reshape(N, self._stride)[:, :L]
        # -- per-GPU compute folds (ascending pid per accumulator) ------
        if P:
            flat = np.add(self._pidbase, A, out=gbuf[:P])
            ptimes = np.take(self._ptime_flat, flat)
            gids = np.add(A, goff[None, :], out=gbuf[:P])
            gpu_times = np.bincount(
                gids.reshape(-1), weights=ptimes.reshape(-1),
                minlength=N * G,
            ).reshape(N, G)
            gpu_side = gpu_times.max(axis=1)
        else:
            gpu_side = np.zeros(N)
        if L:
            link_times = np.where(
                loads != 0.0, self._lat + loads / self._bw, 0.0
            )
            comm = link_times.max(axis=1)
        else:
            comm = np.zeros(N)
        return np.maximum(gpu_side, comm)

    def _score_one(self, assignment: Sequence[int]) -> float:
        """Pure-python fallback: same tables, same folds, no NumPy."""
        kernel = self.kernel
        assignment = list(assignment)
        if len(assignment) != kernel.num_partitions:
            raise ValueError(
                "expected an N x num_partitions assignment matrix"
            )
        for gpu in assignment:
            if not 0 <= gpu < kernel.num_gpus:
                raise ValueError("GPU id out of range in population")
        members: List[List[int]] = [[] for _ in range(kernel.num_gpus)]
        for pid, gpu in enumerate(assignment):
            members[gpu].append(pid)  # ascending pid by construction
        gpu_side = 0.0
        for gpu in range(kernel.num_gpus):
            t = canonical_gpu_fold(
                kernel.ptime_by_gpu[gpu].__getitem__, members[gpu]
            )
            if t > gpu_side:
                gpu_side = t
        comm = 0.0
        latency = kernel.latency
        bandwidth = kernel.bandwidth
        for link, load in enumerate(kernel.link_loads(assignment)):
            if load:
                t = latency[link] + load / bandwidth[link]
                if t > comm:
                    comm = t
        return max(gpu_side, comm)


# ----------------------------------------------------------------------
# population move generation (deterministic, SynthRng-driven)
# ----------------------------------------------------------------------
def sample_moves(
    population: Sequence[Sequence[int]],
    num_gpus: int,
    rng: SynthRng,
    tabu: Optional[Sequence] = None,
) -> List[Optional[Tuple[int, int]]]:
    """One neighborhood move ``(pid, new_gpu)`` per candidate.

    ``tabu`` supplies per-candidate masks (anything supporting ``in``,
    e.g. a set of partition ids barred for that candidate); a tabu'd
    draw retries a bounded number of times and yields ``None`` for that
    candidate if every retry is barred, so the RNG stream length stays
    bounded and deterministic.

    >>> from repro.synth.rng import SynthRng
    >>> rng = SynthRng("doc|sample")
    >>> moves = sample_moves([[0, 1], [1, 0]], 2, rng)
    >>> all(m is None or (0 <= m[0] < 2 and 0 <= m[1] < 2) for m in moves)
    True
    """
    moves: List[Optional[Tuple[int, int]]] = []
    for c, assignment in enumerate(population):
        parts = len(assignment)
        if parts == 0 or num_gpus < 2:
            moves.append(None)
            continue
        barred = tabu[c] if tabu is not None else ()
        chosen = None
        for _attempt in range(4):
            pid = rng.randint(0, parts - 1)
            if pid in barred:
                continue
            gpu = rng.randint(0, num_gpus - 2)
            if gpu >= assignment[pid]:
                gpu += 1  # uniform over the *other* GPUs
            chosen = (pid, gpu)
            break
        moves.append(chosen)
    return moves


def apply_moves(
    population: Sequence[Sequence[int]],
    moves: Sequence[Optional[Tuple[int, int]]],
) -> List[List[int]]:
    """The neighbor population: each candidate with its move applied.

    ``None`` moves copy the candidate unchanged.  Inputs are never
    mutated.

    >>> apply_moves([[0, 0], [1, 1]], [(1, 1), None])
    [[0, 1], [1, 1]]
    """
    out = []
    for assignment, move in zip(population, moves):
        neighbor = list(assignment)
        if move is not None:
            pid, gpu = move
            neighbor[pid] = gpu
        out.append(neighbor)
    return out


def kick_population(
    population: Sequence[Sequence[int]],
    num_gpus: int,
    rng: SynthRng,
    strength: int,
    only: Optional[Sequence[int]] = None,
) -> List[List[int]]:
    """Crossover-free restarts: ``strength`` random reassignments each.

    The classic iterated-local-search kick — enough randomness to leave
    the current basin, no recombination, so candidates stay independent
    walks.  ``only`` limits the kick to the listed candidate indices
    (the stagnated ones); others are copied unchanged.  Deterministic:
    the RNG is consumed in candidate order, kicked or not decided by
    ``only`` alone.

    >>> from repro.synth.rng import SynthRng
    >>> rng = SynthRng("doc|kick")
    >>> kicked = kick_population([[0, 0, 0]], 2, rng, strength=2)
    >>> len(kicked[0])
    3
    """
    chosen = set(range(len(population))) if only is None else set(only)
    out = []
    for c, assignment in enumerate(population):
        neighbor = list(assignment)
        if c in chosen and neighbor and num_gpus >= 2:
            for _ in range(strength):
                pid = rng.randint(0, len(neighbor) - 1)
                gpu = rng.randint(0, num_gpus - 2)
                if gpu >= neighbor[pid]:
                    gpu += 1
                neighbor[pid] = gpu
        out.append(neighbor)
    return out
