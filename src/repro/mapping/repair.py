"""Incremental mapping repair after a platform delta.

A serving system holding a deployed mapping should not pay a from-scratch
portfolio solve — nor migrate every actor — each time the machine
degrades.  :func:`solve_repair` takes the *old* assignment (translated
through the delta's GPU renumbering), evicts actors stranded on dead
GPUs via greedy re-placement, and polishes with the same first-improvement
local search as :mod:`repro.mapping.refine` — but over the composite
repair objective

    ``J = tmax + alpha * migration_bytes``

where ``migration_bytes`` prices moving a partition off its old home by
its resident state (host I/O plus incident edge buffers, the data that
would be copied between devices during a live re-deploy).  At the
default :data:`REPAIR_ALPHA` the migration term is a tie-break — among
equal-``tmax`` repairs the search keeps actors home — while a larger
``alpha`` buys stability at the price of throughput.

Guarantees, pinned by ``tests/test_repair.py``:

* **bit-exactness** — every move is scored through the compiled
  :class:`~repro.mapping.kernel.DeltaEvaluator` and the returned mapping
  is rescored through the kernel, so ``result.mapping.tmax`` equals
  ``MappingProblem.tmax`` on the degraded platform bit for bit;
* **determinism** — no randomness, no wall clock: back-to-back calls
  are bit-identical;
* **never worse than greedy-from-scratch** — the greedy floor (LPT /
  round-robin / contiguous, the portfolio's stage-1 seeds) is always
  computed; when the repaired ``tmax`` exceeds it, or the delta evicted
  more than half the actors, the call falls back to a full
  :func:`~repro.service.portfolio.solve_portfolio` solve under the same
  budget (which starts from those very seeds, so the floor holds on
  every path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import (
    contiguous_assignment,
    lpt_assignment,
    round_robin_assignment,
)
from repro.mapping.kernel import DeltaEvaluator, EvalKernel
from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result

#: default migration price, in objective-ns per byte moved.  Fragment
#: times sit in the 1e3..1e6 ns range and per-partition state in the
#: 1e1..1e4 byte range, so 1e-3 keeps the migration term orders of
#: magnitude below tmax: a pure tie-break that never trades throughput
#: for stability unless the caller raises it.
REPAIR_ALPHA: float = 1e-3

#: evicted fraction above which repair is pointless: with more than half
#: the actors stranded there is no meaningful incumbent to preserve, so
#: the solver goes straight to the from-scratch portfolio.
DESTRUCTIVE_EVICTION_FRACTION: float = 0.5

__all__ = [
    "DESTRUCTIVE_EVICTION_FRACTION",
    "REPAIR_ALPHA",
    "RepairResult",
    "migration_cost_bytes",
    "solve_repair",
    "translate_assignment",
]


@dataclass(frozen=True)
class RepairResult:
    """A repaired mapping plus its migration provenance."""

    #: the repaired (kernel-rescored) mapping; ``solver`` is
    #: ``repair[...]``, or the portfolio's own tag on the fallback path
    mapping: MappingResult
    #: name of the budget tier the repair ran under
    budget: str
    #: the migration price the composite objective used
    alpha: float
    #: partitions whose GPU changed vs. the (translated) old assignment,
    #: including every evicted partition
    migrated: Tuple[int, ...]
    #: partitions whose old GPU died (subset of ``migrated``)
    evicted: Tuple[int, ...]
    #: total bytes the migrated partitions carry
    migration_bytes: float
    #: the composite objective ``tmax + alpha * migration_bytes``
    objective: float
    #: True when repair quality was poor (or the delta too destructive)
    #: and the answer came from a from-scratch portfolio solve
    fallback: bool
    #: tmax of the repair seed (translated old assignment with evictions
    #: greedily re-placed); inf when the delta was too destructive to seed
    seed_tmax: float
    #: tmax of the best greedy-from-scratch assignment (the quality floor)
    greedy_tmax: float
    #: local-search moves the repair pass applied
    moves: int


def migration_cost_bytes(problem: MappingProblem, pid: int) -> float:
    """Bytes of resident state moving partition ``pid`` would copy.

    Counts the partition's host I/O buffers, both directions of every
    incident PDG edge, and its share of broadcast groups (the source
    counts the payload once; each destination counts its delivered
    copy).  Deterministic and independent of the assignment — the
    repair objective prices *whether* a partition moves, not where to.

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[1.0, 1.0], edges={(0, 1): 64.0},
    ...                    host_io=[(32.0, 0.0), (0.0, 16.0)],
    ...                    topology=default_topology(2))
    >>> migration_cost_bytes(p, 0), migration_cost_bytes(p, 1)
    (96.0, 80.0)
    """
    if not 0 <= pid < problem.num_partitions:
        raise ValueError(f"partition {pid} out of range")
    inp, out = problem.host_io[pid]
    total = float(inp) + float(out)
    for (i, j), nbytes in problem.edges.items():
        if pid in (i, j):
            total += nbytes
    for group in problem.broadcasts:
        if group.src == pid:
            total += group.nbytes
        total += group.nbytes * group.destinations.count(pid)
    return total


def translate_assignment(
    old_assignment: Sequence[int],
    gpu_map: Optional[Sequence[Optional[int]]],
) -> List[Optional[int]]:
    """Carry an assignment across a GPU renumbering.

    ``gpu_map[g]`` is the degraded platform's id of old GPU ``g`` or
    ``None`` when it died (see
    :class:`~repro.gpu.delta.DegradedTopology`); a ``None`` map is the
    identity.  Entries become ``None`` — *evicted* — when their old GPU
    is dead or out of the map's range.

    >>> translate_assignment([0, 1, 2, 1], (0, None, 1))
    [0, None, 1, None]
    >>> translate_assignment([0, 1], None)
    [0, 1]
    """
    if gpu_map is None:
        return [int(g) for g in old_assignment]
    out: List[Optional[int]] = []
    for gpu in old_assignment:
        if 0 <= gpu < len(gpu_map):
            out.append(gpu_map[gpu])
        else:
            out.append(None)
    return out


def solve_repair(
    problem: MappingProblem,
    old_assignment: Sequence[int],
    gpu_map: Optional[Sequence[Optional[int]]] = None,
    alpha: float = REPAIR_ALPHA,
    budget: Union[SolveBudget, str, None] = None,
    topo_order: Optional[Sequence[int]] = None,
) -> RepairResult:
    """Repair ``old_assignment`` for the (degraded) ``problem``.

    ``problem`` is the mapping problem built against the *degraded*
    topology; ``old_assignment`` is the deployed assignment in the *old*
    platform's GPU ids and ``gpu_map`` the old->new translation (``None``
    = identity, for pure throttle/slow deltas).  ``budget`` is a
    :class:`~repro.mapping.SolveBudget` or tier name exactly as for the
    portfolio; its ``refine_steps`` caps the local-search moves.

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> fixed = solve_repair(p, [0, 1, 0, 1], gpu_map=(0, None, 1))
    >>> fixed.evicted, fixed.mapping.tmax == p.tmax(fixed.mapping.assignment)
    ((1, 3), True)
    """
    if budget is None:
        budget = SolveBudget.default()
    elif isinstance(budget, str):
        budget = SolveBudget.tier(budget)
    if len(old_assignment) != problem.num_partitions:
        raise ValueError("old assignment length mismatch")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")

    translated = translate_assignment(old_assignment, gpu_map)
    evicted = tuple(
        pid for pid, gpu in enumerate(translated) if gpu is None
    )
    kernel = EvalKernel(problem)
    cost = [migration_cost_bytes(problem, pid) for pid in range(problem.num_partitions)]

    # the greedy-from-scratch floor: the portfolio's own stage-1 seeds,
    # ranked in one kernel batch.  Computed unconditionally — it is both
    # the quality gate and the recorded baseline.
    order = (
        list(topo_order)
        if topo_order is not None
        else list(range(problem.num_partitions))
    )
    seeds = [
        lpt_assignment(problem),
        round_robin_assignment(problem),
        contiguous_assignment(problem, order),
    ]
    greedy_tmax = min(kernel.batch_tmax(seeds))

    destructive = (
        problem.num_partitions > 0
        and len(evicted) / problem.num_partitions > DESTRUCTIVE_EVICTION_FRACTION
    )
    if destructive:
        return _fallback(
            problem, budget, alpha, translated, evicted, cost,
            greedy_tmax, seed_tmax=float("inf"), topo_order=topo_order,
        )

    # -- seed: keep survivors home, re-place evicted actors greedily ----
    # (heaviest first onto the least-loaded GPU, slowdown-aware — the
    # same LPT rule as the greedy baseline, applied only to the holes)
    slowdown = problem.gpu_slowdown or [1.0] * problem.num_gpus
    loads = [0.0] * problem.num_gpus
    for pid, gpu in enumerate(translated):
        if gpu is not None:
            loads[gpu] += problem.times[pid] * slowdown[gpu]
    seed: List[int] = [gpu if gpu is not None else 0 for gpu in translated]
    for pid in sorted(evicted, key=lambda p: (-problem.times[p], p)):
        gpu = min(
            range(problem.num_gpus),
            key=lambda j: (loads[j] + problem.times[pid] * slowdown[j], j),
        )
        seed[pid] = gpu
        loads[gpu] += problem.times[pid] * slowdown[gpu]

    # -- local search on the composite objective ------------------------
    # home[pid] is where the partition already runs (None for evicted
    # actors, which count as migrated wherever they land)
    home: List[Optional[int]] = translated
    state = DeltaEvaluator(kernel, seed)
    seed_tmax = state.tmax()
    migration = sum(
        cost[pid] for pid in range(problem.num_partitions)
        if home[pid] != seed[pid]
    )
    objective = seed_tmax + alpha * migration
    search_order = sorted(
        range(problem.num_partitions), key=lambda p: -problem.times[p]
    )
    moves = 0
    improved = True
    while improved and moves < budget.refine_steps:
        improved = False
        assign = state.assign
        for pid in search_order:
            original = assign[pid]
            away = cost[pid] if home[pid] is not None else 0.0
            base_migration = migration - (away if original != home[pid] else 0.0)
            for gpu in range(problem.num_gpus):
                if gpu == original:
                    continue
                candidate_migration = base_migration + (
                    away if gpu != home[pid] else 0.0
                )
                score = (
                    state.score_move(pid, gpu)
                    + alpha * candidate_migration
                )
                if score < objective - 1e-9:
                    state.apply_move(pid, gpu)
                    objective = score
                    migration = candidate_migration
                    moves += 1
                    improved = True
                    break
            if improved:
                break

    repaired = list(state.assignment())
    migrated = tuple(
        pid for pid in range(problem.num_partitions)
        if home[pid] != repaired[pid]
    )
    migration_bytes = sum(cost[pid] for pid in migrated)
    # the standing invariant: the returned incumbent is rescored through
    # the kernel's full evaluation, bit-identical to MappingProblem.tmax
    mapping = make_result(
        problem, repaired,
        "repair[local-search]" if moves else "repair[seed]",
        optimal=False,
        stats=(
            ("repair_moves", float(moves)),
            ("repair_evicted", float(len(evicted))),
        ),
        kernel=kernel,
    )
    if mapping.tmax > greedy_tmax:
        return _fallback(
            problem, budget, alpha, translated, evicted, cost,
            greedy_tmax, seed_tmax=seed_tmax, topo_order=topo_order,
        )
    return RepairResult(
        mapping=mapping,
        budget=budget.name,
        alpha=alpha,
        migrated=migrated,
        evicted=evicted,
        migration_bytes=migration_bytes,
        objective=mapping.tmax + alpha * migration_bytes,
        fallback=False,
        seed_tmax=seed_tmax,
        greedy_tmax=greedy_tmax,
        moves=moves,
    )


def _fallback(
    problem: MappingProblem,
    budget: SolveBudget,
    alpha: float,
    home: Sequence[Optional[int]],
    evicted: Tuple[int, ...],
    cost: Sequence[float],
    greedy_tmax: float,
    seed_tmax: float,
    topo_order: Optional[Sequence[int]],
) -> RepairResult:
    """From-scratch portfolio solve, wrapped in repair provenance."""
    # lazy import: repro.mapping must not depend on the service layer at
    # module import time (the portfolio already imports this package)
    from repro.service.portfolio import solve_portfolio

    answer = solve_portfolio(problem, budget=budget, topo_order=topo_order)
    repaired = answer.mapping.assignment
    migrated = tuple(
        pid for pid in range(problem.num_partitions)
        if home[pid] != repaired[pid]
    )
    migration_bytes = sum(cost[pid] for pid in migrated)
    return RepairResult(
        mapping=answer.mapping,
        budget=budget.name,
        alpha=alpha,
        migrated=migrated,
        evicted=evicted,
        migration_bytes=migration_bytes,
        objective=answer.mapping.tmax + alpha * migration_bytes,
        fallback=True,
        seed_tmax=seed_tmax,
        greedy_tmax=greedy_tmax,
        moves=0,
    )
