"""The multi-GPU mapping problem (Section 3.2.2).

Minimize ``Tmax``, the largest of

* per-GPU compute time   ``T_gpu_j  = Σ_i n_ij · T_i``        (III.4)
* per-link transfer time ``T_comm_l = Lat + D_l / BW``        (III.3)

where ``D_l`` accumulates, per Eq. III.7, the PDG edge traffic whose
(source GPU, destination GPU) pair is in ``dtlist(l)`` — plus (beyond the
paper's letter, but physically present) the primary I/O each partition
exchanges with the host.

All quantities are at *fragment* granularity: ``T_i`` is the time
partition ``i`` needs to process one input fragment and ``D_ij`` the bytes
it forwards per fragment.  In the pipelined execution of Section 3.2.3 the
steady-state beat — and hence application throughput — is set by exactly
this bottleneck, which is why minimizing ``Tmax`` maximizes throughput.

This module owns the problem record and the *evaluator* that scores a
concrete assignment; every solver (MILP, branch-and-bound, greedy) is
validated against the same evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.topology import GpuTopology, default_topology
from repro.partition.pdg import PartitionDependenceGraph


@dataclass(frozen=True)
class CommBreakdown:
    """Per-link loads and times for one evaluated assignment."""

    link_bytes: Tuple[float, ...]
    link_times: Tuple[float, ...]

    @property
    def bottleneck_time(self) -> float:
        return max(self.link_times, default=0.0)


@dataclass(frozen=True)
class Broadcast:
    """Identical data from partition ``src`` to many partitions: one copy
    per destination *GPU* (peer-to-peer copies cannot multicast, but they
    need not be repeated per partition on the same device)."""

    src: int
    nbytes: float
    destinations: Tuple[int, ...]


@dataclass
class MappingProblem:
    """All inputs of the ILP formulation."""

    times: List[float]  # T_i, fragment time per partition (ns)
    edges: Dict[Tuple[int, int], float]  # (i, j) -> bytes per fragment
    host_io: List[Tuple[float, float]]  # (input, output) bytes per fragment
    topology: GpuTopology
    #: peer-to-peer transfers (ours); False routes via the host as in [7]
    peer_to_peer: bool = True
    #: charge host primary I/O onto the links (physically real; can be
    #: disabled to match the paper's formulation to the letter)
    include_host_io: bool = True
    #: duplicate fan-outs, deduplicated per destination GPU
    broadcasts: List[Broadcast] = field(default_factory=list)
    #: per-GPU slowdown factors for heterogeneous machines (Section 3.2.2:
    #: "our ILP formulation can also be extended to heterogeneous cases");
    #: T_i on GPU j costs times[i] * gpu_slowdown[j].  None = homogeneous.
    #: :func:`build_mapping_problem` derives this from the topology's
    #: per-leaf ``gpu_specs`` when the platform is heterogeneous.
    gpu_slowdown: Optional[List[float]] = None

    def __post_init__(self) -> None:
        if len(self.times) != len(self.host_io):
            raise ValueError("times and host_io must align")
        if self.gpu_slowdown is not None:
            if len(self.gpu_slowdown) != self.topology.num_gpus:
                raise ValueError("one slowdown factor per GPU required")
            if any(s <= 0 for s in self.gpu_slowdown):
                raise ValueError("slowdown factors must be positive")
        for (i, j) in self.edges:
            if not (0 <= i < len(self.times) and 0 <= j < len(self.times)):
                raise ValueError(f"edge ({i},{j}) out of range")
        for group in self.broadcasts:
            if not (0 <= group.src < len(self.times)):
                raise ValueError("broadcast source out of range")
            if any(not (0 <= d < len(self.times)) for d in group.destinations):
                raise ValueError("broadcast destination out of range")

    @property
    def num_partitions(self) -> int:
        return len(self.times)

    @property
    def num_gpus(self) -> int:
        return self.topology.num_gpus

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def time_on(self, pid: int, gpu: int) -> float:
        """Fragment time of partition ``pid`` when run on ``gpu``."""
        if self.gpu_slowdown is None:
            return self.times[pid]
        return self.times[pid] * self.gpu_slowdown[gpu]

    def gpu_times(self, assignment: Sequence[int]) -> List[float]:
        """Eq. III.4 for a concrete assignment."""
        loads = [0.0] * self.num_gpus
        for pid, gpu in enumerate(assignment):
            loads[gpu] += self.time_on(pid, gpu)
        return loads

    def link_loads(self, assignment: Sequence[int]) -> List[float]:
        """Eq. III.7 (plus host I/O and broadcasts) for an assignment."""
        loads = [0.0] * self.topology.num_links
        for (i, j), nbytes in self.edges.items():
            src, dst = assignment[i], assignment[j]
            if src == dst:
                continue
            route = (
                self.topology.route(src, dst)
                if self.peer_to_peer
                else self.topology.route_via_host(src, dst)
            )
            for link in route:
                loads[link] += nbytes
        for group in self.broadcasts:
            src = assignment[group.src]
            dest_gpus = {assignment[j] for j in group.destinations}
            dest_gpus.discard(src)
            for dst in sorted(dest_gpus):
                route = (
                    self.topology.route(src, dst)
                    if self.peer_to_peer
                    else self.topology.route_via_host(src, dst)
                )
                for link in route:
                    loads[link] += group.nbytes
        if self.include_host_io:
            for pid, (inp, out) in enumerate(self.host_io):
                gpu = assignment[pid]
                if inp:
                    for link in self.topology.route_from_host(gpu):
                        loads[link] += inp
                if out:
                    for link in self.topology.route_to_host(gpu):
                        loads[link] += out
        return loads

    def comm_breakdown(self, assignment: Sequence[int]) -> CommBreakdown:
        """Eq. III.3 per link; latency is charged only on used links.

        Each link is costed under its *own* :class:`LinkSpec` — on
        heterogeneous platforms (see :mod:`repro.gpu.platforms`) the
        paper's single ``BW``/``Lat`` pair becomes a per-link pair.
        """
        loads = self.link_loads(assignment)
        times = tuple(
            (
                link.spec.latency_ns
                + load / link.spec.bandwidth_bytes_per_ns
            ) if load else 0.0
            for link, load in zip(self.topology.links, loads)
        )
        return CommBreakdown(link_bytes=tuple(loads), link_times=times)

    def tmax(self, assignment: Sequence[int]) -> float:
        """The objective value of an assignment."""
        gpu_side = max(self.gpu_times(assignment), default=0.0)
        comm_side = self.comm_breakdown(assignment).bottleneck_time
        return max(gpu_side, comm_side)


def build_mapping_problem(
    pdg: PartitionDependenceGraph,
    num_gpus: int,
    topology: Optional[GpuTopology] = None,
    peer_to_peer: bool = True,
    include_host_io: bool = True,
    gpu_slowdown: Optional[List[float]] = None,
) -> MappingProblem:
    """Assemble a :class:`MappingProblem` from a PDG.

    On a topology carrying per-leaf ``gpu_specs`` (a heterogeneous
    platform), the per-GPU slowdown factors default to
    :meth:`~repro.gpu.topology.GpuTopology.gpu_slowdowns`; an explicit
    ``gpu_slowdown`` argument overrides them.

    >>> from repro.flow import partition_stage, pdg_stage, profile_stage
    >>> from repro.synth.families import generate
    >>> graph = generate("pipeline", 1, {"depth": 4}).graph
    >>> engine = profile_stage(graph)
    >>> partitions, partitioning = partition_stage(graph, engine)
    >>> pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
    >>> problem = build_mapping_problem(pdg, 2)
    >>> problem.num_gpus, problem.num_partitions == len(partitions)
    (2, True)
    """
    topology = topology or default_topology(num_gpus)
    if topology.num_gpus != num_gpus:
        raise ValueError("topology size disagrees with num_gpus")
    if gpu_slowdown is None:
        gpu_slowdown = topology.gpu_slowdowns()
    times = [node.t_fragment for node in pdg.nodes]
    edges = {
        edge: float(pdg.edge_fragment_bytes(edge)) for edge in pdg.edges
    }
    # feedback (delay-edge) traffic loads links exactly like forward
    # traffic; only the pipeline ordering differs, which the ILP does not
    # model anyway
    for edge, nbytes in pdg.feedback_edges.items():
        scaled = float(nbytes * pdg.executions_per_fragment)
        edges[edge] = edges.get(edge, 0.0) + scaled
    host_io = [
        tuple(float(v) for v in pdg.host_fragment_bytes(i))
        for i in range(len(pdg))
    ]
    broadcasts = [
        Broadcast(
            src=group.src,
            nbytes=float(group.bytes_per_execution * pdg.executions_per_fragment),
            destinations=group.destinations,
        )
        for group in pdg.broadcasts
    ]
    return MappingProblem(
        times=times,
        edges=edges,
        host_io=host_io,
        topology=topology,
        peer_to_peer=peer_to_peer,
        include_host_io=include_host_io,
        broadcasts=broadcasts,
        gpu_slowdown=list(gpu_slowdown) if gpu_slowdown else None,
    )
