"""MILP backend for the mapping ILP (scipy.optimize.milp / HiGHS).

Variable layout::

    n_pj   P*G binaries       partition p on GPU j            (III.5)
    e_*    |E|*G*(G-1) reals  linearized products n_ik * n_jh (III.6)
    y_l    L binaries         link l carries any traffic
    Tmax   1 real             the objective

The product variables only appear with non-negative coefficients in
load constraints that push ``Tmax`` up, so the minimization drives them
to ``max(0, n_ik + n_jh - 1)`` and they can stay *continuous* — only the
lower-bound side of the usual linearization is needed.  This keeps the
binary count at ``P*G + L``.

One deliberate deviation from the paper's Eq. III.3: we gate the latency
term with the usage indicator ``y_l`` (``T_comm_l = Lat*y_l + D_l/BW``)
so unused links do not force ``Tmax >= Lat``.  The evaluator in
:mod:`repro.mapping.problem` applies the same rule, keeping solver and
scorer consistent.

Work limits come from a :class:`~repro.mapping.budget.SolveBudget`: the
default is a *deterministic* branch-and-bound node cap, so repeated
solves of one instance return identical mappings regardless of machine
load.  Wall-clock limits are opt-in (``budget.time_limit_s`` or the
legacy ``time_limit_s`` argument).  A solve that hits its cap returns
the incumbent with ``optimal=False``; a solve that hits the cap before
*any* incumbent raises :class:`MilpNoIncumbent`.

Model assembly goes through the persistent compiled backend
(:mod:`repro.mapping.milp_model`): the sparse model is compiled once
per structural signature and held in a bounded cache, later solves
rebind only the numeric payload, and an ``incumbent`` assignment (the
portfolio passes its best-so-far) is injected as a HiGHS MIP start.
``solve_stats`` reports ``milp_warm_start`` accordingly (cache reuse is
*not* a solve_stat — it depends on process-global state, and equal
solves must return byte-equal results; read
:meth:`MilpModelCache.stats` instead).  The legacy :class:`_Builder` is
kept as the reference implementation the compiled model is
structure-checked against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint

from repro.mapping.budget import SolveBudget
from repro.mapping.milp_model import MODEL_CACHE, MilpModelCache
from repro.mapping.problem import MappingProblem
from repro.mapping.result import MappingResult, make_result


class MilpNoIncumbent(RuntimeError):
    """The MILP hit its budget before finding any feasible incumbent."""


#: sentinel distinguishing "caller said nothing" from an explicit None
_UNSET = object()


def solve_milp(
    problem: MappingProblem,
    time_limit_s=_UNSET,
    include_comm: bool = True,
    mip_rel_gap: Optional[float] = None,
    budget: Optional[SolveBudget] = None,
    incumbent: Optional[Sequence[int]] = None,
    model_cache: Optional[MilpModelCache] = None,
) -> MappingResult:
    """Solve the mapping problem with HiGHS (optimal modulo the gap).

    ``include_comm=False`` drops the link constraints — the
    workload-balancing-only ablation.  ``budget`` supplies the work
    limits (node cap, gap, optional wall clock); omitted, it is
    :meth:`SolveBudget.default` — a deterministic node cap with *no*
    wall-clock limit, so back-to-back solves of the same instance are
    bit-identical.  The legacy ``time_limit_s``/``mip_rel_gap``
    arguments override the corresponding budget fields when given
    explicitly.

    The compiled model comes from ``model_cache`` (the process-wide
    :data:`~repro.mapping.milp_model.MODEL_CACHE` when omitted), so
    repeat solves of one (graph-shape x platform) signature skip the
    model assembly; reuse never changes the answer — a rebound model is
    bit-identical to a fresh build — and is deliberately not reported
    in ``solve_stats`` (it depends on cache state, and equal solves
    return byte-equal results; see :meth:`MilpModelCache.stats`).
    ``incumbent`` (a feasible
    assignment, e.g. the portfolio's best-so-far) is injected as a MIP
    start when the direct HiGHS backend is available
    (``milp_warm_start``); the returned mapping is never worse than it.

    A capped solve reports its incumbent: ``optimal`` is False and
    ``solve_stats`` carries the HiGHS status, the explored node count,
    and the remaining relative gap.

    >>> from repro.gpu.topology import default_topology
    >>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 4,
    ...                    topology=default_topology(2))
    >>> result = solve_milp(p)
    >>> result.tmax, result.optimal
    (5.0, True)
    """
    gpus = problem.num_gpus
    parts = problem.num_partitions
    if gpus == 1 or parts == 0:
        return make_result(problem, [0] * parts, "milp", True)

    budget = budget or SolveBudget.default()
    if time_limit_s is not _UNSET:
        budget = budget.with_wall_clock(time_limit_s)
    if mip_rel_gap is not None:
        from dataclasses import replace

        budget = replace(budget, mip_rel_gap=mip_rel_gap)

    cache = model_cache if model_cache is not None else MODEL_CACHE
    model, _ = cache.get_or_compile(problem, include_comm)
    res = model.solve(problem, budget, incumbent=incumbent)
    if res["x"] is None:
        raise MilpNoIncumbent(f"MILP solver failed: {res['message']}")
    assignment = model.extract_assignment(res["x"])
    stats = [("milp_status", float(res["status"]))]
    for key, stat in (
        ("mip_node_count", "milp_nodes"),
        ("mip_gap", "milp_gap"),
    ):
        if res[key] is not None:
            stats.append((stat, float(res[key])))
    # NOTE: whether the model came from the cache is deliberately NOT a
    # solve_stat — it depends on process-global cache state, and equal
    # solves must return byte-equal results (the cached-replay sweep
    # tests pin that).  Reuse is observable via MilpModelCache.stats().
    stats.append(("milp_warm_start", 1.0 if res["warm_started"] else 0.0))
    result = make_result(
        problem, assignment, "milp", optimal=(res["status"] == 0),
        stats=tuple(stats),
    )
    if incumbent is not None:
        # a warm-started solve must never answer worse than the start it
        # was handed; if HiGHS's capped run ends on a worse incumbent
        # (e.g. the MIP start was rejected at tolerance), keep the
        # caller's — and drop any optimality claim, which would now
        # certify a different point than the one returned
        incumbent_tmax = problem.tmax(list(incumbent))
        if result.tmax > incumbent_tmax:
            stats.append(("milp_clamped", 1.0))
            return make_result(
                problem, list(incumbent), "milp", optimal=False,
                stats=tuple(stats),
            )
    return result


class _Builder:
    """Assembles the sparse MILP."""

    def __init__(self, problem: MappingProblem, include_comm: bool) -> None:
        self.problem = problem
        self.include_comm = include_comm
        self.parts = problem.num_partitions
        self.gpus = problem.num_gpus
        self.edge_list = sorted(problem.edges)
        self.pairs = [
            (k, h)
            for k in range(self.gpus)
            for h in range(self.gpus)
            if k != h
        ]
        # variable offsets
        self.n_base = 0
        self.e_base = self.parts * self.gpus
        self.z_base = self.e_base + len(self.edge_list) * len(self.pairs)
        self.y_base = self.z_base + len(problem.broadcasts) * len(self.pairs)
        self.links = problem.topology.num_links if include_comm else 0
        self.tmax_index = self.y_base + self.links
        self.num_vars = self.tmax_index + 1

        self.constraints: List[LinearConstraint] = []

    # -- variable indexing ------------------------------------------------
    def n(self, p: int, j: int) -> int:
        return self.n_base + p * self.gpus + j

    def e(self, edge_idx: int, pair_idx: int) -> int:
        return self.e_base + edge_idx * len(self.pairs) + pair_idx

    def z(self, group_idx: int, pair_idx: int) -> int:
        return self.z_base + group_idx * len(self.pairs) + pair_idx

    def y(self, link: int) -> int:
        return self.y_base + link

    # -- model ------------------------------------------------------------
    def build(self) -> None:
        self._assignment_constraints()
        self._gpu_time_constraints()
        if self.include_comm:
            self._product_constraints()
            self._broadcast_constraints()
            self._link_constraints()
        self._symmetry_breaking()

    def _symmetry_breaking(self) -> None:
        """Pin the heaviest partition to one GPU per automorphism orbit.

        GPUs with identical route signatures (the per-link spec sequence
        of every route to every other GPU and to the host, plus the
        GPU's own slowdown) are interchangeable on the reference trees
        and on all catalog platforms, so restricting a single partition
        to orbit representatives loses no solutions while cutting the
        search space up to 4x.  Heterogeneous links enter the signature
        through each route's ordered (bandwidth, latency) profile — two
        GPUs equidistant by hop count but behind different-speed links
        are *not* merged.
        """
        topo = self.problem.topology

        def route_profile(route):
            return tuple(
                (
                    topo.links[l].spec.bandwidth_bytes_per_ns,
                    topo.links[l].spec.latency_ns,
                )
                for l in route
            )

        signatures = {}
        for gpu in range(self.gpus):
            slowdown = (
                self.problem.gpu_slowdown[gpu]
                if self.problem.gpu_slowdown is not None
                else 1.0
            )
            sig = (
                tuple(sorted(route_profile(topo.route(gpu, other))
                             for other in range(self.gpus) if other != gpu)),
                route_profile(topo.route_to_host(gpu)),
                slowdown,
            )
            signatures.setdefault(sig, gpu)
        representatives = set(signatures.values())
        if len(representatives) == self.gpus:
            return
        anchor = max(range(self.parts), key=lambda p: self.problem.times[p])
        banned = [j for j in range(self.gpus) if j not in representatives]
        if not banned:
            return
        row = sparse.lil_matrix((1, self.num_vars))
        for j in banned:
            row[0, self.n(anchor, j)] = 1.0
        self.constraints.append(LinearConstraint(row.tocsr(), 0.0, 0.0))

    def _assignment_constraints(self) -> None:
        """Σ_j n_pj = 1 (III.5)."""
        rows = sparse.lil_matrix((self.parts, self.num_vars))
        for p in range(self.parts):
            for j in range(self.gpus):
                rows[p, self.n(p, j)] = 1.0
        self.constraints.append(
            LinearConstraint(rows.tocsr(), np.ones(self.parts), np.ones(self.parts))
        )

    def _gpu_time_constraints(self) -> None:
        """Σ_i T_ij n_ij - Tmax <= 0 (III.1 + III.4; T_ij covers the
        heterogeneous extension)."""
        rows = sparse.lil_matrix((self.gpus, self.num_vars))
        for j in range(self.gpus):
            for p in range(self.parts):
                rows[j, self.n(p, j)] = self.problem.time_on(p, j)
            rows[j, self.tmax_index] = -1.0
        self.constraints.append(
            LinearConstraint(rows.tocsr(), -np.inf, np.zeros(self.gpus))
        )

    def _product_constraints(self) -> None:
        """e >= n_ik + n_jh - 1 (the binding half of III.6)."""
        count = len(self.edge_list) * len(self.pairs)
        rows = sparse.lil_matrix((count, self.num_vars))
        row = 0
        for edge_idx, (i, j) in enumerate(self.edge_list):
            for pair_idx, (k, h) in enumerate(self.pairs):
                rows[row, self.n(i, k)] = 1.0
                rows[row, self.n(j, h)] = 1.0
                rows[row, self.e(edge_idx, pair_idx)] = -1.0
                row += 1
        self.constraints.append(
            LinearConstraint(rows.tocsr(), -np.inf, np.ones(count))
        )

    def _broadcast_constraints(self) -> None:
        """z_gkh >= n_{src,k} + n_{j,h} - 1 for every destination j: the
        group ships (once) from GPU k to GPU h iff the source sits on k
        and any destination partition on h."""
        count = sum(
            len(g.destinations) for g in self.problem.broadcasts
        ) * len(self.pairs)
        if not count:
            return
        rows = sparse.lil_matrix((count, self.num_vars))
        row = 0
        for g_idx, group in enumerate(self.problem.broadcasts):
            for pair_idx, (k, h) in enumerate(self.pairs):
                for j in group.destinations:
                    rows[row, self.n(group.src, k)] = 1.0
                    rows[row, self.n(j, h)] = 1.0
                    rows[row, self.z(g_idx, pair_idx)] = -1.0
                    row += 1
        self.constraints.append(
            LinearConstraint(rows.tocsr(), -np.inf, np.ones(count))
        )

    def _link_loads(self) -> List[Dict[int, float]]:
        """Per-link linear expressions {var index: coefficient} in bytes."""
        topo = self.problem.topology
        loads: List[Dict[int, float]] = [dict() for _ in range(self.links)]
        for edge_idx, edge in enumerate(self.edge_list):
            nbytes = self.problem.edges[edge]
            for pair_idx, (k, h) in enumerate(self.pairs):
                route = (
                    topo.route(k, h)
                    if self.problem.peer_to_peer
                    else topo.route_via_host(k, h)
                )
                var = self.e(edge_idx, pair_idx)
                for link in route:
                    loads[link][var] = loads[link].get(var, 0.0) + nbytes
        for g_idx, group in enumerate(self.problem.broadcasts):
            for pair_idx, (k, h) in enumerate(self.pairs):
                route = (
                    topo.route(k, h)
                    if self.problem.peer_to_peer
                    else topo.route_via_host(k, h)
                )
                var = self.z(g_idx, pair_idx)
                for link in route:
                    loads[link][var] = loads[link].get(var, 0.0) + group.nbytes
        if self.problem.include_host_io:
            for p, (inp, out) in enumerate(self.problem.host_io):
                for j in range(self.gpus):
                    var = self.n(p, j)
                    if inp:
                        for link in topo.route_from_host(j):
                            loads[link][var] = loads[link].get(var, 0.0) + inp
                    if out:
                        for link in topo.route_to_host(j):
                            loads[link][var] = loads[link].get(var, 0.0) + out
        return loads

    def _link_constraints(self) -> None:
        """Lat_l*y_l + D_l/BW_l - Tmax <= 0 and D_l - M*y_l <= 0
        (III.2/III.3, with the paper's shared ``BW``/``Lat`` generalized
        to per-link coefficients for heterogeneous platforms)."""
        links = self.problem.topology.links
        loads = self._link_loads()
        big_m = (
            sum(self.problem.edges.values()) * self.gpus
            + sum(g.nbytes * self.gpus for g in self.problem.broadcasts)
            + sum(i + o for i, o in self.problem.host_io)
            + 1.0
        )
        time_rows = sparse.lil_matrix((self.links, self.num_vars))
        gate_rows = sparse.lil_matrix((self.links, self.num_vars))
        for link in range(self.links):
            spec = links[link].spec
            for var, coeff in loads[link].items():
                time_rows[link, var] = coeff / spec.bandwidth_bytes_per_ns
                gate_rows[link, var] = coeff
            time_rows[link, self.y(link)] = spec.latency_ns
            time_rows[link, self.tmax_index] = -1.0
            gate_rows[link, self.y(link)] = -big_m
        self.constraints.append(
            LinearConstraint(time_rows.tocsr(), -np.inf, np.zeros(self.links))
        )
        self.constraints.append(
            LinearConstraint(gate_rows.tocsr(), -np.inf, np.zeros(self.links))
        )

    # -- pieces scipy needs -------------------------------------------------
    @property
    def objective(self) -> np.ndarray:
        c = np.zeros(self.num_vars)
        c[self.tmax_index] = 1.0
        return c

    @property
    def integrality(self) -> np.ndarray:
        kinds = np.zeros(self.num_vars)
        kinds[self.n_base : self.e_base] = 1  # n binaries
        kinds[self.y_base : self.y_base + self.links] = 1  # y binaries
        return kinds

    @property
    def bounds(self) -> Bounds:
        lower = np.zeros(self.num_vars)
        upper = np.ones(self.num_vars)
        upper[self.tmax_index] = np.inf
        return Bounds(lower, upper)

    def extract_assignment(self, x: np.ndarray) -> List[int]:
        assignment = []
        for p in range(self.parts):
            row = x[self.n(p, 0) : self.n(p, 0) + self.gpus]
            assignment.append(int(np.argmax(row)))
        return assignment
