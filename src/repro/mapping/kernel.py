"""Compiled per-problem evaluation engine for the mapping objective.

Every solver in the repo scores candidate assignments with the shared
evaluator (:meth:`~repro.mapping.problem.MappingProblem.tmax`), which
re-walks the topology tree per PDG edge on every call.  That is fine for
scoring one final answer; it is the wrong shape for local search and
branch-and-bound, which score *millions* of near-identical candidates.

:class:`EvalKernel` is built once per problem and precomputes everything
the interpreted evaluator re-derives per call:

* a G x G -> route table (peer-to-peer or via-host, matching the
  problem's ``peer_to_peer`` flag) plus host-I/O routes per GPU,
* flattened edge / broadcast / host-I/O arrays (no dict re-iteration,
  no per-edge attribute chasing),
* per-link ``latency`` / ``bandwidth`` / ``1/bandwidth`` vectors and a
  P x G compute-time table folding in heterogeneous GPU slowdowns.

On top of it, :class:`DeltaEvaluator` maintains one assignment's score
*incrementally*: a single move or swap is re-scored in O(degree of the
moved partitions) plus an O(G + L) bottleneck scan — independent of the
number of partitions and PDG edges — with exact commit/rollback.

**Exactness invariant.**  Kernel scores are *bit-identical* to the
interpreted evaluator, not merely close: full evaluation replicates the
evaluator's accumulation order; the delta evaluator recomputes the two
touched per-GPU times in canonical (ascending partition id) order rather
than add/subtracting them (float sums of arbitrary fragment times do not
commute), and link-time division by bandwidth is kept as a division
(``load / bw`` and ``load * (1 / bw)`` differ in the last ulp).  Link
*loads* are maintained incrementally — byte counts are dyadic rationals
far below 2**53, so their float sums are exact — and every rollback
restores the previous floats verbatim from a snapshot.  The property
suite in ``tests/test_kernel.py`` pins all of this across the synth
corpus and every named platform.

>>> from repro.gpu.topology import default_topology
>>> from repro.mapping.problem import MappingProblem
>>> p = MappingProblem(
...     times=[4.0, 3.0, 2.0], edges={(0, 1): 64.0, (1, 2): 64.0},
...     host_io=[(64.0, 0.0), (0.0, 0.0), (0.0, 64.0)],
...     topology=default_topology(2),
... )
>>> kernel = EvalKernel(p)
>>> kernel.full_tmax([0, 0, 1]) == p.tmax([0, 0, 1])
True
>>> state = DeltaEvaluator(kernel, [0, 0, 1])
>>> state.score_move(1, 1) == p.tmax([0, 1, 1])
True
>>> state.tmax() == p.tmax([0, 0, 1])  # score_move left the state intact
True
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.mapping.problem import CommBreakdown, MappingProblem

__all__ = [
    "DeltaEvaluator",
    "EvalKernel",
    "canonical_gpu_fold",
    "compile_kernel",
]


def canonical_gpu_fold(col, pids: Iterable[int], start: float = 0.0) -> float:
    """Fold per-partition compute times in the canonical order.

    This is *the* exactness-critical accumulation of the repo: one
    GPU's time is the left fold of its members' times in **ascending
    partition id** order, which is the order the interpreted evaluator
    (:meth:`~repro.mapping.problem.MappingProblem.gpu_times`) feeds its
    per-GPU accumulators.  Float sums do not commute, so every scoring
    path — the delta evaluator's probes, its commit-time recomputes,
    and the batch evaluator's pure-python fallback — must run this one
    fold rather than re-deriving it; ``tests/test_batch_properties.py``
    carries a mutation test that fails if the fold order ever changes.

    ``col`` maps a partition id to its time on the GPU in question
    (typically ``kernel.ptime_by_gpu[gpu].__getitem__``); ``pids`` must
    already be ascending; ``start`` resumes the fold from a cached
    prefix sum.

    >>> canonical_gpu_fold({0: 2.0, 1: 3.0, 2: 4.0}.__getitem__, [0, 1, 2])
    9.0
    >>> canonical_gpu_fold([5.0, 7.0].__getitem__, [1], start=1.0)
    8.0
    """
    return sum(map(col, pids), start)


class EvalKernel:
    """Precomputed route tables and flattened arrays for one problem.

    Construction costs O(G^2 tree-depth + E + P*G) once; afterwards
    :meth:`full_tmax` scores an assignment without a single tree walk or
    dict lookup beyond the flattened arrays, and :class:`DeltaEvaluator`
    scores single moves in O(degree).  All scores are bit-identical to
    :meth:`~repro.mapping.problem.MappingProblem.tmax` (see the module
    docstring for why that holds).
    """

    def __init__(self, problem: MappingProblem) -> None:
        self.problem = problem
        topo = problem.topology
        gpus = topo.num_gpus
        self.num_gpus = gpus
        self.num_links = topo.num_links
        self.num_partitions = problem.num_partitions
        self.include_host_io = problem.include_host_io

        # --- route tables -------------------------------------------------
        p2p = problem.peer_to_peer
        self.routes: Tuple[Tuple[Tuple[int, ...], ...], ...] = tuple(
            tuple(
                topo.route(src, dst) if p2p else topo.route_via_host(src, dst)
                for dst in range(gpus)
            )
            for src in range(gpus)
        )
        self.host_in_routes: Tuple[Tuple[int, ...], ...] = tuple(
            topo.route_from_host(g) for g in range(gpus)
        )
        self.host_out_routes: Tuple[Tuple[int, ...], ...] = tuple(
            topo.route_to_host(g) for g in range(gpus)
        )

        # --- per-link cost vectors ---------------------------------------
        self.latency: List[float] = [
            link.spec.latency_ns for link in topo.links
        ]
        self.bandwidth: List[float] = [
            link.spec.bandwidth_bytes_per_ns for link in topo.links
        ]
        #: reciprocal bandwidth — used by the branch-and-bound *bound*
        #: (multiplication is cheaper); exact evaluation divides by
        #: :attr:`bandwidth` instead to stay bit-identical to the
        #: interpreted evaluator
        self.inv_bandwidth: List[float] = [
            1.0 / bw for bw in self.bandwidth
        ]

        # --- flattened edges (problem.edges iteration order) -------------
        # self-edges never cross a link and zero-byte edges add exactly
        # 0.0 everywhere, so both are dropped from the flattened arrays
        self.edge_list: List[Tuple[int, int, float]] = [
            (i, j, nbytes)
            for (i, j), nbytes in problem.edges.items()
            if i != j and nbytes
        ]
        self.out_edges: List[List[Tuple[int, float]]] = [
            [] for _ in range(self.num_partitions)
        ]
        self.in_edges: List[List[Tuple[int, float]]] = [
            [] for _ in range(self.num_partitions)
        ]
        for i, j, nbytes in self.edge_list:
            self.out_edges[i].append((j, nbytes))
            self.in_edges[j].append((i, nbytes))

        # --- broadcasts (unique destinations, original order) ------------
        self.broadcasts: List[Tuple[int, float, Tuple[int, ...]]] = [
            (g.src, g.nbytes, tuple(dict.fromkeys(g.destinations)))
            for g in problem.broadcasts
        ]
        self.bcast_by_src: List[List[int]] = [
            [] for _ in range(self.num_partitions)
        ]
        self.bcast_by_dst: List[List[int]] = [
            [] for _ in range(self.num_partitions)
        ]
        for g_idx, (src, _nbytes, dests) in enumerate(self.broadcasts):
            self.bcast_by_src[src].append(g_idx)
            for j in dests:
                self.bcast_by_dst[j].append(g_idx)

        # --- host I/O and the P x G compute-time table -------------------
        self.host_io: List[Tuple[float, float]] = list(problem.host_io)
        slowdown = problem.gpu_slowdown
        if slowdown is None:
            self.ptime: List[List[float]] = [
                [t] * gpus for t in problem.times
            ]
        else:
            self.ptime = [
                [t * s for s in slowdown] for t in problem.times
            ]
        #: the same table in column-major (per-GPU) layout — the delta
        #: evaluator's canonical per-GPU recomputes index one flat list
        self.ptime_by_gpu: List[List[float]] = [
            [row[g] for row in self.ptime] for g in range(gpus)
        ]
        #: per-group destination membership tests for the delta scorer
        self.bcast_dest_sets: List[frozenset] = [
            frozenset(dests) for _src, _nbytes, dests in self.broadcasts
        ]

    # ------------------------------------------------------------------
    # full evaluation (bit-identical to the interpreted evaluator)
    # ------------------------------------------------------------------
    def gpu_times(self, assignment: Sequence[int]) -> List[float]:
        """Eq. III.4 per GPU, from the precomputed time table."""
        loads = [0.0] * self.num_gpus
        ptime = self.ptime
        for pid, gpu in enumerate(assignment):
            loads[gpu] += ptime[pid][gpu]
        return loads

    def link_loads(self, assignment: Sequence[int]) -> List[float]:
        """Eq. III.7 loads per directed link, via the route table."""
        loads = [0.0] * self.num_links
        routes = self.routes
        for i, j, nbytes in self.edge_list:
            src = assignment[i]
            dst = assignment[j]
            if src == dst:
                continue
            for link in routes[src][dst]:
                loads[link] += nbytes
        for src_pid, nbytes, dests in self.broadcasts:
            src = assignment[src_pid]
            dest_gpus = {assignment[j] for j in dests}
            dest_gpus.discard(src)
            for dst in sorted(dest_gpus):
                for link in routes[src][dst]:
                    loads[link] += nbytes
        if self.include_host_io:
            host_in = self.host_in_routes
            host_out = self.host_out_routes
            for pid, (inp, out) in enumerate(self.host_io):
                gpu = assignment[pid]
                if inp:
                    for link in host_in[gpu]:
                        loads[link] += inp
                if out:
                    for link in host_out[gpu]:
                        loads[link] += out
        return loads

    def link_times(self, loads: Sequence[float]) -> Tuple[float, ...]:
        """Eq. III.3 per link; latency charged only on used links."""
        latency = self.latency
        bandwidth = self.bandwidth
        return tuple(
            (latency[l] + load / bandwidth[l]) if load else 0.0
            for l, load in enumerate(loads)
        )

    def full_tmax(self, assignment: Sequence[int]) -> float:
        """The objective value of ``assignment`` (fast full evaluation).

        >>> from repro.gpu.topology import default_topology
        >>> from repro.mapping.problem import MappingProblem
        >>> p = MappingProblem(times=[2.0, 1.0], edges={(0, 1): 8.0},
        ...                    host_io=[(8.0, 0.0), (0.0, 8.0)],
        ...                    topology=default_topology(2))
        >>> EvalKernel(p).full_tmax([0, 1]) == p.tmax([0, 1])
        True
        """
        gpu_side = max(self.gpu_times(assignment), default=0.0)
        comm = 0.0
        latency = self.latency
        bandwidth = self.bandwidth
        for l, load in enumerate(self.link_loads(assignment)):
            if load:
                t = latency[l] + load / bandwidth[l]
                if t > comm:
                    comm = t
        return max(gpu_side, comm)

    def batch_tmax(self, assignments: Iterable[Sequence[int]]) -> List[float]:
        """Score many assignments (the portfolio's seed ranking)."""
        return [self.full_tmax(a) for a in assignments]

    def breakdown(
        self, assignment: Sequence[int]
    ) -> Tuple[Tuple[float, ...], CommBreakdown]:
        """Per-GPU times and per-link breakdown, bit-identical to
        :meth:`~repro.mapping.problem.MappingProblem.comm_breakdown`."""
        loads = self.link_loads(assignment)
        return (
            tuple(self.gpu_times(assignment)),
            CommBreakdown(
                link_bytes=tuple(loads), link_times=self.link_times(loads)
            ),
        )


def compile_kernel(problem: MappingProblem) -> EvalKernel:
    """Build the compiled evaluation kernel for ``problem``.

    >>> from repro.gpu.topology import default_topology
    >>> from repro.mapping.problem import MappingProblem
    >>> p = MappingProblem(times=[1.0], edges={}, host_io=[(0.0, 0.0)],
    ...                    topology=default_topology(1))
    >>> compile_kernel(p).full_tmax([0])
    1.0
    """
    return EvalKernel(problem)


class DeltaEvaluator:
    """Incremental scorer for one evolving assignment.

    Maintains per-GPU compute times, per-link loads, and per-broadcast
    destination counts so that a single move (or swap) is re-scored in
    O(degree of the moved partition) link updates plus an O(G + L)
    bottleneck scan — the partition count and total edge count never
    appear in the per-move cost.

    The mutation API is commit-by-default with explicit rollback:
    :meth:`apply_move` / :meth:`apply_swap` mutate the state and return
    an opaque token; :meth:`rollback` undoes exactly that mutation
    (tokens must be rolled back LIFO).  :meth:`score_move` /
    :meth:`score_swap` are the non-mutating probes local search scans
    with — apply, read :meth:`tmax`, roll back.

    Rollback restores snapshots of every touched float, so a
    score-probe leaves the state *bitwise* untouched no matter how the
    arithmetic rounds.
    """

    def __init__(self, kernel: EvalKernel, assignment: Sequence[int]) -> None:
        self.kernel = kernel
        assign = list(assignment)
        if len(assign) != kernel.num_partitions:
            raise ValueError("assignment length mismatch")
        for gpu in assign:
            if not (0 <= gpu < kernel.num_gpus):
                raise ValueError(f"GPU id {gpu} out of range")
        self.assign = assign
        #: sorted member pids per GPU — kept sorted so touched GPU times
        #: can be recomputed in the evaluator's canonical accumulation
        #: order (ascending pid), which is what makes them bit-exact
        self.members: List[List[int]] = [[] for _ in range(kernel.num_gpus)]
        for pid, gpu in enumerate(assign):
            self.members[gpu].append(pid)  # ascending pid by construction
        self.gpu_times = [0.0] * kernel.num_gpus  # filled by the folds below
        #: per-GPU canonical prefix folds: ``prefix[g][k]`` is the exact
        #: partial sum of the first ``k`` member times in ascending-pid
        #: order, so a probe resumes the fold at the moved partition's
        #: position instead of re-folding the whole membership; rebuilt
        #: only on commits (probes never touch it)
        self.prefix: List[List[float]] = [
            [] for _ in range(kernel.num_gpus)
        ]
        for gpu in range(kernel.num_gpus):
            self._recompute_gpu(gpu)
        self.link_loads = kernel.link_loads(assign)
        self.bcast_counts: List[Dict[int, int]] = []
        for _src, _nbytes, dests in kernel.broadcasts:
            counts: Dict[int, int] = {}
            for j in dests:
                gpu = assign[j]
                counts[gpu] = counts.get(gpu, 0) + 1
            self.bcast_counts.append(counts)

    # ------------------------------------------------------------------
    def tmax(self) -> float:
        """Current objective value (O(G + L), no re-accumulation)."""
        gpu_side = max(self.gpu_times) if self.gpu_times else 0.0
        comm = 0.0
        latency = self.kernel.latency
        bandwidth = self.kernel.bandwidth
        for l, load in enumerate(self.link_loads):
            if load:
                t = latency[l] + load / bandwidth[l]
                if t > comm:
                    comm = t
        return max(gpu_side, comm)

    def assignment(self) -> Tuple[int, ...]:
        """The current assignment."""
        return tuple(self.assign)

    # ------------------------------------------------------------------
    def _recompute_gpu(self, gpu: int) -> None:
        """Recompute one GPU's time in canonical (ascending pid) order,
        rebuilding its prefix-fold cache along the way.  The loop
        materializes every partial sum of :func:`canonical_gpu_fold`
        over the membership, so probes resuming from ``prefix[k]`` are
        bitwise continuations of this fold."""
        col = self.kernel.ptime_by_gpu[gpu]
        total = 0.0
        prefix = [0.0]
        append = prefix.append
        for pid in self.members[gpu]:
            total += col[pid]
            append(total)
        self.prefix[gpu] = prefix
        self.gpu_times[gpu] = total

    def apply_move(self, pid: int, gpu: int):
        """Move ``pid`` to ``gpu``; returns a rollback token."""
        old = self.assign[pid]
        if gpu == old:
            return None
        kernel = self.kernel
        loads = self.link_loads
        touched: Dict[int, float] = {}  # link -> load before this move

        def shift(route: Tuple[int, ...], nbytes: float) -> None:
            for link in route:
                if link not in touched:
                    touched[link] = loads[link]
                loads[link] += nbytes

        routes = kernel.routes
        out_edges = kernel.out_edges[pid]
        in_edges = kernel.in_edges[pid]
        assign = self.assign

        # 1. retract every contribution involving pid at its old GPU
        for other, nbytes in out_edges:
            dst = assign[other]
            if dst != old:
                shift(routes[old][dst], -nbytes)
        for other, nbytes in in_edges:
            src = assign[other]
            if src != old:
                shift(routes[src][old], -nbytes)
        affected = kernel.bcast_by_src[pid] or kernel.bcast_by_dst[pid]
        if affected:
            affected = sorted(
                set(kernel.bcast_by_src[pid]) | set(kernel.bcast_by_dst[pid])
            )
            for g_idx in affected:
                self._shift_broadcast(g_idx, shift, retract=True)
        if kernel.include_host_io:
            inp, out = kernel.host_io[pid]
            if inp:
                shift(kernel.host_in_routes[old], -inp)
            if out:
                shift(kernel.host_out_routes[old], -out)

        # 2. re-place pid
        assign[pid] = gpu
        self.members[old].remove(pid)
        insort(self.members[gpu], pid)
        for g_idx in kernel.bcast_by_dst[pid]:
            counts = self.bcast_counts[g_idx]
            counts[old] -= 1
            if not counts[old]:
                del counts[old]
            counts[gpu] = counts.get(gpu, 0) + 1

        # 3. charge every contribution at the new GPU
        for other, nbytes in out_edges:
            dst = assign[other]
            if dst != gpu:
                shift(routes[gpu][dst], nbytes)
        for other, nbytes in in_edges:
            src = assign[other]
            if src != gpu:
                shift(routes[src][gpu], nbytes)
        if affected:
            for g_idx in affected:
                self._shift_broadcast(g_idx, shift, retract=False)
        if kernel.include_host_io:
            if inp:
                shift(kernel.host_in_routes[gpu], inp)
            if out:
                shift(kernel.host_out_routes[gpu], out)

        # 4. canonical recompute of the two touched GPU times; the
        # replaced prefix lists ride along in the token so rollback can
        # swap them back without refolding
        prev_times = (self.gpu_times[old], self.gpu_times[gpu])
        prev_prefix = (self.prefix[old], self.prefix[gpu])
        self._recompute_gpu(old)
        self._recompute_gpu(gpu)
        return (pid, old, gpu, touched, prev_times, prev_prefix)

    def _shift_broadcast(self, g_idx: int, shift, retract: bool) -> None:
        """Charge (or retract) one broadcast group's current routes."""
        src_pid, nbytes, _dests = self.kernel.broadcasts[g_idx]
        src_gpu = self.assign[src_pid]
        routes = self.kernel.routes[src_gpu]
        amount = -nbytes if retract else nbytes
        for dst in self.bcast_counts[g_idx]:
            if dst != src_gpu:
                shift(routes[dst], amount)

    def rollback(self, token) -> None:
        """Undo the mutation that returned ``token`` (LIFO order)."""
        if token is None:
            return
        if token[0] == "swap":
            _tag, second, first = token
            self.rollback(second)
            self.rollback(first)
            return
        pid, old, gpu, touched, prev_times, prev_prefix = token
        self.assign[pid] = old
        self.members[gpu].remove(pid)
        insort(self.members[old], pid)
        for g_idx in self.kernel.bcast_by_dst[pid]:
            counts = self.bcast_counts[g_idx]
            counts[gpu] -= 1
            if not counts[gpu]:
                del counts[gpu]
            counts[old] = counts.get(old, 0) + 1
        loads = self.link_loads
        for link, load in touched.items():
            loads[link] = load
        self.gpu_times[old], self.gpu_times[gpu] = prev_times
        self.prefix[old], self.prefix[gpu] = prev_prefix

    def apply_swap(self, a: int, b: int):
        """Exchange the GPUs of partitions ``a`` and ``b``."""
        gpu_a = self.assign[a]
        gpu_b = self.assign[b]
        first = self.apply_move(a, gpu_b)
        second = self.apply_move(b, gpu_a)
        return ("swap", second, first)

    # ------------------------------------------------------------------
    def score_move(self, pid: int, gpu: int) -> float:
        """Objective after moving ``pid`` to ``gpu`` (state untouched).

        This is the local-search hot path: the candidate is priced
        without mutating any state — link deltas land in a small local
        override dict and the two affected GPU times are folded in
        canonical (ascending pid) order on the fly — so the score is
        bitwise what :meth:`apply_move` + :meth:`tmax` would report,
        with none of the commit/rollback bookkeeping.
        """
        old = self.assign[pid]
        if gpu == old:
            return self.tmax()
        kernel = self.kernel
        loads = self.link_loads
        assign = self.assign
        routes = kernel.routes
        routes_old = routes[old]
        routes_gpu = routes[gpu]
        new_loads: Dict[int, float] = {}
        get = new_loads.get

        for other, nbytes in kernel.out_edges[pid]:
            dst = assign[other]
            if dst != old:
                for link in routes_old[dst]:
                    new_loads[link] = get(link, loads[link]) - nbytes
            if dst != gpu:
                for link in routes_gpu[dst]:
                    new_loads[link] = get(link, loads[link]) + nbytes
        for other, nbytes in kernel.in_edges[pid]:
            src = assign[other]
            if src != old:
                for link in routes[src][old]:
                    new_loads[link] = get(link, loads[link]) - nbytes
            if src != gpu:
                for link in routes[src][gpu]:
                    new_loads[link] = get(link, loads[link]) + nbytes
        if kernel.bcast_by_src[pid] or kernel.bcast_by_dst[pid]:
            def shift(route: Tuple[int, ...], nbytes: float) -> None:
                for link in route:
                    new_loads[link] = get(link, loads[link]) + nbytes
            self._probe_broadcasts(pid, old, gpu, shift)
        if kernel.include_host_io:
            inp, out = kernel.host_io[pid]
            if inp:
                for link in kernel.host_in_routes[old]:
                    new_loads[link] = get(link, loads[link]) - inp
                for link in kernel.host_in_routes[gpu]:
                    new_loads[link] = get(link, loads[link]) + inp
            if out:
                for link in kernel.host_out_routes[old]:
                    new_loads[link] = get(link, loads[link]) - out
                for link in kernel.host_out_routes[gpu]:
                    new_loads[link] = get(link, loads[link]) + out

        # canonical (ascending pid) folds of the two affected GPU times:
        # resume each fold from the prefix cache at the moved
        # partition's position and finish the tail through the one
        # shared fold helper — bitwise the evaluator's accumulation loop
        members = self.members[old]
        col = kernel.ptime_by_gpu[old].__getitem__
        cut = bisect_left(members, pid)
        old_time = canonical_gpu_fold(
            col, members[cut + 1:], self.prefix[old][cut]
        )
        members = self.members[gpu]
        col = kernel.ptime_by_gpu[gpu].__getitem__
        cut = bisect_left(members, pid)
        new_time = canonical_gpu_fold(
            col, members[cut:], self.prefix[gpu][cut] + col(pid)
        )

        gpu_side = 0.0
        for g, t in enumerate(self.gpu_times):
            if g == old:
                t = old_time
            elif g == gpu:
                t = new_time
            if t > gpu_side:
                gpu_side = t
        comm = 0.0
        latency = kernel.latency
        bandwidth = kernel.bandwidth
        for l, load in enumerate(loads):
            load = get(l, load)
            if load:
                t = latency[l] + load / bandwidth[l]
                if t > comm:
                    comm = t
        return comm if comm > gpu_side else gpu_side

    def _probe_broadcasts(self, pid: int, old: int, gpu: int, shift) -> None:
        """Retract-and-recharge the broadcast groups ``pid`` touches,
        without mutating the per-group destination counts."""
        kernel = self.kernel
        assign = self.assign
        affected = set(kernel.bcast_by_src[pid])
        affected.update(kernel.bcast_by_dst[pid])
        for g_idx in sorted(affected):
            src_pid, nbytes, _dests = kernel.broadcasts[g_idx]
            counts = self.bcast_counts[g_idx]
            old_src = assign[src_pid]
            for dst in counts:
                if dst != old_src:
                    shift(kernel.routes[old_src][dst], -nbytes)
            new_src = gpu if src_pid == pid else old_src
            if pid in kernel.bcast_dest_sets[g_idx]:
                dest_gpus = set(counts)
                if counts[old] == 1:
                    dest_gpus.discard(old)
                dest_gpus.add(gpu)
            else:
                dest_gpus = counts
            routes = kernel.routes[new_src]
            for dst in dest_gpus:
                if dst != new_src:
                    shift(routes[dst], nbytes)

    def score_swap(self, a: int, b: int) -> float:
        """Objective after swapping ``a`` and ``b`` (state untouched)."""
        token = self.apply_swap(a, b)
        score = self.tmax()
        self.rollback(token)
        return score
