"""Mapping results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.mapping.problem import MappingProblem


@dataclass(frozen=True)
class MappingResult:
    """A solved partition-to-GPU assignment with its score breakdown."""

    assignment: Tuple[int, ...]
    tmax: float
    gpu_times: Tuple[float, ...]
    link_times: Tuple[float, ...]
    solver: str
    optimal: bool
    solve_stats: Tuple[Tuple[str, float], ...] = ()

    @property
    def bottleneck(self) -> str:
        """Whether compute or communication limits the throughput."""
        gpu_side = max(self.gpu_times, default=0.0)
        comm_side = max(self.link_times, default=0.0)
        return "compute" if gpu_side >= comm_side else "communication"

    def gpus_used(self) -> List[int]:
        return sorted(set(self.assignment))


def make_result(
    problem: MappingProblem,
    assignment: List[int],
    solver: str,
    optimal: bool,
    stats: Tuple[Tuple[str, float], ...] = (),
    kernel=None,
) -> MappingResult:
    """Score ``assignment`` with the shared evaluator and wrap it.

    ``kernel`` (an :class:`~repro.mapping.kernel.EvalKernel` built for
    ``problem``) scores through the compiled fast path instead; kernel
    scores are bit-identical to the interpreted evaluator, so the two
    paths produce the same result.
    """
    if kernel is not None:
        gpu_times, comm = kernel.breakdown(assignment)
    else:
        comm = problem.comm_breakdown(assignment)
        gpu_times = tuple(problem.gpu_times(assignment))
    tmax = max(
        max(gpu_times, default=0.0), comm.bottleneck_time
    )
    return MappingResult(
        assignment=tuple(assignment),
        tmax=tmax,
        gpu_times=gpu_times,
        link_times=comm.link_times,
        solver=solver,
        optimal=optimal,
        solve_stats=stats,
    )
