"""Persistent, warm-started MILP backend (compile once, rebind, re-solve).

``solve_milp`` historically rebuilt the whole sparse model from scratch
on every call — row by row through ``lil_matrix`` — even when thousands
of requests shared one (graph-shape x platform) topology, which is
exactly the sweep-grid / ``repro serve`` burst profile.  This module
splits the solve into the two halves the ``HighsPySolver`` pattern
prescribes:

* **compile** (:class:`CompiledMilpModel`) — performed once per
  *structural signature* (:func:`milp_signature`): variable layout, the
  canonical CSC sparsity structure of every constraint block, constant
  coefficients, bounds, integrality, and a *value recipe* describing how
  each non-constant coefficient is computed from a concrete problem;
* **bind + solve** (:meth:`CompiledMilpModel.solve`) — per call: refill
  the value array from the problem's numeric payload (compute times,
  edge/broadcast byte counts, per-link Lat/BW, big-M), apply the
  budget's work limits, and run HiGHS — optionally warm-started from an
  injected incumbent via a MIP start, so the solver never has to
  rediscover what the portfolio's greedy/B&B stages already found.

The rebind recomputes *bit-identical* coefficient floats to a fresh
build (same accumulation order, same divisions), and every solve passes
the model to a fresh HiGHS instance, so fresh-vs-reused and
back-to-back solves of one instance return byte-identical results — the
standing determinism invariant ("model reuse must not change node
ordering for a fixed budget").

Backends, best first:

1. ``highspy`` (or SciPy's vendored HiGHS bindings) driven directly —
   supports MIP-start warm starts; option handling mirrors
   ``scipy.optimize.milp`` exactly, so the two backends agree
   bit-for-bit on the same arrays;
2. ``scipy.optimize.milp`` on the precompiled arrays — the fallback
   when no direct bindings exist; no warm start, but still skips the
   Python-side model assembly.

``REPRO_MILP_BACKEND`` (``auto``/``highs``/``scipy``) forces a backend;
the agreement tests use it.

>>> from repro.gpu.topology import default_topology
>>> from repro.mapping.budget import SolveBudget
>>> from repro.mapping.problem import MappingProblem
>>> p = MappingProblem(times=[4.0, 3.0, 2.0, 1.0], edges={(0, 1): 8.0},
...                    host_io=[(0.0, 0.0)] * 4,
...                    topology=default_topology(2))
>>> cache = MilpModelCache(capacity=4)
>>> model, reused = cache.get_or_compile(p)
>>> reused, cache.get_or_compile(p)[1]
(False, True)
>>> res = model.solve(p, SolveBudget.default())
>>> res["status"], round(res["fun"], 6)
(0, 7.0)
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.mapping.budget import SolveBudget
from repro.mapping.problem import MappingProblem

#: environment variable forcing the solver backend (``auto`` picks the
#: direct HiGHS bindings when available, else the scipy fallback)
BACKEND_ENV = "REPRO_MILP_BACKEND"

#: default capacity of the process-wide model cache — one slot per
#: (graph-shape x platform) signature, LRU-evicted
DEFAULT_CACHE_CAPACITY = 32


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
def _load_highs_bindings():
    """(module, Highs class) of the best available direct bindings."""
    try:  # the public package, when the container has it
        import highspy

        return highspy, highspy.Highs
    except ImportError:
        pass
    try:  # SciPy >= 1.15 vendors the same pybind11 bindings
        from scipy.optimize._highspy import _core

        return _core, _core._Highs
    except ImportError:
        return None, None


_HIGHS, _HIGHS_CLS = _load_highs_bindings()


def highs_backend_available() -> bool:
    """Whether the direct (warm-startable) HiGHS bindings are loadable.

    >>> isinstance(highs_backend_available(), bool)
    True
    """
    return _HIGHS_CLS is not None


def _resolve_backend() -> str:
    """The backend this solve should use: ``"highs"`` or ``"scipy"``."""
    forced = os.environ.get(BACKEND_ENV, "auto").strip().lower()
    if forced in ("", "auto"):
        return "highs" if highs_backend_available() else "scipy"
    if forced == "highs":
        if not highs_backend_available():
            raise RuntimeError(
                f"{BACKEND_ENV}=highs but no HiGHS bindings are importable"
            )
        return "highs"
    if forced == "scipy":
        return "scipy"
    raise ValueError(
        f"unknown {BACKEND_ENV} value {forced!r}; use auto, highs, or scipy"
    )


# HighsModelStatus -> scipy status code, mirroring scipy's
# ``_highs_to_scipy_status_message`` so ``milp_status`` solve stats are
# backend-independent.  Statuses carrying a usable incumbent are the
# same set scipy's wrapper accepts.
_SCIPY_STATUS = {
    "kNotset": 4, "kLoadError": 4, "kModelError": 2, "kPresolveError": 4,
    "kSolveError": 4, "kPostsolveError": 4, "kModelEmpty": 4,
    "kObjectiveBound": 4, "kObjectiveTarget": 4, "kOptimal": 0,
    "kTimeLimit": 1, "kIterationLimit": 1, "kInfeasible": 2,
    "kUnbounded": 3, "kUnboundedOrInfeasible": 4,
}
_HAS_SOLUTION = ("kOptimal", "kTimeLimit", "kIterationLimit",
                 "kSolutionLimit")


# ----------------------------------------------------------------------
# structural signature
# ----------------------------------------------------------------------
def symmetry_orbit(problem: MappingProblem) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """The symmetry-breaking pin: ``(anchor partition, banned GPUs)``.

    GPUs with identical route signatures (per-link spec profile of every
    route to every peer and to the host, plus the GPU's own slowdown)
    are interchangeable; the heaviest partition is pinned to orbit
    representatives.  ``None`` when every GPU is its own orbit (nothing
    to break).  This is the same computation the legacy builder ran
    inline; it is exposed so the structural signature can include it.

    >>> from repro.gpu.topology import default_topology
    >>> from repro.mapping.problem import MappingProblem
    >>> p = MappingProblem(times=[5.0, 1.0], edges={},
    ...                    host_io=[(0.0, 0.0)] * 2,
    ...                    topology=default_topology(2))
    >>> symmetry_orbit(p)
    (0, (1,))
    """
    topo = problem.topology
    gpus = problem.num_gpus

    def route_profile(route):
        return tuple(
            (
                topo.links[l].spec.bandwidth_bytes_per_ns,
                topo.links[l].spec.latency_ns,
            )
            for l in route
        )

    signatures: Dict[object, int] = {}
    for gpu in range(gpus):
        slowdown = (
            problem.gpu_slowdown[gpu]
            if problem.gpu_slowdown is not None
            else 1.0
        )
        sig = (
            tuple(sorted(route_profile(topo.route(gpu, other))
                         for other in range(gpus) if other != gpu)),
            route_profile(topo.route_to_host(gpu)),
            slowdown,
        )
        signatures.setdefault(sig, gpu)
    representatives = set(signatures.values())
    if len(representatives) == gpus:
        return None
    banned = tuple(j for j in range(gpus) if j not in representatives)
    if not banned:
        return None
    anchor = max(
        range(problem.num_partitions), key=lambda p: problem.times[p]
    )
    return anchor, banned


def milp_signature(
    problem: MappingProblem, include_comm: bool = True
) -> Tuple:
    """The structural identity a compiled model can be reused across.

    Everything that shapes the *sparsity structure* enters: partition
    and GPU counts, the edge-list structure, broadcast groups, the
    host-IO sparsity pattern, routing mode, ``include_comm``, the full
    platform content (via :func:`repro.flow.topology_key_parts` — per
    link specs included, so "same machine" means byte-identical
    machine), and the symmetry-breaking orbit.  Numeric payload
    (compute times, byte counts, big-M, budget knobs) deliberately stays
    out — it is rebound per solve.

    >>> from repro.gpu.topology import default_topology
    >>> from repro.mapping.problem import MappingProblem
    >>> a = MappingProblem(times=[4.0, 2.0], edges={(0, 1): 8.0},
    ...                    host_io=[(0.0, 0.0)] * 2,
    ...                    topology=default_topology(2))
    >>> b = MappingProblem(times=[9.0, 1.0], edges={(0, 1): 64.0},
    ...                    host_io=[(0.0, 0.0)] * 2,
    ...                    topology=default_topology(2))
    >>> milp_signature(a) == milp_signature(b)  # same shape, new numbers
    True
    >>> milp_signature(a) == milp_signature(a, include_comm=False)
    False
    """
    from repro.flow import topology_key_parts  # local: avoids an import cycle

    machine = json.dumps(
        topology_key_parts(problem.topology), sort_keys=True,
        separators=(",", ":"), default=str,
    )
    return (
        problem.num_partitions,
        problem.num_gpus,
        bool(include_comm),
        bool(problem.peer_to_peer),
        bool(problem.include_host_io),
        tuple(sorted(problem.edges)),
        tuple((g.src, tuple(g.destinations)) for g in problem.broadcasts),
        tuple((inp > 0, out > 0) for inp, out in problem.host_io),
        machine,
        symmetry_orbit(problem),
    )


# ----------------------------------------------------------------------
# the compiled model
# ----------------------------------------------------------------------
class CompiledMilpModel:
    """One structural signature's compiled MILP (see module docstring).

    Instances are immutable after compilation: every solve allocates its
    own value array, so one model can serve concurrent threads.  Build
    via :meth:`MilpModelCache.get_or_compile` (or directly for tests).

    Variable layout (identical to the legacy builder)::

        n_pj   P*G binaries       partition p on GPU j
        e_*    |E|*G*(G-1) reals  linearized products
        z_*    |B|*G*(G-1) reals  broadcast-pair products
        y_l    L binaries         link l carries traffic
        Tmax   1 real             the objective
    """

    def __init__(self, problem: MappingProblem, include_comm: bool = True) -> None:
        self.signature = milp_signature(problem, include_comm)
        self.include_comm = include_comm
        self.parts = problem.num_partitions
        self.gpus = problem.num_gpus
        self.edge_list = sorted(problem.edges)
        self.pairs = [
            (k, h)
            for k in range(self.gpus)
            for h in range(self.gpus)
            if k != h
        ]
        self.pair_index = {pair: i for i, pair in enumerate(self.pairs)}
        self.n_base = 0
        self.e_base = self.parts * self.gpus
        self.z_base = self.e_base + len(self.edge_list) * len(self.pairs)
        self.y_base = self.z_base + len(problem.broadcasts) * len(self.pairs)
        self.links = problem.topology.num_links if include_comm else 0
        self.tmax_index = self.y_base + self.links
        self.num_vars = self.tmax_index + 1
        self._compile(problem)

    # -- variable indexing (same layout as the legacy builder) ----------
    def n(self, p: int, j: int) -> int:
        return self.n_base + p * self.gpus + j

    def e(self, edge_idx: int, pair_idx: int) -> int:
        return self.e_base + edge_idx * len(self.pairs) + pair_idx

    def z(self, group_idx: int, pair_idx: int) -> int:
        return self.z_base + group_idx * len(self.pairs) + pair_idx

    def y(self, link: int) -> int:
        return self.y_base + link

    # ------------------------------------------------------------------
    # compile: structure + constant template + value recipe
    # ------------------------------------------------------------------
    def _compile(self, problem: MappingProblem) -> None:
        rows: List[int] = []
        cols: List[int] = []
        template: List[float] = []  # constants; 0.0 where rebound
        row_lower: List[float] = []
        row_upper: List[float] = []
        # value recipe --------------------------------------------------
        time_pos: List[int] = []   # entry -> problem.time_on(p, j)
        time_p: List[int] = []
        time_j: List[int] = []
        lat_pos: List[int] = []    # entry -> link latency
        lat_link: List[int] = []
        bigm_pos: List[int] = []   # entry -> -big_m
        # load pairs: acc over contributions, then /BW for the time row
        pair_time_pos: List[int] = []
        pair_gate_pos: List[int] = []
        pair_link: List[int] = []
        contrib_pair: List[int] = []  # (pair slot, byte-source index)
        contrib_src: List[int] = []
        inf = float("inf")

        def entry(r: int, c: int, v: float) -> int:
            rows.append(r)
            cols.append(c)
            template.append(v)
            return len(template) - 1

        row = 0
        # assignment rows: sum_j n_pj == 1 ------------------------------
        for p in range(self.parts):
            for j in range(self.gpus):
                entry(row, self.n(p, j), 1.0)
            row_lower.append(1.0)
            row_upper.append(1.0)
            row += 1
        # gpu-time rows: sum_p T_pj n_pj - Tmax <= 0 --------------------
        for j in range(self.gpus):
            for p in range(self.parts):
                pos = entry(row, self.n(p, j), 0.0)
                time_pos.append(pos)
                time_p.append(p)
                time_j.append(j)
            entry(row, self.tmax_index, -1.0)
            row_lower.append(-inf)
            row_upper.append(0.0)
            row += 1
        if self.include_comm:
            # product rows: n_ik + n_jh - e <= 1 ------------------------
            for edge_idx, (i, j) in enumerate(self.edge_list):
                for pair_idx, (k, h) in enumerate(self.pairs):
                    entry(row, self.n(i, k), 1.0)
                    entry(row, self.n(j, h), 1.0)
                    entry(row, self.e(edge_idx, pair_idx), -1.0)
                    row_lower.append(-inf)
                    row_upper.append(1.0)
                    row += 1
            # broadcast rows: n_src,k + n_j,h - z <= 1 ------------------
            for g_idx, group in enumerate(problem.broadcasts):
                for pair_idx, (k, h) in enumerate(self.pairs):
                    for j in group.destinations:
                        entry(row, self.n(group.src, k), 1.0)
                        entry(row, self.n(j, h), 1.0)
                        entry(row, self.z(g_idx, pair_idx), -1.0)
                        row_lower.append(-inf)
                        row_upper.append(1.0)
                        row += 1
            # per-link load expressions, replicated in the legacy
            # accumulation order (edges, broadcasts, host I/O), each
            # contribution a byte-source index into the bind vector
            loads: List[Dict[int, List[int]]] = [
                dict() for _ in range(self.links)
            ]
            n_edges = len(self.edge_list)
            n_bcast = len(problem.broadcasts)
            topo = problem.topology

            def route_of(k: int, h: int):
                return (
                    topo.route(k, h)
                    if problem.peer_to_peer
                    else topo.route_via_host(k, h)
                )

            for edge_idx in range(n_edges):
                for pair_idx, (k, h) in enumerate(self.pairs):
                    var = self.e(edge_idx, pair_idx)
                    for link in route_of(k, h):
                        loads[link].setdefault(var, []).append(edge_idx)
            for g_idx in range(n_bcast):
                for pair_idx, (k, h) in enumerate(self.pairs):
                    var = self.z(g_idx, pair_idx)
                    for link in route_of(k, h):
                        loads[link].setdefault(var, []).append(
                            n_edges + g_idx
                        )
            if problem.include_host_io:
                for p, (inp, out) in enumerate(problem.host_io):
                    for j in range(self.gpus):
                        var = self.n(p, j)
                        if inp:
                            for link in topo.route_from_host(j):
                                loads[link].setdefault(var, []).append(
                                    n_edges + n_bcast + p
                                )
                        if out:
                            for link in topo.route_to_host(j):
                                loads[link].setdefault(var, []).append(
                                    n_edges + n_bcast + self.parts + p
                                )
            # link-time rows: D_l/BW_l + Lat_l*y_l - Tmax <= 0 ----------
            pair_slot: Dict[Tuple[int, int], int] = {}
            for link in range(self.links):
                for var, sources in loads[link].items():
                    pos = entry(row, var, 0.0)
                    slot = len(pair_link)
                    pair_slot[(link, var)] = slot
                    pair_time_pos.append(pos)
                    pair_gate_pos.append(-1)  # patched below
                    pair_link.append(link)
                    for src in sources:
                        contrib_pair.append(slot)
                        contrib_src.append(src)
                pos = entry(row, self.y(link), 0.0)
                lat_pos.append(pos)
                lat_link.append(link)
                entry(row, self.tmax_index, -1.0)
                row_lower.append(-inf)
                row_upper.append(0.0)
                row += 1
            # gate rows: D_l - M*y_l <= 0 -------------------------------
            for link in range(self.links):
                for var in loads[link]:
                    pos = entry(row, var, 0.0)
                    pair_gate_pos[pair_slot[(link, var)]] = pos
                pos = entry(row, self.y(link), 0.0)
                bigm_pos.append(pos)
                row_lower.append(-inf)
                row_upper.append(0.0)
                row += 1
        # symmetry-breaking row (structure captured by the signature) ---
        orbit = self.signature[-1]
        if orbit is not None:
            anchor, banned = orbit
            for j in banned:
                entry(row, self.n(anchor, j), 1.0)
            row_lower.append(0.0)
            row_upper.append(0.0)
            row += 1
        self.num_rows = row

        # canonical CSC structure; the permutation maps the recipe-order
        # value array into CSC data order (canonical form is unique, so
        # this matches what scipy's constraint conversion produces)
        nnz = len(template)
        coo = sparse.coo_matrix(
            (np.arange(1, nnz + 1, dtype=np.int64),
             (np.asarray(rows, dtype=np.int64),
              np.asarray(cols, dtype=np.int64))),
            shape=(self.num_rows, self.num_vars),
        )
        csc = coo.tocsc()
        csc.sort_indices()
        self._csc_indptr = csc.indptr
        self._csc_indices = csc.indices
        self._csc_perm = np.asarray(csc.data, dtype=np.int64) - 1
        self._template = np.asarray(template, dtype=np.float64)
        self.row_lower = np.asarray(row_lower, dtype=np.float64)
        self.row_upper = np.asarray(row_upper, dtype=np.float64)

        self._time_pos = np.asarray(time_pos, dtype=np.int64)
        self._time_p = np.asarray(time_p, dtype=np.int64)
        self._time_j = np.asarray(time_j, dtype=np.int64)
        self._lat_pos = np.asarray(lat_pos, dtype=np.int64)
        self._lat_link = np.asarray(lat_link, dtype=np.int64)
        self._bigm_pos = np.asarray(bigm_pos, dtype=np.int64)
        self._pair_time_pos = np.asarray(pair_time_pos, dtype=np.int64)
        self._pair_gate_pos = np.asarray(pair_gate_pos, dtype=np.int64)
        self._pair_link = np.asarray(pair_link, dtype=np.int64)
        self._contrib_pair = np.asarray(contrib_pair, dtype=np.int64)
        self._contrib_src = np.asarray(contrib_src, dtype=np.int64)

        # objective / bounds / integrality ------------------------------
        c = np.zeros(self.num_vars)
        c[self.tmax_index] = 1.0
        self.objective = c
        lower = np.zeros(self.num_vars)
        upper = np.ones(self.num_vars)
        upper[self.tmax_index] = np.inf
        self.col_lower = lower
        self.col_upper = upper
        kinds = np.zeros(self.num_vars, dtype=np.uint8)
        kinds[self.n_base:self.e_base] = 1
        kinds[self.y_base:self.y_base + self.links] = 1
        self.integrality = kinds

    # ------------------------------------------------------------------
    # bind: numeric payload -> CSC value array
    # ------------------------------------------------------------------
    def matches(self, problem: MappingProblem, include_comm: bool = True) -> bool:
        """Whether ``problem`` shares this model's structural signature.

        >>> from repro.gpu.topology import default_topology
        >>> from repro.mapping.problem import MappingProblem
        >>> p = MappingProblem(times=[4.0, 2.0], edges={},
        ...                    host_io=[(0.0, 0.0)] * 2,
        ...                    topology=default_topology(2))
        >>> CompiledMilpModel(p).matches(p)
        True
        """
        return self.signature == milp_signature(problem, include_comm)

    def bind(self, problem: MappingProblem) -> np.ndarray:
        """The CSC ``data`` array for ``problem``'s numeric payload.

        Coefficients are recomputed with the exact float operations (and
        accumulation order) of a from-scratch build, so a rebound model
        is indistinguishable from a fresh one.  A new array is allocated
        per call — the compiled model stays immutable and thread-safe.
        """
        values = self._template.copy()
        # per-partition compute times (heterogeneous slowdowns included)
        if self._time_pos.size:
            times = np.asarray(problem.times, dtype=np.float64)
            if problem.gpu_slowdown is None:
                values[self._time_pos] = times[self._time_p]
            else:
                slow = np.asarray(problem.gpu_slowdown, dtype=np.float64)
                values[self._time_pos] = (
                    times[self._time_p] * slow[self._time_j]
                )
        if self.include_comm and self.links:
            topo = problem.topology
            bw = np.asarray(
                [l.spec.bandwidth_bytes_per_ns for l in topo.links],
                dtype=np.float64,
            )
            lat = np.asarray(
                [l.spec.latency_ns for l in topo.links], dtype=np.float64
            )
            byte_sources = np.concatenate([
                np.asarray(
                    [problem.edges[e] for e in self.edge_list],
                    dtype=np.float64,
                ).reshape(-1),
                np.asarray(
                    [g.nbytes for g in problem.broadcasts], dtype=np.float64
                ).reshape(-1),
                np.asarray(
                    [io[0] for io in problem.host_io], dtype=np.float64
                ).reshape(-1),
                np.asarray(
                    [io[1] for io in problem.host_io], dtype=np.float64
                ).reshape(-1),
            ]) if (self.edge_list or problem.broadcasts or problem.host_io) \
                else np.zeros(0)
            acc = np.zeros(self._pair_link.size, dtype=np.float64)
            # ufunc.at adds sequentially in recipe order — the same left
            # fold the legacy dict accumulation performed
            np.add.at(acc, self._contrib_pair, byte_sources[self._contrib_src])
            values[self._pair_time_pos] = acc / bw[self._pair_link]
            values[self._pair_gate_pos] = acc
            values[self._lat_pos] = lat[self._lat_link]
            big_m = (
                sum(problem.edges.values()) * self.gpus
                + sum(g.nbytes * self.gpus for g in problem.broadcasts)
                + sum(i + o for i, o in problem.host_io)
                + 1.0
            )
            values[self._bigm_pos] = -big_m
        return values[self._csc_perm]

    # ------------------------------------------------------------------
    # warm start
    # ------------------------------------------------------------------
    def warm_values(
        self, problem: MappingProblem, assignment: Sequence[int]
    ) -> np.ndarray:
        """A full feasible variable vector for an incumbent assignment.

        Used as the MIP start: ``n`` from the assignment, product and
        broadcast variables at their implied values, ``y`` from the
        evaluator's link loads, ``Tmax`` at the incumbent's objective.
        """
        x = np.zeros(self.num_vars)
        for p, gpu in enumerate(assignment):
            x[self.n(p, int(gpu))] = 1.0
        if self.include_comm:
            for edge_idx, (i, j) in enumerate(self.edge_list):
                k, h = assignment[i], assignment[j]
                if k != h:
                    x[self.e(edge_idx, self.pair_index[(k, h)])] = 1.0
            for g_idx, group in enumerate(problem.broadcasts):
                k = assignment[group.src]
                dest_gpus = {assignment[j] for j in group.destinations}
                dest_gpus.discard(k)
                for h in sorted(dest_gpus):
                    x[self.z(g_idx, self.pair_index[(k, h)])] = 1.0
            for link, load in enumerate(problem.link_loads(assignment)):
                if load > 0:
                    x[self.y(link)] = 1.0
        x[self.tmax_index] = problem.tmax(list(assignment))
        return x

    # ------------------------------------------------------------------
    # solve
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: MappingProblem,
        budget: SolveBudget,
        incumbent: Optional[Sequence[int]] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Bind ``problem`` and solve under ``budget``'s work limits.

        Returns a scipy-shaped result dict: ``status`` (scipy code; 0 =
        optimal), ``x`` (``None`` when no incumbent was found),
        ``fun``, ``mip_node_count``, ``mip_gap``, ``message``, and
        ``warm_started`` (whether a MIP start was injected — only the
        direct backend supports it).  Raises nothing on capped solves;
        the caller decides what a ``None`` ``x`` means.
        """
        if not self.matches(problem, self.include_comm):
            raise ValueError("problem does not match this compiled model")
        data = self.bind(problem)
        backend = backend or _resolve_backend()
        options: Dict[str, object] = {"mip_rel_gap": budget.mip_rel_gap}
        if budget.milp_node_limit is not None:
            options["node_limit"] = budget.milp_node_limit
        if budget.time_limit_s is not None:
            options["time_limit"] = budget.time_limit_s
        if backend == "highs":
            warm = (
                self.warm_values(problem, incumbent)
                if incumbent is not None
                else None
            )
            return self._solve_direct(data, options, warm)
        return self._solve_scipy(data, options)

    def _solve_scipy(self, data, options) -> Dict[str, object]:
        """The ``scipy.optimize.milp`` fallback on precompiled arrays."""
        from scipy.optimize import Bounds, LinearConstraint, milp

        matrix = sparse.csc_matrix(
            (data, self._csc_indices, self._csc_indptr),
            shape=(self.num_rows, self.num_vars),
        )
        res = milp(
            c=self.objective,
            constraints=LinearConstraint(
                matrix, self.row_lower, self.row_upper
            ),
            integrality=self.integrality,
            bounds=Bounds(self.col_lower, self.col_upper),
            options={
                "mip_rel_gap": options["mip_rel_gap"],
                **(
                    {"node_limit": options["node_limit"]}
                    if "node_limit" in options else {}
                ),
                **(
                    {"time_limit": options["time_limit"]}
                    if "time_limit" in options else {}
                ),
            },
        )
        return {
            "status": int(res.status),
            "x": res.x,
            "fun": res.fun,
            "mip_node_count": getattr(res, "mip_node_count", None),
            "mip_gap": getattr(res, "mip_gap", None),
            "message": res.message,
            "warm_started": False,
        }

    def _solve_direct(self, data, options, warm) -> Dict[str, object]:
        """Drive the HiGHS bindings the way scipy's wrapper does, plus
        the MIP start the wrapper cannot express."""
        h = _HIGHS
        lp = h.HighsLp()
        lp.num_col_ = self.num_vars
        lp.num_row_ = self.num_rows
        lp.a_matrix_.num_col_ = self.num_vars
        lp.a_matrix_.num_row_ = self.num_rows
        lp.a_matrix_.format_ = h.MatrixFormat.kColwise
        lp.col_cost_ = self.objective
        lp.col_lower_ = self.col_lower
        lp.col_upper_ = self.col_upper
        lp.row_lower_ = self.row_lower
        lp.row_upper_ = self.row_upper
        lp.a_matrix_.start_ = self._csc_indptr
        lp.a_matrix_.index_ = self._csc_indices
        lp.a_matrix_.value_ = data
        lp.integrality_ = [
            h.HighsVarType(int(i)) for i in self.integrality
        ]
        # a fresh instance per solve: no solver-state carryover, so
        # fresh-vs-reused solves are bit-identical by construction
        highs = _HIGHS_CLS()
        opts = h.HighsOptions()
        opts.log_to_console = False
        opts.mip_rel_gap = float(options["mip_rel_gap"])
        if "node_limit" in options:
            opts.mip_max_nodes = int(options["node_limit"])
        if "time_limit" in options:
            opts.time_limit = float(options["time_limit"])
        highs.passOptions(opts)
        highs.passModel(lp)
        warm_started = False
        if warm is not None:
            solution = h.HighsSolution()
            solution.col_value = warm
            warm_started = (
                highs.setSolution(solution) == h.HighsStatus.kOk
            )
        highs.run()
        status = highs.getModelStatus()
        info = highs.getInfo()
        name = status.name
        has_solution = name in _HAS_SOLUTION and (
            info.objective_function_value != h.kHighsInf
        )
        scipy_status = _SCIPY_STATUS.get(
            name, 1 if name == "kSolutionLimit" else 4
        )
        if not has_solution:
            return {
                "status": scipy_status,
                "x": None,
                "fun": None,
                "mip_node_count": info.mip_node_count,
                "mip_gap": None,
                "message": f"model_status is {name}",
                "warm_started": warm_started,
            }
        return {
            "status": scipy_status,
            "x": np.array(highs.getSolution().col_value),
            "fun": info.objective_function_value,
            "mip_node_count": info.mip_node_count,
            "mip_gap": info.mip_gap,
            "message": f"model_status is {name}",
            "warm_started": warm_started,
        }

    def extract_assignment(self, x: np.ndarray) -> List[int]:
        """Partition-to-GPU assignment from a solution vector.

        >>> from repro.gpu.topology import default_topology
        >>> from repro.mapping.budget import SolveBudget
        >>> from repro.mapping.problem import MappingProblem
        >>> p = MappingProblem(times=[4.0, 3.0], edges={},
        ...                    host_io=[(0.0, 0.0)] * 2,
        ...                    topology=default_topology(2))
        >>> m = CompiledMilpModel(p)
        >>> m.extract_assignment(m.solve(p, SolveBudget.default())["x"])
        [0, 1]
        """
        assignment = []
        for p in range(self.parts):
            row = x[self.n(p, 0):self.n(p, 0) + self.gpus]
            assignment.append(int(np.argmax(row)))
        return assignment


# ----------------------------------------------------------------------
# the bounded model cache
# ----------------------------------------------------------------------
class MilpModelCache:
    """Thread-safe bounded LRU cache of :class:`CompiledMilpModel`.

    Keyed by :func:`milp_signature` — one slot per (graph-shape x
    platform) structure, like the service's StageCache slots key
    machine content.  Models are immutable, so cache hits can be solved
    concurrently without checkout; eviction is LRU at ``capacity``.

    >>> cache = MilpModelCache(capacity=2)
    >>> cache.stats()
    {'hits': 0, 'misses': 0, 'evictions': 0, 'size': 0, 'capacity': 2}
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._models: "OrderedDict[Tuple, CompiledMilpModel]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_compile(
        self, problem: MappingProblem, include_comm: bool = True
    ) -> Tuple[CompiledMilpModel, bool]:
        """The signature's compiled model, plus whether it was reused.

        >>> from repro.gpu.topology import default_topology
        >>> from repro.mapping.problem import MappingProblem
        >>> p = MappingProblem(times=[4.0, 2.0], edges={},
        ...                    host_io=[(0.0, 0.0)] * 2,
        ...                    topology=default_topology(2))
        >>> cache = MilpModelCache()
        >>> _, first = cache.get_or_compile(p)
        >>> _, second = cache.get_or_compile(p)
        >>> first, second
        (False, True)
        """
        signature = milp_signature(problem, include_comm)
        with self._lock:
            model = self._models.get(signature)
            if model is not None:
                self._models.move_to_end(signature)
                self._hits += 1
                return model, True
            self._misses += 1
        # compile outside the lock: concurrent first solves of distinct
        # signatures must not serialize on one compilation
        model = CompiledMilpModel(problem, include_comm)
        with self._lock:
            existing = self._models.get(signature)
            if existing is not None:  # lost a compile race; reuse theirs
                self._models.move_to_end(signature)
                return existing, True
            self._models[signature] = model
            while len(self._models) > self.capacity:
                self._models.popitem(last=False)
                self._evictions += 1
        return model, False

    def stats(self) -> Dict[str, int]:
        """Lifetime hit/miss/eviction counters plus the current size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._models),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        """Drop every cached model (counters keep running).

        >>> cache = MilpModelCache()
        >>> cache.clear()
        >>> cache.stats()["size"]
        0
        """
        with self._lock:
            self._models.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)


#: the process-wide default cache ``solve_milp`` uses — shared by the
#: service's worker threads, the flow's ilp mapper, sweeps, and
#: diffcheck, so any call path that repeats a (graph-shape x platform)
#: signature pays one compile
MODEL_CACHE = MilpModelCache()
