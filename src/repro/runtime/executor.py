"""The pipelined multi-GPU execution simulator.

A mapped application is executed as in Figure 3.5: partitions become
kernels; partitions on the same GPU run sequentially per fragment;
fragments stream through the partition pipeline so that, e.g., GPU 1
computes fragment ``n`` while fragment ``n-1`` drains to the host and
GPU 2 crunches fragment ``n-3``.

The simulation is resource-based list scheduling:

* each GPU is a serial resource (one kernel at a time),
* each directed PCIe link is a serial resource (transfers on it queue),
* kernels take the *simulator-measured* fragment time (the hardware
  stand-in, not the PEE estimate — mirroring how the paper reports real
  measurements for mappings its model chose),
* an inter-GPU edge whose endpoints share a GPU costs nothing; otherwise
  it books every link on its route (peer-to-peer) or stages through the
  host with two transfers (the previous work's execution model).

Work items are booked in (fragment, topological-partition) order, but
GPUs use *backfill* (gap-aware) interval scheduling: a kernel may slot
into an earlier idle gap left while its GPU waited on another fragment's
upstream partitions — this is what the per-fragment CUDA streams of
Section 3.2.3 achieve on real hardware, and without it a GPU hosting both
the head and the tail of the pipeline would stall for a full round trip
every fragment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.simulator import KernelMeasurement, KernelSimulator
from repro.gpu.topology import GpuTopology
from repro.partition.pdg import PartitionDependenceGraph
from repro.runtime.fragments import FragmentPlan


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one pipelined run."""

    makespan_ns: float
    num_fragments: int
    executions_per_fragment: int
    gpu_busy_ns: Tuple[float, ...]
    link_busy_ns: Tuple[float, ...]
    first_fragment_done_ns: float

    @property
    def total_executions(self) -> int:
        return self.num_fragments * self.executions_per_fragment

    @property
    def throughput(self) -> float:
        """Steady-state executions per nanosecond."""
        return self.total_executions / self.makespan_ns

    @property
    def beat_ns(self) -> float:
        """Steady-state time per fragment once the pipeline is full."""
        if self.num_fragments == 1:
            return self.makespan_ns
        return (self.makespan_ns - self.first_fragment_done_ns) / (
            self.num_fragments - 1
        )

    @property
    def pipeline_fill_ns(self) -> float:
        """Latency before the first fragment completes."""
        return self.first_fragment_done_ns


class PipelinedExecutor:
    """Execute a mapped PDG on the simulated multi-GPU machine."""

    def __init__(
        self,
        pdg: PartitionDependenceGraph,
        assignment: Sequence[int],
        topology: GpuTopology,
        simulator: KernelSimulator,
        measurements: Sequence[KernelMeasurement],
        peer_to_peer: bool = True,
    ) -> None:
        if len(assignment) != len(pdg):
            raise ValueError("assignment length must match partition count")
        if len(measurements) != len(pdg):
            raise ValueError("one kernel measurement per partition required")
        if max(assignment, default=0) >= topology.num_gpus:
            raise ValueError("assignment references a GPU outside the topology")
        self.pdg = pdg
        self.assignment = list(assignment)
        self.topology = topology
        self.simulator = simulator
        self.measurements = list(measurements)
        self.peer_to_peer = peer_to_peer

    # ------------------------------------------------------------------
    def run(self, plan: Optional[FragmentPlan] = None) -> ExecutionReport:
        """Simulate ``plan`` and report timing."""
        plan = plan or FragmentPlan(
            num_fragments=32,
            executions_per_fragment=self.pdg.executions_per_fragment,
        )
        order = self.pdg.topological_order()
        kernel_ns = [
            self.simulator.fragment_time(
                self.measurements[pid], plan.executions_per_fragment
            )
            for pid in range(len(self.pdg))
        ]

        gpu_timeline = [_Timeline() for _ in range(self.topology.num_gpus)]
        link_timeline = [_Timeline() for _ in range(self.topology.num_links)]
        gpu_busy = [0.0] * self.topology.num_gpus
        link_busy = [0.0] * self.topology.num_links
        done: Dict[Tuple[int, int], float] = {}
        makespan = 0.0
        first_fragment_done = 0.0

        links = self.topology.links
        scale = plan.executions_per_fragment / self.pdg.executions_per_fragment

        def transfer(route: List[int], nbytes: float, ready: float) -> float:
            nonlocal makespan
            if not route or nbytes <= 0:
                return ready
            arrival = book_route_transfer(
                links, link_timeline, link_busy, route, nbytes, ready
            )
            makespan = max(makespan, arrival)
            return arrival

        # broadcast groups targeting each partition
        groups_for: Dict[int, List[int]] = {}
        for g_idx, group in enumerate(self.pdg.broadcasts):
            for dst in group.destinations:
                groups_for.setdefault(dst, []).append(g_idx)
        bcast_arrival: Dict[Tuple[int, int, int], float] = {}

        def point_to_point(src_gpu: int, dst_gpu: int, nbytes: float,
                           ready: float) -> float:
            if self.peer_to_peer:
                return transfer(self.topology.route(src_gpu, dst_gpu), nbytes, ready)
            staged = transfer(self.topology.route_to_host(src_gpu), nbytes, ready)
            return transfer(self.topology.route_from_host(dst_gpu), nbytes, staged)

        for frag in range(plan.num_fragments):
            for pid in order:
                gpu = self.assignment[pid]
                inputs_ready = 0.0
                # primary input from host
                host_in, host_out = self.pdg.host_fragment_bytes(pid)
                if host_in:
                    arrival = transfer(
                        self.topology.route_from_host(gpu), host_in * scale, 0.0
                    )
                    inputs_ready = max(inputs_ready, arrival)
                # inter-partition inputs (private edges)
                for src in self.pdg.predecessors(pid):
                    nbytes = self.pdg.edge_fragment_bytes((src, pid)) * scale
                    src_gpu = self.assignment[src]
                    src_done = done[(src, frag)]
                    if src_gpu == gpu:
                        inputs_ready = max(inputs_ready, src_done)
                    else:
                        arrival = point_to_point(src_gpu, gpu, nbytes, src_done)
                        inputs_ready = max(inputs_ready, arrival)
                # broadcast inputs: one copy per destination GPU per frag
                for g_idx in groups_for.get(pid, ()):
                    group = self.pdg.broadcasts[g_idx]
                    src_gpu = self.assignment[group.src]
                    src_done = done[(group.src, frag)]
                    if src_gpu == gpu:
                        inputs_ready = max(inputs_ready, src_done)
                        continue
                    key = (g_idx, gpu, frag)
                    if key not in bcast_arrival:
                        nbytes = (
                            group.bytes_per_execution
                            * self.pdg.executions_per_fragment * scale
                        )
                        bcast_arrival[key] = point_to_point(
                            src_gpu, gpu, nbytes, src_done
                        )
                    inputs_ready = max(inputs_ready, bcast_arrival[key])
                start = gpu_timeline[gpu].earliest_slot(
                    inputs_ready, kernel_ns[pid]
                )
                finish = start + kernel_ns[pid]
                gpu_timeline[gpu].book(start, finish)
                gpu_busy[gpu] += kernel_ns[pid]
                done[(pid, frag)] = finish
                makespan = max(makespan, finish)
                if host_out:
                    arrival = transfer(
                        self.topology.route_to_host(gpu), host_out * scale, finish
                    )
                    makespan = max(makespan, arrival)
                # feedback (delay-edge) traffic: occupies links but the
                # consumer reads a previous iteration's data, so nothing
                # waits on the arrival
                for (src, dst), nbytes in self.pdg.feedback_edges.items():
                    if src != pid:
                        continue
                    dst_gpu = self.assignment[dst]
                    if dst_gpu != gpu:
                        point_to_point(
                            gpu, dst_gpu,
                            nbytes * self.pdg.executions_per_fragment * scale,
                            finish,
                        )
            if frag == 0:
                first_fragment_done = makespan

        return ExecutionReport(
            makespan_ns=makespan,
            num_fragments=plan.num_fragments,
            executions_per_fragment=plan.executions_per_fragment,
            gpu_busy_ns=tuple(gpu_busy),
            link_busy_ns=tuple(link_busy),
            first_fragment_done_ns=first_fragment_done,
        )


class _Timeline:
    """Busy intervals of a serial resource with gap (backfill) search."""

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []  # sorted, disjoint

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= ready such that [start, start+duration) is free."""
        start = ready
        for lo, hi in self._intervals:
            if start + duration <= lo:
                break
            if start < hi:
                start = hi
        return start

    def book(self, start: float, end: float) -> None:
        import bisect

        index = bisect.bisect_left(self._intervals, (start, end))
        self._intervals.insert(index, (start, end))


def book_route_transfer(
    links,
    link_timeline: Sequence[_Timeline],
    link_busy: List[float],
    route: Sequence[int],
    nbytes: float,
    ready: float,
    on_book=None,
) -> float:
    """Book one transfer across ``route``; returns its arrival time.

    Links are *bandwidth* resources: the transfer occupies each link on
    its route for ``bytes / BW_l`` under that link's own spec
    (heterogeneous platforms have per-link bandwidths); the per-hop
    setup latency delays the arrival but does not block other transfers
    (asynchronous DMA engines overlap setup with other traffic).  This
    matches the ILP's per-beat cost ``Lat_l + D_l / BW_l`` with the
    latency amortized into pipeline fill.

    The caller guarantees a non-empty route and positive bytes, and
    accounts the arrival into its makespan.  ``on_book(link, start,
    end)`` observes every per-link booking — the trace recorder's event
    hook, which is how executor and recorder share one cost model.
    """
    occupancy = [
        nbytes / links[l].spec.bandwidth_bytes_per_ns for l in route
    ]
    # find the earliest slot free on *all* route links (fixpoint)
    start = ready
    changed = True
    while changed:
        changed = False
        for link, occ in zip(route, occupancy):
            slot = link_timeline[link].earliest_slot(start, occ)
            if slot > start:
                start = slot
                changed = True
    for link, occ in zip(route, occupancy):
        link_timeline[link].book(start, start + occ)
        link_busy[link] += occ
        if on_book is not None:
            on_book(link, start, start + occ)
    return start + max(occupancy) + sum(
        links[l].spec.latency_ns for l in route
    )


def measure_partitions(
    pdg: PartitionDependenceGraph,
    simulator: KernelSimulator,
    engine,
) -> List[KernelMeasurement]:
    """Simulator measurements for each PDG partition, using the kernel
    parameters the PEE selected (static-discrepancy minimization)."""
    out: List[KernelMeasurement] = []
    for node in pdg.nodes:
        estimate = engine.estimate(node.members)
        out.append(
            simulator.measure(
                pdg.graph,
                node.members,
                estimate.config,
                estimate.memory,
                estimate.spilled_bytes,
            )
        )
    return out
