"""Execution tracing: turn a pipelined run into an inspectable timeline.

``TracingExecutor`` wraps :class:`PipelinedExecutor` and records every
kernel execution and transfer as :class:`TraceEvent` items.  The trace
can be exported as Chrome-trace JSON (load it at ``chrome://tracing`` or
in Perfetto) — each GPU and each PCIe link becomes a row, which makes
pipeline bubbles and link contention visible at a glance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.simulator import KernelMeasurement, KernelSimulator
from repro.gpu.topology import GpuTopology
from repro.partition.pdg import PartitionDependenceGraph
from repro.runtime.executor import (
    ExecutionReport,
    PipelinedExecutor,
    _Timeline,
    book_route_transfer,
)
from repro.runtime.fragments import FragmentPlan


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled item: a kernel on a GPU or a transfer on a link."""

    kind: str  # "kernel" | "transfer"
    resource: str  # "gpu0" | link name
    label: str
    start_ns: float
    end_ns: float
    fragment: int

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


def record_trace(
    pdg: PartitionDependenceGraph,
    assignment: Sequence[int],
    topology: GpuTopology,
    simulator: KernelSimulator,
    measurements: Sequence[KernelMeasurement],
    plan: Optional[FragmentPlan] = None,
    peer_to_peer: bool = True,
) -> Tuple[ExecutionReport, List[TraceEvent]]:
    """Run the pipelined schedule and return (report, trace events).

    The recorder replays :meth:`PipelinedExecutor.run`'s exact booking
    logic with event capture, then cross-checks its makespan against the
    real executor — any divergence raises, so the trace is guaranteed to
    be the schedule that was actually simulated.
    """
    executor = PipelinedExecutor(
        pdg, assignment, topology, simulator, measurements, peer_to_peer
    )
    plan = plan or FragmentPlan(
        num_fragments=32, executions_per_fragment=pdg.executions_per_fragment
    )
    events: List[TraceEvent] = []
    report = executor.run(plan)
    recorded = _Recorder(executor, plan, events).execute()
    if abs(recorded.makespan_ns - report.makespan_ns) > 1e-6:
        raise RuntimeError("trace recorder diverged from executor schedule")
    return report, events


class _Recorder:
    """Replays PipelinedExecutor.run's exact logic with event capture."""

    def __init__(self, ex: PipelinedExecutor, plan: FragmentPlan,
                 sink: List[TraceEvent]) -> None:
        self.ex = ex
        self.plan = plan
        self.sink = sink

    def execute(self) -> ExecutionReport:
        ex, plan = self.ex, self.plan
        order = ex.pdg.topological_order()
        kernel_ns = [
            ex.simulator.fragment_time(
                ex.measurements[pid], plan.executions_per_fragment
            )
            for pid in range(len(ex.pdg))
        ]
        gpu_tl = [_Timeline() for _ in range(ex.topology.num_gpus)]
        link_tl = [_Timeline() for _ in range(ex.topology.num_links)]
        gpu_busy = [0.0] * ex.topology.num_gpus
        link_busy = [0.0] * ex.topology.num_links
        done: Dict[Tuple[int, int], float] = {}
        makespan = 0.0
        first_done = 0.0
        links = ex.topology.links
        scale = plan.executions_per_fragment / ex.pdg.executions_per_fragment
        frag_ref = [0]

        def transfer(route, nbytes, ready, label):
            nonlocal makespan
            if not route or nbytes <= 0:
                return ready

            def record(link, start, end):
                self.sink.append(TraceEvent(
                    "transfer", links[link].name, label,
                    start, end, frag_ref[0],
                ))

            arrival = book_route_transfer(
                links, link_tl, link_busy, route, nbytes, ready,
                on_book=record,
            )
            makespan = max(makespan, arrival)
            return arrival

        def p2p(src_gpu, dst_gpu, nbytes, ready, label):
            if ex.peer_to_peer:
                return transfer(
                    ex.topology.route(src_gpu, dst_gpu), nbytes, ready, label
                )
            staged = transfer(
                ex.topology.route_to_host(src_gpu), nbytes, ready, label + ":D2H"
            )
            return transfer(
                ex.topology.route_from_host(dst_gpu), nbytes, staged,
                label + ":H2D",
            )

        groups_for: Dict[int, List[int]] = {}
        for g_idx, group in enumerate(ex.pdg.broadcasts):
            for dst in group.destinations:
                groups_for.setdefault(dst, []).append(g_idx)
        bcast_arrival: Dict[Tuple[int, int, int], float] = {}

        for frag in range(plan.num_fragments):
            frag_ref[0] = frag
            for pid in order:
                gpu = ex.assignment[pid]
                ready = 0.0
                host_in, host_out = ex.pdg.host_fragment_bytes(pid)
                if host_in:
                    ready = max(ready, transfer(
                        ex.topology.route_from_host(gpu), host_in * scale,
                        0.0, f"host->P{pid}",
                    ))
                for src in ex.pdg.predecessors(pid):
                    nbytes = ex.pdg.edge_fragment_bytes((src, pid)) * scale
                    sg, sd = ex.assignment[src], done[(src, frag)]
                    if sg == gpu:
                        ready = max(ready, sd)
                    else:
                        ready = max(ready, p2p(
                            sg, gpu, nbytes, sd, f"P{src}->P{pid}"
                        ))
                for g_idx in groups_for.get(pid, ()):
                    group = ex.pdg.broadcasts[g_idx]
                    sg = ex.assignment[group.src]
                    sd = done[(group.src, frag)]
                    if sg == gpu:
                        ready = max(ready, sd)
                        continue
                    key = (g_idx, gpu, frag)
                    if key not in bcast_arrival:
                        nbytes = (
                            group.bytes_per_execution
                            * ex.pdg.executions_per_fragment * scale
                        )
                        bcast_arrival[key] = p2p(
                            sg, gpu, nbytes, sd, f"bcast{g_idx}->gpu{gpu}"
                        )
                    ready = max(ready, bcast_arrival[key])
                start = gpu_tl[gpu].earliest_slot(ready, kernel_ns[pid])
                finish = start + kernel_ns[pid]
                gpu_tl[gpu].book(start, finish)
                gpu_busy[gpu] += kernel_ns[pid]
                done[(pid, frag)] = finish
                makespan = max(makespan, finish)
                self.sink.append(TraceEvent(
                    "kernel", f"gpu{gpu}", f"P{pid}", start, finish, frag
                ))
                if host_out:
                    arrival = transfer(
                        ex.topology.route_to_host(gpu), host_out * scale,
                        finish, f"P{pid}->host",
                    )
                    makespan = max(makespan, arrival)
                for (src, dst), nbytes in ex.pdg.feedback_edges.items():
                    if src != pid:
                        continue
                    dst_gpu = ex.assignment[dst]
                    if dst_gpu != gpu:
                        p2p(
                            gpu, dst_gpu,
                            nbytes * ex.pdg.executions_per_fragment * scale,
                            finish, f"fb P{src}->P{dst}",
                        )
            if frag == 0:
                first_done = makespan

        return ExecutionReport(
            makespan_ns=makespan,
            num_fragments=plan.num_fragments,
            executions_per_fragment=plan.executions_per_fragment,
            gpu_busy_ns=tuple(gpu_busy),
            link_busy_ns=tuple(link_busy),
            first_fragment_done_ns=first_done,
        )


def to_chrome_trace(events: Sequence[TraceEvent]) -> str:
    """Export events as Chrome-trace JSON (microsecond timestamps)."""
    rows = sorted({e.resource for e in events})
    tids = {name: idx for idx, name in enumerate(rows)}
    payload = []
    for event in events:
        payload.append(
            {
                "name": event.label,
                "cat": event.kind,
                "ph": "X",
                "ts": event.start_ns / 1e3,
                "dur": event.duration_ns / 1e3,
                "pid": 0,
                "tid": tids[event.resource],
                "args": {"fragment": event.fragment},
            }
        )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": name},
        }
        for name, tid in tids.items()
    ]
    return json.dumps({"traceEvents": meta + payload})
