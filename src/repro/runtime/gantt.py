"""ASCII Gantt rendering of execution traces.

Turns the events from :func:`repro.runtime.trace.record_trace` into a
terminal timeline — one row per GPU/link, time left to right — so the
pipelined overlap of Figure 3.5 is visible without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.runtime.trace import TraceEvent


def render_gantt(
    events: Sequence[TraceEvent],
    width: int = 100,
    until_ns: Optional[float] = None,
    kinds: Sequence[str] = ("kernel", "transfer"),
    max_rows: int = 24,
) -> str:
    """Render ``events`` as an ASCII Gantt chart.

    Each row is one resource; each cell is ``until_ns / width``
    nanoseconds.  Kernel cells show the fragment number (mod 10) so the
    pipelining across fragments is visible; transfer cells show ``#``.
    """
    chosen = [e for e in events if e.kind in kinds]
    if not chosen:
        return "(no events)"
    horizon = until_ns if until_ns is not None else max(e.end_ns for e in chosen)
    if horizon <= 0:
        raise ValueError("empty time horizon")
    rows: Dict[str, List[str]] = {}
    for event in chosen:
        if event.start_ns >= horizon:
            continue
        row = rows.setdefault(event.resource, [" "] * width)
        lo = int(event.start_ns / horizon * width)
        hi = max(lo + 1, int(min(event.end_ns, horizon) / horizon * width))
        mark = str(event.fragment % 10) if event.kind == "kernel" else "#"
        for cell in range(lo, min(hi, width)):
            row[cell] = mark
    label_width = max(len(name) for name in rows)
    lines = []
    for name in sorted(rows)[:max_rows]:
        lines.append(f"{name.rjust(label_width)} |{''.join(rows[name])}|")
    scale = f"0 ns{' ' * (label_width + width - len(f'{horizon:.0f} ns') - 2)}{horizon:.0f} ns"
    lines.append(scale)
    return "\n".join(lines)


def gpu_rows_only(events: Sequence[TraceEvent]) -> List[TraceEvent]:
    """Convenience filter: kernel events only."""
    return [e for e in events if e.kind == "kernel"]
