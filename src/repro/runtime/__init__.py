"""Pipelined multi-GPU execution (Section 3.2.3, Figure 3.5).

The input stream is divided into ``N`` fragments; per GPU, asynchronous
streams overlap kernel execution with device-to-host / host-to-device /
peer-to-peer transfers so inter-GPU latency hides behind computation.
:mod:`repro.runtime.executor` simulates this with GPUs and directed PCIe
links as serial resources and reports makespan, steady-state beat, and
throughput — the "real measurements" of the evaluation.
"""

from repro.runtime.executor import ExecutionReport, PipelinedExecutor
from repro.runtime.fragments import FragmentPlan
from repro.runtime.throughput import speedup

__all__ = [
    "ExecutionReport",
    "FragmentPlan",
    "PipelinedExecutor",
    "speedup",
]
