"""Input-stream fragmentation (Section 3.2.3).

The runtime divides the application's input stream into ``N`` fragments
of ``executions_per_fragment`` steady-state executions each; fragments
flow through the partition pipeline independently, which is what lets
transfers overlap kernel execution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FragmentPlan:
    """How the input stream is chopped for pipelined execution."""

    num_fragments: int
    executions_per_fragment: int

    def __post_init__(self) -> None:
        if self.num_fragments < 1:
            raise ValueError("need at least one fragment")
        if self.executions_per_fragment < 1:
            raise ValueError("fragments must carry at least one execution")

    @property
    def total_executions(self) -> int:
        return self.num_fragments * self.executions_per_fragment


#: Default plan used by the experiments: 32 fragments of 128 executions.
DEFAULT_PLAN = FragmentPlan(num_fragments=32, executions_per_fragment=128)
