"""Throughput and speedup helpers."""

from __future__ import annotations

from repro.runtime.executor import ExecutionReport


def speedup(candidate: ExecutionReport, baseline: ExecutionReport) -> float:
    """Throughput ratio candidate / baseline.

    Both reports must process the same number of executions per fragment
    for the ratio to be meaningful; total executions may differ (the
    throughput metric normalizes).
    """
    return candidate.throughput / baseline.throughput


def utilization(report: ExecutionReport, gpu: int) -> float:
    """Busy fraction of ``gpu`` over the makespan."""
    if report.makespan_ns <= 0:
        return 0.0
    return report.gpu_busy_ns[gpu] / report.makespan_ns
