"""Seedable platform-degradation scenarios and the repair-vs-resolve harness.

The repair solver (:mod:`repro.mapping.repair`) claims three things: it
never returns an invalid assignment, its reported objective is
bit-exact, and it never answers worse than solving greedily from
scratch.  Hand-picked deltas would not stress those claims; this module
generates *degradation scripts* — seeded sequences of kill / throttle /
slow / restore platform events plus arrive / depart workload events —
over the named-platform catalog, and replays them step by step, at each
step repairing the previous step's mapping *and* solving from scratch,
so the repair-vs-resolve quality gap is measured rather than assumed.

Three consumers:

* :func:`replay_scenario` — the diffcheck-style harness: validity,
  bit-exactness, and the greedy floor are asserted on every step, and
  the per-step gap ``repaired_tmax / resolved_tmax`` is recorded;
* :func:`repair_check` — the ``make remap-check`` gate: kill each GPU of
  every catalog platform under three pinned corpus graphs and assert the
  repair guarantees hold;
* :func:`scenario_request_lines` — renders a scenario as JSONL ``remap``
  request lines for :func:`repro.service.serve_stream` replay.

Like every generator in :mod:`repro.synth`, scenarios are deterministic
functions of ``(platform, seed, length)`` via :class:`SynthRng` — the
same script on every machine, forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.delta import (
    DegradedTopology,
    PlatformDelta,
    apply_deltas,
    relative_gpu_map,
)
from repro.gpu.platforms import PLATFORM_NAMES, build_platform
from repro.synth.rng import SynthRng

#: scenario event vocabulary: platform events wrap a
#: :class:`~repro.gpu.delta.PlatformDelta`; workload events name a graph
EVENT_KINDS: Tuple[str, ...] = (
    "kill", "throttle", "slow", "restore", "arrive", "depart",
)

#: the workload every scenario starts with (a tiny pinned synth graph)
DEFAULT_WORKLOAD: Tuple[Tuple[str, int], ...] = (
    ("synth:pipeline;depth=4", 1),
)

__all__ = [
    "DEFAULT_WORKLOAD",
    "EVENT_KINDS",
    "RepairCheckReport",
    "Scenario",
    "ScenarioEvent",
    "ScenarioReport",
    "StepOutcome",
    "generate_scenario",
    "repair_check",
    "replay_scenario",
    "scenario_request_lines",
]

#: graphs the ``arrive`` event draws from (TINY_CORPUS as app names)
_ARRIVALS: Tuple[Tuple[str, int], ...] = (
    ("synth:splitjoin;nest=1;width=2", 1),
    ("synth:dag;layers=3;width=2", 1),
    ("synth:pipeline;depth=4", 2),
)

_THROTTLE_FACTORS = (0.5, 0.25)
_SLOW_FACTORS = (2.0, 4.0)


@dataclass(frozen=True)
class ScenarioEvent:
    """One step of a degradation script."""

    #: one of :data:`EVENT_KINDS`
    kind: str
    #: the platform delta (kill/throttle/slow/restore events)
    delta: Optional[PlatformDelta] = None
    #: arriving/departing app name (workload events)
    app: Optional[str] = None
    #: the app's seed argument (workload events)
    n: Optional[int] = None

    def describe(self) -> str:
        """A compact human-readable rendering of the event."""
        if self.delta is not None:
            d = self.delta
            if d.kind == "kill-gpu":
                return f"kill gpu{d.gpu}"
            if d.kind == "throttle-link":
                return f"throttle {d.link} x{d.factor}"
            if d.kind == "slow-gpu":
                return f"slow gpu{d.gpu} /{d.factor}"
            return "restore"
        return f"{self.kind} {self.app}@{self.n}"


@dataclass(frozen=True)
class Scenario:
    """A seeded degradation script over one named platform."""

    platform: str
    seed: int
    events: Tuple[ScenarioEvent, ...]
    #: graphs already deployed when the script starts
    workload: Tuple[Tuple[str, int], ...] = DEFAULT_WORKLOAD


def generate_scenario(
    platform: str, seed: int, length: int = 4
) -> Scenario:
    """Generate a legal degradation script, deterministic in its inputs.

    Every script is *simulatable by construction*: a kill always targets
    a currently-alive GPU and never the last one, ``slow`` only appears
    on platforms carrying per-leaf GPU specs, ``restore`` only after a
    platform delta, ``depart`` only when an earlier ``arrive`` left
    something to remove.

    >>> s = generate_scenario("two-island", seed=3)
    >>> s == generate_scenario("two-island", seed=3)
    True
    >>> len(s.events)
    4
    """
    base = build_platform(platform)
    rng = SynthRng(f"scenario|{platform}|{seed}|{length}")
    alive = set(range(base.num_gpus))
    edges = sorted(child for child, _parent in base.tree_edges())
    degraded = False  # any platform delta since the last restore
    arrivals: List[Tuple[str, int]] = []
    events: List[ScenarioEvent] = []
    for _step in range(length):
        feasible = ["throttle", "arrive"]
        if len(alive) > 1:
            feasible.append("kill")
        if base.gpu_specs is not None:
            feasible.append("slow")
        if degraded:
            feasible.append("restore")
        if arrivals:
            feasible.append("depart")
        kind = rng.choice(sorted(feasible))
        if kind == "kill":
            gpu = rng.choice(sorted(alive))
            alive.discard(gpu)
            degraded = True
            events.append(
                ScenarioEvent(kind="kill", delta=PlatformDelta.kill_gpu(gpu))
            )
        elif kind == "throttle":
            child = rng.choice(edges)
            factor = rng.choice(_THROTTLE_FACTORS)
            degraded = True
            events.append(
                ScenarioEvent(
                    kind="throttle",
                    delta=PlatformDelta.throttle_link(child, factor),
                )
            )
        elif kind == "slow":
            gpu = rng.choice(sorted(alive))
            factor = rng.choice(_SLOW_FACTORS)
            degraded = True
            events.append(
                ScenarioEvent(
                    kind="slow", delta=PlatformDelta.slow_gpu(gpu, factor)
                )
            )
        elif kind == "restore":
            alive = set(range(base.num_gpus))
            degraded = False
            events.append(
                ScenarioEvent(kind="restore", delta=PlatformDelta.restore())
            )
        elif kind == "arrive":
            app, n = rng.choice(_ARRIVALS)
            arrivals.append((app, n))
            events.append(ScenarioEvent(kind="arrive", app=app, n=n))
        else:  # depart
            app, n = arrivals.pop(rng.randint(0, len(arrivals) - 1))
            events.append(ScenarioEvent(kind="depart", app=app, n=n))
    return Scenario(platform=platform, seed=seed, events=tuple(events))


# ----------------------------------------------------------------------
# replay harness
# ----------------------------------------------------------------------
@dataclass
class StepOutcome:
    """Repair-vs-resolve numbers for one graph at one scenario step."""

    app: str
    n: int
    repaired_tmax: float
    resolved_tmax: float
    greedy_tmax: float
    migrated: int
    evicted: int
    fallback: bool

    @property
    def gap(self) -> float:
        """``repaired_tmax / resolved_tmax`` (1.0 = repair matched)."""
        if self.resolved_tmax <= 0:
            return 1.0
        return self.repaired_tmax / self.resolved_tmax


@dataclass
class ScenarioReport:
    """Replay result: per-step outcomes plus invariant violations."""

    platform: str
    seed: int
    steps: List[Tuple[str, List[StepOutcome]]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    skips: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def worst_gap(self) -> float:
        gaps = [
            out.gap for _event, outs in self.steps for out in outs
        ]
        return max(gaps, default=1.0)

    def render(self) -> str:
        lines = [f"scenario {self.platform} seed={self.seed}:"]
        for event, outs in self.steps:
            summary = ", ".join(
                f"{out.app}@{out.n} gap={out.gap:.3f}"
                f"{' (fallback)' if out.fallback else ''}"
                for out in outs
            ) or "no active workload"
            lines.append(f"  {event}: {summary}")
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        lines.append(
            f"  {len(self.steps)} steps, worst gap {self.worst_gap:.3f}, "
            f"{status}"
        )
        return "\n".join(lines)


def _front_half(app: str, n: int, cache=None):
    """Profile/partition/PDG for one workload (platform-independent)."""
    from repro.apps import build_app
    from repro.flow import partition_stage, pdg_stage, profile_stage

    graph = build_app(app, n)
    engine = profile_stage(graph, cache=cache)
    partitions, partitioning = partition_stage(graph, engine, cache=cache)
    pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
    return pdg


def _check_repair(
    report: ScenarioReport,
    label: str,
    problem,
    repair,
) -> None:
    """The three repair guarantees, asserted on one answer."""
    assignment = repair.mapping.assignment
    if len(assignment) != problem.num_partitions:
        report.violations.append(
            f"{label}: assignment length {len(assignment)} != "
            f"{problem.num_partitions}"
        )
        return
    bad = [g for g in assignment if not (0 <= g < problem.num_gpus)]
    if bad:
        report.violations.append(f"{label}: GPU ids out of range: {bad}")
        return
    rescored = problem.tmax(assignment)
    if repair.mapping.tmax != rescored:
        report.violations.append(
            f"{label}: reported tmax {repair.mapping.tmax!r} != "
            f"evaluator {rescored!r} (bit-exactness broken)"
        )
    if repair.mapping.tmax > repair.greedy_tmax:
        report.violations.append(
            f"{label}: repair {repair.mapping.tmax:.6g} worse than "
            f"greedy-from-scratch {repair.greedy_tmax:.6g}"
        )


def replay_scenario(
    scenario: Scenario,
    budget: str = "instant",
    cache=None,
) -> ScenarioReport:
    """Replay a degradation script, repairing at every platform step.

    Each platform event derives the cumulative degraded machine; every
    active graph is repaired from *its previous step's assignment*
    (carried across GPU renumbering with
    :func:`repro.gpu.delta.relative_gpu_map`) **and** re-solved from
    scratch with the portfolio under the same budget.  Validity,
    bit-exactness, and the greedy floor are asserted on every repair;
    the repair-vs-resolve gap is recorded per step.  Workload events
    (``arrive``/``depart``) solve the newcomer from scratch on the
    *current* degraded machine / drop the leaver — graphs map
    independently, so neighbors need no repair.

    >>> report = replay_scenario(generate_scenario("host-star", seed=1))
    >>> report.ok
    True
    """
    from repro.mapping.problem import build_mapping_problem
    from repro.mapping.repair import solve_repair
    from repro.service.portfolio import solve_portfolio

    base = build_platform(scenario.platform)
    report = ScenarioReport(platform=scenario.platform, seed=scenario.seed)

    pdgs: Dict[Tuple[str, int], object] = {}

    def pdg_for(app: str, n: int):
        if (app, n) not in pdgs:
            pdgs[(app, n)] = _front_half(app, n, cache=cache)
        return pdgs[(app, n)]

    def solve_on(pdg, degraded: Optional[DegradedTopology]):
        topology = degraded.topology if degraded is not None else base
        problem = build_mapping_problem(
            pdg, topology.num_gpus, topology=topology
        )
        answer = solve_portfolio(
            problem, budget=budget, topo_order=pdg.topological_order()
        )
        return problem, answer.mapping

    # deploy the initial workload on the pristine machine
    assignments: Dict[Tuple[str, int], Tuple[int, ...]] = {}
    for app, n in scenario.workload:
        _problem, mapping = solve_on(pdg_for(app, n), None)
        assignments[(app, n)] = mapping.assignment

    deltas: List[PlatformDelta] = []
    prev: Optional[DegradedTopology] = None
    for event in scenario.events:
        outcomes: List[StepOutcome] = []
        if event.delta is not None:
            deltas.append(event.delta)
            cur = apply_deltas(base, deltas)
            gpu_map = (
                relative_gpu_map(prev, cur) if prev is not None
                else cur.gpu_map
            )
            for (app, n), old in sorted(assignments.items()):
                pdg = pdg_for(app, n)
                problem = build_mapping_problem(
                    pdg, cur.topology.num_gpus, topology=cur.topology
                )
                repair = solve_repair(
                    problem, old, gpu_map=gpu_map, budget=budget,
                    topo_order=pdg.topological_order(),
                )
                resolved = solve_portfolio(
                    problem, budget=budget,
                    topo_order=pdg.topological_order(),
                ).mapping
                label = f"{event.describe()} / {app}@{n}"
                _check_repair(report, label, problem, repair)
                assignments[(app, n)] = repair.mapping.assignment
                outcomes.append(
                    StepOutcome(
                        app=app, n=n,
                        repaired_tmax=repair.mapping.tmax,
                        resolved_tmax=resolved.tmax,
                        greedy_tmax=repair.greedy_tmax,
                        migrated=len(repair.migrated),
                        evicted=len(repair.evicted),
                        fallback=repair.fallback,
                    )
                )
            prev = cur
        elif event.kind == "arrive":
            key = (event.app, event.n)
            if key in assignments:
                report.skips.append(
                    f"{event.describe()}: already deployed, skipped"
                )
            else:
                _problem, mapping = solve_on(pdg_for(*key), prev)
                assignments[key] = mapping.assignment
        else:  # depart
            assignments.pop((event.app, event.n), None)
        report.steps.append((event.describe(), outcomes))
    return report


# ----------------------------------------------------------------------
# the make remap-check gate
# ----------------------------------------------------------------------
@dataclass
class RepairCheckReport:
    """Aggregated kill-GPU repair results across the platform catalog."""

    checks: int = 0
    fallbacks: int = 0
    violations: List[str] = field(default_factory=list)
    worst_gap: float = 1.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = (
            "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        )
        lines = [
            f"remap-check: {self.checks} kill-GPU repairs across "
            f"{len(PLATFORM_NAMES)} platforms, "
            f"{self.fallbacks} fallbacks, "
            f"worst repair/greedy gap {self.worst_gap:.3f}, {status}"
        ]
        lines.extend(f"  VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)


def repair_check(
    budget: str = "instant", cache=None
) -> RepairCheckReport:
    """Kill every GPU of every catalog platform under pinned graphs.

    For each (platform, pinned graph, GPU) triple: solve the pristine
    baseline, kill the GPU, repair — then assert the repaired mapping is
    valid, bit-exact under the shared evaluator, and never worse than
    greedy-from-scratch.  This is the ``make remap-check`` gate.

    >>> report = repair_check()  # doctest: +SKIP
    >>> report.ok                # doctest: +SKIP
    True
    """
    from repro.mapping.problem import build_mapping_problem
    from repro.mapping.repair import solve_repair
    from repro.service.portfolio import solve_portfolio

    report = RepairCheckReport()
    pdgs = {
        (app, n): _front_half(app, n, cache=cache)
        for app, n in DEFAULT_WORKLOAD + _ARRIVALS[:2]
    }
    for platform in PLATFORM_NAMES:
        base = build_platform(platform)
        for (app, n), pdg in sorted(pdgs.items()):
            base_problem = build_mapping_problem(
                pdg, base.num_gpus, topology=base
            )
            baseline = solve_portfolio(
                base_problem, budget=budget,
                topo_order=pdg.topological_order(),
            ).mapping
            for gpu in range(base.num_gpus):
                hit = apply_deltas(base, [PlatformDelta.kill_gpu(gpu)])
                problem = build_mapping_problem(
                    pdg, hit.topology.num_gpus, topology=hit.topology
                )
                repair = solve_repair(
                    problem, baseline.assignment, gpu_map=hit.gpu_map,
                    budget=budget, topo_order=pdg.topological_order(),
                )
                label = f"{platform} kill gpu{gpu} / {app}@{n}"
                scratch = ScenarioReport(platform=platform, seed=0)
                _check_repair(scratch, label, problem, repair)
                report.violations.extend(scratch.violations)
                report.checks += 1
                if repair.fallback:
                    report.fallbacks += 1
                if repair.greedy_tmax > 0:
                    report.worst_gap = max(
                        report.worst_gap,
                        repair.mapping.tmax / repair.greedy_tmax,
                    )
    return report


# ----------------------------------------------------------------------
# serve_stream replay
# ----------------------------------------------------------------------
def scenario_request_lines(
    scenario: Scenario, budget: str = "instant"
) -> List[str]:
    """Render a scenario as JSONL request lines for ``serve_stream``.

    Platform events become ``remap`` lines carrying the *cumulative*
    delta list for the scenario's primary workload (the service seeds
    each repair from the pristine baseline it solves — the stream
    protocol is stateless, so no old assignment rides along); ``arrive``
    events become plain solve lines for the newcomer on the pristine
    platform; ``depart`` events emit nothing.

    >>> lines = scenario_request_lines(generate_scenario("host-star", 1))
    >>> all(line.startswith("{") for line in lines)
    True
    """
    import json

    app, n = scenario.workload[0]
    deltas: List[PlatformDelta] = []
    lines: List[str] = []
    for event in scenario.events:
        if event.delta is not None:
            deltas.append(event.delta)
            payload = {
                "remap": {
                    "app": app,
                    "n": n,
                    "platform": scenario.platform,
                    "budget": budget,
                    "deltas": [d.to_json() for d in deltas],
                }
            }
            lines.append(json.dumps(payload, sort_keys=True))
        elif event.kind == "arrive":
            lines.append(json.dumps({
                "app": event.app, "n": event.n,
                "platform": scenario.platform, "budget": budget,
            }, sort_keys=True))
    return lines
