"""Differential solver-correctness harness.

Hand-picked benchmarks hide solver pathologies; generated corpora expose
them — but only if there is an oracle.  Lacking ground truth, we use the
solvers against each other: greedy (LPT and round-robin), the MILP
backend, and the from-scratch branch-and-bound all solve the *same*
:class:`~repro.mapping.problem.MappingProblem` built from one generated
instance, and the harness checks cross-solver invariants that must hold
if each solver is correct:

* every solver returns a *valid* assignment (one GPU per partition, all
  GPUs in range) whose reported ``tmax`` matches the shared evaluator;
* the partitions are a true partition of the graph's nodes (disjoint
  cover) and the graph itself passes structural validation;
* an *optimal* solve is never beaten: ``tmax(MILP) <= tmax(greedy)``
  and ``tmax(B&B) <= tmax(any heuristic)`` (within the MILP gap);
* two independent optimal solvers agree: ``tmax(MILP) == tmax(B&B)``
  within the configured relative gap.

Comparisons against a solver that did *not* prove optimality (MILP hit
its work limit, B&B exhausted its node budget) are recorded as
*skips*, not violations — a limit hit is not a wrong answer.  Since the
:class:`~repro.mapping.SolveBudget` refactor the MILP runs under a
deterministic node cap by default; wall-clock limits
(``milp_time_limit_s``) are an explicit opt-in for callers that need
bounded latency more than reproducibility (the wide slow-corpus sweeps
pass one).

>>> from repro.synth.families import generate
>>> report = diffcheck_graph(generate("splitjoin", 7))
>>> report.ok, report.violations
(True, [])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.platforms import build_platform
from repro.gpu.specs import GpuSpec, M2090
from repro.gpu.topology import GpuTopology
from repro.graph.stream_graph import StreamGraph
from repro.graph.validate import collect_problems
from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import lpt_mapping, round_robin_mapping
from repro.mapping.problem import MappingProblem, build_mapping_problem
from repro.mapping.result import MappingResult
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.milp_model import MODEL_CACHE
from repro.mapping.solver_milp import solve_milp
from repro.synth.corpus import PINNED_CORPUS, generate_corpus
from repro.synth.families import SynthGraph

#: relative slack for float comparisons between solver objectives
REL_TOL = 1e-6

#: heuristic solvers: never assumed optimal, always assumed valid
_HEURISTICS = ("greedy-lpt", "round-robin")


@dataclass
class SolverOutcome:
    """One solver's answer on one instance."""

    solver: str
    tmax: float
    optimal: bool
    assignment: Tuple[int, ...]


@dataclass
class InstanceReport:
    """Differential-check result for one generated instance."""

    label: str
    num_partitions: int
    num_gpus: int
    outcomes: Dict[str, SolverOutcome] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    skips: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """One human-readable line per instance."""
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        skip = f" ({len(self.skips)} skipped)" if self.skips else ""
        return (
            f"{self.label}: P={self.num_partitions} g={self.num_gpus} "
            f"{status}{skip}"
        )


@dataclass
class CorpusReport:
    """Aggregated differential-check results."""

    instances: List[InstanceReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(inst.ok for inst in self.instances)

    @property
    def violations(self) -> List[str]:
        return [
            f"{inst.label}: {violation}"
            for inst in self.instances
            for violation in inst.violations
        ]

    @property
    def skips(self) -> List[str]:
        return [
            f"{inst.label}: {skip}"
            for inst in self.instances
            for skip in inst.skips
        ]

    def render(self) -> str:
        lines = [inst.render() for inst in self.instances]
        lines.append(
            f"{len(self.instances)} instances, "
            f"{len(self.violations)} violations, {len(self.skips)} skips"
        )
        return "\n".join(lines)


def _rel_close(a: float, b: float, rel: float) -> bool:
    return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)


def _check_outcome(
    report: InstanceReport,
    problem: MappingProblem,
    result: MappingResult,
) -> None:
    """Validity invariants every solver must satisfy."""
    name = result.solver
    assignment = result.assignment
    if len(assignment) != problem.num_partitions:
        report.violations.append(
            f"{name}: assignment length {len(assignment)} != "
            f"{problem.num_partitions} partitions"
        )
        return
    bad = [g for g in assignment if not (0 <= g < problem.num_gpus)]
    if bad:
        report.violations.append(f"{name}: GPU ids out of range: {bad}")
        return
    rescored = problem.tmax(assignment)
    if not _rel_close(result.tmax, rescored, REL_TOL):
        report.violations.append(
            f"{name}: reported tmax {result.tmax:.6g} != evaluator "
            f"{rescored:.6g}"
        )
    report.outcomes[name] = SolverOutcome(
        solver=name,
        tmax=result.tmax,
        optimal=result.optimal,
        assignment=assignment,
    )


def _check_partitions(
    report: InstanceReport,
    graph: StreamGraph,
    partitions: Sequence[frozenset],
) -> None:
    """The partition list must cover every node exactly once."""
    seen: Dict[int, int] = {}
    for pid, members in enumerate(partitions):
        if not members:
            report.violations.append(f"partition {pid} is empty")
        for nid in members:
            if nid in seen:
                report.violations.append(
                    f"node {nid} in partitions {seen[nid]} and {pid}"
                )
            seen[nid] = pid
    missing = set(range(len(graph.nodes))) - set(seen)
    if missing:
        report.violations.append(
            f"nodes not covered by any partition: {sorted(missing)}"
        )


def _milp_timed_out(result: MappingResult) -> bool:
    """Whether a MILP result is a limit artifact rather than a proof.

    HiGHS status 0 means proven optimal; any other status with a
    feasible incumbent (time limit, iteration limit) yields a usable but
    unproven assignment, which must not be held to optimality
    invariants.
    """
    return not result.optimal


def diffcheck_problem(
    problem: MappingProblem,
    label: str,
    num_partitions: int,
    milp_time_limit_s: Optional[float] = None,
    mip_rel_gap: float = 0.0,
    bb_max_nodes: int = 2_000_000,
    report: Optional[InstanceReport] = None,
) -> InstanceReport:
    """Run all solvers on one mapping problem and cross-check them.

    ``bb_max_nodes`` bounds the branch-and-bound search; an exhausted
    budget downgrades B&B to a heuristic (skip, not violation), exactly
    like a MILP time-limit hit.

    >>> from repro.gpu.topology import default_topology
    >>> problem = MappingProblem(
    ...     times=[4.0, 3.0, 2.0], edges={(0, 1): 64.0, (1, 2): 64.0},
    ...     host_io=[(64.0, 0.0), (0.0, 0.0), (0.0, 64.0)],
    ...     topology=default_topology(2),
    ... )
    >>> diffcheck_problem(problem, "tiny", 3).ok
    True
    """
    if report is None:
        report = InstanceReport(
            label=label,
            num_partitions=num_partitions,
            num_gpus=problem.num_gpus,
        )
    greedy = lpt_mapping(problem)
    rr = round_robin_mapping(problem)
    bb = solve_branch_and_bound(problem, max_nodes=bb_max_nodes)
    _check_outcome(report, problem, greedy)
    _check_outcome(report, problem, rr)
    _check_outcome(report, problem, bb)
    try:
        # the differential check wants *proofs*, so the MILP runs under
        # the ample tier's large deterministic node cap (the default
        # tier trades proofs on search-heavy instances for latency);
        # the explicit gap/wall-clock arguments override budget fields
        # the shared compiled-model cache pays off here too: the check
        # solves every corpus instance on the same platform, so the
        # per-signature model assembly is amortized across instances
        # that share a shape
        milp = solve_milp(
            problem, time_limit_s=milp_time_limit_s, mip_rel_gap=mip_rel_gap,
            budget=SolveBudget.tier("ample"), model_cache=MODEL_CACHE,
        )
    except RuntimeError as exc:  # solver found nothing inside the limit
        report.skips.append(f"milp: no solution within limit ({exc})")
        milp = None
    if milp is not None:
        _check_outcome(report, problem, milp)

    heuristic_best = min(
        (
            report.outcomes[name].tmax
            for name in _HEURISTICS
            if name in report.outcomes
        ),
        default=None,
    )
    slack = max(mip_rel_gap, REL_TOL)

    milp_out = report.outcomes.get("milp")
    if milp_out is not None and _milp_timed_out(milp):
        report.skips.append(
            "milp: hit its limit without proving optimality; "
            "optimality comparisons skipped"
        )
        milp_out = None
    bb_out = report.outcomes.get("branch-and-bound")
    if bb_out is not None and not bb_out.optimal:
        report.skips.append(
            "branch-and-bound: node budget exhausted; "
            "optimality comparisons skipped"
        )
        bb_out = None

    for name, out in (("milp", milp_out), ("branch-and-bound", bb_out)):
        if out is None or heuristic_best is None:
            continue
        if out.tmax > heuristic_best * (1.0 + slack):
            report.violations.append(
                f"{name} claims optimality but a heuristic beats it: "
                f"{out.tmax:.6g} > {heuristic_best:.6g}"
            )
    if milp_out is not None and bb_out is not None:
        if not _rel_close(milp_out.tmax, bb_out.tmax, slack):
            report.violations.append(
                "optimal solvers disagree: "
                f"milp {milp_out.tmax:.6g} vs b&b {bb_out.tmax:.6g}"
            )
    return report


def diffcheck_graph(
    instance: SynthGraph,
    num_gpus: int = 2,
    spec: GpuSpec = M2090,
    partitioner: str = "ours",
    peer_to_peer: bool = True,
    milp_time_limit_s: Optional[float] = None,
    mip_rel_gap: float = 0.0,
    bb_max_nodes: int = 2_000_000,
    cache=None,
    platform: Optional[str] = None,
    topology: Optional[GpuTopology] = None,
) -> InstanceReport:
    """Differential check of one generated instance, end to end.

    Runs the front half of the Figure 3.1 flow (profile, partition,
    PDG), builds the mapping problem, and cross-checks every solver.
    A :class:`~repro.sweep.StageCache` may be passed to reuse
    profile/partition results across repeated corpus runs.

    ``platform`` (or an explicit ``topology``) targets a named machine
    from :mod:`repro.gpu.platforms` instead of the uniform reference
    tree — the heterogeneous per-link specs then flow into every solver
    under check, and ``num_gpus`` is taken from the machine.

    >>> from repro.synth.families import generate
    >>> diffcheck_graph(generate("pipeline", 1)).ok
    True
    >>> diffcheck_graph(generate("pipeline", 1), platform="two-island").ok
    True
    """
    if platform is not None:
        if topology is not None:
            raise ValueError("pass either platform or topology, not both")
        topology = build_platform(platform)
    if topology is not None:
        num_gpus = topology.num_gpus
    graph = instance.graph
    label = instance.spec.instance_name
    if platform is not None:
        label = f"{label}@{platform}"
    report = InstanceReport(
        label=label,
        num_partitions=0,
        num_gpus=num_gpus,
    )
    problems = collect_problems(graph)
    if problems:
        report.violations.extend(f"graph invalid: {p}" for p in problems)
        return report
    fp = instance.fingerprint
    engine = profile_stage(graph, spec=spec, cache=cache, graph_fp=fp)
    partitions, partitioning = partition_stage(
        graph, engine, partitioner=partitioner, spec=spec,
        cache=cache, graph_fp=fp,
    )
    report.num_partitions = len(partitions)
    _check_partitions(report, graph, partitions)
    if report.violations:
        return report
    pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
    problem = build_mapping_problem(
        pdg, num_gpus, topology=topology, peer_to_peer=peer_to_peer
    )
    return diffcheck_problem(
        problem,
        label=label,
        num_partitions=len(partitions),
        milp_time_limit_s=milp_time_limit_s,
        mip_rel_gap=mip_rel_gap,
        bb_max_nodes=bb_max_nodes,
        report=report,
    )


def diffcheck_corpus(
    entries=None,
    num_gpus: int = 2,
    spec: GpuSpec = M2090,
    milp_time_limit_s: Optional[float] = None,
    mip_rel_gap: float = 0.0,
    cache=None,
    progress: Optional[Callable[[str], None]] = None,
    platform: Optional[str] = None,
) -> CorpusReport:
    """Differential check of a whole corpus (default: the pinned 30).

    ``platform`` runs every instance against a named machine from
    :mod:`repro.gpu.platforms` instead of the uniform reference tree.
    A shared :class:`~repro.sweep.StageCache` pays off across platforms:
    profile/partition results are machine-independent, so only the
    mapping work repeats.

    >>> from repro.synth.corpus import TINY_CORPUS
    >>> diffcheck_corpus(TINY_CORPUS).ok
    True
    >>> diffcheck_corpus(TINY_CORPUS, platform="host-star").ok
    True
    """
    if entries is None:
        entries = PINNED_CORPUS
    corpus = generate_corpus(entries)
    report = CorpusReport()
    for instance in corpus:
        inst_report = diffcheck_graph(
            instance,
            num_gpus=num_gpus,
            spec=spec,
            milp_time_limit_s=milp_time_limit_s,
            mip_rel_gap=mip_rel_gap,
            cache=cache,
            platform=platform,
        )
        report.instances.append(inst_report)
        if progress is not None:
            progress(inst_report.render())
    return report
