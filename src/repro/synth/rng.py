"""Deterministic random numbers for the synthetic-graph generator.

Reproducibility is the whole point of :mod:`repro.synth`: the same
``(family, seed, params)`` triple must yield the same graph on every
machine, Python version, and run, because graph fingerprints key the
sweep engine's stage cache and the differential-test corpora are pinned
by seed.  The standard library's ``random.Random`` makes no cross-version
stream guarantees for its distribution helpers, so we carry our own
generator: a SplitMix64 core (integer-only state transitions, exactly
reproducible everywhere) seeded from a SHA-256 of the provenance string.

>>> a = SynthRng("pipeline|7|depth=8")
>>> b = SynthRng("pipeline|7|depth=8")
>>> [a.randint(1, 100) for _ in range(4)] == [b.randint(1, 100) for _ in range(4)]
True
>>> SynthRng("pipeline|8|depth=8").randint(1, 100) == b.randint(1, 100)
False
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, TypeVar

_T = TypeVar("_T")

_MASK = (1 << 64) - 1


class SynthRng:
    """SplitMix64 stream seeded from an arbitrary provenance token."""

    def __init__(self, token: str) -> None:
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        self._state = int.from_bytes(digest[:8], "big")

    def next_u64(self) -> int:
        """The next raw 64-bit value of the stream."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` (inclusive on both ends)."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        # rejection sampling keeps the draw exactly uniform
        limit = (_MASK + 1) - ((_MASK + 1) % span)
        while True:
            value = self.next_u64()
            if value < limit:
                return lo + value % span

    def choice(self, seq: Sequence[_T]) -> _T:
        """Uniform pick from a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def chance(self, numerator: int, denominator: int) -> bool:
        """True with probability ``numerator / denominator``.

        Stated as a ratio of integers so the stream stays integer-only.
        """
        return self.randint(1, denominator) <= numerator

    def sample(self, seq: Sequence[_T], k: int) -> List[_T]:
        """``k`` distinct elements of ``seq``, in draw order."""
        if k > len(seq):
            raise ValueError(f"sample size {k} exceeds population {len(seq)}")
        pool = list(seq)
        out: List[_T] = []
        for _ in range(k):
            out.append(pool.pop(self.randint(0, len(pool) - 1)))
        return out

    def shuffle(self, items: List[_T]) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
