"""Synthetic stream-graph generation and differential solver checking.

The paper evaluates on eight hand-written benchmarks; this package opens
the workload space: seedable, parameterized graph *families* (deep
pipelines, wide/nested split-joins, butterfly exchanges, feedback loops,
random series-parallel mixes, irregular SDF DAGs) whose every instance
is reproducible from ``(family, seed, params)`` and stable under
:func:`repro.graph.fingerprint.graph_fingerprint` — so generated corpora
flow through the sweep engine's stage cache exactly like the bundled
apps.  On top sits :mod:`repro.synth.diffcheck`, a differential harness
that runs greedy, branch-and-bound, and MILP mappers on the same
instances and cross-checks their answers, and
:mod:`repro.synth.scenarios`, seedable platform-degradation scripts
(kill/throttle/restore/arrive/depart) replayed through the incremental
repair solver with a repair-vs-resolve differential gate.

Entry points::

    from repro.synth import generate, diffcheck_corpus

    g = generate("splitjoin", seed=7)        # SynthGraph
    print(g.fingerprint)                     # stable content hash
    print(g.source())                        # stream-language .str text
    report = diffcheck_corpus()              # pinned 30-instance check
    assert report.ok

Sweep integration: ``SweepSpec(synth_cases=[("butterfly", 3)])`` — or
the app-name form ``build_app("synth:butterfly", 3)`` — routes generated
graphs through :class:`~repro.sweep.SweepRunner` with stage caching.
The ``repro synth`` CLI generates, exports (.str/JSON), fingerprints,
and diff-checks instances from the shell.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.synth.corpus import (
    PINNED_CORPUS,
    TINY_CORPUS,
    corpus_specs,
    generate_corpus,
)
from repro.synth.diffcheck import (
    CorpusReport,
    InstanceReport,
    diffcheck_corpus,
    diffcheck_graph,
    diffcheck_problem,
)
from repro.synth.families import (
    FAMILIES,
    FAMILY_DEFAULTS,
    FAMILY_DESCRIPTIONS,
    TREE_FAMILIES,
    SourceUnavailableError,
    SynthError,
    SynthGraph,
    SynthSpec,
    generate,
    parse_param,
)
from repro.synth.rng import SynthRng
from repro.synth.scenarios import (
    EVENT_KINDS,
    RepairCheckReport,
    Scenario,
    ScenarioEvent,
    ScenarioReport,
    StepOutcome,
    generate_scenario,
    repair_check,
    replay_scenario,
    scenario_request_lines,
)

#: app-name prefix routing :func:`repro.apps.registry.build_app` (and
#: therefore SweepPoints) into the generator
APP_PREFIX = "synth:"

__all__ = [
    "APP_PREFIX",
    "CorpusReport",
    "EVENT_KINDS",
    "FAMILIES",
    "FAMILY_DEFAULTS",
    "FAMILY_DESCRIPTIONS",
    "InstanceReport",
    "PINNED_CORPUS",
    "RepairCheckReport",
    "Scenario",
    "ScenarioEvent",
    "ScenarioReport",
    "SourceUnavailableError",
    "StepOutcome",
    "SynthError",
    "SynthGraph",
    "SynthRng",
    "SynthSpec",
    "TINY_CORPUS",
    "TREE_FAMILIES",
    "build_synth_app",
    "corpus_specs",
    "diffcheck_corpus",
    "diffcheck_graph",
    "diffcheck_problem",
    "generate",
    "generate_corpus",
    "generate_scenario",
    "parse_app_name",
    "parse_param",
    "repair_check",
    "replay_scenario",
    "scenario_request_lines",
    "synth_app_name",
]


def parse_app_name(name: str) -> Tuple[str, Dict[str, int]]:
    """Split a ``synth:`` app name into (family, param overrides).

    The sweep engine identifies graphs by ``(app, n)`` string/int pairs
    (hashable, picklable), so synthetic instances are addressed as
    ``synth:<family>[;key=value;...]`` with the seed riding in ``n``.

    >>> parse_app_name("synth:pipeline")
    ('pipeline', {})
    >>> parse_app_name("synth:dag;layers=6;width=2")
    ('dag', {'layers': 6, 'width': 2})
    """
    if not name.startswith(APP_PREFIX):
        raise SynthError(f"not a synth app name: {name!r}")
    body = name[len(APP_PREFIX):]
    parts = body.split(";")
    family = parts[0]
    overrides: Dict[str, int] = {}
    for item in parts[1:]:
        if not item:
            continue
        key, value = parse_param(item)
        overrides[key] = value
    return family, overrides


def synth_app_name(family: str, params: Dict[str, int] = None) -> str:
    """The ``synth:`` app name addressing a family (+ overrides).

    >>> synth_app_name("dag", {"layers": 6})
    'synth:dag;layers=6'
    """
    name = APP_PREFIX + family
    for key, value in sorted((params or {}).items()):
        name += f";{key}={value}"
    return name


def build_synth_app(name: str, seed: int) -> StreamGraph:
    """Build a synthetic instance from its app name and seed.

    This is the :func:`repro.apps.build_app` back end for ``synth:``
    names, so sweep points and the CLI address generated graphs exactly
    like bundled benchmarks.

    >>> g = build_synth_app("synth:butterfly", 3)
    >>> g.name
    'synth-butterfly-s3'
    """
    family, overrides = parse_app_name(name)
    return generate(family, seed, overrides or None).graph
