"""Pinned synthetic corpora.

The differential regression tests (and ``repro synth --corpus``) run
against a *pinned* 30-instance corpus: a fixed list of
``(family, seed, params)`` triples chosen to cover every family, both
splitter kinds, nesting, feedback, and irregular DAGs, while staying
small enough that greedy, branch-and-bound, and MILP all solve within
the tier-1 test budget.  Because generation is deterministic, pinning
the specs pins the graphs — their fingerprints never change unless the
generator itself changes, which is exactly the regression we want to
catch.

>>> len(PINNED_CORPUS)
30
>>> instances = generate_corpus(PINNED_CORPUS[:2])
>>> [g.spec.family for g in instances]
['pipeline', 'pipeline']
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.synth.families import SynthGraph, SynthSpec, generate

#: (family, seed, param overrides) — edit only with a fingerprint-golden
#: update; the differential tests pin solver behaviour on these graphs
PINNED_CORPUS: Tuple[Tuple[str, int, Optional[Dict[str, int]]], ...] = (
    ("pipeline", 1, None),
    ("pipeline", 2, None),
    ("pipeline", 3, {"depth": 12}),
    ("pipeline", 4, {"depth": 5, "max_rate": 6}),
    ("pipeline", 5, {"max_work": 256}),
    ("splitjoin", 1, None),
    ("splitjoin", 2, None),
    ("splitjoin", 3, {"width": 6}),
    ("splitjoin", 4, {"nest": 2}),
    ("splitjoin", 5, {"width": 3, "chain": 3}),
    ("butterfly", 1, None),
    ("butterfly", 2, {"stages": 2}),
    ("butterfly", 3, {"stages": 2, "base": 3}),
    ("butterfly", 4, {"base": 1}),
    ("butterfly", 5, {"stages": 4, "base": 1, "max_work": 4}),
    ("feedback", 1, None),
    ("feedback", 2, None),
    ("feedback", 3, {"loops": 2}),
    ("feedback", 4, {"chain": 3}),
    ("feedback", 5, {"loops": 2, "max_rate": 6}),
    ("random", 1, None),
    ("random", 2, None),
    ("random", 3, {"depth": 4}),
    ("random", 4, {"max_branch": 4}),
    ("random", 5, {"depth": 2, "max_rate": 6}),
    ("dag", 1, None),
    ("dag", 2, None),
    ("dag", 3, {"layers": 6}),
    ("dag", 4, {"width": 4}),
    ("dag", 5, {"layers": 5, "width": 2}),
)

#: a three-instance corpus for ``make synth-check`` / ``repro synth --check``
TINY_CORPUS: Tuple[Tuple[str, int, Optional[Dict[str, int]]], ...] = (
    ("pipeline", 1, {"depth": 4}),
    ("splitjoin", 1, {"width": 2, "nest": 1}),
    ("dag", 1, {"layers": 3, "width": 2}),
)


def corpus_specs(
    entries: Iterable[Tuple[str, int, Optional[Dict[str, int]]]]
) -> List[SynthSpec]:
    """Resolve corpus entries into full :class:`SynthSpec` records.

    >>> corpus_specs(TINY_CORPUS)[0].family
    'pipeline'
    """
    return [
        SynthSpec.make(family, seed, overrides)
        for family, seed, overrides in entries
    ]


def generate_corpus(
    entries: Optional[Sequence[Tuple[str, int, Optional[Dict[str, int]]]]] = None,
) -> List[SynthGraph]:
    """Generate every instance of a corpus (default: the pinned 30).

    >>> tiny = generate_corpus(TINY_CORPUS)
    >>> len(tiny)
    3
    """
    if entries is None:
        entries = PINNED_CORPUS
    return [
        generate(family, seed, overrides)
        for family, seed, overrides in entries
    ]
