"""Parameterized synthetic stream-graph families.

Each family builder turns ``(family, seed, params)`` into a stream graph
through the deterministic :class:`~repro.synth.rng.SynthRng`, so every
instance is reproducible from its :class:`SynthSpec` alone and stable
under :func:`repro.graph.fingerprint.graph_fingerprint`.  Five families
build hierarchical structure trees (printable as stream-language source
and parseable back); the ``dag`` family builds irregular flat SDF DAGs
directly, beyond what the series-parallel structure tree can express.

=============  ==========================================================
``pipeline``   deep chains with varied rates, sliding-window peeks, and
               occasional up/down-sampling stages
``splitjoin``  wide and nested split-joins (duplicate and round-robin)
               with weight-consistent joiners over gain-carrying branches
``butterfly``  FFT-like recursive exchange patterns (split halves,
               recurse, combine)
``feedback``   pipelines threaded through delay-initialized feedback
               loops
``random``     irregular random series-parallel compositions mixing all
               of the above
``dag``        layered irregular SDF DAGs with per-node firing targets
               (not series-parallel; JSON/flat-graph output only)
=============  ==========================================================

Weight consistency is by construction: every composite tracks its
*gain* (elements out per element in, an exact :class:`~fractions.Fraction`)
and joiner weights are scaled so the SDF balance equations always have a
positive solution — generation never fails rate checking.  Nested
composites draw from damped rate/weight palettes because branch demands
lcm into splitter firing counts and multiply across nesting levels; a
:data:`MAX_TOTAL_FIRINGS` guard raises a clear :class:`SynthError` for
extreme parameter combinations instead of silently producing
million-firing steady states.

>>> g = generate("splitjoin", seed=7)
>>> g.spec.family, g.spec.seed, len(g.graph.nodes) > 4
('splitjoin', 7, True)
>>> generate("splitjoin", seed=7).fingerprint == g.fingerprint
True
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.json_io import dumps as json_dumps
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    SplitSpec,
    StreamNode,
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)
from repro.graph.validate import validate_graph
from repro.synth.rng import SynthRng

#: steady states whose total firing count exceeds this are generator bugs
#: (weights are scaled to keep repetition vectors small)
MAX_TOTAL_FIRINGS = 200_000


class SynthError(ValueError):
    """Raised for unknown families, bad parameters, or generator bugs."""


class SourceUnavailableError(SynthError):
    """Raised when a family cannot be rendered as stream-language source
    (the ``dag`` family is not series-parallel)."""


def parse_param(item: str) -> Tuple[str, int]:
    """Parse one ``key=value`` family-parameter item.

    The single syntax shared by CLI ``--param`` flags and
    ``synth:<family>;key=value`` app names.

    >>> parse_param("depth=12")
    ('depth', 12)
    >>> parse_param("depth=lots")
    Traceback (most recent call last):
    ...
    repro.synth.families.SynthError: bad parameter 'depth=lots' (expected key=integer)
    """
    try:
        key, value = item.split("=", 1)
        return key.strip(), int(value)
    except ValueError:
        raise SynthError(
            f"bad parameter {item!r} (expected key=integer)"
        ) from None


@dataclass(frozen=True)
class SynthSpec:
    """Full provenance of one generated instance.

    ``params`` is the *merged* parameter set (defaults plus overrides),
    canonically sorted, so equal specs generate identical graphs.

    >>> SynthSpec.make("pipeline", 3).instance_name
    'synth-pipeline-s3'
    >>> SynthSpec.make("pipeline", 3, {"depth": 12}).params[0]
    ('depth', 12)
    """

    family: str
    seed: int
    params: Tuple[Tuple[str, int], ...]

    @classmethod
    def make(
        cls, family: str, seed: int, overrides: Optional[Dict[str, int]] = None
    ) -> "SynthSpec":
        if family not in FAMILIES:
            raise SynthError(
                f"unknown synth family {family!r}; "
                f"known: {', '.join(sorted(FAMILIES))}"
            )
        defaults = dict(FAMILY_DEFAULTS[family])
        minimums = FAMILY_MINIMUMS.get(family, {})
        for key, value in (overrides or {}).items():
            if key not in defaults:
                raise SynthError(
                    f"family {family!r} has no parameter {key!r}; "
                    f"known: {', '.join(sorted(defaults))}"
                )
            floor = minimums.get(key, 1)
            if int(value) < floor:
                raise SynthError(
                    f"parameter {key}={value} must be >= {floor}"
                )
            defaults[key] = int(value)
        return cls(family, int(seed), tuple(sorted(defaults.items())))

    @property
    def token(self) -> str:
        """Canonical provenance string; seeds the RNG stream."""
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}|{self.seed}|{params}"

    @property
    def instance_name(self) -> str:
        """Deterministic graph name carrying the full provenance.

        The name participates in :func:`graph_fingerprint`'s canonical
        form, so two distinct ``(family, seed, params)`` triples can
        never share a fingerprint — even if their random draws happen to
        produce structurally identical graphs.  This is what makes
        :class:`~repro.sweep.cache.StageCache` keys collision-free for
        synthetic corpora.
        """
        base = f"synth-{self.family}-s{self.seed}"
        if self.params != tuple(sorted(FAMILY_DEFAULTS[self.family].items())):
            digest = hashlib.sha256(self.token.encode()).hexdigest()[:8]
            base += f"-p{digest}"
        return base

    @property
    def tree_name(self) -> str:
        """Identifier-safe name for the root of the structure tree."""
        return f"synth_{self.family}_s{self.seed}"


@dataclass
class SynthGraph:
    """One generated instance: provenance, tree (if any), flat graph."""

    spec: SynthSpec
    tree: Optional[StreamNode]
    graph: StreamGraph

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the flat graph (stable across runs)."""
        return graph_fingerprint(self.graph)

    def source(self) -> str:
        """Stream-language source (raises for non-series-parallel
        families such as ``dag``)."""
        if self.tree is None:
            raise SourceUnavailableError(
                f"family {self.spec.family!r} is not series-parallel; "
                "use JSON output instead"
            )
        from repro.frontend.printer import print_stream

        return print_stream(self.tree) + "\n"

    def json(self) -> str:
        """Flat-graph JSON (works for every family)."""
        return json_dumps(self.graph) + "\n"


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _work(rng: SynthRng, max_work: int) -> float:
    return float(rng.randint(1, max_work))


def _chain_specs(
    rng: SynthRng,
    prefix: str,
    count: int,
    max_rate: int,
    max_work: int,
    allow_peek: bool = True,
) -> List[FilterSpec]:
    """A gain-1 filter chain: each stage pops and pushes the same rate
    (rates vary across stages; firing ratios telescope and stay small)."""
    specs = []
    for i in range(count):
        rate = rng.randint(1, max_rate)
        peek = 0
        if allow_peek and rng.chance(1, 5):
            peek = rate + rng.randint(1, 2 * rate)
        specs.append(
            FilterSpec(
                name=f"{prefix}{i}",
                pop=rate,
                push=rate,
                peek=peek,
                work=_work(rng, max_work),
                stateful=rng.chance(1, 10),
            )
        )
    return specs


def _lcm(values: List[int]) -> int:
    out = 1
    for v in values:
        out = out * v // math.gcd(out, v)
    return out


def _split_join_weights(
    rng: SynthRng,
    gains: List[Fraction],
    unit: bool,
    max_multiplier: int,
) -> Tuple[SplitSpec, List[int]]:
    """Derive a consistent (splitter, joiner weights) pair from branch
    gains: weights are scaled by the gain denominators so every joiner
    weight is a positive integer and the balance equations close.

    ``unit`` pins the weight multiplier to 1 — used at nested levels,
    where branch demands lcm into the splitter firing count and large
    weights would multiply across levels.
    """

    def multiplier() -> int:
        return 1 if unit else rng.randint(1, max_multiplier)

    if rng.chance(1, 3):  # duplicate splitter
        weight = multiplier() * _lcm([g.denominator for g in gains])
        split = duplicate(weight, len(gains))
        join_weights = [int(weight * g) for g in gains]
    else:  # round-robin splitter
        weights = [multiplier() * g.denominator for g in gains]
        split = roundrobin(*weights)
        join_weights = [int(w * g) for w, g in zip(weights, gains)]
    return split, join_weights


def _normalize_gain(
    node: StreamNode, gain: Fraction, prefix: str
) -> Tuple[StreamNode, Fraction]:
    """Append a rate adapter so ``node``'s gain becomes exactly 1.

    Nested split-joins accumulate fractional gains whose denominators
    would otherwise multiply into the enclosing joiner weights and blow
    up the repetition vector; a single ``pop=numerator,
    push=denominator`` filter cancels the gain exactly, keeping weights
    (and steady-state firings) bounded at every nesting level.  The
    adapter is built without RNG draws, so graphs that need no
    normalization are byte-identical to pre-normalization ones.
    """
    if gain == 1:
        return node, gain
    adapter = FilterSpec(
        name=f"{prefix}adapt",
        pop=gain.numerator,
        push=gain.denominator,
        work=float(gain.numerator + gain.denominator),
    )
    return pipeline(node, adapter, name=f"{prefix}norm"), Fraction(1)


# ----------------------------------------------------------------------
# family: pipeline
# ----------------------------------------------------------------------
def _build_pipeline(rng: SynthRng, p: Dict[str, int]) -> StreamNode:
    """Deep chain; up to two stages resample (push or pop scaled up)."""
    depth, max_rate, max_work = p["depth"], p["max_rate"], p["max_work"]
    specs: List[FilterSpec] = []
    resamples = 0
    for i in range(depth):
        rate = rng.randint(1, max_rate)
        pop = push = rate
        if resamples < 2 and rng.chance(1, 6):
            factor = rng.randint(2, 3)
            if rng.chance(1, 2):
                push = rate * factor  # upsampler
            else:
                pop = rate * factor  # decimator
            resamples += 1
        peek = 0
        if pop == push and rng.chance(1, 5):
            peek = pop + rng.randint(1, 2 * pop)
        specs.append(
            FilterSpec(
                name=f"s{i}",
                pop=pop,
                push=push,
                peek=peek,
                work=_work(rng, max_work),
                stateful=rng.chance(1, 10),
            )
        )
    head = rng.randint(1, max_rate)
    return pipeline(
        source("src", head, work=float(head)),
        *specs,
        sink("snk", specs[-1].push, work=float(specs[-1].push)),
        name="Main",
    )


# ----------------------------------------------------------------------
# family: splitjoin
# ----------------------------------------------------------------------
def _branch_chain(
    rng: SynthRng, prefix: str, p: Dict[str, int], nested: bool = False
) -> Tuple[StreamNode, Fraction]:
    """A branch pipeline with a tracked integer gain.

    ``nested`` branches (inside an inner split-join) draw from a damped
    rate palette and carry no gain filters: the lcm requirements of
    branch-internal rates multiply across nesting levels, so keeping
    the inner palette small is what keeps deep nests' repetition
    vectors bounded.
    """
    count = rng.randint(1, p["chain"])
    max_rate = 2 if nested else p["max_rate"]
    specs = _chain_specs(rng, prefix, count, max_rate, p["max_work"])
    gain = Fraction(1)
    if not nested and rng.chance(1, 6):
        rate = rng.randint(1, p["max_rate"])
        factor = rng.randint(2, 3)
        specs.append(
            FilterSpec(
                name=f"{prefix}g",
                pop=rate,
                push=rate * factor,
                work=_work(rng, p["max_work"]),
            )
        )
        gain = Fraction(factor)
    if len(specs) == 1:
        return Filt(specs[0]), gain
    return pipeline(*specs, name=f"{prefix}p"), gain


def _build_splitjoin_node(
    rng: SynthRng, p: Dict[str, int], nest_left: int, prefix: str
) -> Tuple[StreamNode, Fraction]:
    """A split-join whose joiner weights are derived from branch gains,
    so the balance equations always close.

    Nested split-joins (``nest_left < p["nest"]``) are damped: narrower,
    unit-multiplier weights, small branch rates.  Splitter firing counts
    must absorb the lcm of every branch's per-firing demand, and those
    demands multiply across nesting levels — the damping is what keeps
    deeply nested instances' repetition vectors small.
    """
    nested = nest_left < p["nest"]
    width = rng.randint(2, min(3, p["width"]) if nested else p["width"])
    branches: List[StreamNode] = []
    gains: List[Fraction] = []
    for b in range(width):
        if nest_left > 0 and rng.chance(1, 3):
            node, gain = _build_splitjoin_node(
                rng, p, nest_left - 1, f"{prefix}n{b}_"
            )
        else:
            node, gain = _branch_chain(
                rng, f"{prefix}b{b}_", p, nested=nested
            )
        branches.append(node)
        gains.append(gain)

    split, join_weights = _split_join_weights(
        rng, gains, unit=nested, max_multiplier=3
    )
    join = join_roundrobin(*join_weights)
    node = splitjoin(split, branches, join, name=f"{prefix}sj")
    gain = Fraction(sum(join_weights), split.pop_per_firing)
    return node, gain


def _build_splitjoin(rng: SynthRng, p: Dict[str, int]) -> StreamNode:
    body, _ = _build_splitjoin_node(rng, p, p["nest"], "")
    return pipeline(
        source("src", body.pop_rate, work=float(body.pop_rate)),
        body,
        sink("snk", body.push_rate, work=float(body.push_rate)),
        name="Main",
    )


# ----------------------------------------------------------------------
# family: butterfly
# ----------------------------------------------------------------------
def _build_butterfly(rng: SynthRng, p: Dict[str, int]) -> StreamNode:
    """FFT-like recursive exchange: split halves, recurse, combine."""
    stages, base, max_work = p["stages"], p["base"], p["max_work"]
    block = base * (1 << stages)

    def level(depth: int, m: int, prefix: str) -> StreamNode:
        if depth == 0:
            count = rng.randint(1, 2)
            leaves = [
                FilterSpec(
                    name=f"{prefix}w{i}",
                    pop=m,
                    push=m,
                    work=float(rng.randint(1, max_work) * m),
                    semantics="butterfly" if rng.chance(1, 2) else "opaque",
                    params=(max(1, m // 2),) if rng.chance(1, 2) else (),
                )
                for i in range(count)
            ]
            if len(leaves) == 1:
                return Filt(leaves[0])
            return pipeline(*leaves, name=f"{prefix}leaf")
        half = m // 2
        exchange = splitjoin(
            roundrobin(half, half),
            [level(depth - 1, half, f"{prefix}e"), level(depth - 1, half, f"{prefix}o")],
            join_roundrobin(half, half),
            name=f"{prefix}x{depth}",
        )
        combine = FilterSpec(
            name=f"{prefix}c{depth}",
            pop=m,
            push=m,
            work=float(5 * m),
            semantics="butterfly",
            params=(half,),
        )
        return pipeline(exchange, combine, name=f"{prefix}st{depth}")

    return pipeline(
        source("src", block, work=float(block)),
        FilterSpec(
            name="reorder",
            pop=block,
            push=block,
            work=float(block),
            semantics="shuffle",
        ),
        level(stages, block, "b"),
        sink("snk", block, work=float(block)),
        name="Main",
    )


# ----------------------------------------------------------------------
# family: feedback
# ----------------------------------------------------------------------
def _build_feedback(rng: SynthRng, p: Dict[str, int]) -> StreamNode:
    """Pipeline threaded through ``loops`` delay-initialized feedback
    loops.  Gain-1 bodies/loopbacks with ``join = split = (a, b)`` keep
    the balance equations closed; ``delay`` pre-populates the loopback
    in multiples of its per-firing demand ``b``."""
    stages: List[StreamNode] = []
    head = rng.randint(1, p["max_rate"])
    stages.append(source("src", head, work=float(head)))
    for spec in _chain_specs(rng, "pre", rng.randint(1, p["chain"]),
                             p["max_rate"], p["max_work"]):
        stages.append(spec)
    for loop_idx in range(p["loops"]):
        fwd = rng.randint(1, p["max_rate"])
        back = rng.randint(1, p["max_rate"])
        body_specs = _chain_specs(
            rng, f"fb{loop_idx}_body", rng.randint(1, p["chain"]),
            p["max_rate"], p["max_work"], allow_peek=False,
        )
        loop_specs = _chain_specs(
            rng, f"fb{loop_idx}_loop", rng.randint(1, p["chain"]),
            p["max_rate"], p["max_work"], allow_peek=False,
        )
        body: StreamNode
        loopback: StreamNode
        body = (
            Filt(body_specs[0]) if len(body_specs) == 1
            else pipeline(*body_specs, name=f"fb{loop_idx}_bodyp")
        )
        loopback = (
            Filt(loop_specs[0]) if len(loop_specs) == 1
            else pipeline(*loop_specs, name=f"fb{loop_idx}_loopp")
        )
        stages.append(
            FeedbackLoop(
                body=body,
                loopback=loopback,
                join=join_roundrobin(fwd, back),
                split=roundrobin(fwd, back),
                delay=back * rng.randint(1, 3),
                name=f"fb{loop_idx}",
            )
        )
    post_specs = _chain_specs(rng, "post", rng.randint(1, p["chain"]),
                              p["max_rate"], p["max_work"])
    stages.extend(post_specs)
    # the sink drains the last post-chain stage (there is always one)
    stages.append(
        sink("snk", post_specs[-1].push, work=float(post_specs[-1].push))
    )
    return pipeline(*stages, name="Main")


# ----------------------------------------------------------------------
# family: random (irregular series-parallel mix)
# ----------------------------------------------------------------------
def _build_random(rng: SynthRng, p: Dict[str, int]) -> StreamNode:
    """Random nested composition of chains, split-joins, and feedback
    loops — the adversarial shapes hand-picked benchmarks never hit."""
    def leaf(prefix: str) -> Tuple[StreamNode, Fraction]:
        rate = rng.randint(1, p["max_rate"])
        gain = Fraction(1)
        pop = push = rate
        if rng.chance(1, 8):
            factor = rng.randint(2, 3)
            if rng.chance(1, 2):
                push = rate * factor
                gain = Fraction(factor)
            else:
                pop = rate * factor
                gain = Fraction(1, factor)
        peek = 0
        if pop == push and rng.chance(1, 6):
            peek = pop + rng.randint(1, pop)
        spec = FilterSpec(
            name=f"{prefix}f",
            pop=pop,
            push=push,
            peek=peek,
            work=_work(rng, p["max_work"]),
            stateful=rng.chance(1, 12),
        )
        return Filt(spec), gain

    def compose(depth: int, prefix: str) -> Tuple[StreamNode, Fraction]:
        if depth == 0 or rng.chance(2, 5):
            return leaf(prefix)
        roll = rng.randint(1, 6)
        if roll <= 3:  # pipeline of 2-3 children
            count = rng.randint(2, 3)
            children, gain = [], Fraction(1)
            for i in range(count):
                child, g = compose(depth - 1, f"{prefix}p{i}_")
                children.append(child)
                gain *= g
            return pipeline(*children, name=f"{prefix}pipe"), gain
        if roll <= 5:  # split-join over recursive branches
            nested = depth < p["depth"]
            width = rng.randint(2, p["max_branch"])
            branches, gains = [], []
            for b in range(width):
                child, g = compose(depth - 1, f"{prefix}s{b}_")
                if g.denominator > 3 or g.numerator > 4:
                    # complex composite gains would multiply into the
                    # joiner weights; normalize them away (bounded
                    # repetition vectors at any depth)
                    child, g = _normalize_gain(child, g, f"{prefix}s{b}_")
                branches.append(child)
                gains.append(g)
            split, join_weights = _split_join_weights(
                rng, gains, unit=nested, max_multiplier=2
            )
            node = splitjoin(
                split, branches, join_roundrobin(*join_weights),
                name=f"{prefix}sj",
            )
            return node, Fraction(sum(join_weights), split.pop_per_firing)
        # feedback loop; body/loopback are rate-matched (gain 1) so the
        # (fwd, back) join/split weights close the balance equations
        fwd = rng.randint(1, p["max_rate"])
        back = rng.randint(1, p["max_rate"])
        body = Filt(
            FilterSpec(
                name=f"{prefix}fbb",
                pop=fwd + back,
                push=fwd + back,
                work=_work(rng, p["max_work"]),
            )
        )
        loopback = Filt(
            FilterSpec(
                name=f"{prefix}fbl",
                pop=back,
                push=back,
                work=_work(rng, p["max_work"]),
            )
        )
        node = FeedbackLoop(
            body=body,
            loopback=loopback,
            join=join_roundrobin(fwd, back),
            split=roundrobin(fwd, back),
            delay=back * rng.randint(1, 2),
            name=f"{prefix}fb",
        )
        return node, Fraction(1)

    body, _ = compose(p["depth"], "")
    return pipeline(
        source("src", body.pop_rate, work=float(body.pop_rate)),
        body,
        sink("snk", body.push_rate, work=float(body.push_rate)),
        name="Main",
    )


# ----------------------------------------------------------------------
# family: dag (irregular flat SDF DAG; not series-parallel)
# ----------------------------------------------------------------------
def _build_dag(rng: SynthRng, p: Dict[str, int], name: str) -> StreamGraph:
    """Layered irregular DAG with per-node firing targets.

    Every channel ``u -> v`` carries ``lcm(f_u, f_v) * m`` elements per
    steady state (``src_push = V / f_u``, ``dst_pop = V / f_v``), so the
    balance equations are satisfied by construction for *any* wiring —
    which frees the wiring itself to be adversarial: skip edges, diamond
    fan-in, uneven fan-out.
    """
    from repro.graph.builder import GraphBuilder

    layers: List[List[int]] = []
    firings: Dict[int, int] = {}
    next_id = 0

    def new_node(firing: int) -> int:
        nonlocal next_id
        nid = next_id
        next_id += 1
        firings[nid] = firing
        return nid

    src_id = new_node(1)
    layers.append([src_id])
    for _ in range(p["layers"]):
        count = rng.randint(1, p["width"])
        layers.append([new_node(rng.randint(1, 4)) for _ in range(count)])
    sink_id = new_node(rng.randint(1, 2))

    edges: List[Tuple[int, int]] = []
    for li in range(1, len(layers)):
        earlier = [nid for layer in layers[:li] for nid in layer]
        for nid in layers[li]:
            # always one edge from the previous layer (keeps it layered
            # and weakly connected), plus optional skip-level fan-in
            edges.append((rng.choice(layers[li - 1]), nid))
            if len(earlier) > 1 and rng.chance(1, 3):
                extra = rng.choice(earlier)
                if (extra, nid) not in edges and extra != nid:
                    edges.append((extra, nid))
    has_succ = {u for u, _ in edges}
    for layer in layers:
        for nid in layer:
            if nid not in has_succ or nid in layers[-1]:
                if (nid, sink_id) not in edges:
                    edges.append((nid, sink_id))

    def channel_rates(u: int, v: int) -> Tuple[int, int]:
        fu, fv = firings[u], firings[v]
        volume = (fu * fv // math.gcd(fu, fv)) * rng.randint(1, 2)
        return volume // fu, volume // fv

    rates = {edge: channel_rates(*edge) for edge in edges}
    in_pops: Dict[int, int] = {}
    out_pushes: Dict[int, int] = {}
    for (u, v), (push, pop) in rates.items():
        out_pushes[u] = out_pushes.get(u, 0) + push
        in_pops[v] = in_pops.get(v, 0) + pop

    builder = GraphBuilder(name)
    for layer in layers:
        for nid in layer:
            if nid == src_id:
                built = builder.filter(
                    "src", pop=0, push=out_pushes[nid],
                    role=FilterRole.SOURCE, semantics="source",
                    work=float(out_pushes[nid]),
                )
            else:
                built = builder.filter(
                    f"n{nid}", pop=in_pops[nid], push=out_pushes.get(nid, 0),
                    work=_work(rng, p["max_work"]),
                    stateful=rng.chance(1, 12),
                )
            if built != nid:
                raise SynthError("dag node ids out of sync")
    built = builder.filter(
        "snk", pop=in_pops[sink_id], push=0,
        role=FilterRole.SINK, semantics="sink",
        work=float(in_pops[sink_id]),
    )
    if built != sink_id:
        raise SynthError("dag sink id out of sync")
    for (u, v), (push, pop) in rates.items():
        builder.connect(u, v, src_push=push, dst_pop=pop)
    return builder.build()


# ----------------------------------------------------------------------
# registry + entry points
# ----------------------------------------------------------------------
FAMILY_DEFAULTS: Dict[str, Dict[str, int]] = {
    "pipeline": {"depth": 8, "max_rate": 4, "max_work": 64},
    "splitjoin": {"width": 4, "nest": 1, "chain": 2, "max_rate": 4,
                  "max_work": 64},
    "butterfly": {"stages": 3, "base": 2, "max_work": 8},
    "feedback": {"loops": 1, "chain": 2, "max_rate": 4, "max_work": 64},
    "random": {"depth": 3, "max_branch": 3, "max_rate": 4, "max_work": 64},
    "dag": {"layers": 4, "width": 3, "max_work": 64},
}

#: parameter floors above the global minimum of 1 (fan-out families
#: need at least two branches to split over)
FAMILY_MINIMUMS: Dict[str, Dict[str, int]] = {
    "splitjoin": {"width": 2},
    "random": {"max_branch": 2},
}

FAMILY_DESCRIPTIONS: Dict[str, str] = {
    "pipeline": "deep chains with resampling stages and peek windows",
    "splitjoin": "wide/nested split-joins with gain-consistent joiners",
    "butterfly": "FFT-like recursive exchange patterns",
    "feedback": "pipelines threaded through delayed feedback loops",
    "random": "irregular random series-parallel compositions",
    "dag": "layered irregular SDF DAGs (flat; no .str form)",
}

FAMILIES: Tuple[str, ...] = tuple(sorted(FAMILY_DEFAULTS))

#: families whose instances carry a structure tree (printable as .str)
TREE_FAMILIES: Tuple[str, ...] = tuple(
    f for f in FAMILIES if f != "dag"
)


def generate(
    family: str, seed: int, params: Optional[Dict[str, int]] = None
) -> SynthGraph:
    """Generate one instance; deterministic in ``(family, seed, params)``.

    >>> a = generate("pipeline", 3)
    >>> b = generate("pipeline", 3)
    >>> a.fingerprint == b.fingerprint
    True
    >>> a.fingerprint != generate("pipeline", 4).fingerprint
    True
    """
    spec = SynthSpec.make(family, seed, params)
    rng = SynthRng(spec.token)
    merged = dict(spec.params)
    tree: Optional[StreamNode] = None
    if family == "dag":
        graph = _build_dag(rng, merged, spec.instance_name)
    else:
        builders = {
            "pipeline": _build_pipeline,
            "splitjoin": _build_splitjoin,
            "butterfly": _build_butterfly,
            "feedback": _build_feedback,
            "random": _build_random,
        }
        tree = builders[family](rng, merged)
        graph = flatten(tree, spec.instance_name)
    validate_graph(graph)
    total_firings = sum(node.firing for node in graph.nodes)
    if total_firings > MAX_TOTAL_FIRINGS:
        raise SynthError(
            f"{spec.instance_name}: steady state exploded "
            f"({total_firings} firings) — generator bug"
        )
    return SynthGraph(spec=spec, tree=tree, graph=graph)
