"""Pretty-printer: structure trees back to stream-language source.

Together with :mod:`repro.frontend.parser` this gives a round trip
(`parse(print(tree)) == tree`), which the property tests exploit, and a
way to save programmatically-built applications as editable source.
"""

from __future__ import annotations

from typing import List

from repro.graph.filters import FilterRole
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    Pipeline,
    SplitJoin,
    SplitKind,
    StreamNode,
)

_ROLE_NAMES = {
    FilterRole.SOURCE: "source",
    FilterRole.SINK: "sink",
    FilterRole.COMPUTE: "compute",
}


def print_stream(node: StreamNode, indent: int = 0) -> str:
    """Render a structure tree as stream-language source."""
    if isinstance(node, Pipeline):
        return _print_pipeline(node, indent)
    # wrap bare items in an anonymous pipeline so output always parses
    return _print_pipeline(Pipeline((node,), name="Main"), indent)


def _pad(indent: int) -> str:
    return "    " * indent


def _print_pipeline(node: Pipeline, indent: int) -> str:
    lines = [f"{_pad(indent)}pipeline {node.name} {{"]
    for child in node.children:
        lines.append(_print_item(child, indent + 1))
    lines.append(f"{_pad(indent)}}}")
    return "\n".join(lines)


def _print_item(node: StreamNode, indent: int) -> str:
    if isinstance(node, Filt):
        return _print_filter(node, indent)
    if isinstance(node, Pipeline):
        return _print_pipeline(node, indent)
    if isinstance(node, SplitJoin):
        return _print_splitjoin(node, indent)
    if isinstance(node, FeedbackLoop):
        return _print_feedback(node, indent)
    raise TypeError(f"unknown structure node: {node!r}")


def _print_filter(node: Filt, indent: int) -> str:
    spec = node.spec
    fields: List[str] = []
    if spec.pop:
        fields.append(f"pop={spec.pop}")
    if spec.push:
        fields.append(f"push={spec.push}")
    if spec.peek:
        fields.append(f"peek={spec.peek}")
    fields.append(f"work={_num(spec.work)}")
    if spec.role is not FilterRole.COMPUTE:
        fields.append(f"role={_ROLE_NAMES[spec.role]}")
    default_sem = (
        "source" if spec.role is FilterRole.SOURCE
        else "sink" if spec.role is FilterRole.SINK else "opaque"
    )
    if spec.semantics != default_sem:
        fields.append(f"semantics={spec.semantics}")
    if spec.params:
        inner = ", ".join(_num(v) for v in spec.params)
        fields.append(f"params=({inner})")
    if spec.stateful:
        fields.append("stateful=1")
    return f"{_pad(indent)}filter {spec.name}({', '.join(fields)});"


def _print_splitjoin(node: SplitJoin, indent: int) -> str:
    lines = [f"{_pad(indent)}splitjoin {node.name} {{"]
    if node.split.kind is SplitKind.DUPLICATE:
        lines.append(
            f"{_pad(indent + 1)}split duplicate"
            f"({node.split.weights[0]}, {len(node.split.weights)});"
        )
    else:
        weights = ", ".join(str(w) for w in node.split.weights)
        lines.append(f"{_pad(indent + 1)}split roundrobin({weights});")
    for branch in node.branches:
        lines.append(_print_item(branch, indent + 1))
    weights = ", ".join(str(w) for w in node.join.weights)
    lines.append(f"{_pad(indent + 1)}join roundrobin({weights});")
    lines.append(f"{_pad(indent)}}}")
    return "\n".join(lines)


def _print_feedback(node: FeedbackLoop, indent: int) -> str:
    lines = [f"{_pad(indent)}feedbackloop {node.name} {{"]
    weights = ", ".join(str(w) for w in node.join.weights)
    lines.append(f"{_pad(indent + 1)}join roundrobin({weights});")
    lines.append(f"{_pad(indent + 1)}body {_print_item(node.body, 0).strip()}"
                 if isinstance(node.body, Filt)
                 else f"{_pad(indent + 1)}body\n{_print_item(node.body, indent + 1)}")
    lines.append(f"{_pad(indent + 1)}loop {_print_item(node.loopback, 0).strip()}"
                 if isinstance(node.loopback, Filt)
                 else f"{_pad(indent + 1)}loop\n{_print_item(node.loopback, indent + 1)}")
    if node.split.kind is SplitKind.DUPLICATE:
        lines.append(
            f"{_pad(indent + 1)}split duplicate"
            f"({node.split.weights[0]}, {len(node.split.weights)});"
        )
    else:
        weights = ", ".join(str(w) for w in node.split.weights)
        lines.append(f"{_pad(indent + 1)}split roundrobin({weights});")
    if node.delay:
        lines.append(f"{_pad(indent + 1)}delay {node.delay};")
    lines.append(f"{_pad(indent)}}}")
    return "\n".join(lines)


def _num(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
