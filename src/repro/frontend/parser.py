"""Recursive-descent parser for the stream language.

Grammar (EBNF)::

    program     := pipeline_decl
    pipeline_decl := "pipeline" IDENT? "{" item+ "}"
    item        := filter_decl | splitjoin_decl | feedback_decl
                 | pipeline_decl
    filter_decl := "filter" IDENT "(" kv ("," kv)* ")" ";"
    kv          := IDENT "=" value
    splitjoin_decl := "splitjoin" IDENT? "{" split_stmt item+ join_stmt "}"
    split_stmt  := "split" ("duplicate" | "roundrobin") "(" ints ")" ";"
    join_stmt   := "join" "roundrobin" "(" ints ")" ";"
    feedback_decl := "feedbackloop" IDENT? "{"
                         join_stmt "body" item "loop" item split_stmt
                         ("delay" NUMBER ";")?
                     "}"

Filter keys: ``pop push peek work role semantics stateful params``; role
is one of source/sink/compute; params is a parenthesized tuple.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.frontend.lexer import LexError, Token, tokenize
from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    JoinSpec,
    Pipeline,
    SplitJoin,
    SplitKind,
    SplitSpec,
    StreamNode,
)

_ROLES = {
    "source": FilterRole.SOURCE,
    "sink": FilterRole.SINK,
    "compute": FilterRole.COMPUTE,
}


class ParseError(ValueError):
    """Raised on syntax or semantic errors, with the source line."""


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    _SYMBOLS = {
        "LBRACE": "{", "RBRACE": "}", "LPAREN": "(", "RPAREN": ")",
        "COMMA": ",", "SEMI": ";", "EQUALS": "=", "EOF": "end of input",
        "NUMBER": "a number", "IDENT": "a name",
    }

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            want = text or self._SYMBOLS.get(kind, kind.lower())
            raise ParseError(
                f"line {token.line}: expected {want!r}, found {token.text!r}"
            )
        return self.advance()

    def peek_keyword(self, *words: str) -> bool:
        return self.current.kind == "IDENT" and self.current.text in words

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_program(self) -> Pipeline:
        node = self.parse_pipeline()
        self.expect("EOF")
        return node

    def parse_pipeline(self) -> Pipeline:
        self.expect("IDENT", "pipeline")
        name = "pipeline"
        if self.current.kind == "IDENT":
            name = self.advance().text
        items = self.parse_block()
        return Pipeline(tuple(items), name=name)

    def parse_block(self) -> List[StreamNode]:
        self.expect("LBRACE")
        items: List[StreamNode] = []
        while self.current.kind != "RBRACE":
            items.append(self.parse_item())
        self.expect("RBRACE")
        if not items:
            raise ParseError(
                f"line {self.current.line}: empty composition block"
            )
        return items

    def parse_item(self) -> StreamNode:
        if self.peek_keyword("filter"):
            return self.parse_filter()
        if self.peek_keyword("pipeline"):
            return self.parse_pipeline()
        if self.peek_keyword("splitjoin"):
            return self.parse_splitjoin()
        if self.peek_keyword("feedbackloop"):
            return self.parse_feedback()
        token = self.current
        raise ParseError(
            f"line {token.line}: expected filter/pipeline/splitjoin/"
            f"feedbackloop, found {token.text!r}"
        )

    # -- filters --------------------------------------------------------
    def parse_filter(self) -> Filt:
        self.expect("IDENT", "filter")
        name = self.expect("IDENT").text
        line = self.current.line
        self.expect("LPAREN")
        fields = {}
        while self.current.kind != "RPAREN":
            key = self.expect("IDENT").text
            self.expect("EQUALS")
            fields[key] = self.parse_value()
            if self.current.kind == "COMMA":
                self.advance()
        self.expect("RPAREN")
        self.expect("SEMI")
        return Filt(self._build_spec(name, fields, line))

    def parse_value(self) -> Union[float, int, str, Tuple]:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "IDENT":
            self.advance()
            return token.text
        if token.kind == "STRING":
            self.advance()
            return token.text[1:-1]
        if token.kind == "LPAREN":
            self.advance()
            values = []
            while self.current.kind != "RPAREN":
                values.append(self.parse_value())
                if self.current.kind == "COMMA":
                    self.advance()
            self.expect("RPAREN")
            return tuple(values)
        raise ParseError(f"line {token.line}: expected a value, found {token.text!r}")

    def _build_spec(self, name: str, fields: dict, line: int) -> FilterSpec:
        known = {"pop", "push", "peek", "work", "role", "semantics",
                 "stateful", "params"}
        unknown = set(fields) - known
        if unknown:
            raise ParseError(
                f"line {line}: unknown filter attribute(s) "
                f"{', '.join(sorted(unknown))}"
            )
        role_name = fields.get("role", "compute")
        if role_name not in _ROLES:
            raise ParseError(
                f"line {line}: unknown role {role_name!r} "
                f"(expected source/sink/compute)"
            )
        role = _ROLES[role_name]
        semantics = fields.get(
            "semantics", "source" if role is FilterRole.SOURCE
            else "sink" if role is FilterRole.SINK else "opaque"
        )
        params = fields.get("params", ())
        if not isinstance(params, tuple):
            params = (params,)
        try:
            return FilterSpec(
                name=name,
                pop=int(fields.get("pop", 0)),
                push=int(fields.get("push", 0)),
                peek=int(fields.get("peek", 0)),
                work=float(fields.get("work", 1.0)),
                role=role,
                semantics=str(semantics),
                params=params,
                stateful=bool(fields.get("stateful", 0)),
            )
        except ValueError as exc:
            raise ParseError(f"line {line}: {exc}") from exc

    # -- split-join ------------------------------------------------------
    def parse_splitjoin(self) -> SplitJoin:
        self.expect("IDENT", "splitjoin")
        name = "splitjoin"
        if self.current.kind == "IDENT":
            name = self.advance().text
        self.expect("LBRACE")
        split = self.parse_split_stmt()
        branches: List[StreamNode] = []
        while not self.peek_keyword("join"):
            if self.current.kind == "RBRACE":
                raise ParseError(
                    f"line {self.current.line}: splitjoin missing join"
                )
            branches.append(self.parse_item())
        join = self.parse_join_stmt()
        self.expect("RBRACE")
        try:
            return SplitJoin(split, tuple(branches), join, name=name)
        except ValueError as exc:
            raise ParseError(f"splitjoin {name}: {exc}") from exc

    def parse_split_stmt(self) -> SplitSpec:
        self.expect("IDENT", "split")
        kind_token = self.expect("IDENT")
        values = self.parse_int_list()
        self.expect("SEMI")
        if kind_token.text == "duplicate":
            if len(values) != 2:
                raise ParseError(
                    f"line {kind_token.line}: duplicate takes "
                    "(weight, branches)"
                )
            weight, count = values
            return SplitSpec(SplitKind.DUPLICATE, tuple([weight] * count))
        if kind_token.text == "roundrobin":
            return SplitSpec(SplitKind.ROUNDROBIN, tuple(values))
        raise ParseError(
            f"line {kind_token.line}: unknown splitter {kind_token.text!r}"
        )

    def parse_join_stmt(self) -> JoinSpec:
        self.expect("IDENT", "join")
        kind = self.expect("IDENT")
        if kind.text != "roundrobin":
            raise ParseError(
                f"line {kind.line}: only roundrobin joiners exist"
            )
        values = self.parse_int_list()
        self.expect("SEMI")
        return JoinSpec(tuple(values))

    def parse_int_list(self) -> List[int]:
        self.expect("LPAREN")
        values: List[int] = []
        while self.current.kind != "RPAREN":
            token = self.expect("NUMBER")
            if "." in token.text:
                raise ParseError(f"line {token.line}: expected an integer")
            values.append(int(token.text))
            if self.current.kind == "COMMA":
                self.advance()
        self.expect("RPAREN")
        return values

    # -- feedback ---------------------------------------------------------
    def parse_feedback(self) -> FeedbackLoop:
        self.expect("IDENT", "feedbackloop")
        name = "feedbackloop"
        if self.current.kind == "IDENT":
            name = self.advance().text
        self.expect("LBRACE")
        join = self.parse_join_stmt()
        self.expect("IDENT", "body")
        body = self.parse_item()
        self.expect("IDENT", "loop")
        loopback = self.parse_item()
        split = self.parse_split_stmt()
        delay = 0
        if self.peek_keyword("delay"):
            self.advance()
            delay = int(self.expect("NUMBER").text)
            self.expect("SEMI")
        self.expect("RBRACE")
        try:
            return FeedbackLoop(
                body=body, loopback=loopback, join=join, split=split,
                delay=delay, name=name,
            )
        except ValueError as exc:
            raise ParseError(f"feedbackloop {name}: {exc}") from exc


def parse_stream(source: str) -> Pipeline:
    """Parse a stream-language program into a structure tree.

    >>> tree = parse_stream('''
    ...     pipeline Main {
    ...         filter src(push=2, role=source);
    ...         filter f(pop=2, push=2, work=10.0);
    ...         filter snk(pop=2, role=sink);
    ...     }
    ... ''')
    >>> tree.name, len(tree.children)
    ('Main', 3)
    """
    try:
        tokens = tokenize(source)
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    return _Parser(tokens).parse_program()


def compile_stream(source: str, name: Optional[str] = None) -> StreamGraph:
    """Parse and flatten a stream-language program.

    The graph name defaults to the root pipeline's name.

    >>> graph = compile_stream('''
    ...     pipeline Tiny {
    ...         filter src(push=1, role=source);
    ...         filter snk(pop=1, role=sink);
    ...     }
    ... ''')
    >>> graph.name, len(graph.nodes)
    ('Tiny', 2)
    """
    root = parse_stream(source)
    return flatten(root, name or root.name)
