"""Textual front end: a StreamIt-like stream language.

The paper's toolchain consumes StreamIt programs; this package provides
the equivalent entry point for the reproduction — a small declarative
language describing filters and their composition::

    pipeline Main {
        filter src(push=64, role=source);
        filter lowpass(pop=1, push=1, peek=64, work=128);
        splitjoin {
            split duplicate(1, 2);
            pipeline { filter band0(pop=1, push=1, work=256); }
            pipeline { filter band1(pop=1, push=1, work=256); }
            join roundrobin(1, 1);
        }
        filter sum(pop=2, push=1, work=4, semantics=dot);
        filter snk(pop=1, role=sink);
    }

``parse_stream`` produces the structure tree; ``compile_stream`` flattens
it into a mapped-ready :class:`~repro.graph.stream_graph.StreamGraph`.
"""

from repro.frontend.parser import ParseError, compile_stream, parse_stream
from repro.frontend.printer import print_stream

__all__ = ["ParseError", "compile_stream", "parse_stream", "print_stream"]
