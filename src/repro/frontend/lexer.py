"""Tokenizer for the stream language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

#: token kinds and their regular expressions, in priority order
_TOKEN_SPEC = (
    ("COMMENT", r"//[^\n]*|/\*.*?\*/"),
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9.]*"),
    ("STRING", r'"[^"]*"'),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("EQUALS", r"="),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
)

_MASTER = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC),
    re.DOTALL,
)


class LexError(ValueError):
    """Raised on an unrecognized character."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; comments and whitespace are dropped."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _MASTER.finditer(source):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP",):
            continue
        if kind == "COMMENT":
            line += text.count("\n")
            if "\n" in text:
                line_start = match.start() + text.rfind("\n") + 1
            continue
        if kind == "MISMATCH":
            raise LexError(
                f"line {line}: unexpected character {text!r}"
            )
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("EOF", "", line, 0))
    return tokens
