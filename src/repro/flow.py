"""End-to-end mapping flow (Figure 3.1).

``map_stream_graph`` chains the whole pipeline: profile -> partition ->
PDG -> ILP mapping -> kernel measurement -> pipelined execution, and
returns everything an experiment needs.  The strategy knobs select the
paper's technique or the baselines it compares against:

=================  ==========================  ===========================
``partitioner``    ``"ours"``                  Algorithm 1 (default)
                   ``"previous"``              [7]'s SM-threshold sweep
                   ``"single"``                SPSG: whole graph, 1 kernel
                   ``"perfilter"``             one kernel per filter [5]
``mapper``         ``"ilp"``                   Section 3.2 ILP (default)
                   ``"ilp-nocomm"``            ILP without link constraints
                   ``"lpt"``                   workload-only balancing [7]
                   ``"roundrobin"``            topological round-robin
=================  ==========================  ===========================

``peer_to_peer=False`` additionally reroutes all inter-GPU traffic through
the host, matching [7]'s execution model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.gpu.simulator import KernelMeasurement, KernelSimulator
from repro.gpu.specs import GpuSpec, M2090
from repro.gpu.topology import GpuTopology, default_topology
from repro.mapping.greedy import (
    contiguous_mapping,
    lpt_mapping,
    round_robin_mapping,
)
from repro.mapping.refine import refine_mapping
from repro.mapping.problem import MappingProblem, build_mapping_problem
from repro.mapping.result import MappingResult
from repro.mapping.solver_milp import solve_milp
from repro.partition.baseline import (
    one_kernel_per_filter,
    previous_work_partition,
    single_partition,
)
from repro.partition.heuristic import PartitioningResult, partition_stream_graph
from repro.partition.pdg import PartitionDependenceGraph, build_pdg
from repro.perf.engine import PerformanceEstimationEngine
from repro.runtime.executor import (
    ExecutionReport,
    PipelinedExecutor,
    measure_partitions,
)
from repro.runtime.fragments import FragmentPlan

PARTITIONERS = ("ours", "previous", "single", "perfilter")
MAPPERS = ("ilp", "ilp-nocomm", "lpt", "roundrobin")


@dataclass
class FlowResult:
    """Everything produced by one end-to-end mapping run."""

    graph: StreamGraph
    num_gpus: int
    partitions: List[FrozenSet[int]]
    partitioning: Optional[PartitioningResult]
    pdg: PartitionDependenceGraph
    mapping: MappingResult
    measurements: List[KernelMeasurement]
    report: ExecutionReport
    engine: PerformanceEstimationEngine

    @property
    def throughput(self) -> float:
        return self.report.throughput

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)


def map_stream_graph(
    graph: StreamGraph,
    num_gpus: int = 1,
    spec: GpuSpec = M2090,
    partitioner: str = "ours",
    mapper: str = "ilp",
    peer_to_peer: bool = True,
    topology: Optional[GpuTopology] = None,
    plan: Optional[FragmentPlan] = None,
    engine: Optional[PerformanceEstimationEngine] = None,
    executions_per_fragment: int = 128,
    static_workload_balance: bool = False,
    gpu_slowdown: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> FlowResult:
    """Run the full mapping flow and simulate the pipelined execution.

    ``static_workload_balance`` makes the LPT mapper balance static work
    (Σ firing · work) instead of PEE times — the previous work has no
    performance model, so its emulation sets this.

    ``gpu_slowdown`` activates the heterogeneous extension of the ILP
    (Section 3.2.2): one factor per GPU, applied to partition times at
    mapping time.  The runtime simulator remains homogeneous (kernels are
    measured on ``spec``), so with slowdowns the mapping is exercised but
    the reported execution assumes uniform devices.
    """
    if partitioner not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {partitioner!r}")
    if mapper not in MAPPERS:
        raise ValueError(f"unknown mapper {mapper!r}")
    engine = engine or PerformanceEstimationEngine(
        graph, spec=spec, simulator=KernelSimulator(spec, seed=seed)
    )
    topology = topology or default_topology(num_gpus)

    partitioning: Optional[PartitioningResult] = None
    if partitioner == "ours":
        partitioning = partition_stream_graph(graph, engine=engine, spec=spec)
        partitions = partitioning.partitions
        estimates = partitioning.estimates
    elif partitioner == "previous":
        partitions = previous_work_partition(graph, spec=spec)
        estimates = None
    elif partitioner == "perfilter":
        partitions = one_kernel_per_filter(graph)
        estimates = None
    else:
        partitions = single_partition(graph)
        estimates = None

    pdg = build_pdg(
        graph,
        partitions,
        engine,
        executions_per_fragment=executions_per_fragment,
        estimates=estimates,
    )
    problem = build_mapping_problem(
        pdg, num_gpus, topology=topology, peer_to_peer=peer_to_peer,
        gpu_slowdown=list(gpu_slowdown) if gpu_slowdown else None,
    )
    mapping = _solve(
        problem, mapper, graph, partitions, static_workload_balance, pdg
    )

    simulator = engine.simulator
    measurements = measure_partitions(pdg, simulator, engine)
    executor = PipelinedExecutor(
        pdg,
        mapping.assignment,
        topology,
        simulator,
        measurements,
        peer_to_peer=peer_to_peer,
    )
    report = executor.run(plan)
    return FlowResult(
        graph=graph,
        num_gpus=num_gpus,
        partitions=list(partitions),
        partitioning=partitioning,
        pdg=pdg,
        mapping=mapping,
        measurements=measurements,
        report=report,
        engine=engine,
    )


def _solve(
    problem: MappingProblem,
    mapper: str,
    graph: StreamGraph,
    partitions: Sequence[FrozenSet[int]],
    static_workload_balance: bool,
    pdg: PartitionDependenceGraph,
) -> MappingResult:
    if mapper == "ilp":
        result = solve_milp(problem)
        if not result.optimal:
            # the solver hit its time limit; never return worse than the
            # cheap heuristics (greedy balance, contiguous chain split),
            # then polish the winner with local search
            for fallback in (
                lpt_mapping(problem),
                contiguous_mapping(problem, pdg.topological_order()),
            ):
                if fallback.tmax < result.tmax:
                    result = fallback
            refined = refine_mapping(
                problem, result.assignment, max_steps=64, use_swaps=False
            )
            if refined.tmax < result.tmax:
                result = refined
        return result
    if mapper == "ilp-nocomm":
        return solve_milp(problem, include_comm=False)
    if mapper == "lpt":
        workloads = None
        if static_workload_balance:
            workloads = [graph.total_work(members) for members in partitions]
        return lpt_mapping(problem, workloads=workloads)
    return round_robin_mapping(problem)
