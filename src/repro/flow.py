"""End-to-end mapping flow (Figure 3.1).

``map_stream_graph`` chains the whole pipeline: profile -> partition ->
PDG -> ILP mapping -> kernel measurement -> pipelined execution, and
returns everything an experiment needs.  The strategy knobs select the
paper's technique or the baselines it compares against:

=================  ==========================  ===========================
``partitioner``    ``"ours"``                  Algorithm 1 (default)
                   ``"previous"``              [7]'s SM-threshold sweep
                   ``"single"``                SPSG: whole graph, 1 kernel
                   ``"perfilter"``             one kernel per filter [5]
``mapper``         ``"ilp"``                   Section 3.2 ILP (default)
                   ``"ilp-nocomm"``            ILP without link constraints
                   ``"lpt"``                   workload-only balancing [7]
                   ``"roundrobin"``            topological round-robin
                   ``"portfolio"``             anytime solver escalation
                                               (:mod:`repro.service.portfolio`)
                   ``"metaheuristic"``         population annealing
                                               (:mod:`repro.mapping.metaheuristic`)
=================  ==========================  ===========================

``peer_to_peer=False`` additionally reroutes all inter-GPU traffic through
the host, matching [7]'s execution model.

The pipeline is exposed both as the one-call facade and as explicit
stages (:func:`profile_stage`, :func:`partition_stage`, :func:`pdg_stage`,
:func:`mapping_stage`, :func:`measure_stage`, :func:`execute_stage`).
Every expensive stage accepts a ``cache`` — any object with
``get(key) -> value | None`` and ``put(key, value)`` over JSON values,
such as :class:`repro.sweep.StageCache` — keyed on the graph fingerprint
plus every knob the stage reads, so sweeps over many strategies compute
each shared prefix once (see :mod:`repro.sweep`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.fingerprint import graph_fingerprint
from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.simulator import KernelMeasurement, KernelSimulator
from repro.gpu.specs import GpuSpec, M2090
from repro.gpu.topology import GpuTopology, default_topology
from repro.mapping.budget import SolveBudget
from repro.mapping.kernel import EvalKernel
from repro.mapping.greedy import (
    contiguous_mapping,
    lpt_mapping,
    round_robin_mapping,
)
from repro.mapping.refine import refine_mapping
from repro.mapping.problem import MappingProblem, build_mapping_problem
from repro.mapping.result import MappingResult
from repro.mapping.milp_model import MODEL_CACHE
from repro.mapping.solver_milp import MilpNoIncumbent, solve_milp
from repro.partition.baseline import (
    one_kernel_per_filter,
    previous_work_partition,
    single_partition,
)
from repro.partition.heuristic import PartitioningResult, partition_stream_graph
from repro.partition.pdg import PartitionDependenceGraph, build_pdg
from repro.perf.engine import PerformanceEstimationEngine
from repro.runtime.executor import (
    ExecutionReport,
    PipelinedExecutor,
    measure_partitions,
)
from repro.runtime.fragments import FragmentPlan

PARTITIONERS = ("ours", "previous", "single", "perfilter")
MAPPERS = (
    "ilp", "ilp-nocomm", "lpt", "roundrobin", "portfolio", "metaheuristic",
)


@dataclass
class FlowResult:
    """Everything produced by one end-to-end mapping run."""

    graph: StreamGraph
    num_gpus: int
    partitions: List[FrozenSet[int]]
    partitioning: Optional[PartitioningResult]
    pdg: PartitionDependenceGraph
    mapping: MappingResult
    measurements: List[KernelMeasurement]
    report: ExecutionReport
    engine: PerformanceEstimationEngine

    @property
    def throughput(self) -> float:
        return self.report.throughput

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
def stage_key(stage: str, **parts: object) -> str:
    """Content-addressed cache key for one stage invocation.

    The key digests the stage name plus every knob the stage reads; two
    invocations share a key iff they are guaranteed to produce identical
    results (all stages are deterministic functions of their knobs).
    """
    payload = json.dumps(
        {"stage": stage, **parts}, sort_keys=True, separators=(",", ":"),
        default=str,
    )
    return f"{stage}.{hashlib.sha256(payload.encode()).hexdigest()}"


def engine_key_parts(engine: PerformanceEstimationEngine) -> Dict[str, object]:
    """The engine-identity knobs every PEE-derived stage result depends
    on: target device, simulator cost constants and noise seed, and the
    model's regression constants."""
    return _engine_parts(engine.spec, engine.simulator, engine.params)


def _engine_parts(
    spec: GpuSpec, simulator: KernelSimulator, params=None
) -> Dict[str, object]:
    from repro.perf.model import ModelParams

    return {
        "spec": asdict(spec),
        "costs": asdict(simulator.costs),
        "seed": simulator.seed,
        "params": asdict(params or ModelParams()),
    }


def topology_key_parts(topology: GpuTopology) -> Dict[str, object]:
    """The interconnect-identity knobs mapping/execution depend on.

    Platform identity is *content-addressed*: the tree shape, every
    per-link spec, and any per-leaf GPU specs all enter the key, so two
    named platforms can never share a cached mapping unless they are
    byte-identical machines.  Uniform homogeneous topologies keep the
    original compact form (and hence their pre-existing cache entries).
    """
    parts: Dict[str, object] = {
        "parents": topology.tree_edges(),
        "num_gpus": topology.num_gpus,
        "link_spec": asdict(topology.link_spec),
    }
    if not topology.uniform_links:
        # only uplinks: both directions of an edge share one spec
        parts["edge_specs"] = {
            link.child: asdict(link.spec)
            for link in topology.links
            if link.up and link.spec != topology.link_spec
        }
    if topology.gpu_specs is not None:
        parts["gpu_specs"] = [asdict(spec) for spec in topology.gpu_specs]
    return parts


def _cache_get(cache, key: str):
    return cache.get(key) if cache is not None else None


def _cache_put(cache, key: str, value) -> None:
    if cache is not None:
        cache.put(key, value)


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def profile_stage(
    graph: StreamGraph,
    spec: GpuSpec = M2090,
    simulator: Optional[KernelSimulator] = None,
    seed: int = 0,
    cache=None,
    graph_fp: Optional[str] = None,
) -> PerformanceEstimationEngine:
    """Profile every filter and build the Performance Estimation Engine.

    This is the per-filter measurement step of Figure 3.1 (the ``t_i``
    annotation).  With a ``cache``, the profile of a previously-seen
    (graph, device, seed) triple is replayed instead of re-measured.
    """
    simulator = simulator or KernelSimulator(spec, seed=seed)
    key = None
    if cache is not None:
        key = stage_key(
            "profile",
            graph=graph_fp or graph_fingerprint(graph),
            engine=_engine_parts(spec, simulator),
        )
        hit = _cache_get(cache, key)
        if hit is not None:
            profile = {int(nid): t for nid, t in hit.items()}
            return PerformanceEstimationEngine(
                graph, spec=spec, simulator=simulator, profile=profile
            )
    engine = PerformanceEstimationEngine(graph, spec=spec, simulator=simulator)
    if key is not None:
        _cache_put(cache, key, {str(nid): t for nid, t in engine.profile.items()})
    return engine


def partition_stage(
    graph: StreamGraph,
    engine: PerformanceEstimationEngine,
    partitioner: str = "ours",
    spec: GpuSpec = M2090,
    phases: Tuple[int, ...] = (1, 2, 3, 4),
    cache=None,
    graph_fp: Optional[str] = None,
) -> Tuple[List[FrozenSet[int]], Optional[PartitioningResult]]:
    """Partition the graph with the selected strategy.

    Returns the partition list plus, for ``"ours"``, the full
    :class:`~repro.partition.heuristic.PartitioningResult`.  A cache hit
    skips the heuristic's thousands of candidate-merge probes and only
    re-estimates the final partitions (memoized on the engine).
    """
    if partitioner not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {partitioner!r}")
    key = None
    if cache is not None:
        key = stage_key(
            "partition",
            graph=graph_fp or graph_fingerprint(graph),
            engine=engine_key_parts(engine),
            # spec is keyed separately from the engine: the baseline
            # partitioners read it directly (shared-memory fit) and do
            # not consult the engine at all
            spec=asdict(spec),
            partitioner=partitioner,
            phases=sorted(phases),
        )
        hit = _cache_get(cache, key)
        if hit is not None:
            partitions = [frozenset(members) for members in hit["partitions"]]
            partitioning = None
            if hit["phase_counts"] is not None:
                partitioning = PartitioningResult(
                    graph=graph,
                    partitions=partitions,
                    estimates=[engine.estimate(m) for m in partitions],
                    phase_counts=dict(hit["phase_counts"]),
                )
            return partitions, partitioning

    partitioning: Optional[PartitioningResult] = None
    if partitioner == "ours":
        partitioning = partition_stream_graph(
            graph, engine=engine, spec=spec, phases=phases
        )
        partitions = partitioning.partitions
    elif partitioner == "previous":
        partitions = previous_work_partition(graph, spec=spec)
    elif partitioner == "perfilter":
        partitions = one_kernel_per_filter(graph)
    else:
        partitions = single_partition(graph)
    if key is not None:
        _cache_put(cache, key, {
            "partitions": [sorted(members) for members in partitions],
            "phase_counts": (
                dict(partitioning.phase_counts) if partitioning else None
            ),
        })
    return list(partitions), partitioning


def pdg_stage(
    graph: StreamGraph,
    partitions: Sequence[FrozenSet[int]],
    engine: PerformanceEstimationEngine,
    executions_per_fragment: int = 128,
    partitioning: Optional[PartitioningResult] = None,
) -> PartitionDependenceGraph:
    """Assemble the Partition Dependence Graph (cheap, never cached)."""
    estimates = partitioning.estimates if partitioning is not None else None
    return build_pdg(
        graph,
        partitions,
        engine,
        executions_per_fragment=executions_per_fragment,
        estimates=estimates,
    )


def mapping_stage(
    pdg: PartitionDependenceGraph,
    num_gpus: int,
    engine: PerformanceEstimationEngine,
    mapper: str = "ilp",
    topology: Optional[GpuTopology] = None,
    peer_to_peer: bool = True,
    static_workload_balance: bool = False,
    gpu_slowdown: Optional[Sequence[float]] = None,
    solve_budget: Optional[SolveBudget] = None,
    cache=None,
    graph_fp: Optional[str] = None,
) -> MappingResult:
    """Assign partitions to GPUs with the selected mapper.

    The ILP solve dominates sweep runtimes on large graphs, so its result
    (assignment + score breakdown) is cacheable like the other stages.

    ``solve_budget`` injects a :class:`~repro.mapping.SolveBudget` into
    the ``ilp``, ``portfolio``, and ``metaheuristic`` mappers.  A
    non-default budget enters
    the cache key (a small-budget incumbent and an ample-budget optimum
    are different results); the deterministic default tier keys like
    the historical no-budget form, so existing cache entries stay
    valid.  The resolution happens *after* applying the
    ``REPRO_MILP_TIME_LIMIT_S`` opt-in, so entries written since this
    refactor are never replayed across the wall-clock/deterministic
    divide.  (Entries a *pre-refactor* run left in a cache directory
    were solved under the historical 10 s wall clock and replay under
    the default key — purge ``mapping`` entries from old caches if
    that matters: ``repro cache purge --stage mapping``.)
    """
    if mapper not in MAPPERS:
        raise ValueError(f"unknown mapper {mapper!r}")
    topology = topology or default_topology(num_gpus)
    key = None
    if cache is not None:
        budget_parts = {}
        if mapper in ("ilp", "ilp-nocomm", "portfolio", "metaheuristic"):
            resolved = (
                solve_budget if solve_budget is not None
                else SolveBudget.default()  # env opt-in applied here
            )
            if resolved != SolveBudget.tier("default"):
                budget_parts = {"solve_budget": resolved.key_parts()}
        key = stage_key(
            "mapping",
            graph=graph_fp or graph_fingerprint(pdg.graph),
            engine=engine_key_parts(engine),
            partitions=[sorted(node.members) for node in pdg.nodes],
            executions_per_fragment=pdg.executions_per_fragment,
            num_gpus=num_gpus,
            mapper=mapper,
            topology=topology_key_parts(topology),
            peer_to_peer=peer_to_peer,
            static_workload_balance=static_workload_balance,
            gpu_slowdown=list(gpu_slowdown) if gpu_slowdown else None,
            **budget_parts,
        )
        hit = _cache_get(cache, key)
        if hit is not None:
            return MappingResult(
                assignment=tuple(hit["assignment"]),
                tmax=hit["tmax"],
                gpu_times=tuple(hit["gpu_times"]),
                link_times=tuple(hit["link_times"]),
                solver=hit["solver"],
                optimal=hit["optimal"],
                solve_stats=tuple(
                    (name, value) for name, value in hit["solve_stats"]
                ),
            )
    problem = build_mapping_problem(
        pdg, num_gpus, topology=topology, peer_to_peer=peer_to_peer,
        gpu_slowdown=list(gpu_slowdown) if gpu_slowdown else None,
    )
    mapping = _solve(
        problem, mapper, pdg.graph,
        [node.members for node in pdg.nodes],
        static_workload_balance, pdg, solve_budget,
    )
    if key is not None:
        _cache_put(cache, key, {
            "assignment": list(mapping.assignment),
            "tmax": mapping.tmax,
            "gpu_times": list(mapping.gpu_times),
            "link_times": list(mapping.link_times),
            "solver": mapping.solver,
            "optimal": mapping.optimal,
            "solve_stats": [list(item) for item in mapping.solve_stats],
        })
    return mapping


def measure_stage(
    pdg: PartitionDependenceGraph,
    engine: PerformanceEstimationEngine,
    cache=None,
    graph_fp: Optional[str] = None,
) -> List[KernelMeasurement]:
    """Measure every partition's kernel on the simulator (the "run the
    generated code" step the paper's evaluation performs per mapping)."""
    key = None
    if cache is not None:
        key = stage_key(
            "measure",
            graph=graph_fp or graph_fingerprint(pdg.graph),
            engine=engine_key_parts(engine),
            partitions=[sorted(node.members) for node in pdg.nodes],
        )
        hit = _cache_get(cache, key)
        if hit is not None:
            return [
                KernelMeasurement(
                    t_comp=m["t_comp"],
                    t_dt=m["t_dt"],
                    t_db=m["t_db"],
                    conflict_penalty=m["conflict_penalty"],
                    spill_penalty=m["spill_penalty"],
                    launch_ns=m["launch_ns"],
                    config=KernelConfig(*m["config"]),
                )
                for m in hit
            ]
    measurements = measure_partitions(pdg, engine.simulator, engine)
    if key is not None:
        _cache_put(cache, key, [
            {
                "t_comp": m.t_comp,
                "t_dt": m.t_dt,
                "t_db": m.t_db,
                "conflict_penalty": m.conflict_penalty,
                "spill_penalty": m.spill_penalty,
                "launch_ns": m.launch_ns,
                "config": [m.config.s, m.config.w, m.config.f],
            }
            for m in measurements
        ])
    return measurements


def execute_stage(
    pdg: PartitionDependenceGraph,
    mapping: MappingResult,
    engine: PerformanceEstimationEngine,
    measurements: Sequence[KernelMeasurement],
    topology: GpuTopology,
    peer_to_peer: bool = True,
    plan: Optional[FragmentPlan] = None,
) -> ExecutionReport:
    """Simulate the pipelined multi-GPU execution (Figure 3.5)."""
    executor = PipelinedExecutor(
        pdg,
        mapping.assignment,
        topology,
        engine.simulator,
        list(measurements),
        peer_to_peer=peer_to_peer,
    )
    return executor.run(plan)


# ----------------------------------------------------------------------
# facade
# ----------------------------------------------------------------------
def map_stream_graph(
    graph: StreamGraph,
    num_gpus: int = 1,
    spec: GpuSpec = M2090,
    partitioner: str = "ours",
    mapper: str = "ilp",
    peer_to_peer: bool = True,
    topology: Optional[GpuTopology] = None,
    platform: Optional[str] = None,
    plan: Optional[FragmentPlan] = None,
    engine: Optional[PerformanceEstimationEngine] = None,
    executions_per_fragment: int = 128,
    static_workload_balance: bool = False,
    gpu_slowdown: Optional[Sequence[float]] = None,
    solve_budget: Optional[SolveBudget] = None,
    seed: int = 0,
    cache=None,
    graph_fp: Optional[str] = None,
) -> FlowResult:
    """Run the full mapping flow and simulate the pipelined execution.

    ``solve_budget`` bounds the mapping solve with a deterministic
    :class:`~repro.mapping.SolveBudget` (``ilp``, ``portfolio``, and
    ``metaheuristic`` mappers); omitted, the solvers use their default
    budget — a
    deterministic node cap, wall-clock only via the
    ``REPRO_MILP_TIME_LIMIT_S`` opt-in.

    ``static_workload_balance`` makes the LPT mapper balance static work
    (Σ firing · work) instead of PEE times — the previous work has no
    performance model, so its emulation sets this.

    ``platform`` selects a named machine from the catalog of
    :mod:`repro.gpu.platforms` (``"two-island"``, ``"mixed-box"``, ...);
    it fixes both the interconnect tree and the GPU count, so
    ``num_gpus`` is taken from the platform.  Passing both ``platform``
    and an explicit ``topology`` is an error.

    ``gpu_slowdown`` activates the heterogeneous extension of the ILP
    (Section 3.2.2): one factor per GPU, applied to partition times at
    mapping time.  Platforms with per-leaf GPU specs (e.g.
    ``"mixed-box"``) derive the factors automatically; an explicit
    ``gpu_slowdown`` overrides them.  The runtime simulator remains
    homogeneous (kernels are measured on ``spec``), so with slowdowns
    the mapping is exercised but the reported execution assumes uniform
    devices.

    ``cache`` plugs a stage cache (e.g. :class:`repro.sweep.StageCache`)
    into the profile, partition, mapping, and measurement stages; every
    stage is a deterministic function of its knobs, so cached replays are
    bit-identical to fresh runs.  ``graph_fp`` optionally supplies the
    graph's precomputed fingerprint so batch callers (the sweep runner)
    hash each graph once instead of once per strategy point.

    >>> from repro.apps import build_app
    >>> result = map_stream_graph(build_app("Bitonic", 8), num_gpus=2)
    >>> result.num_partitions >= 1 and result.throughput > 0
    True
    >>> hetero = map_stream_graph(build_app("Bitonic", 8),
    ...                           platform="two-island")
    >>> hetero.num_gpus
    4
    """
    if partitioner not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {partitioner!r}")
    if mapper not in MAPPERS:
        raise ValueError(f"unknown mapper {mapper!r}")
    if platform is not None:
        if topology is not None:
            raise ValueError("pass either platform or topology, not both")
        from repro.gpu.platforms import build_platform

        topology = build_platform(platform)
        num_gpus = topology.num_gpus
    if graph_fp is None and cache is not None:
        graph_fp = graph_fingerprint(graph)
    if engine is None:
        engine = profile_stage(
            graph, spec=spec, seed=seed, cache=cache, graph_fp=graph_fp
        )
    topology = topology or default_topology(num_gpus)

    partitions, partitioning = partition_stage(
        graph, engine, partitioner=partitioner, spec=spec,
        cache=cache, graph_fp=graph_fp,
    )
    pdg = pdg_stage(
        graph, partitions, engine,
        executions_per_fragment=executions_per_fragment,
        partitioning=partitioning,
    )
    mapping = mapping_stage(
        pdg, num_gpus, engine, mapper=mapper, topology=topology,
        peer_to_peer=peer_to_peer,
        static_workload_balance=static_workload_balance,
        gpu_slowdown=gpu_slowdown, solve_budget=solve_budget,
        cache=cache, graph_fp=graph_fp,
    )
    measurements = measure_stage(pdg, engine, cache=cache, graph_fp=graph_fp)
    report = execute_stage(
        pdg, mapping, engine, measurements, topology,
        peer_to_peer=peer_to_peer, plan=plan,
    )
    return FlowResult(
        graph=graph,
        num_gpus=num_gpus,
        partitions=list(partitions),
        partitioning=partitioning,
        pdg=pdg,
        mapping=mapping,
        measurements=measurements,
        report=report,
        engine=engine,
    )


@dataclass
class RemapFlowResult:
    """Everything produced by one end-to-end re-mapping run."""

    graph: StreamGraph
    pdg: PartitionDependenceGraph
    #: the degraded machine plus the base->degraded GPU translation
    degraded: "DegradedTopology"
    #: the pristine-platform mapping the repair started from; ``None``
    #: when the caller supplied ``old_assignment`` directly
    baseline: Optional[MappingResult]
    #: the repaired mapping with its migration provenance
    repair: "RepairResult"

    @property
    def num_partitions(self) -> int:
        return len(self.pdg.nodes)


def remap_stream_graph(
    graph: StreamGraph,
    platform: str,
    deltas: Sequence["PlatformDelta"],
    old_assignment: Optional[Sequence[int]] = None,
    spec: GpuSpec = M2090,
    partitioner: str = "ours",
    mapper: str = "portfolio",
    peer_to_peer: bool = True,
    alpha: Optional[float] = None,
    solve_budget: Optional[SolveBudget] = None,
    seed: int = 0,
    cache=None,
    graph_fp: Optional[str] = None,
) -> RemapFlowResult:
    """Repair a deployed mapping after ``platform`` degrades by ``deltas``.

    The front half of the flow (profile, partition, PDG) runs exactly as
    :func:`map_stream_graph` — cached stages replay.  The *baseline*
    mapping on the pristine platform is solved (and cached) with
    ``mapper`` unless the caller hands in the deployed ``old_assignment``
    directly; the degraded machine is derived with
    :func:`repro.gpu.delta.apply_deltas` (its ``topology_key_parts``
    reflect every delta, so nothing ever aliases a pristine cache
    entry); and :func:`repro.mapping.repair.solve_repair` carries the
    old assignment across the GPU renumbering and repairs it under
    ``solve_budget``.

    ``alpha`` prices migration bytes in the repair objective
    (default :data:`repro.mapping.repair.REPAIR_ALPHA`).

    >>> from repro.apps import build_app
    >>> from repro.gpu.delta import PlatformDelta
    >>> out = remap_stream_graph(
    ...     build_app("Bitonic", 8), "host-star",
    ...     [PlatformDelta.kill_gpu(1)],
    ...     solve_budget=SolveBudget.tier("instant"))
    >>> out.degraded.topology.num_gpus
    3
    >>> out.repair.mapping.tmax > 0
    True
    """
    from repro.gpu.delta import degrade_platform
    from repro.gpu.platforms import build_platform
    from repro.mapping.repair import REPAIR_ALPHA, solve_repair

    if partitioner not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {partitioner!r}")
    if mapper not in MAPPERS:
        raise ValueError(f"unknown mapper {mapper!r}")
    if alpha is None:
        alpha = REPAIR_ALPHA
    if graph_fp is None and cache is not None:
        graph_fp = graph_fingerprint(graph)
    engine = profile_stage(
        graph, spec=spec, seed=seed, cache=cache, graph_fp=graph_fp
    )
    partitions, partitioning = partition_stage(
        graph, engine, partitioner=partitioner, spec=spec,
        cache=cache, graph_fp=graph_fp,
    )
    pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)

    baseline: Optional[MappingResult] = None
    if old_assignment is None:
        base_topology = build_platform(platform)
        baseline = mapping_stage(
            pdg, base_topology.num_gpus, engine, mapper=mapper,
            topology=base_topology, peer_to_peer=peer_to_peer,
            solve_budget=solve_budget, cache=cache, graph_fp=graph_fp,
        )
        old_assignment = baseline.assignment
    degraded = degrade_platform(platform, deltas)
    problem = build_mapping_problem(
        pdg, degraded.topology.num_gpus, topology=degraded.topology,
        peer_to_peer=peer_to_peer,
    )
    repair = solve_repair(
        problem, old_assignment, gpu_map=degraded.gpu_map, alpha=alpha,
        budget=solve_budget, topo_order=pdg.topological_order(),
    )
    return RemapFlowResult(
        graph=graph, pdg=pdg, degraded=degraded, baseline=baseline,
        repair=repair,
    )


def _solve(
    problem: MappingProblem,
    mapper: str,
    graph: StreamGraph,
    partitions: Sequence[FrozenSet[int]],
    static_workload_balance: bool,
    pdg: PartitionDependenceGraph,
    solve_budget: Optional[SolveBudget] = None,
) -> MappingResult:
    if mapper == "portfolio":
        from repro.service.portfolio import solve_portfolio

        answer = solve_portfolio(
            problem, budget=solve_budget,
            topo_order=pdg.topological_order(),
        )
        return answer.mapping
    if mapper == "metaheuristic":
        from repro.mapping.metaheuristic import solve_metaheuristic

        return solve_metaheuristic(
            problem, budget=solve_budget,
            topo_order=pdg.topological_order(),
        )
    if mapper == "ilp":
        try:
            # the process-wide compiled-model cache: sweep grids repeat
            # (graph-shape x platform) signatures, so only the first
            # solve of each shape pays the model assembly
            result = solve_milp(
                problem, budget=solve_budget, model_cache=MODEL_CACHE
            )
        except MilpNoIncumbent:
            # budget exhausted before any incumbent: fall back to the
            # heuristic chain below with an empty starting point
            result = lpt_mapping(problem)
        if not result.optimal:
            # the solver hit its work limit; never return worse than the
            # cheap heuristics (greedy balance, contiguous chain split),
            # then polish the winner with local search — all scored
            # through one compiled kernel (bit-identical, much faster)
            kernel = EvalKernel(problem)
            for fallback in (
                lpt_mapping(problem, kernel=kernel),
                contiguous_mapping(
                    problem, pdg.topological_order(), kernel=kernel
                ),
            ):
                if fallback.tmax < result.tmax:
                    result = fallback
            refined = refine_mapping(
                problem, result.assignment, max_steps=64, use_swaps=False,
                kernel=kernel,
            )
            if refined.tmax < result.tmax:
                result = refined
        return result
    if mapper == "ilp-nocomm":
        return solve_milp(
            problem, include_comm=False, budget=solve_budget,
            model_cache=MODEL_CACHE,
        )
    if mapper == "lpt":
        workloads = None
        if static_workload_balance:
            workloads = [graph.total_work(members) for members in partitions]
        return lpt_mapping(problem, workloads=workloads)
    return round_robin_mapping(problem)
