"""Batched experiment sweeps with pipeline-stage caching.

This package is the execution substrate behind every experiment module
and the ``repro sweep`` command line.  It splits into three pieces:

* :mod:`repro.sweep.spec` — declare a grid of (app, N, GPU count,
  device, partitioner, mapper, peer-to-peer) points;
* :mod:`repro.sweep.cache` — a content-addressed stage cache (memory +
  optional on-disk JSON) keyed on graph fingerprints and strategy knobs;
* :mod:`repro.sweep.runner` — execute points serially or over a process
  pool, deduplicating shared pipeline prefixes.

The stages themselves live in :mod:`repro.flow`; the end-to-end pipeline
they form is documented in ``docs/ARCHITECTURE.md``.

Quick example — two strategies over one app, sharing the profile and
partition work::

    from repro.sweep import StageCache, SweepRunner, SweepSpec

    spec = SweepSpec(cases=[("DES", 8)], gpu_counts=(2,),
                     mappers=("ilp", "lpt"))
    result = SweepRunner(cache=StageCache()).run(spec)
    for rec in result.records:
        print(rec.point.label(), rec.throughput)
    print(result.cache_stats.render())

>>> from repro.sweep import SweepSpec
>>> SweepSpec(cases=[("DES", 8)], mappers=("ilp", "lpt")).size()
2
"""

from repro.sweep.cache import CacheStats, StageCache
from repro.sweep.runner import (
    PointResult,
    SweepResult,
    SweepRunner,
    run_point,
)
from repro.sweep.spec import SweepPoint, SweepSpec, group_points

__all__ = [
    "CacheStats",
    "PointResult",
    "StageCache",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "group_points",
    "run_point",
]
