"""Content-addressed stage cache backing the sweep engine.

Keys come from :func:`repro.flow.stage_key`: ``"<stage>.<sha256>"``
where the digest covers the graph fingerprint plus every knob the stage
reads.  Values are plain JSON — exactly what the flow's stage functions
serialize — so one cache serves both the in-memory fast path and the
optional on-disk store for cross-run (and cross-process) reuse.

>>> cache = StageCache()
>>> cache.put("partition.abc", {"partitions": [[0, 1]], "phase_counts": None})
>>> cache.get("partition.abc")["partitions"]
[[0, 1]]
>>> cache.get("partition.missing") is None
True
>>> cache.stats().hits, cache.stats().misses
(1, 1)
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

try:  # advisory inter-process lock; POSIX only, degraded elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: file name of the shared persisted-counter store inside a cache dir
STATS_FILE = "_stats.json"
#: file name of the inter-process lock guarding read-modify-write of it
LOCK_FILE = "_stats.lock"


def atomic_write_json(directory: str, final_path: str, payload) -> None:
    """Write ``payload`` as JSON to ``final_path`` via temp-file rename.

    The rename is atomic on POSIX, so a concurrent reader (thread or
    process) sees either the previous complete file or the new complete
    file, never a torn write.  Shared by the stage cache, its persisted
    counters, and the service's job store.
    """
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, final_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CacheStats:
    """Hit/miss counters, overall and per pipeline stage."""

    hits: int = 0
    misses: int = 0
    by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, stage: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        bucket = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0})
        bucket["hits" if hit else "misses"] += 1

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set in (used to aggregate worker stats)."""
        self.hits += other.hits
        self.misses += other.misses
        for stage, bucket in other.by_stage.items():
            mine = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0})
            mine["hits"] += bucket["hits"]
            mine["misses"] += bucket["misses"]

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        """One-line human summary, e.g. ``7/12 hits (58%)``."""
        parts = [
            f"{self.hits}/{self.lookups} hits ({self.hit_rate:.0%})"
        ]
        for stage in sorted(self.by_stage):
            bucket = self.by_stage[stage]
            parts.append(f"{stage} {bucket['hits']}/{bucket['hits'] + bucket['misses']}")
        return ", ".join(parts)

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "by_stage": {k: dict(v) for k, v in self.by_stage.items()},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CacheStats":
        stats = cls(hits=payload["hits"], misses=payload["misses"])
        stats.by_stage = {k: dict(v) for k, v in payload["by_stage"].items()}
        return stats

    def since(self, baseline: dict) -> "CacheStats":
        """The counters accumulated after a ``to_json()`` snapshot —
        how one run reports its own lookups on a long-lived cache."""
        delta = CacheStats(
            hits=self.hits - baseline["hits"],
            misses=self.misses - baseline["misses"],
        )
        for stage, bucket in self.by_stage.items():
            base = baseline["by_stage"].get(stage, {"hits": 0, "misses": 0})
            delta.by_stage[stage] = {
                "hits": bucket["hits"] - base["hits"],
                "misses": bucket["misses"] - base["misses"],
            }
        return delta


class StageCache:
    """Two-level (memory + optional disk) store of stage results.

    Parameters
    ----------
    path:
        Directory for the on-disk JSON store.  ``None`` keeps the cache
        purely in memory (one process, one run).  With a path, entries
        are persisted one file per key — concurrent writers (the process
        pool) stay safe because writes go through an atomic rename, and
        a racing duplicate write is idempotent (same key, same content).

    The cache is safe under concurrent *threads* too: the service's
    worker pool shares one instance, so the memory layer and the hit
    counters sit behind a lock.  Disk reads happen outside the lock (a
    torn read is impossible thanks to the atomic rename), so a slow
    filesystem never serializes unrelated workers.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._memory: Dict[str, object] = {}
        self._stats = CacheStats()
        self._lock = threading.RLock()
        #: counters already folded into the stats file (double-count guard)
        self._persisted_baseline = CacheStats().to_json()
        if path is not None:
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _stage_of(key: str) -> str:
        return key.split(".", 1)[0]

    def _file(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def get(self, key: str):
        """The cached value, or ``None``; every call counts in the stats."""
        with self._lock:
            if key in self._memory:
                self._stats.record(self._stage_of(key), hit=True)
                return self._memory[key]
        if self.path is not None:
            try:
                with open(self._file(key)) as fh:
                    value = json.load(fh)
            except (FileNotFoundError, json.JSONDecodeError):
                pass
            else:
                with self._lock:
                    self._memory[key] = value
                    self._stats.record(self._stage_of(key), hit=True)
                return value
        with self._lock:
            self._stats.record(self._stage_of(key), hit=False)
        return None

    def put(self, key: str, value) -> None:
        """Store a JSON-serializable stage result.

        The disk write goes through an atomic temp-file rename, so a
        reader in another thread or process sees either the old file or
        the complete new one, never a torn write.
        """
        with self._lock:
            self._memory[key] = value
        if self.path is not None:
            atomic_write_json(self.path, self._file(key), value)

    def stats(self) -> CacheStats:
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    # disk-store introspection and maintenance (the ``repro cache`` CLI)
    def disk_entries(self) -> List[Tuple[str, str, int]]:
        """Every on-disk entry as ``(stage, key, bytes)``, key-sorted.

        Empty for memory-only caches.
        """
        if self.path is None:
            return []
        out: List[Tuple[str, str, int]] = []
        for name in sorted(os.listdir(self.path)):
            if not name.endswith(".json") or name == STATS_FILE:
                continue
            if name.endswith(".job.json"):
                continue  # a JobStore sharing the directory

            key = name[: -len(".json")]
            try:
                size = os.stat(os.path.join(self.path, name)).st_size
            except OSError:
                continue  # purged by a concurrent writer
            out.append((self._stage_of(key), key, size))
        return out

    def purge(self, stage: Optional[str] = None) -> int:
        """Delete entries (all, or one stage's) from memory *and* disk.

        Returns the number of entries removed from the wider of the two
        layers.  The shared stats file survives a stage-filtered purge
        and is reset by a full one.
        """
        removed_memory = 0
        with self._lock:
            doomed = [
                key for key in self._memory
                if stage is None or self._stage_of(key) == stage
            ]
            for key in doomed:
                del self._memory[key]
            removed_memory = len(doomed)
        removed_disk = 0
        if self.path is not None:
            for entry_stage, key, _ in self.disk_entries():
                if stage is not None and entry_stage != stage:
                    continue
                try:
                    os.unlink(self._file(key))
                    removed_disk += 1
                except OSError:
                    pass
            if stage is None:
                try:
                    os.unlink(os.path.join(self.path, STATS_FILE))
                except OSError:
                    pass
        return max(removed_memory, removed_disk)

    # ------------------------------------------------------------------
    # persisted counters (long-lived cache directories)
    @contextmanager
    def _stats_lock(self):
        """Advisory inter-process lock for stats read-modify-write."""
        if self.path is None or fcntl is None:
            yield
            return
        with open(os.path.join(self.path, LOCK_FILE), "w") as lock_fh:
            fcntl.flock(lock_fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh, fcntl.LOCK_UN)

    def persist_stats(self) -> Optional[CacheStats]:
        """Fold this process's counters into the directory's stats file.

        Multiple processes (service workers, parallel sweeps) may call
        this against one directory; the read-modify-write runs under an
        advisory file lock and the write is an atomic rename.  Repeated
        calls fold only the counters accumulated since the previous
        call, so periodic flushing never double-counts.  Returns the
        merged lifetime counters, or ``None`` on a memory-only cache.
        """
        if self.path is None:
            return None
        with self._stats_lock():
            merged = self.persisted_stats(self.path) or CacheStats()
            with self._lock:
                merged.merge(self._stats.since(self._persisted_baseline))
                self._persisted_baseline = self._stats.to_json()
            atomic_write_json(
                self.path, os.path.join(self.path, STATS_FILE),
                merged.to_json(),
            )
        return merged

    @staticmethod
    def persisted_stats(path: str) -> Optional[CacheStats]:
        """The counters previously persisted into ``path``, if any."""
        try:
            with open(os.path.join(path, STATS_FILE)) as fh:
                return CacheStats.from_json(json.load(fh))
        except (FileNotFoundError, json.JSONDecodeError, KeyError):
            return None
