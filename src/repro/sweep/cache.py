"""Content-addressed stage cache backing the sweep engine.

Keys come from :func:`repro.flow.stage_key`: ``"<stage>.<sha256>"``
where the digest covers the graph fingerprint plus every knob the stage
reads.  Values are plain JSON — exactly what the flow's stage functions
serialize — so one cache serves both the in-memory fast path and the
optional on-disk store for cross-run (and cross-process) reuse.

>>> cache = StageCache()
>>> cache.put("partition.abc", {"partitions": [[0, 1]], "phase_counts": None})
>>> cache.get("partition.abc")["partitions"]
[[0, 1]]
>>> cache.get("partition.missing") is None
True
>>> cache.stats().hits, cache.stats().misses
(1, 1)
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CacheStats:
    """Hit/miss counters, overall and per pipeline stage."""

    hits: int = 0
    misses: int = 0
    by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, stage: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        bucket = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0})
        bucket["hits" if hit else "misses"] += 1

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set in (used to aggregate worker stats)."""
        self.hits += other.hits
        self.misses += other.misses
        for stage, bucket in other.by_stage.items():
            mine = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0})
            mine["hits"] += bucket["hits"]
            mine["misses"] += bucket["misses"]

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        """One-line human summary, e.g. ``7/12 hits (58%)``."""
        parts = [
            f"{self.hits}/{self.lookups} hits ({self.hit_rate:.0%})"
        ]
        for stage in sorted(self.by_stage):
            bucket = self.by_stage[stage]
            parts.append(f"{stage} {bucket['hits']}/{bucket['hits'] + bucket['misses']}")
        return ", ".join(parts)

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "by_stage": {k: dict(v) for k, v in self.by_stage.items()},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CacheStats":
        stats = cls(hits=payload["hits"], misses=payload["misses"])
        stats.by_stage = {k: dict(v) for k, v in payload["by_stage"].items()}
        return stats

    def since(self, baseline: dict) -> "CacheStats":
        """The counters accumulated after a ``to_json()`` snapshot —
        how one run reports its own lookups on a long-lived cache."""
        delta = CacheStats(
            hits=self.hits - baseline["hits"],
            misses=self.misses - baseline["misses"],
        )
        for stage, bucket in self.by_stage.items():
            base = baseline["by_stage"].get(stage, {"hits": 0, "misses": 0})
            delta.by_stage[stage] = {
                "hits": bucket["hits"] - base["hits"],
                "misses": bucket["misses"] - base["misses"],
            }
        return delta


class StageCache:
    """Two-level (memory + optional disk) store of stage results.

    Parameters
    ----------
    path:
        Directory for the on-disk JSON store.  ``None`` keeps the cache
        purely in memory (one process, one run).  With a path, entries
        are persisted one file per key — concurrent writers (the process
        pool) stay safe because writes go through an atomic rename, and
        a racing duplicate write is idempotent (same key, same content).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._memory: Dict[str, object] = {}
        self._stats = CacheStats()
        if path is not None:
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _stage_of(key: str) -> str:
        return key.split(".", 1)[0]

    def _file(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def get(self, key: str):
        """The cached value, or ``None``; every call counts in the stats."""
        if key in self._memory:
            self._stats.record(self._stage_of(key), hit=True)
            return self._memory[key]
        if self.path is not None:
            try:
                with open(self._file(key)) as fh:
                    value = json.load(fh)
            except (FileNotFoundError, json.JSONDecodeError):
                pass
            else:
                self._memory[key] = value
                self._stats.record(self._stage_of(key), hit=True)
                return value
        self._stats.record(self._stage_of(key), hit=False)
        return None

    def put(self, key: str, value) -> None:
        """Store a JSON-serializable stage result."""
        self._memory[key] = value
        if self.path is not None:
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(value, fh)
                os.replace(tmp, self._file(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def stats(self) -> CacheStats:
        return self._stats

    def __len__(self) -> int:
        return len(self._memory)

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        self._memory.clear()
