"""Sweep grids: declarative (app × machine × strategy) experiment spaces.

A :class:`SweepSpec` names the axes; :meth:`SweepSpec.expand` produces
the cross product as :class:`SweepPoint` records, ordered so that points
sharing a pipeline prefix (same graph, same device, same partitioner)
are adjacent — the runner exploits that adjacency to profile and
partition each unique prefix once.

>>> spec = SweepSpec(cases=[("DES", 4)], gpu_counts=(1, 2), mappers=("ilp", "lpt"))
>>> points = spec.expand()
>>> len(points)
4
>>> points[0].label()
'DES/4 M2090 g1 ours/ilp p2p'
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.flow import MAPPERS, PARTITIONERS
from repro.gpu.platforms import PLATFORM_NAMES, platform_num_gpus
from repro.gpu.specs import C2070, M2090, GpuSpec
from repro.graph.stream_graph import StreamGraph

#: named devices a SweepPoint may target
SPECS: Dict[str, GpuSpec] = {"M2090": M2090, "C2070": C2070}


def _transform_none(graph: StreamGraph) -> StreamGraph:
    return graph


def _transform_eliminate_movers(graph: StreamGraph) -> StreamGraph:
    from repro.opt.splitjoin_elim import eliminate_movers

    return eliminate_movers(graph)[0]


#: named graph transforms applied between build_app and the flow;
#: referenced by name so SweepPoints stay picklable
TRANSFORMS: Dict[str, Callable[[StreamGraph], StreamGraph]] = {
    "none": _transform_none,
    "eliminate-movers": _transform_eliminate_movers,
}


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified run of the mapping flow.

    Points are immutable, hashable, and built from primitives only, so
    they pickle cleanly across the process-pool boundary and can serve
    as dictionary keys when assembling result tables.
    """

    app: str
    n: int
    num_gpus: int = 1
    spec: str = "M2090"
    partitioner: str = "ours"
    mapper: str = "ilp"
    peer_to_peer: bool = True
    seed: int = 0
    static_workload_balance: bool = False
    gpu_slowdown: Optional[Tuple[float, ...]] = None
    executions_per_fragment: int = 128
    #: named graph transform applied after build_app (see
    #: repro.sweep.runner.TRANSFORMS); "none" is the identity
    transform: str = "none"
    #: named machine from :mod:`repro.gpu.platforms`; ``None`` targets
    #: the reference tree of ``num_gpus`` GPUs.  A named platform fixes
    #: the GPU count, so ``num_gpus`` must agree with it.
    platform: Optional[str] = None

    def __post_init__(self) -> None:
        if self.partitioner not in PARTITIONERS:
            raise ValueError(f"unknown partitioner {self.partitioner!r}")
        if self.mapper not in MAPPERS:
            raise ValueError(f"unknown mapper {self.mapper!r}")
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.spec not in SPECS:
            raise ValueError(
                f"unknown spec {self.spec!r}; known: {', '.join(sorted(SPECS))}"
            )
        if self.transform not in TRANSFORMS:
            raise ValueError(
                f"unknown transform {self.transform!r}; "
                f"known: {', '.join(sorted(TRANSFORMS))}"
            )
        if self.platform is not None:
            if self.platform not in PLATFORM_NAMES:
                raise ValueError(
                    f"unknown platform {self.platform!r}; "
                    f"known: {', '.join(PLATFORM_NAMES)}"
                )
            expected = platform_num_gpus(self.platform)
            if self.num_gpus != expected:
                raise ValueError(
                    f"platform {self.platform!r} has {expected} GPUs, "
                    f"not {self.num_gpus}"
                )

    def group_key(self) -> Tuple:
        """Points with equal group keys share a graph and an engine —
        the unit of prefix deduplication (and of process-pool work)."""
        return (self.app, self.n, self.spec, self.seed, self.transform)

    def label(self) -> str:
        """Compact human-readable identity for progress lines."""
        p2p = "p2p" if self.peer_to_peer else "via-host"
        extra = "" if self.transform == "none" else f" +{self.transform}"
        machine = (
            self.platform if self.platform is not None
            else f"g{self.num_gpus}"
        )
        return (
            f"{self.app}/{self.n} {self.spec} {machine} "
            f"{self.partitioner}/{self.mapper} {p2p}{extra}"
        )


@dataclass
class SweepSpec:
    """A grid of sweep points.

    ``cases`` lists (app, N) instances; the remaining axes multiply.
    Axis values mirror the knobs of :func:`repro.flow.map_stream_graph`.

    >>> SweepSpec(cases=[("DCT", 6)], partitioners=("ours", "single")).size()
    2
    """

    cases: Sequence[Tuple[str, int]] = field(default_factory=list)
    gpu_counts: Sequence[int] = (1,)
    specs: Sequence[str] = ("M2090",)
    partitioners: Sequence[str] = ("ours",)
    mappers: Sequence[str] = ("ilp",)
    peer_to_peer: Sequence[bool] = (True,)
    seed: int = 0
    executions_per_fragment: int = 128
    #: synthetic-corpus axis: (family, seed) instances from
    #: :mod:`repro.synth`, addressed as ``synth:<family>`` apps with the
    #: generator seed riding in the point's ``n`` — they expand, group,
    #: cache, and parallelize exactly like bundled-benchmark cases
    synth_cases: Sequence[Tuple[str, int]] = field(default_factory=list)
    #: machine axis: each entry is either ``None`` (the reference tree,
    #: one point per ``gpu_counts`` value) or a named platform from
    #: :mod:`repro.gpu.platforms` (one point; the platform fixes its own
    #: GPU count).  The default sweeps the reference trees only.
    platforms: Sequence[Optional[str]] = (None,)

    def _all_cases(self) -> List[Tuple[str, int]]:
        """Bundled cases plus synth cases in app-name form.

        >>> spec = SweepSpec(cases=[("DES", 4)], synth_cases=[("dag", 7)])
        >>> spec._all_cases()
        [('DES', 4), ('synth:dag', 7)]
        """
        cases = list(self.cases)
        for family, seed in self.synth_cases:
            app = family if family.startswith("synth:") else f"synth:{family}"
            cases.append((app, seed))
        return cases

    def _machines(self) -> List[Tuple[Optional[str], int]]:
        """The machine axis as (platform, num_gpus) pairs.

        >>> SweepSpec(gpu_counts=(1, 2), platforms=(None, "two-island"))._machines()
        [(None, 1), (None, 2), ('two-island', 4)]
        """
        machines: List[Tuple[Optional[str], int]] = []
        for platform in self.platforms:
            if platform is None:
                machines.extend((None, gpus) for gpus in self.gpu_counts)
            else:
                machines.append((platform, platform_num_gpus(platform)))
        return machines

    def size(self) -> int:
        """Number of points :meth:`expand` will produce."""
        return (
            (len(self.cases) + len(self.synth_cases))
            * len(self._machines()) * len(self.specs)
            * len(self.partitioners) * len(self.mappers)
            * len(self.peer_to_peer)
        )

    def expand(self) -> List[SweepPoint]:
        """The grid as an ordered point list.

        Prefix-friendly order: all points of one (app, N, device) group
        are adjacent, and within a group all points of one partitioner
        are adjacent, so a warm cache (or shared engine) serves every
        repeat of the prefix immediately after it is first computed.
        """
        points: List[SweepPoint] = []
        machines = self._machines()
        for (app, n), spec in itertools.product(self._all_cases(), self.specs):
            for partitioner in self.partitioners:
                for (platform, gpus), mapper, p2p in itertools.product(
                    machines, self.mappers, self.peer_to_peer
                ):
                    points.append(
                        SweepPoint(
                            app=app,
                            n=n,
                            num_gpus=gpus,
                            spec=spec,
                            partitioner=partitioner,
                            mapper=mapper,
                            peer_to_peer=p2p,
                            seed=self.seed,
                            executions_per_fragment=(
                                self.executions_per_fragment
                            ),
                            platform=platform,
                        )
                    )
        return points


def group_points(
    points: Iterable[SweepPoint],
) -> List[List[SweepPoint]]:
    """Partition points into prefix groups, preserving first-seen order.

    Each group shares (app, N, device, seed, transform): one graph
    build, one profiling pass, one engine.  Groups are the scheduling
    unit of the process-pool executor so intra-group reuse happens
    inside one worker.

    >>> spec = SweepSpec(cases=[("DES", 4), ("DCT", 6)], gpu_counts=(1, 2))
    >>> [len(group) for group in group_points(spec.expand())]
    [2, 2]
    """
    order: List[Tuple] = []
    buckets = {}
    for point in points:
        key = point.group_key()
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(point)
    return [buckets[key] for key in order]
