"""The sweep execution engine: batched, cached, optionally parallel.

``SweepRunner`` is the single execution substrate for every experiment
in :mod:`repro.experiments` and for the ``repro sweep`` command line.
It takes the points of a :class:`~repro.sweep.spec.SweepSpec`, groups
them by shared pipeline prefix (same graph, same device), and runs each
point through the staged flow of :mod:`repro.flow`:

* within a group, one graph build and one profiling pass serve every
  strategy variant (the engine and its estimate memo are shared);
* across groups and runs, the :class:`~repro.sweep.cache.StageCache`
  replays profile, partition, ILP-mapping, and kernel-measurement
  results keyed on content fingerprints;
* with ``parallel=True``, prefix groups fan out over a
  ``concurrent.futures`` process pool, each worker warming the same
  on-disk cache.

Every stage is a deterministic function of its knobs.  (Historically
the MILP solve carried a 10 s wall-clock limit, so a very large
instance could resolve differently under machine load; since the
:class:`~repro.mapping.SolveBudget` refactor the default limit is a
deterministic node cap, and wall-clock limits are an explicit opt-in
via ``REPRO_MILP_TIME_LIMIT_S``.  The stage cache still pins first
results, which keeps replays bit-identical even for opted-in
wall-clock runs.)
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.apps.registry import build_app
from repro.flow import FlowResult, map_stream_graph, profile_stage
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.stream_graph import StreamGraph
from repro.sweep.cache import CacheStats, StageCache
from repro.sweep.spec import (
    SPECS,
    TRANSFORMS,
    SweepPoint,
    SweepSpec,
    group_points,
)


@dataclass(frozen=True)
class PointResult:
    """Headline numbers of one executed sweep point.

    Compact and picklable: this is what crosses the process-pool
    boundary.  The full :class:`~repro.flow.FlowResult` is retained only
    for serial runs with ``keep_flows=True`` (see
    :meth:`SweepResult.flow`).
    """

    point: SweepPoint
    throughput: float
    tmax: float
    beat_ns: float
    makespan_ns: float
    num_partitions: int
    assignment: Tuple[int, ...]
    solver: str
    optimal: bool
    wall_s: float

    def row(self) -> Dict[str, object]:
        """The point as a report-table row."""
        return {
            "app": self.point.app,
            "N": self.point.n,
            **(
                {"platform": self.point.platform}
                if self.point.platform is not None else {}
            ),
            "gpus": self.point.num_gpus,
            "partitioner": self.point.partitioner,
            "mapper": self.point.mapper,
            "p2p": self.point.peer_to_peer,
            "P": self.num_partitions,
            "tmax(us)": self.tmax / 1e3,
            "beat(us)": self.beat_ns / 1e3,
            "thr(exec/ms)": self.throughput * 1e6,
            "wall(s)": self.wall_s,
        }


@dataclass
class SweepResult:
    """Everything a finished sweep produced."""

    records: List[PointResult]
    wall_s: float
    cache_stats: Optional[CacheStats] = None
    _flows: Optional[Dict[SweepPoint, FlowResult]] = field(
        default=None, repr=False
    )

    def __len__(self) -> int:
        return len(self.records)

    def record(self, point: SweepPoint) -> PointResult:
        """The record of ``point`` (KeyError if it was not in the sweep)."""
        for rec in self.records:
            if rec.point == point:
                return rec
        raise KeyError(point)

    def flow(self, point: SweepPoint) -> FlowResult:
        """The full FlowResult of ``point``.

        Only available from serial runs with ``keep_flows=True``; the
        parallel executor ships compact records only.
        """
        if self._flows is None:
            raise RuntimeError(
                "FlowResults were not retained; run serially with "
                "keep_flows=True"
            )
        return self._flows[point]

    def rows(self) -> List[Dict[str, object]]:
        """All records as report-table rows."""
        return [rec.row() for rec in self.records]


def build_point_graph(point: SweepPoint) -> StreamGraph:
    """Build (and optionally transform) the stream graph of a point."""
    graph = build_app(point.app, point.n)
    try:
        transform = TRANSFORMS[point.transform]
    except KeyError:
        raise ValueError(f"unknown graph transform {point.transform!r}") from None
    return transform(graph)


def run_point(
    point: SweepPoint,
    engine=None,
    cache: Optional[StageCache] = None,
    graph: Optional[StreamGraph] = None,
    graph_fp: Optional[str] = None,
) -> Tuple[FlowResult, float]:
    """Execute one point; returns (FlowResult, wall seconds).

    ``engine``/``graph``/``graph_fp`` let a caller executing a prefix
    group amortize the graph build and profiling across the group's
    points; omitted, they are created here.

    >>> from repro.sweep.spec import SweepPoint
    >>> flow, wall = run_point(SweepPoint(app="Bitonic", n=8, num_gpus=2))
    >>> flow.num_gpus, flow.throughput > 0
    (2, True)
    """
    start = time.perf_counter()
    if graph is None:
        graph = build_point_graph(point)
    spec = SPECS[point.spec]
    flow = map_stream_graph(
        graph,
        num_gpus=point.num_gpus,
        spec=spec,
        partitioner=point.partitioner,
        mapper=point.mapper,
        peer_to_peer=point.peer_to_peer,
        platform=point.platform,
        engine=engine,
        executions_per_fragment=point.executions_per_fragment,
        static_workload_balance=point.static_workload_balance,
        gpu_slowdown=(
            list(point.gpu_slowdown) if point.gpu_slowdown else None
        ),
        seed=point.seed,
        cache=cache,
        graph_fp=graph_fp,
    )
    return flow, time.perf_counter() - start


def _point_record(point: SweepPoint, flow: FlowResult, wall: float) -> PointResult:
    return PointResult(
        point=point,
        throughput=flow.throughput,
        tmax=flow.mapping.tmax,
        beat_ns=flow.report.beat_ns,
        makespan_ns=flow.report.makespan_ns,
        num_partitions=flow.num_partitions,
        assignment=tuple(flow.mapping.assignment),
        solver=flow.mapping.solver,
        optimal=flow.mapping.optimal,
        wall_s=wall,
    )


def _run_group(
    points: Sequence[SweepPoint],
    cache: Optional[StageCache],
    keep_flows: bool,
    progress: Optional[Callable[[str], None]] = None,
    done_offset: int = 0,
    total: Optional[int] = None,
) -> Tuple[List[PointResult], Dict[SweepPoint, FlowResult]]:
    """Execute one prefix group with a shared graph + engine."""
    records: List[PointResult] = []
    flows: Dict[SweepPoint, FlowResult] = {}
    first = points[0]
    graph = build_point_graph(first)
    graph_fp = graph_fingerprint(graph) if cache is not None else None
    engine = profile_stage(
        graph, spec=SPECS[first.spec], seed=first.seed,
        cache=cache, graph_fp=graph_fp,
    )
    for i, point in enumerate(points):
        flow, wall = run_point(
            point, engine=engine, cache=cache, graph=graph, graph_fp=graph_fp
        )
        records.append(_point_record(point, flow, wall))
        if keep_flows:
            flows[point] = flow
        if progress is not None:
            count = f"[{done_offset + i + 1}/{total}] " if total else ""
            progress(f"{count}{point.label()}  {wall:.2f}s")
    return records, flows


def _pool_worker(
    payload: Tuple[List[SweepPoint], Optional[str]]
) -> Tuple[List[PointResult], dict]:
    """Process-pool entry: run one prefix group against the shared
    on-disk cache — or uncached, when the parent runner has no cache."""
    points, cache_path = payload
    cache = StageCache(cache_path) if cache_path is not None else None
    records, _ = _run_group(points, cache, keep_flows=False)
    stats = cache.stats().to_json() if cache is not None else CacheStats().to_json()
    return records, stats


class SweepRunner:
    """Execute sweep points serially or over a process pool.

    Parameters
    ----------
    cache:
        A :class:`~repro.sweep.cache.StageCache`; ``None`` disables
        caching.  For parallel runs, give the cache an on-disk ``path``
        so workers share entries (each worker opens the same directory);
        a memory-only cache cannot cross the pool boundary, so with one
        configured the runner executes serially instead.
    parallel:
        Fan prefix groups out over a process pool.
    workers:
        Pool size (default: ``os.cpu_count()``).
    progress:
        ``True`` prints one line per finished point/group to stderr; a
        callable receives the lines instead.
    """

    def __init__(
        self,
        cache: Optional[StageCache] = None,
        parallel: bool = False,
        workers: Optional[int] = None,
        progress: Union[bool, Callable[[str], None], None] = None,
    ) -> None:
        self.cache = cache
        self.parallel = parallel
        self.workers = workers
        if progress is True:
            self._progress: Optional[Callable[[str], None]] = (
                lambda msg: print(msg, file=sys.stderr)
            )
        elif callable(progress):
            self._progress = progress
        else:
            self._progress = None

    # ------------------------------------------------------------------
    def run(
        self,
        spec_or_points: Union[SweepSpec, Sequence[SweepPoint]],
        keep_flows: bool = False,
    ) -> SweepResult:
        """Execute a grid and collect records (spec order preserved).

        >>> from repro.sweep import SweepSpec
        >>> spec = SweepSpec(cases=[("Bitonic", 8)], gpu_counts=(1, 2))
        >>> result = SweepRunner(cache=StageCache()).run(spec)
        >>> [rec.point.num_gpus for rec in result.records]
        [1, 2]
        """
        points = (
            spec_or_points.expand()
            if isinstance(spec_or_points, SweepSpec)
            else list(spec_or_points)
        )
        groups = group_points(points)
        start = time.perf_counter()
        flows: Optional[Dict[SweepPoint, FlowResult]] = None
        # a memory-only cache cannot cross the pool boundary (workers
        # would fill private copies), so it forces serial execution —
        # same policy as map(); its reuse beats pool overhead anyway
        memory_cache = self.cache is not None and self.cache.path is None
        if self.parallel and len(groups) > 1 and not memory_cache:
            if keep_flows:
                raise ValueError(
                    "keep_flows requires a serial run (FlowResults do not "
                    "cross the process-pool boundary)"
                )
            records, stats = self._run_parallel(groups)
        else:
            # single-group sweeps run serially even on a parallel runner,
            # so their FlowResults are available and keep_flows honors them
            records, flows, stats = self._run_serial(groups, keep_flows, points)
        wall = time.perf_counter() - start
        by_point = {rec.point: rec for rec in records}
        ordered = [by_point[point] for point in points]
        result = SweepResult(
            records=ordered, wall_s=wall, cache_stats=stats,
        )
        if keep_flows and flows is not None:
            result._flows = flows
        return result

    def _run_serial(self, groups, keep_flows, points):
        records: List[PointResult] = []
        flows: Dict[SweepPoint, FlowResult] = {}
        done = 0
        baseline = (
            self.cache.stats().to_json() if self.cache is not None else None
        )
        for group in groups:
            group_records, group_flows = _run_group(
                group, self.cache, keep_flows,
                progress=self._progress, done_offset=done, total=len(points),
            )
            records.extend(group_records)
            flows.update(group_flows)
            done += len(group)
        # report this run's lookups, not the cache's lifetime counters
        stats = (
            self.cache.stats().since(baseline)
            if self.cache is not None else None
        )
        return records, flows, stats

    def _run_parallel(self, groups):
        cache_path = self.cache.path if self.cache is not None else None
        stats = CacheStats()
        records: List[PointResult] = []
        done = 0
        total = sum(len(g) for g in groups)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(group, cache_path) for group in groups]
            for group_records, stats_json in pool.map(_pool_worker, payloads):
                records.extend(group_records)
                stats.merge(CacheStats.from_json(stats_json))
                done += len(group_records)
                if self._progress is not None:
                    first = group_records[0].point
                    self._progress(
                        f"[{done}/{total}] group {first.app}/{first.n} "
                        f"{first.spec} done ({len(group_records)} points)"
                    )
        return records, stats

    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Iterable) -> List:
        """Run ``fn`` over ``items`` through the runner's executor.

        The generic escape hatch for experiment steps that are not plain
        flow invocations (model-validation scatters, cross-GPU replays).
        Order is preserved.  Under ``parallel=True`` the callable must be
        picklable (a module-level function or ``functools.partial``).

        Caching across the pool boundary only works through the disk: a
        callable closing over an in-memory-only StageCache would mutate
        pickled copies whose entries never return, so in that
        configuration the runner executes serially instead (the cache's
        reuse is worth more than pool overhead on shared-core boxes).
        With a disk-backed cache workers share entries through the
        store, though their hit/miss stats are not folded back here.
        """
        items = list(items)
        in_memory_cache = self.cache is not None and self.cache.path is None
        if self.parallel and len(items) > 1 and not in_memory_cache:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(fn, items))
        out = []
        for i, item in enumerate(items):
            start = time.perf_counter()
            out.append(fn(item))
            if self._progress is not None:
                self._progress(
                    f"[{i + 1}/{len(items)}] {item!r}  "
                    f"{time.perf_counter() - start:.2f}s"
                )
        return out
