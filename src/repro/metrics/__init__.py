"""Evaluation metrics: SOSP (Section 4.0.4/4.0.5) and statistics."""

from repro.metrics.sosp import SospAnalysis, sosp, sosp_validity_bound
from repro.metrics.stats import geometric_mean, r_squared

__all__ = [
    "SospAnalysis",
    "geometric_mean",
    "r_squared",
    "sosp",
    "sosp_validity_bound",
]
