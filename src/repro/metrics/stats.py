"""Small statistics helpers used by the experiments."""

from __future__ import annotations

import math
from typing import Sequence


def r_squared(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Coefficient of determination of ``predicted`` vs ``actual``.

    This is the R² the paper quotes for Figure 4.1 (0.972): how much of
    the measurement variance the prediction explains.
    """
    if len(predicted) != len(actual) or not actual:
        raise ValueError("need two equal-length, non-empty sequences")
    mean = sum(actual) / len(actual)
    ss_tot = sum((a - mean) ** 2 for a in actual)
    ss_res = sum((a - p) ** 2 for p, a in zip(predicted, actual))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's average for ratios)."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
