"""The SOSP metric — Speedup Over Single-Partition mapping.

Section 4.0.4: raw runtimes are not comparable across GPUs ([7] measured
on a C2070, the paper on an M2090), so the paper compares *relative*
speedups: the throughput of a multi-partition multi-GPU (MPMG) mapping
divided by the throughput of the single-partition single-GPU (SPSG)
mapping of [10] on the same hardware.  Both systems implement the same
SPSG baseline, making the ratio meaningful across them.

Section 4.0.5 argues SOSP transfers across the two GPUs within a ~12%
error bound: the M2090 is a uniformly scaled C2070 (compute +29%, memory
bandwidth +23%), so any mapping's runtime scales by a factor between the
two and the SOSP ratio moves by at most roughly the difference, twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import C2070, M2090, GpuSpec
from repro.runtime.executor import ExecutionReport


def sosp(mpmg: ExecutionReport, spsg: ExecutionReport) -> float:
    """Throughput of a mapping relative to the SPSG baseline."""
    return mpmg.throughput / spsg.throughput


def sosp_validity_bound(g1: GpuSpec = C2070, g2: GpuSpec = M2090) -> float:
    """The paper's error bound for transferring SOSP between two scaled
    GPUs: twice the gap between their compute and bandwidth scale-ups
    (Section 4.0.5 derives 2 * (29% - 23%) = 12%)."""
    compute_gain = g2.peak_throughput_proxy / g1.peak_throughput_proxy - 1.0
    bandwidth_gain = g2.mem_bandwidth_gbps / g1.mem_bandwidth_gbps - 1.0
    return 2.0 * abs(compute_gain - bandwidth_gain)


@dataclass(frozen=True)
class SospAnalysis:
    """Figure 4.4's four cases for one application."""

    app: str
    n: int
    num_gpus: int
    sosp_g1: float  # SPSG vs MPMG on the C2070
    sosp_g2: float  # SPSG vs MPMG on the M2090

    @property
    def relative_error(self) -> float:
        """|SOSP(G2) - SOSP(G1)| / SOSP(G1): how far the metric moves
        when carried across the two GPUs."""
        if self.sosp_g1 == 0:
            return float("inf")
        return abs(self.sosp_g2 - self.sosp_g1) / self.sosp_g1

    def within_bound(self, slack: float = 1.0) -> bool:
        """Whether the cross-GPU error respects the Section 4.0.5 bound
        (scaled by ``slack``)."""
        return self.relative_error <= sosp_validity_bound() * slack
