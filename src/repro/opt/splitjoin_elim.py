"""Splitter/joiner elimination (Chapter V, Figures 5.1 and 5.2).

Splitters and joiners "do not manipulate their input data ... while they
do not have any effect on the data, their run-time contribution is
significant".  This transform removes them from the flat graph:

* An eliminated **splitter** re-points each branch at the splitter's
  producer.  Duplicate branches read the producer's output block
  directly (Fig 5.1c); round-robin branches read a strided *slice* of it
  (``Channel.slice_*``).  Either way all the new channels share one
  physical buffer (``alias_group``), so the shared-memory footprint drops
  along with the splitter's compute time.

* An eliminated **joiner** re-points its consumer at the joiner's
  producers.  The consumer now faces the "fragmentation problem"
  (Fig 5.2c): its input window must be reassembled round-robin from
  several channels, recorded as an ``interleave`` pattern in the node's
  metadata and honoured by both the functional VM and the code
  generator.

Only movers whose rates divide evenly (each producer firing maps to a
whole number of slice periods) are eliminated; others are left in place.
The transform rebuilds the graph, re-solves the repetition vector, and
reports what it removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.filters import FilterRole
from repro.graph.scheduling import solve_repetition_vector
from repro.graph.stream_graph import Channel, StreamGraph


@dataclass(frozen=True)
class ElimReport:
    """What the transform removed."""

    splitters_removed: int
    joiners_removed: int
    splitters_kept: int
    joiners_kept: int

    @property
    def total_removed(self) -> int:
        return self.splitters_removed + self.joiners_removed


def eliminate_movers(
    graph: StreamGraph,
    eliminate_splitters: bool = True,
    eliminate_joiners: bool = True,
) -> Tuple[StreamGraph, ElimReport]:
    """Return a transformed copy of ``graph`` with movers eliminated."""
    removable: Set[int] = set()
    split_kept = join_kept = split_removed = join_removed = 0
    for node in graph.nodes:
        role = node.spec.role
        if role is FilterRole.SPLITTER and eliminate_splitters:
            if _splitter_removable(graph, node.node_id, removable):
                removable.add(node.node_id)
                split_removed += 1
            else:
                split_kept += 1
        elif role is FilterRole.SPLITTER:
            split_kept += 1
        elif role is FilterRole.JOINER and eliminate_joiners:
            if _joiner_removable(graph, node.node_id, removable):
                removable.add(node.node_id)
                join_removed += 1
            else:
                join_kept += 1
        elif role is FilterRole.JOINER:
            join_kept += 1

    new_graph = _rebuild(graph, removable)
    report = ElimReport(
        splitters_removed=split_removed,
        joiners_removed=join_removed,
        splitters_kept=split_kept,
        joiners_kept=join_kept,
    )
    return new_graph, report


# ----------------------------------------------------------------------
# eligibility
# ----------------------------------------------------------------------
def _splitter_removable(graph: StreamGraph, nid: int, removed: Set[int]) -> bool:
    node = graph.nodes[nid]
    in_chans = graph.in_channels(nid)
    if len(in_chans) != 1:
        return False  # feedback join or primary-input splitter
    producer_chan = in_chans[0]
    if producer_chan.src in removed:
        return False  # chained movers: eliminate one layer per pass
    if producer_chan.delay:
        return False
    # each producer firing must cover whole slice periods
    period = node.spec.pop
    if producer_chan.src_push % period:
        return False
    out_chans = graph.out_channels(nid)
    if node.spec.semantics == "roundrobin":
        weights = node.spec.params
        if len(weights) != len(out_chans):
            return False
    return bool(out_chans)


def _joiner_removable(graph: StreamGraph, nid: int, removed: Set[int]) -> bool:
    node = graph.nodes[nid]
    out_chans = graph.out_channels(nid)
    if len(out_chans) != 1:
        return False
    consumer_chan = out_chans[0]
    if consumer_chan.dst in removed:
        return False
    if consumer_chan.delay:
        return False
    if consumer_chan.effective_peek > consumer_chan.dst_pop:
        return False  # sliding windows cannot interleave cleanly
    # the consumer's pop must cover whole join rounds so its interleave
    # pattern is a clean cycle
    if consumer_chan.dst_pop % node.spec.push:
        return False
    in_chans = graph.in_channels(nid)
    if any(ch.delay for ch in in_chans):
        return False
    weights = node.spec.params
    return len(weights) == len(in_chans) and bool(in_chans)


# ----------------------------------------------------------------------
# rebuild
# ----------------------------------------------------------------------
def _rebuild(graph: StreamGraph, removed: Set[int]) -> StreamGraph:
    out = StreamGraph(f"{graph.name}+elim", elem_bytes=graph.elem_bytes)
    id_map: Dict[int, int] = {}
    for node in graph.nodes:
        if node.node_id in removed:
            continue
        new_node = out.add_node(node.spec)
        new_node.pipeline_id = node.pipeline_id
        if node.meta:
            new_node.meta = dict(node.meta)
        id_map[node.node_id] = new_node.node_id

    alias_counter = 0
    # joiner-elimination interleave patterns keyed by new consumer id:
    interleave: Dict[int, List[Tuple[int, int]]] = {}

    for ch in graph.channels:
        if ch.src in removed or ch.dst in removed:
            continue
        out.add_channel(
            id_map[ch.src], id_map[ch.dst], ch.src_push, ch.dst_pop,
            ch.dst_peek, ch.delay,
        )

    for nid in sorted(removed):
        node = graph.nodes[nid]
        if node.spec.role is FilterRole.SPLITTER:
            alias_counter += 1
            _rewire_splitter(graph, out, id_map, nid, alias_counter)
        else:
            _rewire_joiner(graph, out, id_map, nid, interleave)

    for new_id, pattern in interleave.items():
        node = out.nodes[new_id]
        node.meta = dict(node.meta or {})
        node.meta["interleave"] = pattern

    out.pipelines = [
        [id_map[n] for n in seg if n in id_map] for seg in graph.pipelines
    ]
    out.pipelines = [seg for seg in out.pipelines if len(seg) >= 2]
    solve_repetition_vector(out)
    return out


def _rewire_splitter(
    graph: StreamGraph,
    out: StreamGraph,
    id_map: Dict[int, int],
    nid: int,
    alias_group: int,
) -> None:
    node = graph.nodes[nid]
    producer_chan = graph.in_channels(nid)[0]
    producer = id_map[producer_chan.src]
    period = node.spec.pop
    duplicate = node.spec.semantics == "duplicate"
    weights = node.spec.params
    offset = 0
    for branch_idx, ch in enumerate(graph.out_channels(nid)):
        consumer = id_map[ch.dst]
        if duplicate:
            # consumer reads the producer's block directly (Fig 5.1c)
            width = ch.src_push
            push = producer_chan.src_push * width // period
            new = out.add_channel(
                producer, consumer, push, ch.dst_pop, ch.dst_peek
            )
            new.alias_group = alias_group
        else:
            width = weights[branch_idx]
            push = producer_chan.src_push * width // period
            new = out.add_channel(
                producer, consumer, push, ch.dst_pop, ch.dst_peek
            )
            new.alias_group = alias_group
            new.slice_offset = offset
            new.slice_period = period
            new.slice_width = width
            offset += width


def _rewire_joiner(
    graph: StreamGraph,
    out: StreamGraph,
    id_map: Dict[int, int],
    nid: int,
    interleave: Dict[int, List[Tuple[int, int]]],
) -> None:
    node = graph.nodes[nid]
    consumer_chan = graph.out_channels(nid)[0]
    consumer = id_map[consumer_chan.dst]
    weights = node.spec.params
    pattern: List[Tuple[int, int]] = []
    for branch_idx, ch in enumerate(graph.in_channels(nid)):
        producer = id_map[ch.src]
        weight = weights[branch_idx]
        # consumer pops its share of each branch per firing
        pop = consumer_chan.dst_pop * weight // node.spec.push
        out.add_channel(producer, consumer, ch.src_push, pop)
        global_chan_idx = len(out.channels) - 1
        pattern.append((global_chan_idx, weight))
    interleave[consumer] = pattern
