"""Mapping optimizations beyond the core flow.

* :mod:`repro.opt.splitjoin_elim` — Chapter V splitter/joiner elimination,
* :mod:`repro.opt.fission` — stateless-filter fission (the related work's
  load-balancing transformation).
"""

from repro.opt.fission import FissionReport, fission_filters, fissionable
from repro.opt.splitjoin_elim import ElimReport, eliminate_movers

__all__ = [
    "ElimReport",
    "FissionReport",
    "eliminate_movers",
    "fission_filters",
    "fissionable",
]
