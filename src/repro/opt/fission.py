"""Stateless-filter fission.

The related work balances multiprocessor loads by "fusioning/fissioning
of stateless filters" ([3, 8] in the paper).  Fission replaces one
stateless filter with ``k`` data-parallel replicas wrapped in a
round-robin split-join: each replica handles every k-th firing, so the
steady-state semantics are unchanged while the mapper gains freedom to
spread the work.

Eligibility: the filter must be stateless, must not peek beyond its pop
window (a sliding window couples consecutive firings), and must fire at
least ``k`` times per steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.graph.filters import FilterRole
from repro.graph.scheduling import solve_repetition_vector
from repro.graph.stream_graph import StreamGraph


@dataclass(frozen=True)
class FissionReport:
    """Which filters were split and how wide."""

    fissioned: Tuple[Tuple[str, int], ...]  # (filter name, ways)
    skipped: Tuple[str, ...]

    @property
    def total(self) -> int:
        return len(self.fissioned)


def fissionable(graph: StreamGraph, nid: int, ways: int) -> bool:
    """Whether node ``nid`` can be split ``ways``-wide."""
    node = graph.nodes[nid]
    spec = node.spec
    if ways < 2:
        return False
    if spec.stateful or spec.role is not FilterRole.COMPUTE:
        return False
    if spec.effective_peek > spec.pop:
        return False
    if node.firing < ways or node.firing % ways:
        return False
    in_chans = graph.in_channels(nid)
    out_chans = graph.out_channels(nid)
    if len(in_chans) != 1 or len(out_chans) != 1:
        return False
    if any(ch.delay for ch in in_chans + out_chans):
        return False
    return True


def fission_filters(
    graph: StreamGraph,
    ways: int = 2,
    targets: Optional[Iterable[int]] = None,
    min_work: float = 0.0,
) -> Tuple[StreamGraph, FissionReport]:
    """Fission eligible filters ``ways``-wide; returns a new graph.

    ``targets`` restricts the candidates (default: every filter);
    ``min_work`` skips filters whose per-steady-state work is below the
    threshold (fissioning trivial filters only adds movers).
    """
    candidates: Set[int] = (
        set(targets) if targets is not None
        else {n.node_id for n in graph.nodes}
    )
    plan: List[int] = []
    skipped: List[str] = []
    for nid in sorted(candidates):
        node = graph.nodes[nid]
        if not fissionable(graph, nid, ways):
            skipped.append(node.spec.name)
            continue
        if node.firing * node.spec.work < min_work:
            skipped.append(node.spec.name)
            continue
        plan.append(nid)

    out = StreamGraph(f"{graph.name}+fission", elem_bytes=graph.elem_bytes)
    id_map = {}
    replicas = {}
    for node in graph.nodes:
        if node.node_id in plan:
            # the splitter/joiner around the replicas are pure movers
            splitter = out.add_node(
                _mover_spec(
                    f"{node.spec.name}.fsplit", node.spec.pop * ways,
                    node.spec.pop * ways, FilterRole.SPLITTER,
                    tuple([node.spec.pop] * ways),
                )
            )
            copies = []
            for i in range(ways):
                replica = out.add_node(
                    node.spec.renamed(f"{node.spec.name}.f{i}")
                )
                copies.append(replica.node_id)
            joiner = out.add_node(
                _mover_spec(
                    f"{node.spec.name}.fjoin", node.spec.push * ways,
                    node.spec.push * ways, FilterRole.JOINER,
                    tuple([node.spec.push] * ways),
                )
            )
            replicas[node.node_id] = (splitter.node_id, copies, joiner.node_id)
        else:
            id_map[node.node_id] = out.add_node(node.spec).node_id
            out.nodes[id_map[node.node_id]].pipeline_id = node.pipeline_id

    def entry(nid: int) -> int:
        return replicas[nid][0] if nid in replicas else id_map[nid]

    def exit_(nid: int) -> int:
        return replicas[nid][2] if nid in replicas else id_map[nid]

    for ch in graph.channels:
        # boundary channels of a fissioned filter now terminate at the
        # wrapper movers, which consume/produce `ways` firings at once
        dst_pop = ch.dst_pop
        dst_peek = ch.dst_peek
        if ch.dst in replicas:
            dst_pop = graph.nodes[ch.dst].spec.pop * ways
            dst_peek = 0
        src_push = ch.src_push
        if ch.src in replicas:
            src_push = graph.nodes[ch.src].spec.push * ways
        out.add_channel(
            exit_(ch.src), entry(ch.dst), src_push, dst_pop, dst_peek,
            ch.delay,
        )
    for nid, (split_id, copies, join_id) in replicas.items():
        spec = graph.nodes[nid].spec
        for i, copy_id in enumerate(copies):
            out.add_channel(split_id, copy_id, spec.pop, spec.pop)
            out.add_channel(copy_id, join_id, spec.push, spec.push)

    solve_repetition_vector(out)
    report = FissionReport(
        fissioned=tuple(
            (graph.nodes[nid].spec.name, ways) for nid in plan
        ),
        skipped=tuple(skipped),
    )
    return out, report


def _mover_spec(name, pop, push, role, params):
    from repro.graph.filters import FilterSpec

    return FilterSpec(
        name=name,
        pop=pop,
        push=push,
        work=0.5 * (pop + push),
        role=role,
        semantics="roundrobin",
        params=params,
    )
