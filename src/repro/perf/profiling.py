"""Per-filter profiling (Section 3.3.1).

The paper annotates each node with its GPU execution time ``t_i`` by
converting the filter to a standalone kernel, suppressing data
prefetching, and running it with a single GPU thread.  Our simulator
exposes exactly that quantity (:meth:`KernelSimulator.firing_time_ns`),
so profiling is a thin adapter — which mirrors reality: profiling is
*measurement*, and whatever instruction-mix quirks a filter has are
captured in ``t_i`` and cause no model error downstream.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.stream_graph import StreamGraph
from repro.gpu.simulator import KernelSimulator


def profile_graph(graph: StreamGraph, simulator: KernelSimulator) -> Dict[int, float]:
    """Profile every filter of ``graph``.

    Returns a map from node id to the single-thread time of **one firing**
    in nanoseconds.  This is the ``t_i`` annotation of Figure 3.1.
    """
    return simulator.profile_graph(graph)
