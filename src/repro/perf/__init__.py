"""Performance Estimation Engine (PEE), Section 3.3.

Given a stream graph annotated with per-filter profiling data, the PEE
statically predicts the GPU execution time of any convex subgraph *and*
the kernel parameters (S, W, F) that achieve it — the same parameters the
code generator later uses, which is the paper's "static discrepancy
minimization".
"""

from repro.perf.engine import PartitionEstimate, PerformanceEstimationEngine
from repro.perf.model import Estimate, ModelParams, estimate_kernel
from repro.perf.params import optimize_kernel_params
from repro.perf.profiling import profile_graph
from repro.perf.regression import fit_transfer_constants

__all__ = [
    "Estimate",
    "ModelParams",
    "PartitionEstimate",
    "PerformanceEstimationEngine",
    "estimate_kernel",
    "fit_transfer_constants",
    "optimize_kernel_params",
    "profile_graph",
]
