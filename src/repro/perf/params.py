"""Kernel parameter search: choosing (S, W, F) for a partition.

The one-kernel-for-graph approach must pick, per kernel (Section 2.1.3):

* ``S`` — compute threads per execution (bounded by firing rates),
* ``W`` — concurrent executions per kernel (bounded by shared memory),
* ``F`` — data-transfer threads (warp multiples),

subject to ``W*S + F <= max_threads_per_block`` and the shared-memory
constraint.  The search evaluates the *analytic* model (static estimation
is "essential due to the large number of GPU kernels to evaluate") and the
winning parameters are saved for code generation — the PEE and the code
generator making identical choices is the paper's static-discrepancy
minimization.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import PartitionMemory, partition_memory
from repro.gpu.specs import GpuSpec, M2090
from repro.perf.model import Estimate, ModelParams, estimate_kernel

#: Data-transfer thread candidates: whole warps, as DT threads are
#: "assigned to distinct warps" from compute threads.  Capped at 128 —
#: beyond that the memory-bandwidth floor makes extra DT threads useless.
_F_CANDIDATES = (32, 64, 96, 128)

#: Compute-thread cap W*S: the SM keeps ~576 threads latency-hidden
#: (see SimCosts.compute_concurrency); past that the linear Tcomp model
#: of Eq. III.9 is invalid, so the code generator never requests more —
#: and the PEE, which replays the generator's choices, does not either.
_COMPUTE_THREAD_CAP = 576


def _pow2_up_to(limit: int) -> List[int]:
    out, v = [], 1
    while v <= limit:
        out.append(v)
        v *= 2
    return out


def candidate_s(graph: StreamGraph, members: Iterable[int], cap: int) -> List[int]:
    """S candidates: powers of two up to the max firing rate (and cap)."""
    max_firing = max(graph.nodes[nid].firing for nid in members)
    values = [s for s in _pow2_up_to(min(max_firing, cap))]
    return values or [1]


def candidate_w(memory: PartitionMemory, spec: GpuSpec) -> Tuple[List[int], int]:
    """W candidates given the SM constraint.

    Returns ``(candidates, spilled_bytes)``.  When even one execution
    exceeds the SM, W is pinned to 1 and the overflow spills to global
    memory.
    """
    max_w = memory.max_executions(spec.shared_mem_bytes)
    if max_w < 1:
        spilled = memory.smem_for(1) - spec.shared_mem_bytes
        return [1], max(spilled, 0)
    values = [w for w in _pow2_up_to(max_w)]
    if values[-1] != max_w:
        values.append(max_w)
    return values, 0


def optimize_kernel_params(
    graph: StreamGraph,
    members: Iterable[int],
    profile: Dict[int, float],
    spec: GpuSpec = M2090,
    params: Optional[ModelParams] = None,
    memory: Optional[PartitionMemory] = None,
) -> Tuple[KernelConfig, Estimate, int]:
    """Pick the (S, W, F) minimizing the normalized execution time T.

    Returns ``(config, estimate, spilled_bytes)``.  The estimate is the
    model's prediction at the optimum; ``spilled_bytes`` is non-zero only
    in the W=1 overflow regime.
    """
    member_list = sorted(set(members))
    if not member_list:
        raise ValueError("cannot optimize an empty partition")
    params = params or ModelParams()
    if memory is None:
        memory = partition_memory(graph, member_list)

    w_values, spilled = candidate_w(memory, spec)
    s_values = candidate_s(graph, member_list, spec.max_threads_per_block)
    best: Optional[Tuple[KernelConfig, Estimate]] = None
    for w in w_values:
        for s in s_values:
            compute_threads = w * s
            if compute_threads >= spec.max_threads_per_block:
                continue
            if compute_threads > _COMPUTE_THREAD_CAP:
                continue
            for f in _F_CANDIDATES:
                if compute_threads + f > spec.max_threads_per_block:
                    break
                config = KernelConfig(s, w, f)
                est = estimate_kernel(
                    graph, member_list, profile, config, memory, params,
                    spec=spec, spilled_bytes=spilled,
                )
                if best is None or est.per_execution < best[1].per_execution:
                    best = (config, est)
    if best is None:  # pragma: no cover - thread limits make this unreachable
        raise RuntimeError("no feasible kernel configuration")
    return best[0], best[1], spilled
