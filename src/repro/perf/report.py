"""Human-readable compiler reports.

Summarizes a finished :class:`~repro.flow.FlowResult` the way the paper's
tool would report its decisions: per-partition kernel parameters, memory
budgets, boundedness, placement, and the end-to-end execution estimate.
Used by ``repro-map --report`` and handy in notebooks.
"""

from __future__ import annotations

from typing import List

from repro.graph.schedule import schedule_string


def flow_report(result) -> str:
    """Render a full report for a :class:`~repro.flow.FlowResult`."""
    graph = result.graph
    lines: List[str] = []
    lines.append(f"=== mapping report: {graph.name} ===")
    lines.append(
        f"filters: {len(graph.nodes)}  channels: {len(graph.channels)}  "
        f"partitions: {result.num_partitions}  GPUs: {result.num_gpus}"
    )
    lines.append("")
    lines.append("partitions:")
    for pid, members in enumerate(result.partitions):
        est = result.engine.estimate(members)
        gpu = result.mapping.assignment[pid]
        kind = "compute" if est.is_compute_bound else "IO"
        smem = est.memory.smem_for(est.config.w)
        lines.append(
            f"  P{pid:<3} gpu{gpu}  {est.config.describe():32s} "
            f"{kind:7s}-bound  T={est.t:10.1f} ns/exec  "
            f"smem={smem:6d} B"
            + ("  [spills]" if est.spilled_bytes else "")
        )
        lines.append(f"       schedule: {schedule_string(graph, members)}")
    lines.append("")
    lines.append(
        f"mapping: {result.mapping.solver} "
        f"({'optimal' if result.mapping.optimal else 'best effort'}), "
        f"Tmax {result.mapping.tmax / 1e3:.1f} us/fragment, "
        f"bottleneck {result.mapping.bottleneck}"
    )
    gpu_times = ", ".join(
        f"gpu{j}={t / 1e3:.1f}us" for j, t in enumerate(result.mapping.gpu_times)
    )
    lines.append(f"per-GPU fragment time: {gpu_times}")
    busiest = max(
        range(len(result.mapping.link_times)),
        key=lambda l: result.mapping.link_times[l],
        default=None,
    )
    if busiest is not None and result.mapping.link_times[busiest] > 0:
        lines.append(
            f"busiest link: #{busiest} at "
            f"{result.mapping.link_times[busiest] / 1e3:.1f} us/fragment"
        )
    report = result.report
    lines.append("")
    lines.append(
        f"pipelined execution: {report.num_fragments} fragments x "
        f"{report.executions_per_fragment} executions"
    )
    lines.append(
        f"  makespan {report.makespan_ns / 1e6:.3f} ms, "
        f"beat {report.beat_ns / 1e3:.1f} us, "
        f"fill {report.pipeline_fill_ns / 1e3:.1f} us"
    )
    lines.append(
        f"  throughput {report.throughput * 1e6:.1f} executions/ms"
    )
    return "\n".join(lines)
