"""The Performance Estimation Engine facade (Figure 3.1's PEE box).

The PEE answers one question for the partitioner and the mapper: *how fast
would this subgraph run as a kernel, and with which parameters?*  Answers
are memoized per node set — the partitioning heuristic probes thousands of
candidate merges on large graphs and most probes repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import PartitionMemory, partition_memory
from repro.gpu.simulator import KernelMeasurement, KernelSimulator
from repro.gpu.specs import GpuSpec, M2090
from repro.perf.model import Estimate, ModelParams
from repro.perf.params import optimize_kernel_params
from repro.perf.profiling import profile_graph


@dataclass(frozen=True)
class PartitionEstimate:
    """PEE verdict for one subgraph.

    ``estimate`` holds the model components at the optimal config; the
    headline number is :attr:`t` (the normalized per-execution time
    ``T(p)`` used everywhere in Section 3.1/3.2).
    """

    members: FrozenSet[int]
    config: KernelConfig
    memory: PartitionMemory
    estimate: Estimate
    spilled_bytes: int
    #: kernel-launch overhead amortized over one launch's W * SM-count
    #: executions; being a partition means being a kernel, so T(p) must
    #: price that (it is what discourages needless fragmentation)
    launch_overhead_per_execution: float = 0.0

    @property
    def t(self) -> float:
        """T(p): normalized execution time estimate (Eq. III.12 plus the
        amortized launch overhead)."""
        return self.estimate.per_execution + self.launch_overhead_per_execution

    @property
    def t_comp(self) -> float:
        """Tcomp(p) — per kernel launch."""
        return self.estimate.t_comp

    @property
    def t_dt(self) -> float:
        """Tdt(p) — per kernel launch."""
        return self.estimate.t_dt

    @property
    def is_compute_bound(self) -> bool:
        """Compute-bound iff Tcomp > Tdt (Section 3.1.1)."""
        return self.estimate.is_compute_bound

    @property
    def fits_shared_memory(self) -> bool:
        return self.spilled_bytes == 0


class PerformanceEstimationEngine:
    """Estimate GPU execution time for subgraphs of one stream graph.

    Parameters
    ----------
    graph:
        The flattened, rate-annotated stream graph.
    spec:
        Target device.
    simulator:
        The profiling substrate (stands in for the paper's
        measure-each-filter-once step).  A fresh one is built when not
        given.
    params:
        Model constants; defaults to the paper's C1/C2.
    profile:
        Pre-computed per-node firing times (the ``t_i`` annotation).  When
        given, the profiling step is skipped entirely — the sweep engine
        uses this to replay a cached profile instead of re-measuring.
        The times must come from an identically-configured simulator.
    """

    def __init__(
        self,
        graph: StreamGraph,
        spec: GpuSpec = M2090,
        simulator: Optional[KernelSimulator] = None,
        params: Optional[ModelParams] = None,
        profile: Optional[Dict[int, float]] = None,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.simulator = simulator or KernelSimulator(spec)
        if self.simulator.spec is not spec:
            raise ValueError("simulator and engine must target the same GPU spec")
        self.params = params or ModelParams()
        self.profile: Dict[int, float] = (
            dict(profile) if profile is not None
            else profile_graph(graph, self.simulator)
        )
        self._cache: Dict[FrozenSet[int], PartitionEstimate] = {}

    # ------------------------------------------------------------------
    def estimate(self, members: Iterable[int]) -> PartitionEstimate:
        """T(p) and optimal kernel parameters for a node set (cached)."""
        key = frozenset(members)
        if not key:
            raise ValueError("cannot estimate an empty partition")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        memory = partition_memory(self.graph, key)
        config, estimate, spilled = optimize_kernel_params(
            self.graph, key, self.profile, self.spec, self.params, memory
        )
        launch = self.simulator.costs.launch_ns / (
            config.w * self.spec.sm_count
        )
        result = PartitionEstimate(
            members=key,
            config=config,
            memory=memory,
            estimate=estimate,
            spilled_bytes=spilled,
            launch_overhead_per_execution=launch,
        )
        self._cache[key] = result
        return result

    def t(self, members: Iterable[int]) -> float:
        """Shorthand for ``estimate(members).t`` — the T(p) function of
        Section 3.1.1."""
        return self.estimate(members).t

    def measure(self, members: Iterable[int]) -> KernelMeasurement:
        """Run the *simulator* on the subgraph with the PEE-chosen
        parameters — the "actual runtime" side of Figure 4.1."""
        pe = self.estimate(members)
        return self.simulator.measure(
            self.graph, pe.members, pe.config, pe.memory, pe.spilled_bytes
        )

    @property
    def cache_size(self) -> int:
        return len(self._cache)
