"""The analytic GPU performance model (Section 3.3.2).

For a kernel running ``W`` concurrent executions of a partition with ``S``
compute threads per execution and ``F`` data-transfer threads:

* Compute time (Eq. III.9)::

      Tcomp = sum_i  t_i * f_i / min(f_i, S)

  where ``t_i`` is the profiled single-thread one-firing time and ``f_i``
  the firing rate.  The ``W`` executions proceed concurrently on distinct
  warps, so ``W`` does not appear.

* Data-transfer time (Eq. III.10): ``Tdt = C1 * D / F`` with ``D`` the I/O
  volume (elements) of all ``W`` executions.

* Buffer-swap time (Eq. III.11): ``Tdb = C2 * D / (F + W*S)`` — every
  thread participates in swapping the working-set and double buffers.

* Total (Eq. III.8): ``Texec = max(Tcomp, Tdt) + Tdb``, since compute and
  transfer threads run on distinct warps and overlap.

* Normalized (Eq. III.12): ``T = Texec / W``, enabling comparisons between
  partitions of different sizes.

The model deliberately omits effects the simulator has (warp-granular
``ceil`` pass counts, barrier costs, bank conflicts): those are the
residuals validated in Figure 4.1.  A spill term extends the model beyond
the paper so single-partition mappings of SM-overflowing graphs can still
be *estimated* (needed by partition phase 4 and the SOSP baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import PartitionMemory
from repro.gpu.specs import GpuSpec, M2090


@dataclass(frozen=True)
class ModelParams:
    """Empirical constants of the performance model.

    ``c1``/``c2`` are the paper's regression constants (38.4 / 11.2, in
    ns per element here); ``spill_ns_per_elem`` prices global-memory
    round trips of spilled working-set elements.
    """

    c1: float = 38.4
    c2: float = 11.2
    spill_ns_per_elem: float = 60.0
    #: per-element bandwidth floor on Tdt — transfer threads cannot beat
    #: the memory system (see SimCosts.dt_floor_ns_per_elem)
    dt_floor_ns_per_elem: float = 0.30

    def scaled_to(self, spec: GpuSpec) -> "ModelParams":
        """Rescale bandwidth-proportional constants to another device."""
        scale = spec.bandwidth_scale
        return ModelParams(
            c1=self.c1 * scale,
            c2=self.c2 * scale,
            spill_ns_per_elem=self.spill_ns_per_elem * scale,
            dt_floor_ns_per_elem=self.dt_floor_ns_per_elem * scale,
        )


@dataclass(frozen=True)
class Estimate:
    """Predicted timing of one kernel launch (W executions), in ns."""

    t_comp: float
    t_dt: float
    t_db: float
    t_spill: float
    config: KernelConfig

    @property
    def t_exec(self) -> float:
        """Eq. III.8 (+ spill; transfer serializes when F == 0)."""
        if self.config.f:
            overlapped = max(self.t_comp, self.t_dt)
        else:
            overlapped = self.t_comp + self.t_dt
        return overlapped + self.t_db + self.t_spill

    @property
    def per_execution(self) -> float:
        """Eq. III.12: T = Texec / W."""
        return self.t_exec / self.config.w

    @property
    def is_compute_bound(self) -> bool:
        """Section 3.1.1's classification: Tcomp(p) > Tdt(p)."""
        return self.t_comp > self.t_dt


def compute_time(
    graph: StreamGraph,
    members: Iterable[int],
    profile: Dict[int, float],
    s: int,
) -> float:
    """Eq. III.9 — compute time of one (equivalently, W concurrent)
    execution(s) with ``S`` compute threads per execution."""
    total = 0.0
    for nid in members:
        node = graph.nodes[nid]
        s_eff = 1 if node.spec.stateful else s
        threads = max(1, min(node.firing, s_eff))
        total += profile[nid] * node.firing / threads
    return total


def estimate_kernel(
    graph: StreamGraph,
    members: Iterable[int],
    profile: Dict[int, float],
    config: KernelConfig,
    memory: PartitionMemory,
    params: ModelParams,
    spec: GpuSpec = M2090,
    spilled_bytes: int = 0,
) -> Estimate:
    """Evaluate the full model for one (partition, config) pair."""
    member_list = list(members)
    scaled = params.scaled_to(spec)
    # profile t_i values were measured on `spec`, so no compute rescale here
    t_comp = compute_time(graph, member_list, profile, config.s)
    d_elems = config.w * (memory.io_traffic_bytes // graph.elem_bytes)
    t_dt = scaled.c1 * d_elems / config.f if config.f else scaled.c1 * d_elems
    t_dt = max(t_dt, scaled.dt_floor_ns_per_elem * d_elems)
    t_db = scaled.c2 * d_elems / max(config.total_threads, 1)
    spilled_elems = spilled_bytes / graph.elem_bytes
    t_spill = scaled.spill_ns_per_elem * spilled_elems * config.w
    return Estimate(
        t_comp=t_comp, t_dt=t_dt, t_db=t_db, t_spill=t_spill, config=config
    )
