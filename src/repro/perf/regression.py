"""Empirical fit of the transfer constants C1 and C2 (Section 4.0.1).

The paper finds C1 = 38.4 and C2 = 11.2 by linear regression of profiled
data.  We reproduce the procedure against the simulator: build
data-movement-dominated probe kernels (zero-work filters, so
``Texec ~= Tdt + Tdb``), sweep the I/O volume ``D``, the transfer thread
count ``F`` and the compute thread total ``W*S``, and least-squares fit::

    Texec ~= c1 * (D / F) + c2 * (D / (F + W*S))

Because the simulator's jitter perturbs each sample, the fit recovers the
underlying 38.4/11.2 only approximately — like any empirical regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.filters import FilterRole
from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.simulator import KernelSimulator
from repro.gpu.specs import GpuSpec, M2090
from repro.perf.model import ModelParams


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of the C1/C2 fit."""

    c1: float
    c2: float
    r_squared: float
    samples: int

    def as_params(self, base: Optional[ModelParams] = None) -> ModelParams:
        base = base or ModelParams()
        return ModelParams(
            c1=self.c1, c2=self.c2, spill_ns_per_elem=base.spill_ns_per_elem
        )


def _probe_graph(rate: int) -> StreamGraph:
    """A copy-through probe: source -> identity -> sink, zero work."""
    builder = GraphBuilder(f"probe-rate{rate}")
    src = builder.filter(
        "in", pop=0, push=rate, work=0.0, role=FilterRole.SOURCE, semantics="source"
    )
    mid = builder.filter("copy", pop=rate, push=rate, work=0.0, semantics="identity")
    snk = builder.filter(
        "out", pop=rate, push=0, work=0.0, role=FilterRole.SINK, semantics="sink"
    )
    builder.connect(src, mid)
    builder.connect(mid, snk)
    return builder.build()


def fit_transfer_constants(
    spec: GpuSpec = M2090,
    simulator: Optional[KernelSimulator] = None,
    rates: Tuple[int, ...] = (16, 32, 64, 128, 256),
    f_values: Tuple[int, ...] = (32, 64, 96),
    ws_values: Tuple[Tuple[int, int], ...] = (
        (1, 1), (4, 4), (16, 8), (32, 8), (64, 4),
    ),
) -> RegressionReport:
    """Fit C1/C2 on data-transfer-bound probe kernels."""
    simulator = simulator or KernelSimulator(spec)
    x_dt: List[float] = []
    y_dt: List[float] = []
    x_db: List[float] = []
    y_db: List[float] = []
    for rate in rates:
        graph = _probe_graph(rate)
        members = [n.node_id for n in graph.nodes]
        for f in f_values:
            for s, w in ws_values:
                config = KernelConfig(s, w, f)
                if config.total_threads > spec.max_threads_per_block:
                    continue
                measurement = simulator.measure(graph, members, config)
                d_elems = config.w * 2 * rate  # in + out
                # phase-level timings, as reported by the profiler
                x_dt.append(d_elems / f)
                y_dt.append(measurement.t_dt)
                x_db.append(d_elems / config.total_threads)
                y_db.append(measurement.t_db)
    c1 = _fit_through_origin(x_dt, y_dt)
    c2 = _fit_through_origin(x_db, y_db)
    predicted = c1 * np.asarray(x_dt) + c2 * np.asarray(x_db)
    target = np.asarray(y_dt) + np.asarray(y_db)
    ss_res = float(np.sum((target - predicted) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    # rescale to the M2090 reference frame used by ModelParams
    scale = spec.bandwidth_scale
    return RegressionReport(
        c1=c1 / scale,
        c2=c2 / scale,
        r_squared=r_squared,
        samples=len(y_dt),
    )


def _fit_through_origin(xs: List[float], ys: List[float]) -> float:
    """Least-squares slope of ``y ~ c * x`` (no intercept)."""
    x = np.asarray(xs)
    y = np.asarray(ys)
    denom = float(np.dot(x, x))
    if denom == 0.0:
        return 0.0
    return float(np.dot(x, y) / denom)
