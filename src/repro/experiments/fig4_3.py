"""EXP-F4.3 — comparison with the previous work [7] (Figure 4.3).

Raw runtimes are incomparable across the two papers' GPUs, so the
comparison metric is SOSP — speedup over the single-partition single-GPU
mapping on the same hardware (Section 4.0.4).  The paper reports SOSP for
the five applications [7] evaluates and summarizes the SOSP ratio
(ours / previous): on average 1.17 / 1.33 / 1.40 / 1.47 for 1-4 GPUs,
with compute-bound apps far ahead and MatMul3 the one loss.

Our reimplementation of [7]: SM-threshold partitioning, static-workload
LPT mapping, all inter-GPU traffic staged through the host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.registry import FIG43_APPS
from repro.experiments.common import (
    ExperimentResult,
    experiment_runner,
    gpu_counts,
    sweep_n_values,
)
from repro.metrics.sosp import sosp
from repro.metrics.stats import geometric_mean
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepPoint

#: the paper's average SOSP ratios for 1..4 GPUs
PAPER_AVG_RATIOS = {1: 1.17, 2: 1.33, 3: 1.40, 4: 1.47}


def _spsg_point(app: str, n: int) -> SweepPoint:
    return SweepPoint(app=app, n=n, num_gpus=1, partitioner="single")


def _ours_point(app: str, n: int, g: int) -> SweepPoint:
    return SweepPoint(app=app, n=n, num_gpus=g)


def _prev_point(app: str, n: int, g: int) -> SweepPoint:
    return SweepPoint(
        app=app, n=n, num_gpus=g, partitioner="previous", mapper="lpt",
        peer_to_peer=False, static_workload_balance=True,
    )


def grid(apps: Sequence[str], quick: bool) -> List[SweepPoint]:
    """The Figure 4.3 grid: SPSG baseline plus ours/previous per G."""
    gpus = gpu_counts(quick)
    points: List[SweepPoint] = []
    for app in apps:
        for n in sweep_n_values(app, quick):
            points.append(_spsg_point(app, n))
            for g in gpus:
                points.append(_ours_point(app, n, g))
                points.append(_prev_point(app, n, g))
    return points


def run(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate the Figure 4.3 SOSP comparison."""
    runner = experiment_runner(runner)
    apps = list(apps) if apps is not None else list(FIG43_APPS)
    gpus = gpu_counts(quick)
    sweep = runner.run(grid(apps, quick), keep_flows=True)
    rows: List[Dict[str, object]] = []
    ratios: Dict[int, list] = {g: [] for g in gpus}
    for app in apps:
        n_values = sweep_n_values(app, quick)
        for n in n_values:
            spsg = sweep.flow(_spsg_point(app, n))
            row: Dict[str, object] = {"app": app, "N": n}
            for g in gpus:
                ours = sweep.flow(_ours_point(app, n, g))
                prev = sweep.flow(_prev_point(app, n, g))
                ours_sosp = sosp(ours.report, spsg.report)
                prev_sosp = sosp(prev.report, spsg.report)
                row[f"ours-{g}G"] = ours_sosp
                row[f"prev-{g}G"] = prev_sosp
                ratio = ours_sosp / prev_sosp if prev_sosp > 0 else float("inf")
                row[f"ratio-{g}G"] = ratio
                ratios[g].append(ratio)
            rows.append(row)

    summary: Dict[str, object] = {}
    for g in gpus:
        if ratios[g]:
            ours = geometric_mean(ratios[g])
            paper = PAPER_AVG_RATIOS.get(g)
            summary[f"avg SOSP ratio, {g} GPU(s)"] = f"{ours:.2f} (paper: {paper})"
    wins = sum(
        1
        for row in rows
        for g in gpus
        if row[f"ratio-{g}G"] > 1.0
    )
    total = len(rows) * len(gpus)
    summary["cases where ours beats previous"] = f"{wins} / {total}"
    return ExperimentResult(
        experiment="fig4.3",
        description="SOSP: our mapping vs the previous work [7]",
        rows=rows,
        summary=summary,
    )
