"""EXP-F4.3 — comparison with the previous work [7] (Figure 4.3).

Raw runtimes are incomparable across the two papers' GPUs, so the
comparison metric is SOSP — speedup over the single-partition single-GPU
mapping on the same hardware (Section 4.0.4).  The paper reports SOSP for
the five applications [7] evaluates and summarizes the SOSP ratio
(ours / previous): on average 1.17 / 1.33 / 1.40 / 1.47 for 1-4 GPUs,
with compute-bound apps far ahead and MatMul3 the one loss.

Our reimplementation of [7]: SM-threshold partitioning, static-workload
LPT mapping, all inter-GPU traffic staged through the host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.registry import FIG43_APPS, build_app
from repro.experiments.common import ExperimentResult, gpu_counts, sweep_n_values
from repro.flow import map_stream_graph
from repro.metrics.sosp import sosp
from repro.metrics.stats import geometric_mean
from repro.perf.engine import PerformanceEstimationEngine

#: the paper's average SOSP ratios for 1..4 GPUs
PAPER_AVG_RATIOS = {1: 1.17, 2: 1.33, 3: 1.40, 4: 1.47}


def run(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Figure 4.3 SOSP comparison."""
    apps = list(apps) if apps is not None else list(FIG43_APPS)
    gpus = gpu_counts(quick)
    rows: List[Dict[str, object]] = []
    ratios: Dict[int, list] = {g: [] for g in gpus}
    for app in apps:
        n_values = sweep_n_values(app, quick)
        for n in n_values:
            graph = build_app(app, n)
            engine = PerformanceEstimationEngine(graph)
            spsg = map_stream_graph(
                graph, num_gpus=1, partitioner="single", engine=engine
            )
            row: Dict[str, object] = {"app": app, "N": n}
            for g in gpus:
                ours = map_stream_graph(graph, num_gpus=g, engine=engine)
                prev = map_stream_graph(
                    graph,
                    num_gpus=g,
                    partitioner="previous",
                    mapper="lpt",
                    peer_to_peer=False,
                    static_workload_balance=True,
                    engine=engine,
                )
                ours_sosp = sosp(ours.report, spsg.report)
                prev_sosp = sosp(prev.report, spsg.report)
                row[f"ours-{g}G"] = ours_sosp
                row[f"prev-{g}G"] = prev_sosp
                ratio = ours_sosp / prev_sosp if prev_sosp > 0 else float("inf")
                row[f"ratio-{g}G"] = ratio
                ratios[g].append(ratio)
            rows.append(row)

    summary: Dict[str, object] = {}
    for g in gpus:
        if ratios[g]:
            ours = geometric_mean(ratios[g])
            paper = PAPER_AVG_RATIOS.get(g)
            summary[f"avg SOSP ratio, {g} GPU(s)"] = f"{ours:.2f} (paper: {paper})"
    wins = sum(
        1
        for row in rows
        for g in gpus
        if row[f"ratio-{g}G"] > 1.0
    )
    total = len(rows) * len(gpus)
    summary["cases where ours beats previous"] = f"{wins} / {total}"
    return ExperimentResult(
        experiment="fig4.3",
        description="SOSP: our mapping vs the previous work [7]",
        rows=rows,
        summary=summary,
    )
