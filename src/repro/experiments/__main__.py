"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments fig4.1 [--full]
    python -m repro.experiments all [--full]
    repro-experiments table5.1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import (
    ablations,
    fig2_1,
    fig3_2,
    fig4_1,
    fig4_2,
    fig4_3,
    fig4_4,
    table5_1,
)
from repro.experiments.common import ExperimentResult

_RUNNERS = {
    "fig2.1": lambda quick: [fig2_1.run(quick)],
    "fig3.2": lambda quick: [fig3_2.run(quick)],
    "fig4.1": lambda quick: [fig4_1.run(quick)],
    "fig4.2": lambda quick: [fig4_2.run(quick)],
    "fig4.3": lambda quick: [fig4_3.run(quick)],
    "fig4.4": lambda quick: [fig4_4.run(quick)],
    "table5.1": lambda quick: [table5_1.run(quick)],
    "ablation.mapping": lambda quick: [ablations.run_mapping(quick)],
    "ablation.phases": lambda quick: [ablations.run_phases(quick)],
    "ablation.comm": lambda quick: [ablations.run_comm(quick)],
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "which",
        choices=sorted(_RUNNERS) + ["all", "ablations"],
        help="experiment id (table/figure number) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full paper-scale sweeps (default: 3-point quick sweeps)",
    )
    args = parser.parse_args(argv)
    quick = not args.full

    if args.which == "all":
        names = sorted(_RUNNERS)
    elif args.which == "ablations":
        names = [n for n in sorted(_RUNNERS) if n.startswith("ablation")]
    else:
        names = [args.which]

    for name in names:
        start = time.time()
        results: List[ExperimentResult] = _RUNNERS[name](quick)
        for result in results:
            print(result.render())
            print(f"[{name} took {time.time() - start:.1f}s]")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
