"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments fig4.1 [--full]
    python -m repro.experiments all [--full] [--cache-dir .sweep-cache]
    repro-experiments table5.1

``--cache-dir`` persists pipeline-stage results (profile, partition,
ILP mapping, kernel measurement) across experiments *and* across runs:
with a warm cache, regenerating a table replays cached stages instead of
recomputing them, and the run ends with a cache-hit summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import (
    ablations,
    fig2_1,
    fig3_2,
    fig4_1,
    fig4_2,
    fig4_3,
    fig4_4,
    platforms,
    table5_1,
)
from repro.experiments.common import ExperimentResult
from repro.sweep import StageCache, SweepRunner

_RUNNERS = {
    "fig2.1": lambda quick, runner: [fig2_1.run(quick, runner=runner)],
    "fig3.2": lambda quick, runner: [fig3_2.run(quick, runner=runner)],
    "fig4.1": lambda quick, runner: [fig4_1.run(quick, runner=runner)],
    "fig4.2": lambda quick, runner: [fig4_2.run(quick, runner=runner)],
    "fig4.3": lambda quick, runner: [fig4_3.run(quick, runner=runner)],
    "fig4.4": lambda quick, runner: [fig4_4.run(quick, runner=runner)],
    "platforms": lambda quick, runner: [platforms.run(quick, runner=runner)],
    "table5.1": lambda quick, runner: [table5_1.run(quick, runner=runner)],
    "ablation.mapping": lambda quick, runner: [
        ablations.run_mapping(quick, runner=runner)
    ],
    "ablation.phases": lambda quick, runner: [
        ablations.run_phases(quick, runner=runner)
    ],
    "ablation.comm": lambda quick, runner: [
        ablations.run_comm(quick, runner=runner)
    ],
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "which",
        choices=sorted(_RUNNERS) + ["all", "ablations"],
        help="experiment id (table/figure number) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full paper-scale sweeps (default: 3-point quick sweeps)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist pipeline-stage results here and reuse them across "
             "experiments and runs",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per executed sweep point to stderr",
    )
    args = parser.parse_args(argv)
    quick = not args.full
    try:
        cache = StageCache(args.cache_dir) if args.cache_dir else StageCache()
    except OSError as exc:
        parser.error(f"unusable --cache-dir {args.cache_dir!r}: {exc}")
    runner = SweepRunner(cache=cache, progress=args.progress)

    if args.which == "all":
        names = sorted(_RUNNERS)
    elif args.which == "ablations":
        names = [n for n in sorted(_RUNNERS) if n.startswith("ablation")]
    else:
        names = [args.which]

    for name in names:
        start = time.time()
        results: List[ExperimentResult] = _RUNNERS[name](quick, runner)
        for result in results:
            print(result.render())
            print(f"[{name} took {time.time() - start:.1f}s]")
            print()
    if cache.stats().lookups:
        print(f"[stage cache: {cache.stats().render()}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
