"""Ablations of the design choices DESIGN.md calls out.

* ``mapping``  — ILP vs greedy-LPT vs round-robin vs contiguous on the
  same partitions: isolates the Section 3.2 contribution.
* ``phases``   — Algorithm 1 with later phases disabled: isolates the
  merge phases of Section 3.1.2.
* ``comm``     — the full ILP vs the ILP without link constraints:
  isolates communication-awareness (the paper's core claim).

All three execute through the sweep engine; because each ablation keeps
the graph and partitioning fixed while varying downstream knobs, the
stage cache collapses most of the grid into shared prefixes (this file
is the showcase grid of ``benchmarks/test_bench_sweep.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.apps.registry import build_app
from repro.experiments.common import ExperimentResult, experiment_runner
from repro.flow import partition_stage, profile_stage
from repro.metrics.stats import geometric_mean
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepPoint

#: representative instances: one compute-bound, one wide, one IO-bound
DEFAULT_CASES = (("DES", 16), ("DCT", 18), ("Bitonic", 32))

#: phase subsets of the partitioning ablation
PHASE_VARIANTS = {
    "full": (1, 2, 3, 4),
    "no-phase4": (1, 2, 3),
    "no-phase3/4": (1, 2),
    "phase2-only": (2,),
}


def mapping_grid(
    cases: Sequence = DEFAULT_CASES, num_gpus: int = 4
) -> List[SweepPoint]:
    """The mapping-ablation grid as sweep points."""
    return [
        SweepPoint(app=app, n=n, num_gpus=num_gpus, mapper=mapper)
        for app, n in cases
        for mapper in ("ilp", "lpt", "roundrobin")
    ]


def run_mapping(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
    num_gpus: int = 4,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Mapping-strategy ablation on fixed partitions."""
    runner = experiment_runner(runner)
    sweep = runner.run(mapping_grid(cases, num_gpus), keep_flows=True)
    rows: List[Dict[str, object]] = []
    advantages = []
    for app, n in cases:
        results = {
            mapper: sweep.flow(
                SweepPoint(app=app, n=n, num_gpus=num_gpus, mapper=mapper)
            )
            for mapper in ("ilp", "lpt", "roundrobin")
        }
        row: Dict[str, object] = {"app": app, "N": n}
        ilp_thr = results["ilp"].throughput
        for mapper, flow in results.items():
            row[f"{mapper} tmax(us)"] = flow.mapping.tmax / 1e3
            row[f"{mapper} thr"] = flow.throughput / ilp_thr
        rows.append(row)
        advantages.append(ilp_thr / results["roundrobin"].throughput)
    return ExperimentResult(
        experiment="ablation.mapping",
        description="ILP mapping vs communication-blind baselines",
        rows=rows,
        summary={
            "geomean ILP advantage over round-robin": geometric_mean(advantages)
        },
    )


def _phase_row(case, cache=None) -> Dict[str, object]:
    """One case of the phase ablation (module-level for pool pickling)."""
    app, n = case
    graph = build_app(app, n)
    engine = profile_stage(graph, cache=cache)
    row: Dict[str, object] = {"app": app, "N": n}
    for label, phases in PHASE_VARIANTS.items():
        partitions, partitioning = partition_stage(
            graph, engine, phases=phases, cache=cache
        )
        row[f"{label} P"] = len(partitions)
        row[f"{label} T(us)"] = partitioning.total_t / 1e3
    return row


def run_phases(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Partitioning-phase ablation."""
    runner = experiment_runner(runner)
    rows = runner.map(partial(_phase_row, cache=runner.cache), cases)
    improves = sum(
        1 for row in rows if row["full T(us)"] <= row["phase2-only T(us)"] + 1e-9
    )
    return ExperimentResult(
        experiment="ablation.phases",
        description="Algorithm 1 with merge phases disabled",
        rows=rows,
        summary={"cases where full <= phase2-only": f"{improves} / {len(rows)}"},
    )


def comm_grid(
    cases: Sequence = DEFAULT_CASES, num_gpus: int = 4
) -> List[SweepPoint]:
    """The communication-awareness grid as sweep points."""
    return [
        SweepPoint(app=app, n=n, num_gpus=num_gpus, mapper=mapper)
        for app, n in cases
        for mapper in ("ilp", "ilp-nocomm")
    ]


def run_comm(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
    num_gpus: int = 4,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Communication-awareness ablation of the ILP."""
    runner = experiment_runner(runner)
    sweep = runner.run(comm_grid(cases, num_gpus), keep_flows=True)
    rows: List[Dict[str, object]] = []
    gains = []
    for app, n in cases:
        aware = sweep.flow(
            SweepPoint(app=app, n=n, num_gpus=num_gpus, mapper="ilp")
        )
        blind = sweep.flow(
            SweepPoint(app=app, n=n, num_gpus=num_gpus, mapper="ilp-nocomm")
        )
        gain = aware.throughput / blind.throughput
        gains.append(gain)
        rows.append(
            {
                "app": app,
                "N": n,
                "comm-aware thr/blind thr": gain,
                "aware tmax(us)": aware.mapping.tmax / 1e3,
                "blind eval tmax(us)": blind.mapping.tmax / 1e3,
            }
        )
    return ExperimentResult(
        experiment="ablation.comm",
        description="ILP with vs without communication constraints",
        rows=rows,
        summary={"geomean gain from comm-awareness": geometric_mean(gains)},
    )


def full_grid(
    cases: Sequence = DEFAULT_CASES, num_gpus: int = 4
) -> List[SweepPoint]:
    """Every flow-level point the ablations touch (the benchmark grid)."""
    points = mapping_grid(cases, num_gpus)
    seen = set(points)
    for point in comm_grid(cases, num_gpus):
        if point not in seen:
            points.append(point)
            seen.add(point)
    return points


def run(
    quick: bool = True, runner: Optional[SweepRunner] = None
) -> List[ExperimentResult]:
    """All ablations."""
    return [
        run_mapping(quick, runner=runner),
        run_phases(quick, runner=runner),
        run_comm(quick, runner=runner),
    ]
