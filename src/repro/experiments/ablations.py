"""Ablations of the design choices DESIGN.md calls out.

* ``mapping``  — ILP vs greedy-LPT vs round-robin vs contiguous on the
  same partitions: isolates the Section 3.2 contribution.
* ``phases``   — Algorithm 1 with later phases disabled: isolates the
  merge phases of Section 3.1.2.
* ``comm``     — the full ILP vs the ILP without link constraints:
  isolates communication-awareness (the paper's core claim).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.registry import build_app
from repro.experiments.common import ExperimentResult
from repro.flow import map_stream_graph
from repro.metrics.stats import geometric_mean
from repro.partition.heuristic import partition_stream_graph
from repro.perf.engine import PerformanceEstimationEngine

#: representative instances: one compute-bound, one wide, one IO-bound
DEFAULT_CASES = (("DES", 16), ("DCT", 18), ("Bitonic", 32))


def run_mapping(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
    num_gpus: int = 4,
) -> ExperimentResult:
    """Mapping-strategy ablation on fixed partitions."""
    rows: List[Dict[str, object]] = []
    advantages = []
    for app, n in cases:
        graph = build_app(app, n)
        engine = PerformanceEstimationEngine(graph)
        results = {}
        for mapper in ("ilp", "lpt", "roundrobin"):
            flow = map_stream_graph(
                graph, num_gpus=num_gpus, mapper=mapper, engine=engine
            )
            results[mapper] = flow
        row: Dict[str, object] = {"app": app, "N": n}
        ilp_thr = results["ilp"].throughput
        for mapper, flow in results.items():
            row[f"{mapper} tmax(us)"] = flow.mapping.tmax / 1e3
            row[f"{mapper} thr"] = flow.throughput / ilp_thr
        rows.append(row)
        advantages.append(ilp_thr / results["roundrobin"].throughput)
    return ExperimentResult(
        experiment="ablation.mapping",
        description="ILP mapping vs communication-blind baselines",
        rows=rows,
        summary={
            "geomean ILP advantage over round-robin": geometric_mean(advantages)
        },
    )


def run_phases(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
) -> ExperimentResult:
    """Partitioning-phase ablation."""
    variants = {
        "full": (1, 2, 3, 4),
        "no-phase4": (1, 2, 3),
        "no-phase3/4": (1, 2),
        "phase2-only": (2,),
    }
    rows: List[Dict[str, object]] = []
    for app, n in cases:
        graph = build_app(app, n)
        engine = PerformanceEstimationEngine(graph)
        row: Dict[str, object] = {"app": app, "N": n}
        for label, phases in variants.items():
            result = partition_stream_graph(graph, engine=engine, phases=phases)
            row[f"{label} P"] = len(result)
            row[f"{label} T(us)"] = result.total_t / 1e3
        rows.append(row)
    improves = sum(
        1 for row in rows if row["full T(us)"] <= row["phase2-only T(us)"] + 1e-9
    )
    return ExperimentResult(
        experiment="ablation.phases",
        description="Algorithm 1 with merge phases disabled",
        rows=rows,
        summary={"cases where full <= phase2-only": f"{improves} / {len(rows)}"},
    )


def run_comm(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
    num_gpus: int = 4,
) -> ExperimentResult:
    """Communication-awareness ablation of the ILP."""
    rows: List[Dict[str, object]] = []
    gains = []
    for app, n in cases:
        graph = build_app(app, n)
        engine = PerformanceEstimationEngine(graph)
        aware = map_stream_graph(
            graph, num_gpus=num_gpus, mapper="ilp", engine=engine
        )
        blind = map_stream_graph(
            graph, num_gpus=num_gpus, mapper="ilp-nocomm", engine=engine
        )
        gain = aware.throughput / blind.throughput
        gains.append(gain)
        rows.append(
            {
                "app": app,
                "N": n,
                "comm-aware thr/blind thr": gain,
                "aware tmax(us)": aware.mapping.tmax / 1e3,
                "blind eval tmax(us)": blind.mapping.tmax / 1e3,
            }
        )
    return ExperimentResult(
        experiment="ablation.comm",
        description="ILP with vs without communication constraints",
        rows=rows,
        summary={"geomean gain from comm-awareness": geometric_mean(gains)},
    )


def run(quick: bool = True) -> List[ExperimentResult]:
    """All ablations."""
    return [run_mapping(quick), run_phases(quick), run_comm(quick)]
