"""EXP-T5.1 — splitter/joiner elimination (Table 5.1).

Chapter V measures the single-GPU SPSG runtime of FFT and Bitonic with
and without the enhanced buffer allocation that eliminates splitters and
joiners.  The paper's numbers:

    FFT     N=512: 39.2 -> 27.2 ms (1.44x)   N=256: 1.66x   N=128: 1.59x
    Bitonic N=64 : 23.1 -> 5.2  ms (4.45x)   N=32 : 5.01x   N=16 : 1.05x

Bitonic gains far more because it is made of movers; FFT has exactly one
splitter and one joiner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import build_app
from repro.experiments.common import ExperimentResult
from repro.flow import map_stream_graph
from repro.opt.splitjoin_elim import eliminate_movers
from repro.perf.engine import PerformanceEstimationEngine

#: (app, N, paper speedup)
PAPER_ROWS: Tuple[Tuple[str, int, float], ...] = (
    ("FFT", 512, 1.44),
    ("FFT", 256, 1.66),
    ("FFT", 128, 1.59),
    ("Bitonic", 64, 4.45),
    ("Bitonic", 32, 5.01),
    ("Bitonic", 16, 1.05),
)


def run(
    quick: bool = True,
    cases: Optional[Sequence[Tuple[str, int, float]]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table 5.1 on the simulator (SPSG, one GPU)."""
    cases = list(cases) if cases is not None else list(PAPER_ROWS)
    if quick:
        cases = [case for case in cases if case[1] <= 256]
    rows: List[Dict[str, object]] = []
    gains = []
    for app, n, paper_speedup in cases:
        graph = build_app(app, n)
        original = map_stream_graph(graph, num_gpus=1, partitioner="single")
        enhanced_graph, report = eliminate_movers(graph)
        enhanced = map_stream_graph(
            enhanced_graph, num_gpus=1, partitioner="single"
        )
        speedup = original.report.makespan_ns / enhanced.report.makespan_ns
        gains.append(speedup)
        rows.append(
            {
                "app": app,
                "N": n,
                "original (us/frag)": original.report.beat_ns / 1e3,
                "enhanced (us/frag)": enhanced.report.beat_ns / 1e3,
                "speedup": speedup,
                "paper speedup": paper_speedup,
                "movers removed": report.total_removed,
            }
        )
    bitonic_gains = [
        row["speedup"] for row in rows if row["app"] == "Bitonic"
    ]
    fft_gains = [row["speedup"] for row in rows if row["app"] == "FFT"]
    summary: Dict[str, object] = {
        "all cases improved": all(g > 1.0 for g in gains),
    }
    if bitonic_gains and fft_gains:
        summary["Bitonic gains exceed FFT gains (paper: yes)"] = (
            max(bitonic_gains) > max(fft_gains)
        )
    return ExperimentResult(
        experiment="table5.1",
        description="splitter/joiner elimination, SPSG on one GPU",
        rows=rows,
        summary=summary,
    )
