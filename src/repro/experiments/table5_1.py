"""EXP-T5.1 — splitter/joiner elimination (Table 5.1).

Chapter V measures the single-GPU SPSG runtime of FFT and Bitonic with
and without the enhanced buffer allocation that eliminates splitters and
joiners.  The paper's numbers:

    FFT     N=512: 39.2 -> 27.2 ms (1.44x)   N=256: 1.66x   N=128: 1.59x
    Bitonic N=64 : 23.1 -> 5.2  ms (4.45x)   N=32 : 5.01x   N=16 : 1.05x

Bitonic gains far more because it is made of movers; FFT has exactly one
splitter and one joiner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import build_app
from repro.experiments.common import ExperimentResult, experiment_runner
from repro.opt.splitjoin_elim import eliminate_movers
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepPoint

#: (app, N, paper speedup)
PAPER_ROWS: Tuple[Tuple[str, int, float], ...] = (
    ("FFT", 512, 1.44),
    ("FFT", 256, 1.66),
    ("FFT", 128, 1.59),
    ("Bitonic", 64, 4.45),
    ("Bitonic", 32, 5.01),
    ("Bitonic", 16, 1.05),
)


def _original_point(app: str, n: int) -> SweepPoint:
    return SweepPoint(app=app, n=n, num_gpus=1, partitioner="single")


def _enhanced_point(app: str, n: int) -> SweepPoint:
    return SweepPoint(
        app=app, n=n, num_gpus=1, partitioner="single",
        transform="eliminate-movers",
    )


def grid(
    cases: Sequence[Tuple[str, int, float]]
) -> List[SweepPoint]:
    """The Table 5.1 grid: original vs mover-eliminated SPSG per case."""
    points: List[SweepPoint] = []
    for app, n, _ in cases:
        points.append(_original_point(app, n))
        points.append(_enhanced_point(app, n))
    return points


def run(
    quick: bool = True,
    cases: Optional[Sequence[Tuple[str, int, float]]] = None,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Table 5.1 on the simulator (SPSG, one GPU)."""
    runner = experiment_runner(runner)
    cases = list(cases) if cases is not None else list(PAPER_ROWS)
    if quick:
        cases = [case for case in cases if case[1] <= 256]
    sweep = runner.run(grid(cases), keep_flows=True)
    rows: List[Dict[str, object]] = []
    gains = []
    for app, n, paper_speedup in cases:
        original = sweep.flow(_original_point(app, n))
        enhanced = sweep.flow(_enhanced_point(app, n))
        # the transform point already eliminated movers inside the sweep,
        # but its ElimReport is not carried through PointResult; redoing
        # the (cheap, simulation-free) graph surgery buys the row's
        # "movers removed" count
        _, report = eliminate_movers(build_app(app, n))
        speedup = original.report.makespan_ns / enhanced.report.makespan_ns
        gains.append(speedup)
        rows.append(
            {
                "app": app,
                "N": n,
                "original (us/frag)": original.report.beat_ns / 1e3,
                "enhanced (us/frag)": enhanced.report.beat_ns / 1e3,
                "speedup": speedup,
                "paper speedup": paper_speedup,
                "movers removed": report.total_removed,
            }
        )
    bitonic_gains = [
        row["speedup"] for row in rows if row["app"] == "Bitonic"
    ]
    fft_gains = [row["speedup"] for row in rows if row["app"] == "FFT"]
    summary: Dict[str, object] = {
        "all cases improved": all(g > 1.0 for g in gains),
    }
    if bitonic_gains and fft_gains:
        summary["Bitonic gains exceed FFT gains (paper: yes)"] = (
            max(bitonic_gains) > max(fft_gains)
        )
    return ExperimentResult(
        experiment="table5.1",
        description="splitter/joiner elimination, SPSG on one GPU",
        rows=rows,
        summary=summary,
    )
