"""EXP-PLAT — the platform catalog under one workload.

Beyond the paper: run the same applications across every named platform
of :mod:`repro.gpu.platforms` and compare what the communication-aware
mapping makes of each machine.  The interesting contrasts:

* ``gen3-balanced`` vs ``c2070-quad`` — same tree, faster links *and*
  faster GPUs: throughput should never decrease;
* ``two-island`` vs ``host-star`` — the ILP should keep heavy streams
  inside an island rather than crossing the slow fabric;
* ``mixed-box`` — the heterogeneous extension in action: slow C2070
  leaves receive less work than the M2090 pair.

Each row reports the mapped ``Tmax``, the simulated throughput, and the
GPU-load spread, per platform.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult, experiment_runner
from repro.gpu.platforms import PLATFORM_NAMES
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepPoint, SweepSpec

#: default workload: mid-size bundled benchmarks with real communication
#: (a synthetic irregular DAG rides along in every mode via synth_cases)
DEFAULT_CASES = (("DES", 16), ("Bitonic", 16))

#: full mode adds a bigger instance
FULL_EXTRA_CASES = (("DCT", 18),)


def grid(
    quick: bool,
    platforms: Sequence[str],
    cases: Optional[Sequence[tuple]] = None,
) -> List[SweepPoint]:
    """Every (case, platform) point of the catalog sweep."""
    if cases is None:
        cases = DEFAULT_CASES if quick else DEFAULT_CASES + FULL_EXTRA_CASES
    spec = SweepSpec(
        cases=list(cases),
        synth_cases=[("dag", 7)],
        platforms=tuple(platforms),
    )
    return spec.expand()


def run(
    quick: bool = True,
    platforms: Optional[Sequence[str]] = None,
    cases: Optional[Sequence[tuple]] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Sweep the workload across the named-platform catalog."""
    runner = experiment_runner(runner)
    platforms = list(platforms) if platforms is not None else list(PLATFORM_NAMES)
    sweep = runner.run(grid(quick, platforms, cases), keep_flows=True)
    rows: List[Dict[str, object]] = []
    best: Dict[str, tuple] = {}
    for rec in sweep.records:
        flow = sweep.flow(rec.point)
        gpu_times = flow.mapping.gpu_times
        spread = (
            max(gpu_times) / min(t for t in gpu_times if t > 0)
            if any(t > 0 for t in gpu_times) else 1.0
        )
        case = f"{rec.point.app}/{rec.point.n}"
        rows.append({
            "app": rec.point.app,
            "N": rec.point.n,
            "platform": rec.point.platform,
            "gpus": rec.point.num_gpus,
            "P": rec.num_partitions,
            "tmax(us)": rec.tmax / 1e3,
            "thr(exec/ms)": rec.throughput * 1e6,
            "bottleneck": flow.mapping.bottleneck,
            "load spread": spread,
            # False marks a time-limited ILP resolved by heuristics —
            # cross-platform Tmax comparisons should guard on this
            "optimal": flow.mapping.optimal,
        })
        if case not in best or rec.throughput > best[case][1]:
            best[case] = (rec.point.platform, rec.throughput)

    summary: Dict[str, object] = {
        f"best platform for {case}": f"{plat} ({thr * 1e6:.1f} exec/ms)"
        for case, (plat, thr) in sorted(best.items())
    }
    return ExperimentResult(
        experiment="platforms",
        description="named-platform catalog comparison (beyond the paper)",
        rows=rows,
        summary=summary,
    )
