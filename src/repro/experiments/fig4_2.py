"""EXP-F4.2 — scalability of the mapping technique (Figure 4.2).

For each application and size N, the paper builds ONE partitioning and
maps it to 1..4 GPUs; the figure reports speedup over the 1-GPU
multi-partition mapping, with the partition count annotated under each
N.  Headline: with the largest N, 2/3/4 GPUs average 1.8x / 2.6x / 3.2x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    experiment_runner,
    gpu_counts,
    sweep_n_values,
)
from repro.apps.registry import FIG42_ORDER
from repro.metrics.stats import geometric_mean
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepPoint

#: the paper's average final-N speedups for 2/3/4 GPUs
PAPER_FINAL_SPEEDUPS = {2: 1.8, 3: 2.6, 4: 3.2}


def grid(
    apps: Sequence[str], quick: bool
) -> List[SweepPoint]:
    """The Figure 4.2 grid: every (app, N, GPU count) of the sweep."""
    gpus = gpu_counts(quick)
    return [
        SweepPoint(app=app, n=n, num_gpus=g)
        for app in apps
        for n in sweep_n_values(app, quick)
        for g in gpus
    ]


def run(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate the Figure 4.2 scalability sweep."""
    runner = experiment_runner(runner)
    apps = list(apps) if apps is not None else list(FIG42_ORDER)
    gpus = gpu_counts(quick)
    sweep = runner.run(grid(apps, quick), keep_flows=True)
    rows = []
    final_speedups: Dict[int, list] = {g: [] for g in gpus if g > 1}
    for app in apps:
        n_values = sweep_n_values(app, quick)
        for n in n_values:
            baseline = sweep.flow(SweepPoint(app=app, n=n, num_gpus=1))
            row: Dict[str, object] = {
                "app": app,
                "N": n,
                "partitions": baseline.num_partitions,
            }
            for g in gpus:
                if g == 1:
                    row["1-GPU"] = 1.0
                    continue
                mapped = sweep.flow(SweepPoint(app=app, n=n, num_gpus=g))
                speedup = mapped.throughput / baseline.throughput
                row[f"{g}-GPU"] = speedup
                if n == n_values[-1]:
                    final_speedups[g].append(speedup)
            rows.append(row)

    summary: Dict[str, object] = {}
    for g in sorted(final_speedups):
        if final_speedups[g]:
            ours = geometric_mean(final_speedups[g])
            paper = PAPER_FINAL_SPEEDUPS.get(g)
            summary[f"avg final-N speedup, {g} GPUs"] = (
                f"{ours:.2f} (paper: {paper})"
            )
    grow = sum(
        1
        for app in apps
        for g in sorted(final_speedups)
        if _speedup_grows(rows, app, g)
    )
    summary["(app, G) series where speedup grows with N"] = (
        f"{grow} / {len(apps) * len(final_speedups)}"
    )
    return ExperimentResult(
        experiment="fig4.2",
        description="multi-GPU scalability (speedup over 1-GPU mapping)",
        rows=rows,
        summary=summary,
    )


def _speedup_grows(rows, app: str, g: int) -> bool:
    series = [
        row[f"{g}-GPU"] for row in rows if row["app"] == app and f"{g}-GPU" in row
    ]
    return len(series) >= 2 and series[-1] >= series[0]
