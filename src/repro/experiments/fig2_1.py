"""EXP-F2.1 — the two single-GPU mapping approaches (Figure 2.1).

Figure 2.1 is the paper's background motivation: approach (b) creates one
kernel per filter — simple, but all inter-filter traffic goes through
global memory; approach (c) fuses the graph into one kernel communicating
through shared memory, which "generates higher performance in general".
This experiment quantifies the gap on the benchmark suite (single GPU),
plus where the fused kernel stops paying off (SM overflow on large N —
the opening for the paper's multi-partition technique).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult, experiment_runner
from repro.metrics.stats import geometric_mean
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepPoint

#: (app, small N, large N)
DEFAULT_CASES = (
    ("DES", 4, 20),
    ("FFT", 16, 256),
    ("Bitonic", 8, 32),
)


def grid(cases: Sequence = DEFAULT_CASES) -> List[SweepPoint]:
    """The Figure 2.1 grid: three partitioners per (app, N), one GPU."""
    return [
        SweepPoint(app=app, n=n, num_gpus=1, partitioner=partitioner)
        for app, small_n, large_n in cases
        for n in (small_n, large_n)
        for partitioner in ("perfilter", "single", "ours")
    ]


def run(
    quick: bool = True,
    cases: Sequence = DEFAULT_CASES,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Compare one-kernel-per-filter vs one-kernel-for-graph vs ours."""
    runner = experiment_runner(runner)
    sweep = runner.run(grid(cases), keep_flows=True)
    rows: List[Dict[str, object]] = []
    fused_gains: List[float] = []
    for app, small_n, large_n in cases:
        for n in (small_n, large_n):
            flows = {
                partitioner: sweep.flow(
                    SweepPoint(app=app, n=n, num_gpus=1,
                               partitioner=partitioner)
                )
                for partitioner in ("perfilter", "single", "ours")
            }
            per_filter = flows["perfilter"]
            fused = flows["single"]
            ours = flows["ours"]
            gain = fused.throughput / per_filter.throughput
            rows.append(
                {
                    "app": app,
                    "N": n,
                    "per-filter beat (us)": per_filter.report.beat_ns / 1e3,
                    "fused beat (us)": fused.report.beat_ns / 1e3,
                    "fused/per-filter": gain,
                    "ours/per-filter": ours.throughput / per_filter.throughput,
                    "fused spills": bool(
                        fused.engine.estimate(fused.partitions[0]).spilled_bytes
                    ),
                }
            )
            if n == small_n:
                fused_gains.append(gain)
    small_wins = sum(
        1 for row in rows
        if not row["fused spills"] and row["fused/per-filter"] > 1.0
    )
    ours_always = all(row["ours/per-filter"] >= 1.0 for row in rows)
    return ExperimentResult(
        experiment="fig2.1",
        description="one-kernel-per-filter vs one-kernel-for-graph (1 GPU)",
        rows=rows,
        summary={
            "geomean fused gain while the graph fits SM": geometric_mean(
                fused_gains
            ),
            "fused wins when it fits": small_wins,
            "our multi-partition flow >= per-filter everywhere": ours_always,
        },
    )
