"""EXP-F2.1 — the two single-GPU mapping approaches (Figure 2.1).

Figure 2.1 is the paper's background motivation: approach (b) creates one
kernel per filter — simple, but all inter-filter traffic goes through
global memory; approach (c) fuses the graph into one kernel communicating
through shared memory, which "generates higher performance in general".
This experiment quantifies the gap on the benchmark suite (single GPU),
plus where the fused kernel stops paying off (SM overflow on large N —
the opening for the paper's multi-partition technique).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.registry import build_app
from repro.experiments.common import ExperimentResult
from repro.flow import map_stream_graph
from repro.metrics.stats import geometric_mean
from repro.perf.engine import PerformanceEstimationEngine

#: (app, small N, large N)
DEFAULT_CASES = (
    ("DES", 4, 20),
    ("FFT", 16, 256),
    ("Bitonic", 8, 32),
)


def run(quick: bool = True, cases: Sequence = DEFAULT_CASES) -> ExperimentResult:
    """Compare one-kernel-per-filter vs one-kernel-for-graph vs ours."""
    rows: List[Dict[str, object]] = []
    fused_gains: List[float] = []
    for app, small_n, large_n in cases:
        for n in (small_n, large_n):
            graph = build_app(app, n)
            engine = PerformanceEstimationEngine(graph)
            per_filter = map_stream_graph(
                graph, num_gpus=1, partitioner="perfilter", engine=engine
            )
            fused = map_stream_graph(
                graph, num_gpus=1, partitioner="single", engine=engine
            )
            ours = map_stream_graph(graph, num_gpus=1, engine=engine)
            gain = fused.throughput / per_filter.throughput
            rows.append(
                {
                    "app": app,
                    "N": n,
                    "per-filter beat (us)": per_filter.report.beat_ns / 1e3,
                    "fused beat (us)": fused.report.beat_ns / 1e3,
                    "fused/per-filter": gain,
                    "ours/per-filter": ours.throughput / per_filter.throughput,
                    "fused spills": bool(
                        engine.estimate(fused.partitions[0]).spilled_bytes
                    ),
                }
            )
            if n == small_n:
                fused_gains.append(gain)
    small_wins = sum(
        1 for row in rows
        if not row["fused spills"] and row["fused/per-filter"] > 1.0
    )
    ours_always = all(row["ours/per-filter"] >= 1.0 for row in rows)
    return ExperimentResult(
        experiment="fig2.1",
        description="one-kernel-per-filter vs one-kernel-for-graph (1 GPU)",
        rows=rows,
        summary={
            "geomean fused gain while the graph fits SM": geometric_mean(
                fused_gains
            ),
            "fused wins when it fits": small_wins,
            "our multi-partition flow >= per-filter everywhere": ours_always,
        },
    )
