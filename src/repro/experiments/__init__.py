"""Experiment harnesses regenerating every table and figure.

One module per paper artifact:

* :mod:`repro.experiments.fig4_1` — performance-model validation scatter,
* :mod:`repro.experiments.fig4_2` — multi-GPU scalability per app per N,
* :mod:`repro.experiments.fig4_3` — SOSP comparison against [7],
* :mod:`repro.experiments.fig4_4` — SOSP cross-GPU validity,
* :mod:`repro.experiments.table5_1` — splitter/joiner elimination,
* :mod:`repro.experiments.ablations` — design-choice ablations,
* :mod:`repro.experiments.platforms` — the named-platform catalog sweep
  (beyond the paper; see :mod:`repro.gpu.platforms`).

Run them via ``python -m repro.experiments <which>`` (``all`` works), with
``--full`` for the complete paper-scale sweeps and ``--cache-dir`` to
persist pipeline-stage results across runs.

Every module executes through :class:`repro.sweep.SweepRunner` — pass
``runner=SweepRunner(cache=StageCache(...))`` to share profile/partition/
mapping/measurement work across experiments; results are bit-identical
with or without the cache because every pipeline stage is deterministic.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
