"""EXP-F3.2 — shared-memory behaviour of pipelines vs splits (Figure 3.2).

Figure 3.2 motivates phase 1 of the partitioning heuristic: under a
liveness analysis of the sequential firing schedule, a pipeline's buffers
are short-lived (the peak is roughly two adjacent buffers), while a
split structure keeps all branch buffers live simultaneously (the peak is
their sum).  This experiment quantifies that contrast across structure
widths/depths and reports the ratio.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import ExperimentResult
from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    splitjoin,
)
from repro.gpu.memory import partition_memory


def _pipeline_graph(depth: int, rate: int):
    stages = [
        FilterSpec(name=f"f{i}", pop=rate, push=rate, work=10.0)
        for i in range(depth)
    ]
    return flatten(
        pipeline(source("s", rate), *stages, sink("t", rate)),
        f"pipe-d{depth}",
    )


def _split_graph(width: int, rate: int):
    branches = [
        FilterSpec(name=f"b{i}", pop=rate, push=rate, work=10.0)
        for i in range(width)
    ]
    sj = splitjoin(
        duplicate(rate, width), branches,
        join_roundrobin(*([rate] * width)),
    )
    return flatten(
        pipeline(source("s", rate), sj, sink("t", rate * width)),
        f"split-w{width}",
    )


def run(quick: bool = True, rate: int = 64) -> ExperimentResult:
    """Regenerate the Figure 3.2 contrast."""
    sizes = (2, 4, 8) if quick else (2, 4, 8, 16)
    rows: List[Dict[str, object]] = []
    ratios = []
    for size in sizes:
        pipe = _pipeline_graph(size, rate)
        split = _split_graph(size, rate)
        pipe_live = partition_memory(pipe, policy="liveness").working_set
        split_live = partition_memory(split, policy="liveness").working_set
        pipe_static = partition_memory(pipe).working_set
        split_static = partition_memory(split).working_set
        ratios.append(split_live / pipe_live)
        rows.append(
            {
                "size (depth/width)": size,
                "pipeline live peak (B)": pipe_live,
                "split live peak (B)": split_live,
                "split/pipeline": split_live / pipe_live,
                "pipeline static (B)": pipe_static,
                "split static (B)": split_static,
            }
        )
    return ExperimentResult(
        experiment="fig3.2",
        description="pipeline vs split shared-memory requirements",
        rows=rows,
        summary={
            "split/pipeline live-peak ratio grows with width": (
                ratios == sorted(ratios)
            ),
            "largest ratio": max(ratios),
        },
    )
