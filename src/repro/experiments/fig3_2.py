"""EXP-F3.2 — shared-memory behaviour of pipelines vs splits (Figure 3.2).

Figure 3.2 motivates phase 1 of the partitioning heuristic: under a
liveness analysis of the sequential firing schedule, a pipeline's buffers
are short-lived (the peak is roughly two adjacent buffers), while a
split structure keeps all branch buffers live simultaneously (the peak is
their sum).  This experiment quantifies that contrast across structure
widths/depths and reports the ratio.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List

from repro.experiments.common import ExperimentResult, experiment_runner
from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    splitjoin,
)
from repro.gpu.memory import partition_memory


def _pipeline_graph(depth: int, rate: int):
    stages = [
        FilterSpec(name=f"f{i}", pop=rate, push=rate, work=10.0)
        for i in range(depth)
    ]
    return flatten(
        pipeline(source("s", rate), *stages, sink("t", rate)),
        f"pipe-d{depth}",
    )


def _split_graph(width: int, rate: int):
    branches = [
        FilterSpec(name=f"b{i}", pop=rate, push=rate, work=10.0)
        for i in range(width)
    ]
    sj = splitjoin(
        duplicate(rate, width), branches,
        join_roundrobin(*([rate] * width)),
    )
    return flatten(
        pipeline(source("s", rate), sj, sink("t", rate * width)),
        f"split-w{width}",
    )


def _contrast_row(size: int, rate: int = 64) -> Dict[str, object]:
    """One pipeline-vs-split memory contrast (module-level so the sweep
    runner's process pool can pickle it)."""
    pipe = _pipeline_graph(size, rate)
    split = _split_graph(size, rate)
    pipe_live = partition_memory(pipe, policy="liveness").working_set
    split_live = partition_memory(split, policy="liveness").working_set
    return {
        "size (depth/width)": size,
        "pipeline live peak (B)": pipe_live,
        "split live peak (B)": split_live,
        "split/pipeline": split_live / pipe_live,
        "pipeline static (B)": partition_memory(pipe).working_set,
        "split static (B)": partition_memory(split).working_set,
    }


def run(
    quick: bool = True, rate: int = 64, runner=None
) -> ExperimentResult:
    """Regenerate the Figure 3.2 contrast."""
    runner = experiment_runner(runner)
    sizes = (2, 4, 8) if quick else (2, 4, 8, 16)
    rows = runner.map(partial(_contrast_row, rate=rate), sizes)
    ratios = [row["split/pipeline"] for row in rows]
    return ExperimentResult(
        experiment="fig3.2",
        description="pipeline vs split shared-memory requirements",
        rows=rows,
        summary={
            "split/pipeline live-peak ratio grows with width": (
                ratios == sorted(ratios)
            ),
            "largest ratio": max(ratios),
        },
    )
