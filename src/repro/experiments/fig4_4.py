"""EXP-F4.4 — validity and accuracy of the SOSP metric (Figure 4.4).

Section 4.0.5's argument: the previous work's SPSG and MPMG binaries are
*identical* across the C2070 (G1) and M2090 (G2) — its partitioner looks
only at the shared-memory size, which the two parts share — and G2 is a
uniformly scaled G1 (+29% compute, +23% bandwidth).  A mapping's runtime
therefore scales by a factor between the two bounds, and the SOSP ratio
moves by at most about 2 * (29% - 23%) = 12% when carried across GPUs.

The experiment fixes the software once (partitions, kernel parameters,
assignment — everything derived on the M2090) and replays the *same*
code on both simulated GPUs, comparing the two SOSP values per app.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import FIG43_APPS, build_app
from repro.experiments.common import (
    ExperimentResult,
    experiment_runner,
    sweep_n_values,
)
from repro.flow import FlowResult, map_stream_graph, profile_stage
from repro.graph.fingerprint import graph_fingerprint
from repro.gpu.simulator import KernelSimulator
from repro.gpu.specs import C2070, M2090, GpuSpec
from repro.gpu.topology import default_topology
from repro.metrics.sosp import SospAnalysis, sosp_validity_bound
from repro.sweep.runner import SweepRunner
from repro.runtime.executor import PipelinedExecutor


def _replay_throughput(flow: FlowResult, spec: GpuSpec, seed: int) -> float:
    """Re-measure a fixed mapping's kernels on ``spec`` and execute."""
    simulator = KernelSimulator(spec, seed=seed)
    measurements = []
    for members in flow.partitions:
        estimate = flow.engine.estimate(members)  # parameters fixed on G2
        measurements.append(
            simulator.measure(
                flow.graph,
                estimate.members,
                estimate.config,
                estimate.memory,
                estimate.spilled_bytes,
            )
        )
    executor = PipelinedExecutor(
        flow.pdg,
        flow.mapping.assignment,
        default_topology(flow.num_gpus),
        simulator,
        measurements,
        peer_to_peer=True,
    )
    return executor.run().throughput


def _app_analyses(
    app: str,
    quick: bool = True,
    num_gpus: int = 4,
    seed: int = 0,
    cache=None,
) -> Tuple[List[Dict[str, object]], Dict[str, List[SospAnalysis]]]:
    """Freeze the two software variants on G2 and replay on both GPUs
    for one app (module-level so the runner's pool can pickle it)."""
    n_values = sweep_n_values(app, quick)
    n = n_values[len(n_values) // 2]
    graph = build_app(app, n)
    graph_fp = graph_fingerprint(graph) if cache is not None else None
    engine = profile_stage(
        graph, spec=M2090, simulator=KernelSimulator(M2090, seed=seed),
        cache=cache, graph_fp=graph_fp,
    )
    spsg = map_stream_graph(
        graph, num_gpus=1, spec=M2090, partitioner="single",
        engine=engine, cache=cache, graph_fp=graph_fp,
    )
    variants = {
        "previous": map_stream_graph(
            graph, num_gpus=num_gpus, spec=M2090, partitioner="previous",
            mapper="lpt", static_workload_balance=True,
            peer_to_peer=False, engine=engine, cache=cache,
            graph_fp=graph_fp,
        ),
        "ours": map_stream_graph(
            graph, num_gpus=num_gpus, spec=M2090, engine=engine, cache=cache,
            graph_fp=graph_fp,
        ),
    }
    rows: List[Dict[str, object]] = []
    by_variant: Dict[str, List[SospAnalysis]] = {"previous": [], "ours": []}
    for label, mpmg in variants.items():
        per_gpu: Dict[str, float] = {}
        for spec in (C2070, M2090):
            spsg_thr = _replay_throughput(spsg, spec, seed)
            mpmg_thr = _replay_throughput(mpmg, spec, seed)
            per_gpu[spec.name] = mpmg_thr / spsg_thr
        analysis = SospAnalysis(
            app=app,
            n=n,
            num_gpus=num_gpus,
            sosp_g1=per_gpu[C2070.name],
            sosp_g2=per_gpu[M2090.name],
        )
        by_variant[label].append(analysis)
        rows.append(
            {
                "app": app,
                "N": n,
                "software": label,
                "SOSP on C2070 (G1)": analysis.sosp_g1,
                "SOSP on M2090 (G2)": analysis.sosp_g2,
                "cross-GPU error": analysis.relative_error,
                "within 12% bound": analysis.within_bound(),
            }
        )
    return rows, by_variant


def run(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    num_gpus: int = 4,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate the Figure 4.4 four-case analysis.

    Two software variants are frozen on G2 and replayed on G1:

    * ``previous`` — the previous work's SPSG/MPMG pair, exactly the
      paper's argument; its runtime is compute/bandwidth dominated, so
      the 12% bound should hold.
    * ``ours`` — our flow's output.  Our MPMG mappings lean on PCIe and
      kernel launches, which do *not* scale between the two boards, so
      the error can exceed the paper's bound — a limit of the SOSP-
      transfer argument the paper does not discuss.
    """
    runner = experiment_runner(runner)
    apps = list(apps) if apps is not None else list(FIG43_APPS)
    per_app = runner.map(
        partial(
            _app_analyses, quick=quick, num_gpus=num_gpus, seed=seed,
            cache=runner.cache,
        ),
        apps,
    )
    rows: List[Dict[str, object]] = []
    by_variant: Dict[str, List[SospAnalysis]] = {"previous": [], "ours": []}
    for app_rows, app_by_variant in per_app:
        rows.extend(app_rows)
        for label, analyses in app_by_variant.items():
            by_variant[label].extend(analyses)

    bound = sosp_validity_bound()
    prev = by_variant["previous"]
    ours = by_variant["ours"]
    return ExperimentResult(
        experiment="fig4.4",
        description="SOSP transfers between the C2070 and M2090 "
        "(software fixed, hardware swapped)",
        rows=rows,
        summary={
            "theoretical bound (paper: 12%)": bound,
            "previous-work software within bound (paper's claim)": (
                f"{sum(1 for a in prev if a.within_bound())} / {len(prev)}"
            ),
            "previous-work worst error": max(a.relative_error for a in prev),
            "our software within bound": (
                f"{sum(1 for a in ours if a.within_bound())} / {len(ours)}"
            ),
            "our software worst error (PCIe/launches do not scale)": max(
                a.relative_error for a in ours
            ),
        },
    )
