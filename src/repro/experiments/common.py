"""Shared experiment infrastructure: result records, table rendering,
and the bridge onto the sweep engine.

Every experiment module accepts an optional
:class:`~repro.sweep.runner.SweepRunner` and routes its pipeline
invocations through it (:func:`experiment_runner` supplies the default).
That makes the runner's stage cache — and, for map-style experiments,
its process pool — available to the whole reproduction with one
argument, without changing a single reported number: the pipeline stages
are deterministic (see the time-limit caveat in
:mod:`repro.sweep.runner`), so cached runs replay the same results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import APPS
from repro.sweep.runner import SweepRunner


@dataclass
class ExperimentResult:
    """Uniform container for one experiment run.

    ``rows`` is the regenerated table/figure data (one dict per row);
    ``summary`` holds headline numbers compared against the paper's.
    """

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report: a fixed-width table plus the summary."""
        lines = [f"== {self.experiment}: {self.description} =="]
        if self.rows:
            lines.append(render_table(self.rows))
        if self.summary:
            lines.append("-- summary --")
            for key, value in self.summary.items():
                lines.append(f"  {key}: {_fmt(value)}")
        return "\n".join(lines)


def render_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in cells
    ]
    return "\n".join([header, sep] + body)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def sweep_n_values(app: str, quick: bool) -> Tuple[int, ...]:
    """The N sweep for an app: full paper x-axis, or a 3-point subset."""
    values = APPS[app].paper_n
    if not quick or len(values) <= 3:
        return values
    return (values[0], values[len(values) // 2], values[-1])


def gpu_counts(quick: bool) -> Tuple[int, ...]:
    """GPU counts to evaluate."""
    return (1, 2, 4) if quick else (1, 2, 3, 4)


def experiment_runner(runner: Optional[SweepRunner] = None) -> SweepRunner:
    """The runner an experiment should execute through.

    Experiments assemble their tables from full
    :class:`~repro.flow.FlowResult` objects, which only a serial run
    retains (``keep_flows=True``), so the default is a plain serial
    runner; callers pass a cached runner to share pipeline prefixes
    across experiments (see ``python -m repro.experiments --cache-dir``).
    """
    return runner if runner is not None else SweepRunner()
