"""EXP-F4.1 — validation of the performance model (Figure 4.1).

The paper takes every partition its heuristic selected (~350 across the
benchmark suite), predicts its kernel runtime with the PEE, measures the
generated kernel with the Nvidia profiler, and reports the scatter:
R^2 = 0.972, with rare severe outliers whose measured time exceeds the
prediction (SM bank conflicts).

Here the simulator plays the profiler.  For every (app, N) instance we
run the partitioning heuristic, predict T(p) per partition, "measure" the
same kernel with the PEE-chosen parameters, and aggregate the scatter.
The per-app scatters execute through the sweep runner, so a stage cache
skips re-partitioning instances other experiments already processed.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import FIG42_ORDER, build_app
from repro.experiments.common import (
    ExperimentResult,
    experiment_runner,
    sweep_n_values,
)
from repro.flow import partition_stage, profile_stage
from repro.metrics.stats import r_squared
from repro.sweep.runner import SweepRunner

#: the paper's headline correlation
PAPER_R_SQUARED = 0.972


def _instance_points(
    app: str, n: int, cache=None
) -> List[Tuple[float, float]]:
    """(predicted, measured) per heuristic-selected partition of one
    (app, N) instance — the shared scatter kernel of run()/run_points()."""
    graph = build_app(app, n)
    engine = profile_stage(graph, cache=cache)
    partitions, _ = partition_stage(graph, engine, cache=cache)
    return [
        (
            engine.estimate(members).estimate.t_exec,
            engine.measure(members).t_exec,
        )
        for members in partitions
    ]


def _app_scatter(
    app: str, quick: bool = True, cache=None
) -> Tuple[List[float], List[float], int]:
    """(predicted, measured, severe-outlier count) for one app's sweep."""
    predicted: List[float] = []
    measured: List[float] = []
    outliers = 0
    for n in sweep_n_values(app, quick):
        for pred, meas in _instance_points(app, n, cache=cache):
            predicted.append(pred)
            measured.append(meas)
            if meas > 1.3 * pred:
                outliers += 1
    return predicted, measured, outliers


def run(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate the Figure 4.1 scatter."""
    runner = experiment_runner(runner)
    apps = list(apps) if apps is not None else list(FIG42_ORDER)
    scatters = runner.map(
        partial(_app_scatter, quick=quick, cache=runner.cache), apps
    )
    predicted: List[float] = []
    measured: List[float] = []
    outliers = 0
    per_app_rows = []
    for app, (app_pred, app_meas, app_outliers) in zip(apps, scatters):
        outliers += app_outliers
        predicted.extend(app_pred)
        measured.extend(app_meas)
        per_app_rows.append(
            {
                "app": app,
                "partitions": len(app_pred),
                "r_squared": r_squared(app_pred, app_meas),
            }
        )

    overall = r_squared(predicted, measured)
    mean_ratio = sum(
        m / p for p, m in zip(predicted, measured) if p > 0
    ) / len(predicted)
    result = ExperimentResult(
        experiment="fig4.1",
        description="accuracy of the GPU performance estimation engine",
        rows=per_app_rows,
        summary={
            "total partitions validated": len(predicted),
            "overall R^2 (paper: 0.972)": overall,
            "mean measured/predicted ratio": mean_ratio,
            "severe outliers (>30% underprediction)": outliers,
            "outlier fraction": outliers / len(predicted),
        },
    )
    result.summary["scatter"] = "see rows; points available via run_points()"
    return result


def run_points(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[tuple]:
    """The raw (predicted, measured) scatter points, for plotting."""
    runner = experiment_runner(runner)
    apps = list(apps) if apps is not None else list(FIG42_ORDER)
    points = []
    for app in apps:
        for n in sweep_n_values(app, quick):
            for pred, meas in _instance_points(app, n, cache=runner.cache):
                points.append((app, n, pred, meas))
    return points
