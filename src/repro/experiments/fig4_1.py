"""EXP-F4.1 — validation of the performance model (Figure 4.1).

The paper takes every partition its heuristic selected (~350 across the
benchmark suite), predicts its kernel runtime with the PEE, measures the
generated kernel with the Nvidia profiler, and reports the scatter:
R^2 = 0.972, with rare severe outliers whose measured time exceeds the
prediction (SM bank conflicts).

Here the simulator plays the profiler.  For every (app, N) instance we
run the partitioning heuristic, predict T(p) per partition, "measure" the
same kernel with the PEE-chosen parameters, and aggregate the scatter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps.registry import FIG42_ORDER, build_app
from repro.experiments.common import ExperimentResult, sweep_n_values
from repro.metrics.stats import r_squared
from repro.partition.heuristic import partition_stream_graph
from repro.perf.engine import PerformanceEstimationEngine

#: the paper's headline correlation
PAPER_R_SQUARED = 0.972


def run(
    quick: bool = True,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Figure 4.1 scatter."""
    apps = list(apps) if apps is not None else list(FIG42_ORDER)
    predicted: List[float] = []
    measured: List[float] = []
    outliers = 0
    per_app_rows = []
    for app in apps:
        n_values = sweep_n_values(app, quick)
        app_pred: List[float] = []
        app_meas: List[float] = []
        for n in n_values:
            graph = build_app(app, n)
            engine = PerformanceEstimationEngine(graph)
            result = partition_stream_graph(graph, engine=engine)
            for members in result.partitions:
                estimate = engine.estimate(members)
                measurement = engine.measure(members)
                app_pred.append(estimate.estimate.t_exec)
                app_meas.append(measurement.t_exec)
                if measurement.t_exec > 1.3 * estimate.estimate.t_exec:
                    outliers += 1
        predicted.extend(app_pred)
        measured.extend(app_meas)
        per_app_rows.append(
            {
                "app": app,
                "partitions": len(app_pred),
                "r_squared": r_squared(app_pred, app_meas),
            }
        )

    overall = r_squared(predicted, measured)
    mean_ratio = sum(
        m / p for p, m in zip(predicted, measured) if p > 0
    ) / len(predicted)
    result = ExperimentResult(
        experiment="fig4.1",
        description="accuracy of the GPU performance estimation engine",
        rows=per_app_rows,
        summary={
            "total partitions validated": len(predicted),
            "overall R^2 (paper: 0.972)": overall,
            "mean measured/predicted ratio": mean_ratio,
            "severe outliers (>30% underprediction)": outliers,
            "outlier fraction": outliers / len(predicted),
        },
    )
    result.summary["scatter"] = "see rows; points available via run_points()"
    return result


def run_points(
    quick: bool = True, apps: Optional[Sequence[str]] = None
) -> List[tuple]:
    """The raw (predicted, measured) scatter points, for plotting."""
    apps = list(apps) if apps is not None else list(FIG42_ORDER)
    points = []
    for app in apps:
        for n in sweep_n_values(app, quick):
            graph = build_app(app, n)
            engine = PerformanceEstimationEngine(graph)
            result = partition_stream_graph(graph, engine=engine)
            for members in result.partitions:
                estimate = engine.estimate(members)
                measurement = engine.measure(members)
                points.append(
                    (app, n, estimate.estimate.t_exec, measurement.t_exec)
                )
    return points
