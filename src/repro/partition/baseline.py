"""Baseline partitioners: the previous work [7] and SPSG [10].

The previous work's heuristic "keeps merging filters until the SM
requirement is violated" (Section 3.1.1): no performance model, no
boundedness steering — only the shared-memory constraint.  We implement it
as a topological sweep that grows convex partitions until one more filter
would overflow the SM at W = 1.  Its multi-GPU mapping counterpart (in
:mod:`repro.mapping.greedy`) balances static workload only and routes
inter-GPU traffic through the host.

The Single-Partition Single-GPU (SPSG) mapping of [10] — the whole graph
as one kernel on one GPU — is the denominator of the SOSP metric
(Section 4.0.4): both our flow and the previous work implement the same
SPSG heuristic, which is what makes SOSP comparable across hardware.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.graph.stream_graph import StreamGraph
from repro.gpu.memory import partition_memory
from repro.gpu.specs import GpuSpec, M2090
from repro.partition.convexity import ConvexityOracle


def previous_work_partition(
    graph: StreamGraph,
    spec: GpuSpec = M2090,
    oracle: Optional[ConvexityOracle] = None,
) -> List[FrozenSet[int]]:
    """The SM-threshold partitioner of [7].

    Sweeps filters in topological order, greedily adding each to the
    current partition when the result stays convex and fits the SM with
    one execution; otherwise closes the partition and starts a new one.
    Produces far fewer partitions than Algorithm 1 on compute-bound
    apps — the "kernel count ratio" effect of Section 4.0.3.
    """
    oracle = oracle or ConvexityOracle(graph)
    partitions: List[int] = []
    current = 0
    for nid in graph.topological_order():
        bit = 1 << nid
        if current == 0:
            current = bit
            continue
        candidate = current | bit
        if (
            oracle.adjacent(current, bit)
            and oracle.is_convex(candidate)
            and _fits(graph, candidate, spec, oracle)
        ):
            current = candidate
        else:
            partitions.append(current)
            current = bit
    if current:
        partitions.append(current)
    return [frozenset(oracle.members_of(mask)) for mask in partitions]


def _fits(
    graph: StreamGraph, mask: int, spec: GpuSpec, oracle: ConvexityOracle
) -> bool:
    memory = partition_memory(graph, oracle.members_of(mask))
    return memory.smem_for(1) <= spec.shared_mem_bytes


def single_partition(graph: StreamGraph) -> List[FrozenSet[int]]:
    """The SPSG partitioning: everything in one kernel.

    Large graphs overflow the SM in this regime; the PEE and simulator
    price the overflow as global-memory spill, which is precisely why
    multi-partition mappings win on large N (SOSP >> 1).
    """
    return [frozenset(node.node_id for node in graph.nodes)]


def one_kernel_per_filter(graph: StreamGraph) -> List[FrozenSet[int]]:
    """The "first approach" of Section 2.1.3 ([5]): every filter its own
    kernel, all inter-filter communication through global memory.

    In our cost model each singleton partition pays its boundary traffic
    as kernel I/O plus a launch per fragment — the global-memory
    bottleneck that motivates the one-kernel-for-graph approach the paper
    builds on.  Kept as a baseline for the background comparison
    experiment.
    """
    order = graph.topological_order()
    return [frozenset([nid]) for nid in order]
