"""Algorithm 1: the four-phase partitioning heuristic (Section 3.1.2).

Phase 1 merges filters *within* innermost pipeline segments (cheap in
shared memory, Figure 3.2a).  Phase 2 merges the remaining nodes (split /
join neighbourhoods).  Phase 3 merges whole partitions, steering towards
compute-boundedness: first IO-bound with IO-bound, then IO-bound with
anything, then anything with anything — merging shares boundary buffers
and so tends to convert IO-bound partitions into compute-bound ones.
Phase 4 attempts simultaneous merges (a partition with two neighbours at
once) and finally prices the all-in-one partition so the multi-partition
answer is never worse than single-partition.

Every merge decision is delegated to :class:`~repro.partition.merge.
MergeContext` (connectivity + convexity + the PEE's T() reduction test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.gpu.specs import GpuSpec, M2090
from repro.partition.convexity import ConvexityOracle
from repro.partition.merge import MergeContext
from repro.perf.engine import PartitionEstimate, PerformanceEstimationEngine


@dataclass
class PartitioningResult:
    """Outcome of the heuristic.

    ``partitions`` are node-id sets in topological order of the quotient
    graph; ``estimates`` align with them.  ``phase_counts`` records the
    partition count after each enabled phase (useful for the paper's
    partition-count analysis and for the phase ablation).
    """

    graph: StreamGraph
    partitions: List[FrozenSet[int]]
    estimates: List[PartitionEstimate]
    phase_counts: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.partitions)

    @property
    def assignment(self) -> Dict[int, int]:
        """node id -> partition index."""
        out: Dict[int, int] = {}
        for pid, members in enumerate(self.partitions):
            for nid in members:
                out[nid] = pid
        return out

    @property
    def total_t(self) -> float:
        """Σ T(p): the heuristic's own objective."""
        return sum(est.t for est in self.estimates)

    def compute_bound_count(self) -> int:
        return sum(1 for est in self.estimates if est.is_compute_bound)


def partition_stream_graph(
    graph: StreamGraph,
    engine: Optional[PerformanceEstimationEngine] = None,
    spec: GpuSpec = M2090,
    phases: Iterable[int] = (1, 2, 3, 4),
) -> PartitioningResult:
    """Run Algorithm 1 on ``graph``.

    ``phases`` selects which phases run (all four by default); disabling
    phases is the ablation hook used by the experiments.

    >>> from repro.apps import build_app
    >>> result = partition_stream_graph(build_app("Bitonic", 8))
    >>> partitions = result.partitions
    >>> sorted(nid for members in partitions for nid in members) == list(
    ...     range(len(result.graph.nodes)))  # a true partition of the nodes
    True
    >>> result.total_t > 0
    True
    """
    engine = engine or PerformanceEstimationEngine(graph, spec=spec)
    ctx = MergeContext(engine)
    state = _State(graph, ctx)
    enabled = set(phases)

    if 1 in enabled:
        _phase1_pipelines(state)
        state.note("phase1")
    if 2 in enabled:
        _phase2_remaining(state)
        state.note("phase2")
    else:
        _assign_singletons(state)
    if 3 in enabled:
        _phase3_partition_merging(state)
        state.note("phase3")
    if 4 in enabled:
        _phase4_simultaneous(state)
        state.note("phase4")
    return state.result()


# ----------------------------------------------------------------------
# internal state
# ----------------------------------------------------------------------
class _State:
    def __init__(self, graph: StreamGraph, ctx: MergeContext) -> None:
        self.graph = graph
        self.ctx = ctx
        self.oracle: ConvexityOracle = ctx.oracle
        self.parts: List[int] = []  # partition bitmasks
        self.assigned: int = 0  # union of all partition masks
        self.phase_counts: Dict[str, int] = {}

    def add_part(self, mask: int) -> int:
        self.parts.append(mask)
        self.assigned |= mask
        return len(self.parts) - 1

    def replace(self, victims: Sequence[int], union: int) -> None:
        """Remove partitions by index and append their union."""
        for idx in sorted(victims, reverse=True):
            del self.parts[idx]
        self.parts.append(union)

    def note(self, phase: str) -> None:
        self.phase_counts[phase] = len(self.parts)

    def result(self) -> PartitioningResult:
        order = self.graph.topological_order()
        position = {nid: idx for idx, nid in enumerate(order)}
        keyed = sorted(
            self.parts,
            key=lambda mask: min(
                position[nid] for nid in self.oracle.members_of(mask)
            ),
        )
        partitions = [
            frozenset(self.oracle.members_of(mask)) for mask in keyed
        ]
        estimates = [self.ctx.estimate(mask) for mask in keyed]
        return PartitioningResult(
            graph=self.graph,
            partitions=partitions,
            estimates=estimates,
            phase_counts=dict(self.phase_counts),
        )


# ----------------------------------------------------------------------
# phase 1: within innermost pipelines (Algorithm 1, lines 2-10)
# ----------------------------------------------------------------------
def _phase1_pipelines(state: _State) -> None:
    for segment in state.graph.pipelines:
        index = 0
        while index < len(segment):
            mask = 1 << segment[index]
            cursor = index + 1
            while cursor < len(segment):
                candidate = 1 << segment[cursor]
                if not state.ctx.can_merge(mask, candidate):
                    break
                mask |= candidate
                cursor += 1
            state.add_part(mask)
            index = cursor


# ----------------------------------------------------------------------
# phase 2: nodes outside pipelines (lines 13-20)
# ----------------------------------------------------------------------
def _phase2_remaining(state: _State) -> None:
    for node in state.graph.topological_order():
        bit = 1 << node
        if state.assigned & bit:
            continue
        mask = bit
        state.assigned |= bit
        merged = True
        while merged:
            merged = False
            frontier = state.oracle.neighbors_mask(mask) & ~state.assigned
            for neighbor in state.oracle.members_of(frontier):
                nb_bit = 1 << neighbor
                if state.ctx.can_merge(mask, nb_bit):
                    mask |= nb_bit
                    state.assigned |= nb_bit
                    merged = True
        state.parts.append(mask)


def _assign_singletons(state: _State) -> None:
    """Fallback when phase 2 is ablated: leftover nodes become singletons."""
    for node in state.graph.topological_order():
        bit = 1 << node
        if not state.assigned & bit:
            state.add_part(bit)


# ----------------------------------------------------------------------
# phase 3: merging partitions, IO-bound first (lines 23-31)
# ----------------------------------------------------------------------
def _phase3_partition_merging(state: _State) -> None:
    # three rounds: (L1, L1), (L1, L1 u L2), (L1 u L2, L1 u L2)
    for round_sources, round_targets in (
        ("io", "io"), ("io", "all"), ("all", "all")
    ):
        _phase3_round(state, round_sources, round_targets)


def _phase3_round(state: _State, sources: str, targets: str) -> None:
    while True:
        io_bound, compute_bound = _classify(state)
        src_list = io_bound if sources == "io" else io_bound + compute_bound
        dst_list = io_bound if targets == "io" else io_bound + compute_bound
        src_list = sorted(src_list, key=lambda idx: state.ctx.t(state.parts[idx]))
        merged = False
        for src in src_list:
            partners = sorted(
                (idx for idx in dst_list if idx != src),
                key=lambda idx: state.ctx.t(state.parts[idx]),
            )
            for dst in partners:
                if state.ctx.can_merge(state.parts[src], state.parts[dst]):
                    union = state.parts[src] | state.parts[dst]
                    state.replace([src, dst], union)
                    merged = True
                    break
            if merged:
                break
        if not merged:
            return


def _classify(state: _State) -> Tuple[List[int], List[int]]:
    io_bound: List[int] = []
    compute_bound: List[int] = []
    for idx, mask in enumerate(state.parts):
        if state.ctx.estimate(mask).is_compute_bound:
            compute_bound.append(idx)
        else:
            io_bound.append(idx)
    return io_bound, compute_bound


# ----------------------------------------------------------------------
# phase 4: simultaneous merges (lines 34-35)
# ----------------------------------------------------------------------
def _phase4_simultaneous(state: _State) -> None:
    _phase4_triples(state)
    _phase4_all(state)


def _phase4_triples(state: _State) -> None:
    changed = True
    while changed:
        changed = False
        for base in range(len(state.parts)):
            neighbors = [
                idx
                for idx in range(len(state.parts))
                if idx != base
                and state.oracle.adjacent(state.parts[base], state.parts[idx])
            ]
            done = False
            for i in range(len(neighbors)):
                for j in range(i + 1, len(neighbors)):
                    trio = [
                        state.parts[base],
                        state.parts[neighbors[i]],
                        state.parts[neighbors[j]],
                    ]
                    if state.ctx.can_merge_many(trio):
                        union = trio[0] | trio[1] | trio[2]
                        state.replace([base, neighbors[i], neighbors[j]], union)
                        changed = done = True
                        break
                if done:
                    break
            if done:
                break


def _phase4_all(state: _State) -> None:
    if len(state.parts) <= 1:
        return
    if state.ctx.can_merge_many(list(state.parts), allow_spill=True):
        union = 0
        for mask in state.parts:
            union |= mask
        state.parts = [union]
