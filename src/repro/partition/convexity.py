"""Convexity oracle for partitions.

A partition is *convex* if no path between two of its nodes passes through
an external node (footnote 1 of Algorithm 1, after [7]).  Equivalently,
with ``R+`` the set of nodes reachable from the partition and ``R-`` the
set of nodes reaching it::

    convex(P)  <=>  R+(P) ∩ R-(P) == P

Convex partitions of a DAG quotient to a DAG, which the pipelined
multi-GPU execution model requires.

The partitioning heuristic performs thousands of convexity checks, so the
oracle precomputes per-node descendant/ancestor sets as Python big-int
bitmasks: a check is then a handful of word-wide AND/ORs.

Feedback-loop delay edges are excluded from reachability (they do not
constrain the pipeline order) but do count for adjacency.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.graph.stream_graph import StreamGraph


class ConvexityOracle:
    """Precomputed reachability for fast convexity/adjacency queries."""

    def __init__(self, graph: StreamGraph) -> None:
        self.graph = graph
        n = len(graph.nodes)
        order = graph.topological_order()
        self._desc: List[int] = [0] * n
        self._anc: List[int] = [0] * n
        for nid in reversed(order):
            mask = 1 << nid
            for ch in graph.out_channels(nid):
                if ch.delay == 0:
                    mask |= self._desc[ch.dst]
            self._desc[nid] = mask
        for nid in order:
            mask = 1 << nid
            for ch in graph.in_channels(nid):
                if ch.delay == 0:
                    mask |= self._anc[ch.src]
            self._anc[nid] = mask
        self._adj: List[int] = [0] * n
        for ch in graph.channels:
            self._adj[ch.src] |= 1 << ch.dst
            self._adj[ch.dst] |= 1 << ch.src

    # ------------------------------------------------------------------
    @staticmethod
    def mask_of(members: Iterable[int]) -> int:
        """Bitmask of a node-id collection."""
        mask = 0
        for nid in members:
            mask |= 1 << nid
        return mask

    @staticmethod
    def members_of(mask: int) -> List[int]:
        """Node ids set in ``mask`` (ascending)."""
        out = []
        nid = 0
        while mask:
            if mask & 1:
                out.append(nid)
            mask >>= 1
            nid += 1
        return out

    # ------------------------------------------------------------------
    def descendants(self, mask: int) -> int:
        """Union of descendant masks (including the set itself)."""
        out = 0
        for nid in self.members_of(mask):
            out |= self._desc[nid]
        return out

    def ancestors(self, mask: int) -> int:
        """Union of ancestor masks (including the set itself)."""
        out = 0
        for nid in self.members_of(mask):
            out |= self._anc[nid]
        return out

    def is_convex(self, mask: int) -> bool:
        """Whether the node set is convex."""
        return (self.descendants(mask) & self.ancestors(mask)) == mask

    def adjacent(self, mask_a: int, mask_b: int) -> bool:
        """Whether some channel connects the two (disjoint) sets."""
        reach = 0
        for nid in self.members_of(mask_a):
            reach |= self._adj[nid]
        return bool(reach & mask_b)

    def neighbors_mask(self, mask: int) -> int:
        """All nodes adjacent to the set, excluding the set itself."""
        reach = 0
        for nid in self.members_of(mask):
            reach |= self._adj[nid]
        return reach & ~mask
