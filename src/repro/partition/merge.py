"""The Try-Merge operation of Algorithm 1.

``Try-Merge(a, b)`` merges two partitions (or a partition and a node) iff

(i)   they are connected,
(ii)  the union is convex, and
(iii) the PEE expects the union to run faster than the two separately:
      ``T(a ∪ b) < T(a) + T(b)`` — which also implies the union satisfies
      the shared-memory constraint, since an SM-overflowing union pays the
      (large) spill penalty and is additionally rejected outright.

The context object owns the oracle and the PEE so merge probes stay cheap
and memoized across the whole heuristic run.
"""

from __future__ import annotations

from typing import Optional

from repro.partition.convexity import ConvexityOracle
from repro.perf.engine import PartitionEstimate, PerformanceEstimationEngine


class MergeContext:
    """Shared state for merge probing: oracle + PEE + tunables.

    ``allow_spill`` permits unions that overflow shared memory (only the
    phase-4 "merge everything" probe wants this, to price the
    single-partition alternative honestly); everywhere else an overflow
    is an automatic rejection, matching the paper.
    """

    def __init__(
        self,
        engine: PerformanceEstimationEngine,
        oracle: Optional[ConvexityOracle] = None,
    ) -> None:
        self.engine = engine
        self.graph = engine.graph
        self.oracle = oracle or ConvexityOracle(self.graph)

    # ------------------------------------------------------------------
    def estimate(self, mask: int) -> PartitionEstimate:
        """PEE estimate for a partition bitmask."""
        return self.engine.estimate(self.oracle.members_of(mask))

    def t(self, mask: int) -> float:
        return self.estimate(mask).t

    # ------------------------------------------------------------------
    def can_merge(
        self, mask_a: int, mask_b: int, allow_spill: bool = False
    ) -> bool:
        """Evaluate Try-Merge's three conditions without mutating state."""
        if mask_a & mask_b:
            raise ValueError("partitions must be disjoint")
        if not self.oracle.adjacent(mask_a, mask_b):
            return False
        union = mask_a | mask_b
        if not self.oracle.is_convex(union):
            return False
        merged = self.estimate(union)
        if not allow_spill and not merged.fits_shared_memory:
            return False
        return merged.t < self.t(mask_a) + self.t(mask_b)

    def can_merge_many(self, masks: list, allow_spill: bool = False) -> bool:
        """Phase-4 variant: merge several partitions simultaneously."""
        union = 0
        for mask in masks:
            if union & mask:
                raise ValueError("partitions must be disjoint")
            union |= mask
        if not self._union_connected(masks):
            return False
        if not self.oracle.is_convex(union):
            return False
        merged = self.estimate(union)
        if not allow_spill and not merged.fits_shared_memory:
            return False
        separate = sum(self.t(mask) for mask in masks)
        return merged.t < separate

    def _union_connected(self, masks: list) -> bool:
        """Whether the union of the masks is (weakly) connected at the
        partition level."""
        remaining = list(masks)
        if not remaining:
            return False
        component = remaining.pop(0)
        changed = True
        while changed and remaining:
            changed = False
            for mask in list(remaining):
                if self.oracle.adjacent(component, mask):
                    component |= mask
                    remaining.remove(mask)
                    changed = True
        return not remaining
