"""Stream-graph partitioning (Section 3.1).

* :mod:`repro.partition.convexity` -- bitmask reachability oracle for the
  convexity side condition of Try-Merge,
* :mod:`repro.partition.merge` -- the conditional Try-Merge operation,
* :mod:`repro.partition.heuristic` -- Algorithm 1 (four merge phases),
* :mod:`repro.partition.pdg` -- the Partition Dependence Graph fed to the
  ILP mapper (Figure 3.4),
* :mod:`repro.partition.baseline` -- the previous work's SM-threshold
  partitioner [7] and the single-partition mapping of [10].
"""

from repro.partition.baseline import previous_work_partition, single_partition
from repro.partition.convexity import ConvexityOracle
from repro.partition.heuristic import PartitioningResult, partition_stream_graph
from repro.partition.merge import MergeContext
from repro.partition.pdg import PartitionDependenceGraph, build_pdg

__all__ = [
    "ConvexityOracle",
    "MergeContext",
    "PartitionDependenceGraph",
    "PartitioningResult",
    "build_pdg",
    "partition_stream_graph",
    "previous_work_partition",
    "single_partition",
]
