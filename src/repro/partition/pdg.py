"""The Partition Dependence Graph (Figure 3.4).

Nodes are partitions; an edge (p_i, p_j) exists when any stream-graph
channel crosses from p_i to p_j, with weight ``D_ij`` — the total bytes
crossing per steady-state execution.  Each node carries the PEE's
workload number ``T_i`` and, for mapping at fragment granularity, a
fragment-level time (launch iterations included).

The PDG is what the ILP formulation of Section 3.2.2 consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.gpu.simulator import KernelSimulator
from repro.perf.engine import PartitionEstimate, PerformanceEstimationEngine


@dataclass(frozen=True)
class PdgNode:
    """One partition as seen by the mapper."""

    index: int
    members: FrozenSet[int]
    t_per_execution: float  # T(p_i), ns per steady-state execution
    t_fragment: float  # time to process one data fragment, ns
    is_compute_bound: bool


@dataclass(frozen=True)
class BroadcastGroup:
    """Identical data fanned out from one partition to many.

    A duplicate splitter inside partition ``src`` feeding branches in
    other partitions sends the *same* bytes everywhere; peer-to-peer
    copies therefore ship one copy per destination **GPU**, not per
    destination partition.  The mapper and the runtime both exploit this
    (the paper's per-edge ``D_ij`` model would otherwise overcharge wide
    equalizer-style fan-outs cut across GPUs).
    """

    group_id: int
    src: int
    bytes_per_execution: int
    destinations: Tuple[int, ...]


@dataclass
class PartitionDependenceGraph:
    """Partitions + inter-partition traffic.

    ``edges`` maps (src index, dst index) to *private* bytes per
    steady-state execution (duplicate-splitter fan-out is factored into
    ``broadcasts`` instead); fragment-level traffic is that times
    ``executions_per_fragment``.
    """

    graph: StreamGraph
    nodes: List[PdgNode]
    edges: Dict[Tuple[int, int], int]
    executions_per_fragment: int
    #: host I/O bytes per execution per partition (primary input, output)
    host_io: List[Tuple[int, int]] = field(default_factory=list)
    #: duplicate fan-out traffic, deduplicated per destination GPU
    broadcasts: List[BroadcastGroup] = field(default_factory=list)
    #: feedback (delay-edge) traffic: loads links like a normal edge but
    #: does not order the pipeline — its data belongs to a *previous*
    #: steady-state iteration, which is what the delay guarantees
    feedback_edges: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.nodes)

    def edge_fragment_bytes(self, edge: Tuple[int, int]) -> int:
        return self.edges[edge] * self.executions_per_fragment

    def host_fragment_bytes(self, index: int) -> Tuple[int, int]:
        inp, out = self.host_io[index]
        scale = self.executions_per_fragment
        return inp * scale, out * scale

    def predecessors(self, index: int) -> List[int]:
        """Partitions feeding ``index`` through private edges."""
        return sorted({src for (src, dst) in self.edges if dst == index})

    def successors(self, index: int) -> List[int]:
        """Partitions fed by ``index`` through private edges."""
        return sorted({dst for (src, dst) in self.edges if src == index})

    def dependency_pairs(self) -> List[Tuple[int, int]]:
        """All (src, dst) dependencies: private edges plus broadcast
        fan-out."""
        pairs = set(self.edges)
        for group in self.broadcasts:
            for dst in group.destinations:
                pairs.add((group.src, dst))
        return sorted(pairs)

    def topological_order(self) -> List[int]:
        """Topological order of partitions (the quotient is a DAG for
        convex partitions)."""
        pairs = self.dependency_pairs()
        indeg = {i: 0 for i in range(len(self.nodes))}
        succ: Dict[int, List[int]] = {i: [] for i in range(len(self.nodes))}
        for src, dst in pairs:
            indeg[dst] += 1
            succ[src].append(dst)
        queue = sorted(i for i, d in indeg.items() if d == 0)
        order: List[int] = []
        while queue:
            cur = queue.pop(0)
            order.append(cur)
            for nxt in succ[cur]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(self.nodes):
            raise ValueError("partition quotient graph has a cycle")
        return order

    @property
    def total_fragment_time(self) -> float:
        return sum(node.t_fragment for node in self.nodes)


def build_pdg(
    graph: StreamGraph,
    partitions: Sequence[FrozenSet[int]],
    engine: PerformanceEstimationEngine,
    executions_per_fragment: int = 128,
    estimates: Optional[Sequence[PartitionEstimate]] = None,
) -> PartitionDependenceGraph:
    """Assemble the PDG from a partitioning.

    ``executions_per_fragment`` sets the fragment granularity of the
    pipelined execution model (Section 3.2.3): fragment-level times and
    traffic scale with it.
    """
    assignment: Dict[int, int] = {}
    for pid, members in enumerate(partitions):
        for nid in members:
            assignment[nid] = pid

    nodes: List[PdgNode] = []
    host_io: List[Tuple[int, int]] = []
    simulator: KernelSimulator = engine.simulator
    for pid, members in enumerate(partitions):
        est = estimates[pid] if estimates is not None else engine.estimate(members)
        launches = math.ceil(
            executions_per_fragment / simulator.executions_per_launch(est.config)
        )
        t_launch = est.estimate.t_exec * launches + simulator.costs.launch_ns
        nodes.append(
            PdgNode(
                index=pid,
                members=frozenset(members),
                t_per_execution=est.t,
                t_fragment=t_launch,
                is_compute_bound=est.is_compute_bound,
            )
        )
        inp = sum(graph.primary_input_elems(nid) for nid in members)
        out = sum(graph.primary_output_elems(nid) for nid in members)
        host_io.append((inp * graph.elem_bytes, out * graph.elem_bytes))

    edges: Dict[Tuple[int, int], int] = {}
    feedback: Dict[Tuple[int, int], int] = {}
    broadcast_raw: Dict[int, Dict[str, object]] = {}
    for ch in graph.channels:
        src_pid = assignment[ch.src]
        dst_pid = assignment[ch.dst]
        if src_pid == dst_pid:
            continue
        if ch.delay:
            key = (src_pid, dst_pid)
            feedback[key] = feedback.get(key, 0) + graph.channel_traffic_bytes(ch)
            continue
        if _is_broadcast_channel(graph, ch):
            entry = broadcast_raw.setdefault(
                ch.src,
                {"src": src_pid, "bytes": graph.channel_traffic_bytes(ch),
                 "dests": set()},
            )
            entry["dests"].add(dst_pid)
            continue
        key = (src_pid, dst_pid)
        edges[key] = edges.get(key, 0) + graph.channel_traffic_bytes(ch)

    broadcasts = [
        BroadcastGroup(
            group_id=node_id,
            src=entry["src"],
            bytes_per_execution=entry["bytes"],
            destinations=tuple(sorted(entry["dests"])),
        )
        for node_id, entry in sorted(broadcast_raw.items())
    ]
    return PartitionDependenceGraph(
        graph=graph,
        nodes=nodes,
        edges=edges,
        executions_per_fragment=executions_per_fragment,
        host_io=host_io,
        broadcasts=broadcasts,
        feedback_edges=feedback,
    )


def _is_broadcast_channel(graph: StreamGraph, ch) -> bool:
    """Whether a channel carries a copy of identical fan-out data: it
    leaves a duplicate splitter, or aliases a duplicated block after
    splitter elimination."""
    src = graph.nodes[ch.src]
    if src.spec.role.is_data_movement and src.spec.semantics == "duplicate":
        return True
    return ch.alias_group is not None and ch.slice_period == 0
