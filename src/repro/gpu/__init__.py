"""GPU platform substrate.

The paper evaluates on real Fermi-class hardware (Nvidia C2070 / M2090 on a
PCIe switch tree).  This package provides the simulated equivalent:

* :mod:`repro.gpu.specs` -- device and link specifications,
* :mod:`repro.gpu.topology` -- the PCIe tree of Figure 3.3 (generalized to
  per-link specs and heterogeneous leaves), routing and the ``dtlist(l)``
  rule used by the ILP,
* :mod:`repro.gpu.platforms` -- the named-platform catalog
  (``build_platform("two-island")`` and friends),
* :mod:`repro.gpu.delta` -- typed platform degradations (kill-GPU,
  throttle-link, slow-GPU, restore) deriving a degraded topology from a
  named platform,
* :mod:`repro.gpu.memory` -- liveness-based shared-memory requirements
  (Figure 3.2 semantics) and buffer allocation,
* :mod:`repro.gpu.kernel` -- kernel parameterization (S, W, F),
* :mod:`repro.gpu.simulator` -- the detailed kernel-level timing simulator
  that stands in for hardware measurements,
* :mod:`repro.gpu.codegen` -- CUDA-C source emission,
* :mod:`repro.gpu.functional` -- a functional VM executing stream graphs on
  data for end-to-end correctness checks.
"""

from repro.gpu.delta import (
    DELTA_KINDS,
    DegradedTopology,
    PlatformDelta,
    apply_deltas,
    degrade_platform,
    relative_gpu_map,
)
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import PartitionMemory, partition_memory
from repro.gpu.platforms import (
    PLATFORM_DESCRIPTIONS,
    PLATFORM_NAMES,
    PLATFORMS,
    build_platform,
    platform_link_table,
    platform_num_gpus,
)
from repro.gpu.simulator import KernelMeasurement, KernelSimulator, SimCosts
from repro.gpu.specs import (
    C2070,
    M2090,
    PCIE_GEN2_X8,
    PCIE_GEN2_X16,
    PCIE_GEN3_X8,
    PCIE_GEN3_X16,
    GpuSpec,
    LinkSpec,
)
from repro.gpu.topology import GpuTopology, Link, default_topology

__all__ = [
    "C2070",
    "DELTA_KINDS",
    "DegradedTopology",
    "GpuSpec",
    "GpuTopology",
    "KernelConfig",
    "KernelMeasurement",
    "KernelSimulator",
    "Link",
    "LinkSpec",
    "M2090",
    "PCIE_GEN2_X8",
    "PCIE_GEN2_X16",
    "PCIE_GEN3_X8",
    "PCIE_GEN3_X16",
    "PLATFORMS",
    "PLATFORM_DESCRIPTIONS",
    "PLATFORM_NAMES",
    "PartitionMemory",
    "PlatformDelta",
    "SimCosts",
    "apply_deltas",
    "build_platform",
    "default_topology",
    "degrade_platform",
    "partition_memory",
    "platform_link_table",
    "platform_num_gpus",
    "relative_gpu_map",
]
