"""Named multi-GPU platform catalog.

The paper evaluates one machine — four Fermi cards on a uniform PCIe
gen2 switch tree (Figure 3.3).  Real deployments are hierarchically
heterogeneous: islands of GPUs behind fast local switches, slower
cross-island and host uplinks, and mixed device generations in one box.
This module names a catalog of such platforms, each constructible from
its registry name, so every solver, sweep, and differential check can
run across the whole scenario space:

==================  ====================================================
``c2070-quad``      the paper's testbed: 4x C2070, uniform PCIe gen2
``gen3-balanced``   the same tree re-cabled with PCIe gen3 x16 links
``two-island``      2+2 GPUs; gen3 inside each island, gen2 x8 between
``host-star``       degenerate: every GPU cabled directly to the host
``mixed-box``       2x M2090 + 2x C2070 behind a uniform gen2 tree
``deep-tree-8``     8 GPUs, 3 switch levels, bandwidth tapering rootward
==================  ====================================================

Every platform is a plain :class:`~repro.gpu.topology.GpuTopology` —
per-edge :class:`~repro.gpu.specs.LinkSpec` overrides and per-leaf
:class:`~repro.gpu.specs.GpuSpec` lists are first-class topology
properties, so nothing downstream special-cases "a platform".  The
golden link tables under ``tests/golden/platforms/`` pin each catalog
entry byte-for-byte; edit a spec here and that test fails loudly.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Callable, Dict, List, Tuple

from repro.gpu.specs import (
    C2070,
    M2090,
    PCIE_GEN2_X8,
    PCIE_GEN2_X16,
    PCIE_GEN3_X16,
)
from repro.gpu.topology import HOST, GpuTopology, gpu_name


def _quad_edges() -> List[Tuple[str, str]]:
    """The Figure 3.3 tree shape: two 2-GPU switches under a root switch."""
    edges = [("sw1", HOST), ("sw2", "sw1"), ("sw3", "sw1")]
    for gpu in range(4):
        edges.append((gpu_name(gpu), "sw2" if gpu < 2 else "sw3"))
    return edges


def _c2070_quad() -> GpuTopology:
    return GpuTopology(
        _quad_edges(), num_gpus=4, link_spec=PCIE_GEN2_X16,
        gpu_specs=[C2070] * 4,
    )


def _gen3_balanced() -> GpuTopology:
    return GpuTopology(
        _quad_edges(), num_gpus=4, link_spec=PCIE_GEN3_X16,
        gpu_specs=[M2090] * 4,
    )


def _two_island() -> GpuTopology:
    # GPU leaf edges run gen3 (the fast intra-island fabric); the island
    # uplinks and the root edge are the slow gen2 x8 cross-island hops.
    return GpuTopology(
        _quad_edges(), num_gpus=4, link_spec=PCIE_GEN3_X16,
        edge_specs={
            "sw1": PCIE_GEN2_X8, "sw2": PCIE_GEN2_X8, "sw3": PCIE_GEN2_X8,
        },
        gpu_specs=[M2090] * 4,
    )


def _host_star() -> GpuTopology:
    return GpuTopology(
        [(gpu_name(gpu), HOST) for gpu in range(4)],
        num_gpus=4, link_spec=PCIE_GEN2_X16, gpu_specs=[M2090] * 4,
    )


def _mixed_box() -> GpuTopology:
    return GpuTopology(
        _quad_edges(), num_gpus=4, link_spec=PCIE_GEN2_X16,
        gpu_specs=[M2090, M2090, C2070, C2070],
    )


def _deep_tree_8() -> GpuTopology:
    # Three switch levels; bandwidth tapers towards the root: gen3 x16 at
    # the leaves, gen2 x16 mid-tree, a gen2 x8 host uplink — the
    # hierarchy-of-bandwidths setting of the process-mapping literature.
    edges = [("sw1", HOST), ("sw2", "sw1"), ("sw3", "sw1")]
    leaf_switches = ["sw4", "sw5", "sw6", "sw7"]
    for i, sw in enumerate(leaf_switches):
        edges.append((sw, "sw2" if i < 2 else "sw3"))
    for gpu in range(8):
        edges.append((gpu_name(gpu), leaf_switches[gpu // 2]))
    mid = {sw: PCIE_GEN2_X16 for sw in ("sw2", "sw3", *leaf_switches)}
    return GpuTopology(
        edges, num_gpus=8, link_spec=PCIE_GEN3_X16,
        edge_specs={"sw1": PCIE_GEN2_X8, **mid},
        gpu_specs=[M2090] * 8,
    )


#: registry: platform name -> zero-argument topology builder
PLATFORMS: Dict[str, Callable[[], GpuTopology]] = {
    "c2070-quad": _c2070_quad,
    "gen3-balanced": _gen3_balanced,
    "two-island": _two_island,
    "host-star": _host_star,
    "mixed-box": _mixed_box,
    "deep-tree-8": _deep_tree_8,
}

#: one-line description per catalog entry (CLI listings, docs)
PLATFORM_DESCRIPTIONS: Dict[str, str] = {
    "c2070-quad": "the paper's testbed: 4x C2070 on a uniform gen2 tree",
    "gen3-balanced": "the Figure 3.3 tree re-cabled with PCIe gen3 x16",
    "two-island": "2+2 M2090 islands: gen3 inside, gen2 x8 between",
    "host-star": "4x M2090 cabled directly to the host, no switches",
    "mixed-box": "2x M2090 + 2x C2070 behind a uniform gen2 tree",
    "deep-tree-8": "8x M2090, 3 switch levels, bandwidth tapering rootward",
}

#: catalog names in stable (sorted) order
PLATFORM_NAMES: Tuple[str, ...] = tuple(sorted(PLATFORMS))


def build_platform(name: str) -> GpuTopology:
    """Construct a named platform from the catalog.

    Every call builds a fresh :class:`~repro.gpu.topology.GpuTopology`
    (topologies are mutable-free in practice but not hashable/frozen, so
    callers own their instance).

    >>> topo = build_platform("two-island")
    >>> topo.num_gpus, topo.uniform_links
    (4, False)
    >>> build_platform("host-star").num_links
    8
    >>> build_platform("deep-tree-8").num_gpus
    8
    """
    try:
        builder = PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; known: {', '.join(PLATFORM_NAMES)}"
        ) from None
    return builder()


def platform_num_gpus(name: str) -> int:
    """GPU-leaf count of a named platform (validates the name).

    >>> platform_num_gpus("mixed-box")
    4
    """
    return build_platform(name).num_gpus


def platform_link_table(name: str) -> dict:
    """A platform's complete identity as one JSON-ready record.

    Lists every directed link with its bandwidth/latency and every GPU
    leaf with its device spec — the golden-file format under
    ``tests/golden/platforms/`` that makes accidental catalog edits fail
    loudly.

    >>> table = platform_link_table("host-star")
    >>> table["num_gpus"], len(table["links"])
    (4, 8)
    >>> table["links"][0]["bandwidth_bytes_per_ns"]
    6.0
    """
    topo = build_platform(name)
    return {
        "platform": name,
        "description": PLATFORM_DESCRIPTIONS[name],
        "num_gpus": topo.num_gpus,
        "edges": [list(edge) for edge in topo.tree_edges()],
        "gpu_specs": (
            [asdict(spec) for spec in topo.gpu_specs]
            if topo.gpu_specs is not None else None
        ),
        "links": [
            {
                "id": link.link_id,
                "name": link.name,
                "child": link.child,
                "parent": link.parent,
                "up": link.up,
                "bandwidth_bytes_per_ns": link.spec.bandwidth_bytes_per_ns,
                "latency_ns": link.spec.latency_ns,
            }
            for link in topo.links
        ],
    }
