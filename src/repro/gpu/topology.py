"""GPU interconnect topology (Figure 3.3) and the ``dtlist`` rule.

The platform is a tree: GPUs are leaves, PCIe switches are internal nodes,
the host is the root.  Every tree edge is a full-duplex PCIe link, modelled
as two directed :class:`Link` objects (an *uplink* towards the root and a
*downlink* away from it).

Peer-to-peer traffic from GPU ``i`` to GPU ``j`` climbs uplinks to the
lowest common ancestor and descends downlinks to ``j``.  Host-mediated
traffic (the previous work's execution model, and primary I/O) routes all
the way through the root.

``dtlist(l)`` — the set of (source, destination) GPU pairs whose traffic
crosses directed link ``l`` — is what the ILP formulation (Eq. III.7) needs.
The paper gives the tree shortcut: *an uplink ``l`` carries traffic from
GPU ``i`` to GPU ``j`` iff ``i`` is in the subtree below ``l`` and ``j`` is
not* (mirrored for downlinks).  We implement both that rule and brute-force
route enumeration and cross-check them in the tests.

Beyond the paper's uniform-``BW``/``Lat`` model, every tree edge may carry
its *own* :class:`~repro.gpu.specs.LinkSpec` (``edge_specs``) and every GPU
leaf its own :class:`~repro.gpu.specs.GpuSpec` (``gpu_specs``) — the
hierarchically heterogeneous platforms of real multi-GPU boxes (fast
intra-island links, slow cross-island hops, mixed device generations).
The named platform catalog lives in :mod:`repro.gpu.platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gpu.specs import PCIE_GEN2_X16, GpuSpec, LinkSpec

#: Identifier of the host (tree root) in node name space.
HOST = "host"


@dataclass(frozen=True)
class Link:
    """A directed PCIe link along one tree edge.

    ``child``/``parent`` name the tree edge; ``up`` is True for the
    child->parent direction.
    """

    link_id: int
    child: str
    parent: str
    up: bool
    spec: LinkSpec

    @property
    def name(self) -> str:
        if self.up:
            return f"{self.child}->{self.parent}"
        return f"{self.parent}->{self.child}"


class GpuTopology:
    """A host-rooted tree of switches and GPUs.

    Parameters
    ----------
    edges:
        ``(child, parent)`` pairs; the transitive parent chain must lead
        to :data:`HOST`.  GPU leaves are named ``gpu0..gpuN-1``.
    num_gpus:
        Number of GPU leaves.
    link_spec:
        Default per-direction PCIe link parameters — every edge without
        an ``edge_specs`` override uses this (the paper's model, where
        one ``BW``/``Lat`` pair appears in Eq. III.3).
    edge_specs:
        Optional per-edge :class:`LinkSpec` overrides, keyed by the
        *child* endpoint of the tree edge (a tree edge is uniquely named
        by its child).  Both directed links of the edge get the spec.
    gpu_specs:
        Optional per-leaf :class:`GpuSpec` list (one per GPU, in GPU-id
        order) for heterogeneous machines; :meth:`gpu_slowdowns` derives
        relative compute-slowdown factors from it for the mapping
        problem's heterogeneous extension (Section 3.2.2).
    """

    def __init__(
        self,
        edges: Sequence[Tuple[str, str]],
        num_gpus: int,
        link_spec: LinkSpec = PCIE_GEN2_X16,
        edge_specs: Optional[Mapping[str, LinkSpec]] = None,
        gpu_specs: Optional[Sequence[GpuSpec]] = None,
    ) -> None:
        self.num_gpus = num_gpus
        self.link_spec = link_spec
        self.gpu_specs: Optional[Tuple[GpuSpec, ...]] = (
            tuple(gpu_specs) if gpu_specs is not None else None
        )
        if self.gpu_specs is not None and len(self.gpu_specs) != num_gpus:
            raise ValueError("one GpuSpec per GPU leaf required")
        edge_specs = dict(edge_specs) if edge_specs else {}
        self._parent: Dict[str, str] = {}
        self.links: List[Link] = []
        self._uplink: Dict[str, int] = {}
        self._downlink: Dict[str, int] = {}
        for child, parent in edges:
            if child in self._parent:
                raise ValueError(f"duplicate child {child!r}")
            self._parent[child] = parent
            spec = edge_specs.pop(child, link_spec)
            up = Link(len(self.links), child, parent, True, spec)
            self.links.append(up)
            self._uplink[child] = up.link_id
            down = Link(len(self.links), child, parent, False, spec)
            self.links.append(down)
            self._downlink[child] = down.link_id
        if edge_specs:
            raise ValueError(
                f"edge_specs name unknown edges: {sorted(edge_specs)}"
            )
        for gpu in range(num_gpus):
            name = gpu_name(gpu)
            if name not in self._parent:
                raise ValueError(f"{name} missing from topology edges")
        # sanity: every parent chain must terminate at the host
        for child in self._parent:
            self._ancestors(child)
        # memoized route tables: the topology is immutable after
        # construction, so every route is computed at most once and the
        # cached tuple is shared by all callers (returning tuples keeps
        # the memo safe without defensive copies)
        self._p2p_routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._via_host_routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._to_host_routes: Dict[int, Tuple[int, ...]] = {}
        self._from_host_routes: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def tree_edges(self) -> List[Tuple[str, str]]:
        """The (child, parent) tree edges, sorted — together with
        ``num_gpus``, the per-link specs, and ``gpu_specs`` this is the
        topology's complete identity (the sweep engine keys cached
        mappings on it; see :func:`repro.flow.topology_key_parts`)."""
        return sorted(self._parent.items())

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def uniform_links(self) -> bool:
        """Whether every link shares the default ``link_spec`` (the
        paper's model); heterogeneous platforms return False."""
        return all(link.spec == self.link_spec for link in self.links)

    def link_spec_of(self, link_id: int) -> LinkSpec:
        """The :class:`LinkSpec` governing directed link ``link_id``."""
        return self.links[link_id].spec

    def gpu_slowdowns(self) -> Optional[List[float]]:
        """Per-GPU compute-slowdown factors derived from ``gpu_specs``.

        The fastest device (largest ``peak_throughput_proxy``) is the
        1.0 reference; every other GPU pays a proportional slowdown —
        exactly the ``T_i * slowdown_j`` heterogeneous extension of the
        ILP (Section 3.2.2).  ``None`` when no per-leaf specs were
        given (homogeneous machine, the default).
        """
        if self.gpu_specs is None:
            return None
        best = max(spec.peak_throughput_proxy for spec in self.gpu_specs)
        return [best / spec.peak_throughput_proxy for spec in self.gpu_specs]

    def _ancestors(self, node: str) -> List[str]:
        """Chain of ancestors from ``node`` (exclusive) to the host."""
        chain = []
        cur = node
        seen = set()
        while cur != HOST:
            if cur in seen or cur not in self._parent:
                raise ValueError(f"node {cur!r} does not reach the host")
            seen.add(cur)
            cur = self._parent[cur]
            chain.append(cur)
        return chain

    def subtree_gpus(self, link: Link) -> List[int]:
        """GPU ids in the subtree below ``link``'s child endpoint."""
        out = []
        for gpu in range(self.num_gpus):
            name = gpu_name(gpu)
            if name == link.child or link.child in self._ancestors(name):
                out.append(gpu)
        return out

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed link ids used by a peer-to-peer transfer src -> dst.

        Climbs to the lowest common ancestor, then descends; an intra-GPU
        "transfer" uses no links.  Memoized: the returned tuple is shared
        across calls, never re-walked.
        """
        if src == dst:
            return ()
        route = self._p2p_routes.get((src, dst))
        if route is None:
            route = tuple(self._route_names(gpu_name(src), gpu_name(dst)))
            self._p2p_routes[(src, dst)] = route
        return route

    def route_to_host(self, src: int) -> Tuple[int, ...]:
        """Uplink ids from GPU ``src`` to the host (device-to-host copy)."""
        route = self._to_host_routes.get(src)
        if route is None:
            route = tuple(self._route_names(gpu_name(src), HOST))
            self._to_host_routes[src] = route
        return route

    def route_from_host(self, dst: int) -> Tuple[int, ...]:
        """Downlink ids from the host to GPU ``dst`` (host-to-device copy)."""
        route = self._from_host_routes.get(dst)
        if route is None:
            route = tuple(self._route_names(HOST, gpu_name(dst)))
            self._from_host_routes[dst] = route
        return route

    def route_via_host(self, src: int, dst: int) -> Tuple[int, ...]:
        """Route for host-mediated (non-P2P) transfers, as in [7]."""
        if src == dst:
            return ()
        route = self._via_host_routes.get((src, dst))
        if route is None:
            route = self.route_to_host(src) + self.route_from_host(dst)
            self._via_host_routes[(src, dst)] = route
        return route

    def _route_names(self, src: str, dst: str) -> List[int]:
        src_chain = [src] + self._ancestors(src) if src != HOST else [HOST]
        dst_chain = [dst] + self._ancestors(dst) if dst != HOST else [HOST]
        dst_set = set(dst_chain)
        # climb from src until we hit a node on dst's chain (the LCA)
        lca = next(node for node in src_chain if node in dst_set)
        links: List[int] = []
        cur = src
        while cur != lca:
            links.append(self._uplink[cur])
            cur = self._parent[cur]
        down_path = []
        cur = dst
        while cur != lca:
            down_path.append(self._downlink[cur])
            cur = self._parent[cur]
        links.extend(reversed(down_path))
        return links

    # ------------------------------------------------------------------
    # dtlist
    # ------------------------------------------------------------------
    def dtlist(self, link_id: int) -> List[Tuple[int, int]]:
        """(src GPU, dst GPU) pairs whose P2P route crosses ``link_id``.

        Uses brute-force route enumeration; :meth:`dtlist_tree_rule` gives
        the paper's closed-form tree rule for cross-checking.
        """
        pairs = []
        for src in range(self.num_gpus):
            for dst in range(self.num_gpus):
                if src != dst and link_id in self.route(src, dst):
                    pairs.append((src, dst))
        return pairs

    def dtlist_tree_rule(self, link_id: int) -> List[Tuple[int, int]]:
        """The paper's rule: an uplink carries (i, j) iff ``i`` is below it
        and ``j`` is not; a downlink iff ``j`` is below it and ``i`` is
        not."""
        link = self.links[link_id]
        below = set(self.subtree_gpus(link))
        pairs = []
        for src in range(self.num_gpus):
            for dst in range(self.num_gpus):
                if src == dst:
                    continue
                if link.up and src in below and dst not in below:
                    pairs.append((src, dst))
                elif not link.up and dst in below and src not in below:
                    pairs.append((src, dst))
        return pairs

    def host_dtlist(self, link_id: int) -> Dict[str, List[int]]:
        """GPUs whose host-bound traffic crosses ``link_id``.

        Returns ``{"to_host": [...], "from_host": [...]}``; used to load
        links with primary I/O and with [7]-style host-mediated traffic.
        """
        to_host = [
            gpu for gpu in range(self.num_gpus) if link_id in self.route_to_host(gpu)
        ]
        from_host = [
            gpu for gpu in range(self.num_gpus) if link_id in self.route_from_host(gpu)
        ]
        return {"to_host": to_host, "from_host": from_host}

    def transfer_ns(self, nbytes: float, hops: int = 1) -> float:
        """Cost of one transfer crossing ``hops`` uniform-spec links.

        Uses the default ``link_spec``; for heterogeneous routes use
        :meth:`route_transfer_ns` with concrete link ids.
        """
        if hops <= 0:
            return 0.0
        # Store-and-forward pipelining across switch hops: pay the latency
        # once per hop but the bandwidth term once (links stream).
        return hops * self.link_spec.latency_ns + nbytes / self.link_spec.bandwidth_bytes_per_ns

    def route_transfer_ns(self, route: Sequence[int], nbytes: float) -> float:
        """Cost of one transfer along ``route`` with per-link specs.

        Latency is paid once per hop; the streamed bandwidth term is
        governed by the route's *bottleneck* link (the slowest link
        paces the whole store-and-forward pipeline).
        """
        if not route:
            return 0.0
        latency = sum(self.links[l].spec.latency_ns for l in route)
        bottleneck_bw = min(
            self.links[l].spec.bandwidth_bytes_per_ns for l in route
        )
        return latency + nbytes / bottleneck_bw

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GpuTopology(gpus={self.num_gpus}, links={self.num_links})"


def gpu_name(gpu: int) -> str:
    """Canonical leaf name of GPU ``gpu``."""
    return f"gpu{gpu}"


def default_topology(
    num_gpus: int, link_spec: LinkSpec = PCIE_GEN2_X16
) -> GpuTopology:
    """The machine of Figure 3.3, trimmed to ``num_gpus`` leaves.

    * 1 GPU : host - sw1 - gpu0
    * 2 GPUs: host - sw1 - {gpu0, gpu1}
    * 3 GPUs: host - sw1 - {sw2 - {gpu0, gpu1}, sw3 - {gpu2}}
    * 4 GPUs: host - sw1 - {sw2 - {gpu0, gpu1}, sw3 - {gpu2, gpu3}}

    >>> topo = default_topology(4)
    >>> topo.num_gpus, topo.num_links
    (4, 14)
    >>> topo.route(0, 1) != topo.route(0, 2)  # siblings vs cross-switch
    True
    """
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    if num_gpus > 4:
        raise ValueError("the reference machine has at most 4 GPUs")
    edges: List[Tuple[str, str]] = [("sw1", HOST)]
    if num_gpus <= 2:
        for gpu in range(num_gpus):
            edges.append((gpu_name(gpu), "sw1"))
    else:
        edges.append(("sw2", "sw1"))
        edges.append(("sw3", "sw1"))
        for gpu in range(num_gpus):
            parent = "sw2" if gpu < 2 else "sw3"
            edges.append((gpu_name(gpu), parent))
    return GpuTopology(edges, num_gpus, link_spec)
