"""Kernel parameterization.

The one-kernel-for-graph approach (Section 2.1.3) launches, per partition,
a single CUDA block per SM whose threads split into two roles:

* ``W * S`` *compute threads* — ``W`` concurrent executions of the
  partition's steady state, each driven by ``S`` threads that
  data-parallelize filter firings (a filter with firing rate ``f_i`` can
  use at most ``min(f_i, S)`` of them),
* ``F`` *data-transfer threads* — stream boundary I/O between global and
  shared memory through the double buffer.

Choosing (S, W, F) is the optimization the Performance Estimation Engine
performs and the code generator replays (static-discrepancy minimization,
Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.memory import PartitionMemory
from repro.gpu.specs import GpuSpec


@dataclass(frozen=True)
class KernelConfig:
    """A concrete (S, W, F) choice for one partition's kernel."""

    compute_threads_per_execution: int  # S
    executions_per_kernel: int  # W
    transfer_threads: int  # F

    def __post_init__(self) -> None:
        if self.compute_threads_per_execution < 1:
            raise ValueError("S must be >= 1")
        if self.executions_per_kernel < 1:
            raise ValueError("W must be >= 1")
        if self.transfer_threads < 0:
            raise ValueError("F must be >= 0")

    @property
    def s(self) -> int:
        return self.compute_threads_per_execution

    @property
    def w(self) -> int:
        return self.executions_per_kernel

    @property
    def f(self) -> int:
        return self.transfer_threads

    @property
    def compute_threads(self) -> int:
        """Total compute threads ``W * S``."""
        return self.w * self.s

    @property
    def total_threads(self) -> int:
        """Block size ``W * S + F``."""
        return self.compute_threads + self.f

    def fits(self, spec: GpuSpec, memory: PartitionMemory) -> bool:
        """Whether this configuration satisfies the thread and SM limits."""
        if self.total_threads > spec.max_threads_per_block:
            return False
        return memory.smem_for(self.w) <= spec.shared_mem_bytes

    def describe(self) -> str:
        return f"S={self.s} W={self.w} F={self.f} (threads={self.total_threads})"


#: Conservative default used when a caller needs *some* valid config
#: before running the parameter search.
DEFAULT_CONFIG = KernelConfig(
    compute_threads_per_execution=1, executions_per_kernel=1, transfer_threads=32
)
