"""Detailed kernel-level GPU timing simulator — the hardware stand-in.

The paper reports *measured* kernel runtimes (Nvidia profiler on M2090s).
Without GPUs, this simulator plays that role.  It deliberately models more
than the analytic performance model of Section 3.3.2 does:

* per-filter instruction-mix variation (captured by profiling, so the PEE
  sees it too),
* warp-granular pass counts (``ceil`` instead of smooth division),
* per-filter barrier synchronization overhead,
* shared-memory bank conflicts between compute and data-transfer threads —
  mostly small, occasionally severe (the paper's explanation for the
  outliers in Figure 4.1 where "actual runtimes are typically higher than
  our predictions"),
* global-memory spill penalties for working sets exceeding the SM
  (the regime that punishes single-partition mappings of large graphs),
* kernel launch overhead (excluded from "kernel time" like the paper's
  profiler numbers, but charged by the pipelined executor).

All perturbations are deterministic functions (MD5-hash based) of the
kernel identity, so "measurements" are reproducible run to run.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import PartitionMemory, partition_memory
from repro.gpu.specs import GpuSpec, M2090


@dataclass(frozen=True)
class SimCosts:
    """Microarchitectural cost constants (nanoseconds).

    ``dt_ns_per_elem`` and ``db_ns_per_elem`` are the ground truths the
    paper's empirical C1 = 38.4 and C2 = 11.2 estimate via regression
    (Section 4.0.1); the simulator's noise terms are what keep the
    regression from being exact.
    """

    #: cycles per abstract op as seen by ONE thread: Fermi's dependent
    #: arithmetic latency (~18 cycles).  Together with compute_concurrency
    #: this puts a fully-occupied SM at 576/18 = 32 ops/cycle — the SP
    #: count — and an M2090 at 16 SM * 32 * 1.3 GHz ~ 666 Gop/s, matching
    #: the real part.  The high per-op latency is also what makes the
    #: paper's Eq. III.9 (time linear in 1/threads) physically right up
    #: to several hundred threads.
    op_ns_at_1ghz: float = 18.0
    firing_overhead_ns: float = 40.0
    sync_base_ns: float = 10.0
    sync_per_warp_ns: float = 1.0
    #: threads the SM can keep in flight before compute throughput
    #: saturates at the SP issue rate
    compute_concurrency: float = 576.0
    dt_ns_per_elem: float = 38.4
    #: global-memory bandwidth floor: more transfer threads cannot push a
    #: block's I/O faster than its share of the memory system
    #: (177 GB/s / 16 SMs ~ 11 GB/s ~ 0.3 ns per 4-byte element)
    dt_floor_ns_per_elem: float = 0.30
    db_ns_per_elem: float = 11.2
    spill_ns_per_elem: float = 60.0
    launch_ns: float = 3_000.0
    instruction_mix_spread: float = 0.20
    compute_noise: float = 0.03
    dt_noise: float = 0.04
    conflict_probability: float = 0.05
    conflict_scale: Tuple[float, float] = (0.25, 0.60)
    background_conflict: float = 0.02


@dataclass(frozen=True)
class KernelMeasurement:
    """Simulated timing of one kernel launch (W executions), in ns."""

    t_comp: float
    t_dt: float
    t_db: float
    conflict_penalty: float
    spill_penalty: float
    launch_ns: float
    config: KernelConfig

    @property
    def t_exec(self) -> float:
        """Kernel execution time for W executions (Eq. III.8 + overheads,
        launch excluded, matching the paper's profiler methodology)."""
        overlap = max(self.t_comp, self.t_dt) if self.config.f else (
            self.t_comp + self.t_dt
        )
        return overlap + self.t_db + self.conflict_penalty + self.spill_penalty

    @property
    def per_execution(self) -> float:
        """Normalized execution time T = Texec / W (Eq. III.12)."""
        return self.t_exec / self.config.w


def _hash01(*keys: object) -> float:
    """Deterministic uniform-ish value in [0, 1) from arbitrary keys."""
    digest = hashlib.md5(repr(keys).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _signed(*keys: object) -> float:
    """Deterministic value in [-1, 1)."""
    return 2.0 * _hash01(*keys) - 1.0


class KernelSimulator:
    """Simulate kernels built from stream-graph partitions on a GPU."""

    def __init__(
        self,
        spec: GpuSpec = M2090,
        costs: Optional[SimCosts] = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.costs = costs or SimCosts()
        self.seed = seed

    # ------------------------------------------------------------------
    # profiling (Section 3.3.1)
    # ------------------------------------------------------------------
    def firing_time_ns(self, filter_name: str, work: float) -> float:
        """Single-thread time of one firing, data prefetching suppressed.

        This is what the paper's profiling step measures per filter; the
        instruction-mix factor is a stable property of the filter, so
        profiling captures it exactly and it causes no model error.
        """
        mix = 1.0 + self.costs.instruction_mix_spread * _signed(
            "mix", self.seed, filter_name
        )
        base = work * self.costs.op_ns_at_1ghz * self.spec.compute_scale
        return base * mix + self.costs.firing_overhead_ns

    def profile_graph(self, graph: StreamGraph) -> dict:
        """Per-node-id firing time annotation (the ``t_i`` of Fig. 3.1)."""
        return {
            node.node_id: self.firing_time_ns(node.spec.name, node.spec.work)
            for node in graph.nodes
        }

    # ------------------------------------------------------------------
    # kernel measurement
    # ------------------------------------------------------------------
    def measure(
        self,
        graph: StreamGraph,
        members: Iterable[int],
        config: KernelConfig,
        memory: Optional[PartitionMemory] = None,
        spilled_bytes: int = 0,
    ) -> KernelMeasurement:
        """Simulate one launch of the partition's kernel.

        ``spilled_bytes`` is the portion of the working set that did not
        fit in shared memory and lives in global memory instead.
        """
        member_list = sorted(set(members))
        if memory is None:
            memory = partition_memory(graph, member_list)
        kernel_key = (self.seed, self.spec.name, graph.name, tuple(member_list),
                      config.s, config.w, config.f)

        t_comp = self._compute_time(graph, member_list, config, kernel_key)
        d_elems = config.w * (memory.io_traffic_bytes // graph.elem_bytes)
        t_dt = self._transfer_time(d_elems, config, kernel_key)
        t_db = self._swap_time(d_elems, config)
        conflict = self._conflict_penalty(t_comp, t_dt, config, kernel_key)
        spill = self._spill_penalty(spilled_bytes, graph.elem_bytes, config)
        return KernelMeasurement(
            t_comp=t_comp,
            t_dt=t_dt,
            t_db=t_db,
            conflict_penalty=conflict,
            spill_penalty=spill,
            launch_ns=self.costs.launch_ns,
            config=config,
        )

    def _compute_time(
        self,
        graph: StreamGraph,
        members: Sequence[int],
        config: KernelConfig,
        kernel_key: tuple,
    ) -> float:
        total = 0.0
        warps = math.ceil(max(config.total_threads, 1) / self.spec.warp_size)
        sync = self.costs.sync_base_ns + self.costs.sync_per_warp_ns * warps
        for nid in members:
            node = graph.nodes[nid]
            s_eff = 1 if node.spec.stateful else config.s
            threads = max(1, min(node.firing, s_eff))
            passes = math.ceil(node.firing / threads)
            fire = self.firing_time_ns(node.spec.name, node.spec.work)
            jitter = 1.0 + self.costs.compute_noise * _signed(
                "comp", kernel_key, nid
            )
            # Latency bound: one execution's firings run back to back on
            # its threads; the W executions overlap on distinct warps.
            latency_bound = passes * fire
            # Throughput bound: the SM retires at most compute_concurrency
            # threads' worth of work concurrently across all W executions.
            aggregate = config.w * node.firing * fire
            throughput_bound = aggregate / self.costs.compute_concurrency
            total += max(latency_bound, throughput_bound) * jitter + sync
        return total

    def _transfer_time(
        self, d_elems: int, config: KernelConfig, kernel_key: tuple
    ) -> float:
        if d_elems == 0:
            return 0.0
        scale = self.spec.bandwidth_scale
        per_elem = self.costs.dt_ns_per_elem * scale
        floor = self.costs.dt_floor_ns_per_elem * scale
        jitter = 1.0 + self.costs.dt_noise * _signed("dt", kernel_key)
        threads = max(config.f, 1)
        return max(per_elem * d_elems / threads, floor * d_elems) * jitter

    def _swap_time(self, d_elems: int, config: KernelConfig) -> float:
        if d_elems == 0:
            return 0.0
        per_elem = self.costs.db_ns_per_elem * self.spec.bandwidth_scale
        return per_elem * d_elems / max(config.total_threads, 1)

    def _conflict_penalty(
        self, t_comp: float, t_dt: float, config: KernelConfig, kernel_key: tuple
    ) -> float:
        if config.f == 0 or t_dt == 0.0:
            return 0.0
        overlap = min(t_comp, t_dt)
        draw = _hash01("conflict?", kernel_key)
        if draw < self.costs.conflict_probability:
            lo, hi = self.costs.conflict_scale
            factor = lo + (hi - lo) * _hash01("conflict-scale", kernel_key)
        else:
            factor = self.costs.background_conflict * draw
        return factor * overlap

    def _spill_penalty(
        self, spilled_bytes: int, elem_bytes: int, config: KernelConfig
    ) -> float:
        if spilled_bytes <= 0:
            return 0.0
        spilled_elems = spilled_bytes / elem_bytes
        per_elem = self.costs.spill_ns_per_elem * self.spec.bandwidth_scale
        return per_elem * spilled_elems * config.w

    # ------------------------------------------------------------------
    # fragment-level timing
    # ------------------------------------------------------------------
    def executions_per_launch(self, config: KernelConfig) -> int:
        """Executions one launch covers: W per block, one block per SM."""
        return config.w * self.spec.sm_count

    def fragment_time(
        self, measurement: KernelMeasurement, executions: int, include_launch: bool = True
    ) -> float:
        """Time to push ``executions`` steady-state executions through the
        kernel (iterating launches as needed)."""
        if executions <= 0:
            return 0.0
        per_launch = self.executions_per_launch(measurement.config)
        launches = math.ceil(executions / per_launch)
        time = launches * measurement.t_exec
        if include_launch:
            time += measurement.launch_ns
        return time
