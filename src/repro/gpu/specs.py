"""Device and interconnect specifications.

All times in the reproduction are expressed in **nanoseconds** and data in
4-byte stream elements unless stated otherwise.  The two Fermi-class parts
from the paper are predefined: the C2070 ("G1" in Figure 4.4, used by the
previous work [7]) and the M2090 ("G2", the paper's testbed).  The M2090 is
a scaled-up C2070 — same architecture and shared-memory size, higher core
clock, memory clock, and streaming-multiprocessor count — which is exactly
the property the SOSP-validity argument of Section 4.0.5 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU device.

    Attributes
    ----------
    name:
        Marketing name.
    sm_count:
        Number of streaming multiprocessors; one resident block per SM in
        the one-kernel-for-graph execution style (the kernel's shared
        memory footprint fills the SM), so this bounds fragment-level
        parallelism.
    clock_ghz:
        Core clock; per-operation latency scales inversely with it.
    shared_mem_bytes:
        Shared-memory (scratchpad) capacity per SM.  48 KB on both parts,
        which is why the previous work's partitioning is identical across
        them (Section 4.0.5).
    mem_bandwidth_gbps:
        Off-chip memory bandwidth in GB/s; data-transfer-thread throughput
        scales with it.
    max_threads_per_block:
        Upper bound on ``W*S + F``.
    warp_size:
        SIMT width; thread counts are rounded up to warps by the
        simulator.
    compute_capability:
        CUDA compute capability (2.0 for both Fermi parts).
    """

    name: str
    sm_count: int
    clock_ghz: float
    shared_mem_bytes: int = 48 * 1024
    mem_bandwidth_gbps: float = 150.0
    max_threads_per_block: int = 1024
    warp_size: int = 32
    compute_capability: str = "2.0"

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.clock_ghz <= 0:
            raise ValueError("sm_count and clock_ghz must be positive")
        if self.max_threads_per_block % self.warp_size:
            raise ValueError("max threads per block must be warp aligned")

    @property
    def compute_scale(self) -> float:
        """Per-thread compute-time scale relative to a 1 GHz reference."""
        return 1.0 / self.clock_ghz

    @property
    def bandwidth_scale(self) -> float:
        """Data-transfer-time scale relative to the M2090's bandwidth."""
        return M2090.mem_bandwidth_gbps / self.mem_bandwidth_gbps

    @property
    def peak_throughput_proxy(self) -> float:
        """Aggregate compute-throughput proxy (SM count x clock).

        The M2090/C2070 ratio of this proxy is ~1.29, matching the 29%
        compute-power gap quoted in Section 4.0.5.
        """
        return self.sm_count * self.clock_ghz


@dataclass(frozen=True)
class LinkSpec:
    """A full-duplex PCI Express link (one direction's parameters).

    ``bandwidth_bytes_per_ns`` is the sustained unidirectional bandwidth;
    ``latency_ns`` the initial transfer latency (the ``Lat`` term of
    Eq. III.3).
    """

    bandwidth_bytes_per_ns: float
    latency_ns: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_ns <= 0 or self.latency_ns < 0:
            raise ValueError("invalid link spec")

    def transfer_ns(self, nbytes: float) -> float:
        """Latency + bandwidth cost of moving ``nbytes`` over the link."""
        return self.latency_ns + nbytes / self.bandwidth_bytes_per_ns


#: Tesla C2070: 14 SMs @ 1.15 GHz, 144 GB/s ("G1" of Figure 4.4).
C2070 = GpuSpec(name="C2070", sm_count=14, clock_ghz=1.15, mem_bandwidth_gbps=144.0)

#: Tesla M2090: 16 SMs @ 1.30 GHz, 177 GB/s ("G2", the paper's testbed).
M2090 = GpuSpec(name="M2090", sm_count=16, clock_ghz=1.30, mem_bandwidth_gbps=177.0)

#: PCIe 2.0 x16: ~6 GB/s sustained per direction, ~10 us setup latency.
PCIE_GEN2_X16 = LinkSpec(bandwidth_bytes_per_ns=6.0, latency_ns=10_000.0)

#: PCIe 2.0 x8: half the lanes of the x16 slot, same setup latency.  The
#: usual fabric compromise when a switch oversubscribes its host uplink.
PCIE_GEN2_X8 = LinkSpec(bandwidth_bytes_per_ns=3.0, latency_ns=10_000.0)

#: PCIe 3.0 x16: ~12 GB/s sustained per direction, ~5 us setup latency
#: (gen3 halves the protocol overhead alongside doubling the rate).
PCIE_GEN3_X16 = LinkSpec(bandwidth_bytes_per_ns=12.0, latency_ns=5_000.0)

#: PCIe 3.0 x8: gen3 signalling on eight lanes.
PCIE_GEN3_X8 = LinkSpec(bandwidth_bytes_per_ns=6.0, latency_ns=5_000.0)
