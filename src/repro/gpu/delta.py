"""Typed platform deltas: degraded machines derived from named platforms.

A serving fleet's machine is not static — a GPU drops off the bus, a
PCIe link throttles under thermal pressure, a device downclocks, an
operator restores the box.  This module types those events as
:class:`PlatformDelta` values and derives the *degraded*
:class:`~repro.gpu.topology.GpuTopology` from a base platform, so every
downstream consumer (the repair solver, cache keys, the scenario
harness) sees an ordinary topology and nothing special-cases "a broken
machine".

Four delta kinds, all named in the **base platform's** namespace (GPU
ids and tree-edge child names of the pristine machine, so a degradation
script stays readable after earlier kills renumber the survivors):

==================  ====================================================
``kill-gpu``        remove GPU leaf ``gpu``; survivors renumber to a
                    contiguous ``gpu0..gpuM-1`` and emptied switches are
                    pruned
``throttle-link``   multiply the bandwidth of the tree edge named by its
                    child endpoint by ``factor`` (0 < factor <= 1);
                    repeated throttles compound
``slow-gpu``        divide GPU ``gpu``'s core clock by ``factor``
                    (>= 1), lowering its throughput proxy — requires a
                    platform with per-leaf ``gpu_specs``
``restore``         forget every delta applied so far (the pristine
                    machine again)
==================  ====================================================

Because kill-GPU renumbers the survivors, :class:`DegradedTopology`
carries the ``gpu_map`` (base GPU id -> degraded GPU id, ``None`` for a
dead device) that the repair solver needs to translate an existing
assignment, and :func:`relative_gpu_map` composes two cumulative maps
into the step-to-step translation a scenario replay needs.

The derived topology is a plain :class:`~repro.gpu.topology.GpuTopology`
whose :func:`repro.flow.topology_key_parts` reflect every delta (edges,
per-link specs, per-leaf specs), so content-addressed cache keys remain
honest: a mapping solved for the degraded machine can never collide with
the pristine platform's cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.gpu.specs import GpuSpec, LinkSpec
from repro.gpu.topology import HOST, GpuTopology, gpu_name

#: the typed delta vocabulary, stable wire names
DELTA_KINDS: Tuple[str, ...] = (
    "kill-gpu", "throttle-link", "slow-gpu", "restore",
)

__all__ = [
    "DELTA_KINDS",
    "DegradedTopology",
    "PlatformDelta",
    "apply_deltas",
    "degrade_platform",
    "relative_gpu_map",
]


@dataclass(frozen=True)
class PlatformDelta:
    """One typed platform-degradation event (see module docstring).

    Always name the *base* platform's entities: ``gpu`` is a pristine
    GPU id, ``link`` the child endpoint of a pristine tree edge.  Use
    the factory classmethods — they fill exactly the fields the kind
    reads and ``__post_init__`` rejects everything else.

    >>> PlatformDelta.kill_gpu(2).kind
    'kill-gpu'
    >>> PlatformDelta.throttle_link("sw1", 0.5).factor
    0.5
    >>> PlatformDelta(kind="kill-gpu")
    Traceback (most recent call last):
        ...
    ValueError: kill-gpu needs a gpu id
    """

    #: one of :data:`DELTA_KINDS`
    kind: str
    #: base-platform GPU id (``kill-gpu`` / ``slow-gpu``)
    gpu: Optional[int] = None
    #: child endpoint naming a base tree edge (``throttle-link``)
    link: Optional[str] = None
    #: bandwidth multiplier (throttle) or clock divisor (slow)
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise ValueError(
                f"unknown delta kind {self.kind!r}; "
                f"known: {', '.join(DELTA_KINDS)}"
            )
        if self.kind == "kill-gpu":
            if self.gpu is None or self.gpu < 0:
                raise ValueError("kill-gpu needs a gpu id")
            if self.link is not None or self.factor is not None:
                raise ValueError("kill-gpu takes only a gpu id")
        elif self.kind == "throttle-link":
            if not self.link:
                raise ValueError("throttle-link needs a link (edge child)")
            if self.factor is None or not 0.0 < self.factor <= 1.0:
                raise ValueError(
                    "throttle-link needs a factor in (0, 1]"
                )
            if self.gpu is not None:
                raise ValueError("throttle-link takes no gpu id")
        elif self.kind == "slow-gpu":
            if self.gpu is None or self.gpu < 0:
                raise ValueError("slow-gpu needs a gpu id")
            if self.factor is None or self.factor < 1.0:
                raise ValueError("slow-gpu needs a factor >= 1")
            if self.link is not None:
                raise ValueError("slow-gpu takes no link")
        else:  # restore
            if (self.gpu, self.link, self.factor) != (None, None, None):
                raise ValueError("restore takes no arguments")

    # -- factories ------------------------------------------------------
    @classmethod
    def kill_gpu(cls, gpu: int) -> "PlatformDelta":
        """The GPU leaf ``gpu`` (base id) drops off the machine."""
        return cls(kind="kill-gpu", gpu=gpu)

    @classmethod
    def throttle_link(cls, link: str, factor: float) -> "PlatformDelta":
        """The tree edge named by child ``link`` keeps ``factor`` of its
        bandwidth (latency is unchanged)."""
        return cls(kind="throttle-link", link=link, factor=factor)

    @classmethod
    def slow_gpu(cls, gpu: int, factor: float) -> "PlatformDelta":
        """GPU ``gpu`` (base id) downclocks by ``factor`` (>= 1)."""
        return cls(kind="slow-gpu", gpu=gpu, factor=factor)

    @classmethod
    def restore(cls) -> "PlatformDelta":
        """Every delta so far is undone (the pristine machine)."""
        return cls(kind="restore")

    # -- identity / wire ------------------------------------------------
    def key_parts(self) -> Dict[str, object]:
        """The delta's full content for content-addressed request keys."""
        return {
            "kind": self.kind, "gpu": self.gpu, "link": self.link,
            "factor": self.factor,
        }

    def to_json(self) -> Dict[str, object]:
        """Compact wire form (``None`` fields dropped)."""
        out: Dict[str, object] = {"kind": self.kind}
        if self.gpu is not None:
            out["gpu"] = self.gpu
        if self.link is not None:
            out["link"] = self.link
        if self.factor is not None:
            out["factor"] = self.factor
        return out

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "PlatformDelta":
        """Parse one wire-form delta object (unknown keys rejected)."""
        if not isinstance(payload, dict):
            raise ValueError("delta must be a JSON object")
        unknown = sorted(set(payload) - {"kind", "gpu", "link", "factor"})
        if unknown:
            raise ValueError(
                f"unknown delta field(s): {', '.join(unknown)}"
            )
        if "kind" not in payload:
            raise ValueError("delta needs a 'kind'")
        return cls(
            kind=payload["kind"],
            gpu=payload.get("gpu"),
            link=payload.get("link"),
            factor=payload.get("factor"),
        )


@dataclass(frozen=True)
class DegradedTopology:
    """A derived machine plus the id translation back to its base.

    ``gpu_map[base_id]`` is the degraded topology's id of the same
    physical device, or ``None`` when a ``kill-gpu`` removed it — the
    translation :func:`repro.mapping.repair.solve_repair` applies to an
    existing assignment before repairing it.
    """

    #: the degraded machine (an ordinary, fully-validated topology)
    topology: GpuTopology
    #: base GPU id -> degraded GPU id (``None`` = killed)
    gpu_map: Tuple[Optional[int], ...]
    #: the deltas that produced this machine, in application order
    deltas: Tuple[PlatformDelta, ...]

    @property
    def killed(self) -> Tuple[int, ...]:
        """Base ids of the GPUs no longer present."""
        return tuple(
            base for base, new in enumerate(self.gpu_map) if new is None
        )


def apply_deltas(
    base: GpuTopology, deltas: Sequence[PlatformDelta]
) -> DegradedTopology:
    """Derive the degraded machine ``deltas`` leave behind.

    Deltas apply in order, all named in ``base``'s namespace;
    ``restore`` resets the accumulated state.  Killing the last GPU, an
    unknown GPU id, an already-dead GPU, or an unknown edge child raises
    ``ValueError``.  Throttling a killed GPU's leaf edge is allowed (the
    edge is simply gone).

    >>> from repro.gpu.platforms import build_platform
    >>> base = build_platform("two-island")
    >>> hit = apply_deltas(base, [PlatformDelta.kill_gpu(1)])
    >>> hit.topology.num_gpus, hit.gpu_map
    (3, (0, None, 1, 2))
    >>> apply_deltas(base, [PlatformDelta.kill_gpu(1),
    ...                     PlatformDelta.restore()]).gpu_map
    (0, 1, 2, 3)
    """
    alive: Set[int] = set(range(base.num_gpus))
    link_factor: Dict[str, float] = {}
    gpu_factor: Dict[int, float] = {}
    base_children = {child for child, _parent in base.tree_edges()}

    for delta in deltas:
        if delta.kind == "restore":
            alive = set(range(base.num_gpus))
            link_factor.clear()
            gpu_factor.clear()
        elif delta.kind == "kill-gpu":
            if not 0 <= delta.gpu < base.num_gpus:
                raise ValueError(
                    f"kill-gpu: no gpu {delta.gpu} on this platform"
                )
            if delta.gpu not in alive:
                raise ValueError(f"kill-gpu: gpu {delta.gpu} already dead")
            if len(alive) == 1:
                raise ValueError("kill-gpu: cannot kill the last GPU")
            alive.discard(delta.gpu)
        elif delta.kind == "throttle-link":
            if delta.link not in base_children:
                raise ValueError(
                    f"throttle-link: no tree edge with child {delta.link!r}"
                )
            link_factor[delta.link] = (
                link_factor.get(delta.link, 1.0) * delta.factor
            )
        else:  # slow-gpu
            if not 0 <= delta.gpu < base.num_gpus:
                raise ValueError(
                    f"slow-gpu: no gpu {delta.gpu} on this platform"
                )
            if base.gpu_specs is None:
                raise ValueError(
                    "slow-gpu needs a platform with per-leaf gpu_specs"
                )
            gpu_factor[delta.gpu] = (
                gpu_factor.get(delta.gpu, 1.0) * delta.factor
            )

    return _realize(base, alive, link_factor, gpu_factor, tuple(deltas))


def degrade_platform(
    name: str, deltas: Sequence[PlatformDelta]
) -> DegradedTopology:
    """:func:`apply_deltas` against a named catalog platform.

    >>> hit = degrade_platform("host-star", [PlatformDelta.kill_gpu(3)])
    >>> hit.topology.num_gpus
    3
    """
    from repro.gpu.platforms import build_platform

    return apply_deltas(build_platform(name), deltas)


def relative_gpu_map(
    prev: DegradedTopology, cur: DegradedTopology
) -> Tuple[Optional[int], ...]:
    """Translate *prev*-space GPU ids into *cur*-space ids.

    Both arguments must derive from the same base platform (equal
    ``gpu_map`` lengths).  Entry ``p`` of the result is where prev's GPU
    ``p`` lives in ``cur`` — ``None`` when a later kill removed it.  A
    scenario replay uses this to carry an assignment from one degraded
    step to the next.

    >>> from repro.gpu.platforms import build_platform
    >>> base = build_platform("host-star")
    >>> a = apply_deltas(base, [PlatformDelta.kill_gpu(0)])
    >>> b = apply_deltas(base, [PlatformDelta.kill_gpu(0),
    ...                         PlatformDelta.kill_gpu(2)])
    >>> relative_gpu_map(a, b)
    (0, None, 1)
    """
    if len(prev.gpu_map) != len(cur.gpu_map):
        raise ValueError("degraded topologies derive from different bases")
    out: List[Optional[int]] = [None] * prev.topology.num_gpus
    for base_id, prev_id in enumerate(prev.gpu_map):
        if prev_id is not None:
            out[prev_id] = cur.gpu_map[base_id]
    return tuple(out)


# ----------------------------------------------------------------------
def _realize(
    base: GpuTopology,
    alive: Set[int],
    link_factor: Dict[str, float],
    gpu_factor: Dict[int, float],
    deltas: Tuple[PlatformDelta, ...],
) -> DegradedTopology:
    """Build the degraded :class:`GpuTopology` from accumulated state."""
    survivors = sorted(alive)
    gpu_map: List[Optional[int]] = [None] * base.num_gpus
    for new, old in enumerate(survivors):
        gpu_map[old] = new
    rename = {gpu_name(old): gpu_name(new) for new, old in enumerate(survivors)}

    # drop dead leaves, then iteratively prune internal nodes left with
    # no children (a switch whose whole subtree died carries no traffic
    # and would pollute the topology's content identity)
    edges = [
        (child, parent) for child, parent in base.tree_edges()
        if not (child.startswith("gpu") and child in
                {gpu_name(g) for g in range(base.num_gpus)} - set(rename))
    ]
    while True:
        parents = {parent for _child, parent in edges}
        pruned = [
            (child, parent) for child, parent in edges
            if child in rename or child in parents
        ]
        if len(pruned) == len(edges):
            break
        edges = pruned

    # per-edge specs: the base edge's own spec (override or default),
    # with any accumulated throttle applied to its bandwidth
    base_spec: Dict[str, LinkSpec] = {
        link.child: link.spec for link in base.links if link.up
    }
    edge_specs: Dict[str, LinkSpec] = {}
    for child, _parent in edges:
        spec = base_spec[child]
        factor = link_factor.get(child, 1.0)
        if factor != 1.0:
            spec = replace(
                spec,
                bandwidth_bytes_per_ns=spec.bandwidth_bytes_per_ns * factor,
            )
        if spec != base.link_spec:
            edge_specs[rename.get(child, child)] = spec

    gpu_specs: Optional[List[GpuSpec]] = None
    if base.gpu_specs is not None:
        gpu_specs = []
        for old in survivors:
            spec = base.gpu_specs[old]
            factor = gpu_factor.get(old, 1.0)
            if factor != 1.0:
                spec = replace(spec, clock_ghz=spec.clock_ghz / factor)
            gpu_specs.append(spec)

    topology = GpuTopology(
        [(rename.get(child, child), rename.get(parent, parent))
         for child, parent in edges],
        num_gpus=len(survivors),
        link_spec=base.link_spec,
        edge_specs=edge_specs or None,
        gpu_specs=gpu_specs,
    )
    return DegradedTopology(
        topology=topology, gpu_map=tuple(gpu_map), deltas=deltas,
    )
