"""Shared-memory requirements of stream-graph partitions (Figure 3.2).

In the one-kernel-for-graph execution style, inter-filter channels of a
partition live in the SM's shared memory.  Filters fire sequentially (in
topological order) within one *execution* of the partition, so a channel's
buffer is only live from its producer's first firing to its consumer's last
firing.  That is why pipelines are cheap (adjacent short-lived buffers,
Fig. 3.2a) while split/join structures are expensive (all branch buffers
overlap, Fig. 3.2b) — the structural fact phase 1 of the partitioning
heuristic exploits.

The partition's kernel additionally stages its boundary I/O through shared
memory with double buffering: one I/O buffer is used by the compute threads
while the data-transfer threads fill/drain the other.  A kernel running
``W`` concurrent executions therefore needs::

    W * (working_set + 2 * io_bytes)  <=  shared_mem_bytes

which bounds ``W`` (Section 2.1.3's "only a limited number of executions
may run concurrently per SM").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.stream_graph import Channel, StreamGraph


@dataclass(frozen=True)
class PartitionMemory:
    """Shared-memory footprint of one execution of a partition.

    All sizes in bytes.  ``working_set`` covers the *internal* channel
    buffers; boundary traffic is staged separately and counted twice by
    :meth:`smem_for` — once in the working-set copy the compute threads
    read/write, once in the double buffer the transfer threads fill/drain
    (the WS/DB pair that Eq. III.11 swaps).
    """

    working_set: int
    io_in: int
    io_out: int
    #: bytes actually moved per execution (excludes resident peek
    #: history, which stays in shared memory across executions)
    io_in_traffic: int = 0
    io_out_traffic: int = 0

    @property
    def io_bytes(self) -> int:
        """Staged I/O buffer bytes (what occupies the WS/DB pair)."""
        return self.io_in + self.io_out

    @property
    def io_traffic_bytes(self) -> int:
        """Bytes the transfer threads move per execution."""
        return self.io_in_traffic + self.io_out_traffic

    def smem_for(self, executions: int) -> int:
        """Shared memory needed by ``executions`` concurrent executions."""
        return executions * (self.working_set + 2 * self.io_bytes)

    def max_executions(self, shared_mem_bytes: int) -> int:
        """Largest ``W`` fitting in ``shared_mem_bytes`` (0 if none)."""
        per_exec = self.working_set + 2 * self.io_bytes
        if per_exec <= 0:
            return shared_mem_bytes  # degenerate, no memory needed
        return shared_mem_bytes // per_exec


def partition_memory(
    graph: StreamGraph,
    members: Optional[Iterable[int]] = None,
    policy: str = "static",
) -> PartitionMemory:
    """Compute the per-execution footprint of a node set (default: all).

    Two allocation policies:

    * ``"static"`` (default) — every internal buffer is resident for the
      whole execution.  This matches the underlying runtime of [4]/[7]:
      compute threads of all filters coexist (software pipelining across
      the double-buffer swap), so buffers cannot be time-multiplexed.
      Static allocation is what throttles ``W`` as partitions grow and
      therefore what stops Try-Merge on compute-bound regions — without
      it, pipeline merges would be free and every chain would collapse
      into one kernel.
    * ``"liveness"`` — buffers live only from producer to consumer under
      the sequential firing schedule.  This is the analysis behind
      Figure 3.2's pipeline-vs-split contrast and is exposed for study
      (see the ``fig3_2`` example), and it is the lower bound a smarter
      code generator could approach.

    Channels sharing an ``alias_group`` (splitter/joiner elimination) are
    charged once per group under either policy.

    >>> from repro.graph.builder import linear_pipeline_graph
    >>> pm = partition_memory(linear_pipeline_graph("p", stages=3, rate=4,
    ...                                             work=1.0))
    >>> pm.working_set > 0
    True
    >>> pm.smem_for(2) == 2 * (pm.working_set + 2 * pm.io_bytes)
    True
    """
    if policy not in ("static", "liveness"):
        raise ValueError(f"unknown allocation policy {policy!r}")
    mset = set(members) if members is not None else {n.node_id for n in graph.nodes}
    order = [nid for nid in graph.topological_order() if nid in mset]
    position = {nid: idx for idx, nid in enumerate(order)}
    last = len(order) - 1 if order else 0

    intervals: List[Tuple[int, int, int]] = []  # (start, end, bytes)
    seen_groups: Dict[int, Tuple[int, int, int]] = {}
    io_in = io_out = io_in_traffic = io_out_traffic = 0
    for ch in graph.channels:
        src_in = ch.src in mset
        dst_in = ch.dst in mset
        if not src_in and not dst_in:
            continue
        size = graph.channel_bytes(ch)
        if src_in and dst_in:
            start, end = position[ch.src], position[ch.dst]
            if policy == "static":
                start, end = 0, last
        elif dst_in:
            # boundary input: staged through the WS/DB pair, not an
            # internal buffer — accounted by smem_for's 2*io term.  The
            # consumer keeps any peek history, so the buffer includes it
            # but the per-execution traffic does not.
            io_in += size
            io_in_traffic += graph.channel_traffic_bytes(ch)
            continue
        else:
            # boundary output: the producer stages only what it writes;
            # the consumer's peek history is the consumer's problem
            traffic = graph.channel_traffic_bytes(ch)
            io_out += traffic
            io_out_traffic += traffic
            continue
        if ch.alias_group is not None:
            prev = seen_groups.get(ch.alias_group)
            if prev is not None:
                # widen the group's live interval; charge its size once
                merged = (min(prev[0], start), max(prev[1], end), max(prev[2], size))
                seen_groups[ch.alias_group] = merged
                continue
            seen_groups[ch.alias_group] = (start, end, size)
            continue
        intervals.append((start, end, size))
    intervals.extend(seen_groups.values())

    # primary I/O of member nodes also stages through the WS/DB pair
    for nid in mset:
        pin = graph.primary_input_elems(nid) * graph.elem_bytes
        pout = graph.primary_output_elems(nid) * graph.elem_bytes
        io_in += pin
        io_out += pout
        io_in_traffic += pin
        io_out_traffic += pout

    peak = _peak_overlap(intervals, len(order))
    return PartitionMemory(
        working_set=peak,
        io_in=io_in,
        io_out=io_out,
        io_in_traffic=io_in_traffic,
        io_out_traffic=io_out_traffic,
    )


def _peak_overlap(intervals: Sequence[Tuple[int, int, int]], steps: int) -> int:
    """Peak total size over positions 0..steps-1 of closed intervals."""
    if not intervals:
        return 0
    deltas = [0] * (steps + 1)
    for start, end, size in intervals:
        deltas[start] += size
        deltas[end + 1 if end + 1 <= steps else steps] -= size
    peak = cur = 0
    for step in range(steps):
        cur += deltas[step]
        peak = max(peak, cur)
    return peak


@dataclass(frozen=True)
class BufferPlacement:
    """Where a channel's buffer lives in the generated kernel."""

    channel_index: int
    offset: int
    size: int
    in_shared: bool


def allocate_buffers(
    graph: StreamGraph,
    members: Iterable[int],
    shared_mem_bytes: int,
    reserve_bytes: int = 0,
    policy: str = "static",
) -> List[BufferPlacement]:
    """Assign shared-memory offsets to a partition's internal buffers.

    Greedy linear-scan over the buffers' live intervals (all-resident
    under the default ``"static"`` policy; producer-to-consumer under
    ``"liveness"``, where offsets are reused once a buffer dies).
    Buffers that do not fit below ``shared_mem_bytes - reserve_bytes``
    spill to global memory (``in_shared=False``) — the regime that makes
    single-partition mappings of large graphs slow
    (see :mod:`repro.gpu.simulator`).
    """
    if policy not in ("static", "liveness"):
        raise ValueError(f"unknown allocation policy {policy!r}")
    mset = set(members)
    order = [nid for nid in graph.topological_order() if nid in mset]
    position = {nid: idx for idx, nid in enumerate(order)}
    last = len(order) - 1 if order else 0

    requests: List[Tuple[int, int, int, int]] = []  # (start, end, size, chan idx)
    grouped: Dict[int, int] = {}
    for idx, ch in enumerate(graph.channels):
        src_in = ch.src in mset
        dst_in = ch.dst in mset
        if not src_in and not dst_in:
            continue
        if policy == "static":
            start, end = 0, last
        else:
            start = position[ch.src] if src_in else 0
            end = position[ch.dst] if dst_in else last
        size = graph.channel_bytes(ch)
        if ch.alias_group is not None and ch.alias_group in grouped:
            continue  # placed with the first channel of its group
        if ch.alias_group is not None:
            grouped[ch.alias_group] = idx
        requests.append((start, end, size, idx))

    requests.sort()
    budget = shared_mem_bytes - reserve_bytes
    live: List[Tuple[int, int, int]] = []  # (end, offset, size)
    placements: List[BufferPlacement] = []
    for start, end, size, idx in requests:
        live = [entry for entry in live if entry[0] >= start]
        offset = _first_fit(live, size)
        if offset + size <= budget:
            live.append((end, offset, size))
            placements.append(BufferPlacement(idx, offset, size, True))
        else:
            placements.append(BufferPlacement(idx, 0, size, False))
    return placements


def _first_fit(live: List[Tuple[int, int, int]], size: int) -> int:
    """Lowest offset not overlapping any live allocation."""
    taken = sorted((offset, offset + sz) for _, offset, sz in live)
    cursor = 0
    for lo, hi in taken:
        if cursor + size <= lo:
            return cursor
        cursor = max(cursor, hi)
    return cursor
