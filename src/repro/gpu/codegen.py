"""CUDA-C source generation for mapped stream graphs.

The real system emits CUDA compiled by nvcc; without a GPU toolchain the
generated source is still produced (and structurally tested) because code
generation is where the paper's *static-discrepancy minimization* lives:
the kernel uses exactly the (S, W, F) parameters and buffer layout the
Performance Estimation Engine optimized, so what the PEE priced is what
runs.

Emitted per mapping:

* one ``__global__`` kernel per partition — shared-memory declarations
  with allocator offsets, a data-transfer-thread block (``threadIdx.x <
  F``) streaming the double buffer, compute threads walking the member
  filters in topological order with ``__syncthreads()`` barriers, and the
  WS/DB swap;
* a host driver — device buffers, per-fragment CUDA streams, H2D/D2H
  copies, ``cudaMemcpyPeerAsync`` for inter-GPU edges (or host staging
  when peer-to-peer is off), and the pipelined launch loop of Fig. 3.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.stream_graph import StreamGraph
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import BufferPlacement, allocate_buffers
from repro.gpu.specs import GpuSpec, M2090


@dataclass(frozen=True)
class GeneratedKernel:
    """One partition's kernel source plus its launch geometry."""

    name: str
    partition_index: int
    source: str
    config: KernelConfig
    smem_bytes: int
    spilled_channels: Tuple[int, ...]


@dataclass(frozen=True)
class GeneratedProgram:
    """The whole emitted program."""

    kernels: Tuple[GeneratedKernel, ...]
    host_source: str

    def full_source(self) -> str:
        parts = [k.source for k in self.kernels]
        parts.append(self.host_source)
        return "\n\n".join(parts)


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def generate_kernel(
    graph: StreamGraph,
    members: FrozenSet[int],
    config: KernelConfig,
    partition_index: int,
    spec: GpuSpec = M2090,
) -> GeneratedKernel:
    """Emit the CUDA kernel for one partition."""
    member_list = sorted(members)
    placements = allocate_buffers(graph, member_list, spec.shared_mem_bytes)
    by_channel: Dict[int, BufferPlacement] = {
        p.channel_index: p for p in placements
    }
    spilled = tuple(
        p.channel_index for p in placements if not p.in_shared
    )
    smem_top = max(
        (p.offset + p.size for p in placements if p.in_shared), default=0
    )
    kname = f"partition_{partition_index}_kernel"

    lines: List[str] = []
    lines.append(f"// partition {partition_index}: filters "
                 + ", ".join(graph.nodes[n].spec.name for n in member_list))
    lines.append(f"// parameters: S={config.s} W={config.w} F={config.f} "
                 f"(block of {config.total_threads} threads)")
    lines.append(f"__global__ void {kname}(const float *gm_in, float *gm_out,")
    lines.append("                        float *gm_spill, int executions) {")
    lines.append(f"  __shared__ float smem[{max(smem_top, 4) // 4}];")
    lines.append(f"  __shared__ float ws_db[2][{_io_elems(graph, member_list)}];")
    lines.append(f"  const int F = {config.f};")
    lines.append(f"  const int S = {config.s};")
    lines.append(f"  const int W = {config.w};")
    lines.append("  int buf = 0;")
    lines.append("  for (int step = 0; step < executions / W; ++step) {")
    lines.append("    if (threadIdx.x < F) {")
    lines.append("      // data-transfer threads: stream the double buffer")
    lines.append("      dt_copy_in(gm_in, ws_db[1 - buf], F);")
    lines.append("      dt_copy_out(ws_db[1 - buf], gm_out, F);")
    lines.append("    } else {")
    lines.append("      const int exec = (threadIdx.x - F) / S;")
    lines.append("      const int lane = (threadIdx.x - F) % S;")
    for nid in _topo_members(graph, member_list):
        node = graph.nodes[nid]
        fn = _sanitize(node.spec.name)
        in_refs = _buffer_refs(graph, by_channel, nid, inputs=True)
        out_refs = _buffer_refs(graph, by_channel, nid, inputs=False)
        lines.append(
            f"      run_{fn}(exec, lane, /*firings=*/{node.firing}, "
            f"{in_refs}, {out_refs});"
        )
        lines.append("      __syncthreads();")
    lines.append("    }")
    lines.append("    __syncthreads();")
    lines.append("    buf = 1 - buf;  // WS/DB swap")
    lines.append("  }")
    lines.append("}")
    return GeneratedKernel(
        name=kname,
        partition_index=partition_index,
        source="\n".join(lines),
        config=config,
        smem_bytes=smem_top,
        spilled_channels=spilled,
    )


def _topo_members(graph: StreamGraph, members: Sequence[int]) -> List[int]:
    mset = set(members)
    return [nid for nid in graph.topological_order() if nid in mset]


def _io_elems(graph: StreamGraph, members: Sequence[int]) -> int:
    inp, out = graph.io_elems(members)
    return max(inp + out, 1)


def _buffer_refs(
    graph: StreamGraph,
    by_channel: Dict[int, BufferPlacement],
    nid: int,
    inputs: bool,
) -> str:
    refs = []
    channels = graph.in_channels(nid) if inputs else graph.out_channels(nid)
    for ch in channels:
        idx = graph.channels.index(ch)
        placement = by_channel.get(idx)
        if placement is None:
            continue
        if placement.in_shared:
            refs.append(f"smem + {placement.offset // 4}")
        else:
            refs.append("gm_spill /* spilled */")
    if not refs:
        refs.append("ws_db[buf]")
    return ", ".join(refs)


def generate_host_driver(
    graph: StreamGraph,
    partitions: Sequence[FrozenSet[int]],
    assignment: Sequence[int],
    kernels: Sequence[GeneratedKernel],
    num_fragments: int = 32,
    peer_to_peer: bool = True,
) -> str:
    """Emit the pipelined host driver (Fig. 3.5)."""
    lines: List[str] = []
    lines.append("// host driver: pipelined multi-GPU execution")
    lines.append(f"#define NUM_FRAGMENTS {num_fragments}")
    lines.append("void run_stream_graph(const float *input, float *output) {")
    gpus = sorted(set(assignment))
    for gpu in gpus:
        lines.append(f"  cudaSetDevice({gpu});")
        lines.append(
            f"  cudaStream_t streams_{gpu}[NUM_FRAGMENTS];"
        )
        lines.append(
            f"  for (int i = 0; i < NUM_FRAGMENTS; ++i) "
            f"cudaStreamCreate(&streams_{gpu}[i]);"
        )
    if peer_to_peer:
        for a in gpus:
            for b in gpus:
                if a != b:
                    lines.append(
                        f"  cudaDeviceEnablePeerAccess({b}, 0); // from {a}"
                    )
    lines.append("  for (int frag = 0; frag < NUM_FRAGMENTS; ++frag) {")
    for pid, kernel in enumerate(kernels):
        gpu = assignment[pid]
        lines.append(f"    cudaSetDevice({gpu});")
        for src_pid in range(pid):
            if assignment[src_pid] != gpu and _connected(
                graph, partitions[src_pid], partitions[pid]
            ):
                if peer_to_peer:
                    lines.append(
                        f"    cudaMemcpyPeerAsync(buf_{pid}, {gpu}, "
                        f"buf_{src_pid}, {assignment[src_pid]}, "
                        f"edge_bytes_{src_pid}_{pid}, streams_{gpu}[frag]);"
                    )
                else:
                    lines.append(
                        f"    cudaMemcpyAsync(host_stage, buf_{src_pid}, "
                        f"edge_bytes_{src_pid}_{pid}, cudaMemcpyDeviceToHost, "
                        f"streams_{assignment[src_pid]}[frag]);"
                    )
                    lines.append(
                        f"    cudaMemcpyAsync(buf_{pid}, host_stage, "
                        f"edge_bytes_{src_pid}_{pid}, cudaMemcpyHostToDevice, "
                        f"streams_{gpu}[frag]);"
                    )
        cfg = kernel.config
        lines.append(
            f"    {kernel.name}<<<dim3(SM_COUNT), dim3({cfg.total_threads}), "
            f"{max(kernel.smem_bytes, 4)}, streams_{gpu}[frag]>>>"
            f"(dev_in_{pid}, dev_out_{pid}, dev_spill_{pid}, EXECS_PER_FRAGMENT);"
        )
    lines.append("  }")
    for gpu in gpus:
        lines.append(f"  cudaSetDevice({gpu});")
        lines.append("  cudaDeviceSynchronize();")
    lines.append("}")
    return "\n".join(lines)


def _connected(graph: StreamGraph, a: FrozenSet[int], b: FrozenSet[int]) -> bool:
    return any(ch.src in a and ch.dst in b for ch in graph.channels)


def generate_program(
    graph: StreamGraph,
    partitions: Sequence[FrozenSet[int]],
    configs: Sequence[KernelConfig],
    assignment: Sequence[int],
    spec: GpuSpec = M2090,
    num_fragments: int = 32,
    peer_to_peer: bool = True,
) -> GeneratedProgram:
    """Emit kernels plus host driver for a mapped partitioning."""
    if not (len(partitions) == len(configs) == len(assignment)):
        raise ValueError("partitions, configs and assignment must align")
    kernels = tuple(
        generate_kernel(graph, members, configs[idx], idx, spec)
        for idx, members in enumerate(partitions)
    )
    host = generate_host_driver(
        graph, partitions, assignment, kernels, num_fragments, peer_to_peer
    )
    return GeneratedProgram(kernels=kernels, host_source=host)
