"""Functional stream-graph VM.

Executes a flat :class:`StreamGraph` on actual data, firing filters in
steady-state order with per-channel FIFO queues.  Its purpose is
*semantic* validation — above all, proving that the Chapter V
splitter/joiner elimination transforms a graph without changing its
output stream.  The timing substrate lives in
:mod:`repro.gpu.simulator`; this VM is deliberately timing-free.

Two extensions support transformed graphs:

* **Sliced channels** (:attr:`Channel.slice_period` etc.): after a
  round-robin splitter is eliminated, each consumer reads a strided
  slice of the producer's output block instead of a private copy
  (Figure 5.1c).
* **Interleaved inputs** (node meta ``interleave``): after a round-robin
  joiner is eliminated, the consumer itself reassembles its input window
  from multiple upstream channels — the "fragmentation problem" of
  Figure 5.2c — using a persistent round-robin cursor.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.filters import FilterRole
from repro.graph.stream_graph import Channel, StreamGraph


class FunctionalError(RuntimeError):
    """Raised when a graph cannot be executed functionally."""


class FunctionalVM:
    """Run a stream graph on data.

    Parameters
    ----------
    graph:
        Flat, rate-annotated stream graph.
    source_fn:
        Optional generator for primary inputs: called as
        ``source_fn(node_name, index)`` for the ``index``-th element the
        named source produces.  Defaults to a deterministic arithmetic
        sequence so runs are reproducible.
    """

    def __init__(
        self,
        graph: StreamGraph,
        source_fn: Optional[Callable[[str, int], float]] = None,
    ) -> None:
        self.graph = graph
        self.source_fn = source_fn or _default_source
        self.queues: Dict[int, deque] = {
            idx: deque() for idx in range(len(graph.channels))
        }
        self._source_counts: Dict[int, int] = {}
        self._interleave_cursor: Dict[int, Tuple[int, int]] = {}
        self.outputs: Dict[str, List[float]] = {}
        self._in_chans: Dict[int, List[int]] = {}
        self._out_chans: Dict[int, List[int]] = {}
        for idx, ch in enumerate(graph.channels):
            self._out_chans.setdefault(ch.src, []).append(idx)
            self._in_chans.setdefault(ch.dst, []).append(idx)
            for _ in range(ch.delay):
                self.queues[idx].append(0.0)
            # peeking consumers need their sliding-window history before
            # the steady state starts — StreamIt's init schedule fills it;
            # we pre-roll zeros (the same elements the delay of a feedback
            # loop would contribute)
            for _ in range(max(0, ch.effective_peek - ch.dst_pop)):
                self.queues[idx].append(0.0)

    # ------------------------------------------------------------------
    def run(self, iterations: int = 1) -> Dict[str, List[float]]:
        """Execute ``iterations`` steady-state iterations; returns the
        per-sink output streams."""
        order = self.graph.topological_order()
        for _ in range(iterations):
            for nid in order:
                node = self.graph.nodes[nid]
                for _ in range(node.firing):
                    self._fire(nid)
        return self.outputs

    def output_stream(self) -> List[float]:
        """All sink outputs concatenated in sink-name order."""
        out: List[float] = []
        for name in sorted(self.outputs):
            out.extend(self.outputs[name])
        return out

    # ------------------------------------------------------------------
    def _fire(self, nid: int) -> None:
        node = self.graph.nodes[nid]
        spec = node.spec
        window = self._collect_window(nid)
        produced = _SEMANTICS[spec.semantics](spec, window)
        if spec.role is FilterRole.SINK or not self._out_chans.get(nid):
            if spec.pop:  # collect what a sink consumed
                self.outputs.setdefault(spec.name, []).extend(window)
            return
        self._deliver(nid, produced)

    def _collect_window(self, nid: int) -> List[float]:
        node = self.graph.nodes[nid]
        spec = node.spec
        in_chans = self._in_chans.get(nid, [])
        if not in_chans:
            if spec.role is FilterRole.SOURCE:
                return self._generate(nid, spec.push)
            return self._generate(nid, spec.pop)
        meta = getattr(node, "meta", None) or {}
        if "interleave" in meta:
            return self._collect_interleaved(nid, meta["interleave"])
        if len(in_chans) > 1:
            # a joiner: params are per-branch weights in channel order
            weights = node.spec.params or tuple([1] * len(in_chans))
            window: List[float] = []
            for chan_idx, weight in zip(in_chans, weights):
                window.extend(self._take(chan_idx, weight))
            return window
        chan_idx = in_chans[0]
        ch = self.graph.channels[chan_idx]
        peek = ch.effective_peek
        queue = self.queues[chan_idx]
        if len(queue) < peek:
            raise FunctionalError(
                f"{spec.name}: needs {peek} elements, has {len(queue)}"
            )
        window = [queue[i] for i in range(peek)]
        for _ in range(ch.dst_pop):
            queue.popleft()
        return window

    def _collect_interleaved(self, nid: int, pattern: Sequence[Tuple[int, int]]):
        """Reassemble the window from several channels (joiner-eliminated
        consumer).  ``pattern`` lists (channel index, weight) rounds; a
        persistent cursor carries partial rounds across firings."""
        spec = self.graph.nodes[nid].spec
        needed = spec.pop
        window: List[float] = []
        round_idx, used = self._interleave_cursor.get(nid, (0, 0))
        while len(window) < needed:
            chan_idx, weight = pattern[round_idx]
            take = min(weight - used, needed - len(window))
            window.extend(self._take(chan_idx, take))
            used += take
            if used == weight:
                round_idx = (round_idx + 1) % len(pattern)
                used = 0
        self._interleave_cursor[nid] = (round_idx, used)
        return window

    def _take(self, chan_idx: int, count: int) -> List[float]:
        queue = self.queues[chan_idx]
        if len(queue) < count:
            ch = self.graph.channels[chan_idx]
            raise FunctionalError(
                f"channel {self.graph.nodes[ch.src].name}->"
                f"{self.graph.nodes[ch.dst].name}: needs {count}, has {len(queue)}"
            )
        return [queue.popleft() for _ in range(count)]

    def _generate(self, nid: int, count: int) -> List[float]:
        start = self._source_counts.get(nid, 0)
        self._source_counts[nid] = start + count
        name = self.graph.nodes[nid].spec.name
        return [self.source_fn(name, start + i) for i in range(count)]

    def _deliver(self, nid: int, block: List[float]) -> None:
        node = self.graph.nodes[nid]
        out_chans = self._out_chans[nid]
        if node.spec.role is FilterRole.SPLITTER and len(out_chans) > 1:
            if node.spec.semantics == "duplicate":
                for chan_idx in out_chans:
                    self.queues[chan_idx].extend(block)
                return
            # round-robin splitter: deal by weights in channel order
            weights = node.spec.params or tuple([1] * len(out_chans))
            cursor = 0
            for chan_idx, weight in zip(out_chans, weights):
                self.queues[chan_idx].extend(block[cursor : cursor + weight])
                cursor += weight
            return
        for chan_idx in out_chans:
            ch = self.graph.channels[chan_idx]
            if ch.slice_period:
                self.queues[chan_idx].extend(_slice_block(ch, block))
            else:
                self.queues[chan_idx].extend(block)


def _slice_block(ch: Channel, block: List[float]) -> List[float]:
    period = ch.slice_period
    if len(block) % period:
        raise FunctionalError(
            f"sliced channel expects blocks divisible by {period}, got {len(block)}"
        )
    out: List[float] = []
    for base in range(0, len(block), period):
        out.extend(block[base + ch.slice_offset : base + ch.slice_offset + ch.slice_width])
    return out


def _default_source(name: str, index: int) -> float:
    return float((index * 7 + len(name)) % 1009)


# ----------------------------------------------------------------------
# filter semantics: (spec, window) -> produced block
# ----------------------------------------------------------------------
def _sem_source(spec, window):
    return window


def _sem_sink(spec, window):
    return []


def _sem_identity(spec, window):
    return list(window[: spec.push]) if spec.push != spec.pop else list(window)


def _sem_passthrough(spec, window):
    return list(window)


def _sem_add(spec, window):
    pop, push = spec.pop, spec.push
    group = max(1, pop // max(push, 1))
    return [sum(window[j * group : (j + 1) * group]) for j in range(push)]


def _sem_sub(spec, window):
    pop, push = spec.pop, spec.push
    group = max(1, pop // max(push, 1))
    out = []
    for j in range(push):
        chunk = window[j * group : (j + 1) * group]
        out.append(chunk[0] - sum(chunk[1:]))
    return out


def _sem_scale(spec, window):
    factor = spec.params[0] if spec.params else 2.0
    return [factor * v for v in window[: spec.pop]][: spec.push] + [
        0.0
    ] * max(0, spec.push - spec.pop)


def _sem_xor_const(spec, window):
    key = int(spec.params[0]) if spec.params else 0x5A
    out = [float(int(v) ^ key) for v in window[: spec.pop]]
    if spec.push <= spec.pop:
        return out[: spec.push]
    return out + [float(key)] * (spec.push - spec.pop)


def _sem_butterfly(spec, window):
    m = int(spec.params[0]) if spec.params else max(1, spec.pop // 2)
    data = list(window[: spec.pop])
    out = list(data)
    span = 2 * m
    for base in range(0, len(data) - span + 1, span):
        for j in range(m):
            a, b = data[base + j], data[base + j + m]
            out[base + j] = a + b
            out[base + j + m] = a - b
    return out[: spec.push]


def _sem_sort2(spec, window):
    return sorted(window[: spec.pop])[: spec.push]


def _sem_dot(spec, window):
    coeffs = spec.params or (1.0,)
    pop, push = spec.pop, spec.push
    group = max(1, pop // max(push, 1))
    out = []
    for j in range(push):
        chunk = window[j * group : (j + 1) * group]
        out.append(sum(v * coeffs[i % len(coeffs)] for i, v in enumerate(chunk)))
    return out


def _sem_shuffle(spec, window):
    data = list(window[: spec.pop])
    out = list(reversed(data))
    if spec.push <= len(out):
        return out[: spec.push]
    return out + [0.0] * (spec.push - len(out))


def _sem_opaque(spec, window):
    total = math.fsum(window)
    return [0.5 * total + j for j in range(spec.push)]


_SEMANTICS = {
    "source": _sem_source,
    "sink": _sem_sink,
    "identity": _sem_identity,
    "duplicate": _sem_passthrough,
    "roundrobin": _sem_passthrough,
    "add": _sem_add,
    "sub": _sem_sub,
    "scale": _sem_scale,
    "xor_const": _sem_xor_const,
    "butterfly": _sem_butterfly,
    "sort2": _sem_sort2,
    "dot": _sem_dot,
    "shuffle": _sem_shuffle,
    "opaque": _sem_opaque,
}
