"""HTTP serving tier over :class:`~repro.service.server.MappingService`.

A dependency-light network front end (stdlib
:class:`~http.server.ThreadingHTTPServer`; one handler thread per
connection, solves run in the service's own workers) speaking the same
wire schema as the JSONL stdio mode — for equal requests the HTTP
response body is **byte-identical** to the ``serve_stream`` response
line, dedup/key/state fields included.

Endpoints (see ``docs/SERVICE.md`` for the full contract):

=============================  =========================================
``POST /api/v1/solve``         one request object in, one response
                               line out (blocks until solved)
``POST /api/v1/remap``         one ``{"remap": ...}`` object in, one
                               repaired-mapping response line out
``POST /api/v1/batch``         JSONL stream in, input-order JSONL out
``GET /api/v1/jobs/<key>``     poll a canonical request key's job record
``GET /metrics``               Prometheus text format
``GET /healthz``               ``200 ok`` / ``503 draining``
=============================  =========================================

Admission control (:mod:`repro.service.admission`) runs *before*
``submit``: a shed request is answered ``429`` with a ``Retry-After``
header and never touches the work queue, so admission is purely a
scheduling concern — request keys and cached results are unaffected.
Submit-refused requests (the service began draining) answer ``503``
with the same ``Retry-After`` discipline, so clients back off uniformly
whether they hit the rate limiter or a shutdown.

>>> from repro.service.server import MappingService
>>> with MappingService() as service:
...     server = serve_http(service, port=0)
...     try:
...         import urllib.request
...         body = urllib.request.urlopen(
...             f"{server.url}/healthz", timeout=10).read()
...     finally:
...         server.stop()
>>> body
b'{"status":"ok"}\\n'
"""

from __future__ import annotations

import io
import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.service.admission import TIER_COST, AdmissionController
from repro.service.api import (
    parse_request_line,
    response_to_line,
    serve_stream,
)

#: largest accepted request body (a batch of ~50k request lines)
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Retry-After seconds on a 503 submit-refused/draining response — a
#: drain is short (the backlog finishes or fails), so clients should
#: probe again soon rather than back off like a rate-limit hit
DRAIN_RETRY_AFTER_S = 5


def _fmt(value) -> str:
    """Prometheus sample-value formatting (ints stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_metrics(service, admission=None) -> str:
    """The ``/metrics`` payload: Prometheus text exposition format.

    Covers the service counters (submitted/solved/failed/dedup/expired),
    queue depth and drain state, the per-tier solve-latency histograms,
    StageCache and MilpModelCache hit rates, and (when an
    :class:`~repro.service.admission.AdmissionController` is given) the
    admission/shed counters.

    >>> from repro.service.server import MappingService
    >>> with MappingService() as service:
    ...     text = render_metrics(service)
    >>> "# TYPE repro_service_queue_depth gauge" in text
    True
    >>> "repro_service_submitted_total 0" in text
    True
    """
    from repro.mapping.milp_model import MODEL_CACHE

    stats = service.stats()
    lines = []

    def counter(name, help_text, value, labels=None):
        sample(name, help_text, "counter", value, labels)

    def gauge(name, help_text, value, labels=None):
        sample(name, help_text, "gauge", value, labels)

    def sample(name, help_text, kind, value, labels=None):
        if help_text is not None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
        label = ""
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in labels)
            label = "{" + inner + "}"
        lines.append(f"{name}{label} {_fmt(value)}")

    counter("repro_service_submitted_total",
            "Requests submitted to the mapping service.", stats.submitted)
    counter("repro_service_solved_total",
            "Solver invocations that completed.", stats.solved)
    counter("repro_service_failed_total",
            "Jobs that finished FAILED (solver errors, expiries, "
            "shutdown).", stats.failed)
    counter("repro_service_expired_total",
            "Jobs failed because their deadline expired in the queue.",
            stats.expired)
    counter("repro_service_dedup_total",
            "Submissions answered without a solve.", stats.dedup_inflight,
            labels=[("kind", "inflight")])
    counter("repro_service_dedup_total", None, stats.dedup_completed,
            labels=[("kind", "completed")])
    gauge("repro_service_queue_depth",
          "Accepted jobs waiting for a worker.", service.queue_depth())
    gauge("repro_service_draining",
          "1 once shutdown has begun (healthz turns 503).",
          service.draining)

    latency = service.solve_latency()
    if latency:
        lines.append("# HELP repro_service_solve_latency_seconds "
                     "Solve wall time by budget tier.")
        lines.append("# TYPE repro_service_solve_latency_seconds histogram")
        for tier, hist in latency.items():
            for bound, count in hist["buckets"]:
                sample("repro_service_solve_latency_seconds_bucket",
                       None, None, count,
                       labels=[("tier", tier), ("le", _fmt(bound))])
            sample("repro_service_solve_latency_seconds_bucket", None,
                   None, hist["count"],
                   labels=[("tier", tier), ("le", "+Inf")])
            sample("repro_service_solve_latency_seconds_sum", None, None,
                   hist["sum"], labels=[("tier", tier)])
            sample("repro_service_solve_latency_seconds_count", None, None,
                   hist["count"], labels=[("tier", tier)])

    cache_stats = service.cache.stats()
    counter("repro_stage_cache_lookups_total",
            "Pipeline-stage cache lookups.", cache_stats.hits,
            labels=[("result", "hit")])
    counter("repro_stage_cache_lookups_total", None, cache_stats.misses,
            labels=[("result", "miss")])
    gauge("repro_stage_cache_hit_rate",
          "Stage-cache lifetime hit rate.", float(cache_stats.hit_rate))

    milp = MODEL_CACHE.stats()
    counter("repro_milp_model_cache_lookups_total",
            "Compiled-MILP-model cache lookups (process-wide).",
            milp["hits"], labels=[("result", "hit")])
    counter("repro_milp_model_cache_lookups_total", None, milp["misses"],
            labels=[("result", "miss")])
    counter("repro_milp_model_cache_evictions_total",
            "Compiled models evicted from the LRU.", milp["evictions"])
    gauge("repro_milp_model_cache_size",
          "Compiled models currently cached.", milp["size"])
    lookups = milp["hits"] + milp["misses"]
    gauge("repro_milp_model_cache_hit_rate",
          "MILP model cache lifetime hit rate.",
          float(milp["hits"] / lookups) if lookups else 0.0)

    if admission is not None:
        shed = admission.stats()
        counter("repro_admission_admitted_total",
                "Requests that passed admission control.",
                shed["admitted"])
        counter("repro_admission_shed_total",
                "Requests shed with 429.", shed["shed_rate"],
                labels=[("reason", "rate")])
        counter("repro_admission_shed_total", None, shed["shed_queue"],
                labels=[("reason", "queue")])
        gauge("repro_admission_tenants",
              "Distinct tenant token buckets currently tracked.",
              shed["tenants"])

    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests (one thread per connection)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""

    # -- plumbing ------------------------------------------------------
    @property
    def service(self):
        return self.server.service

    @property
    def admission(self):
        return self.server.admission

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _respond(self, status: int, body: bytes,
                 content_type: str = "application/json",
                 headers=()) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: dict, headers=()) -> None:
        body = (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()
        self._respond(status, body, headers=headers)

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._json(400, {"error": "bad Content-Length"})
            return None
        if length > MAX_BODY_BYTES:
            self._json(413, {"error": "request body too large"})
            return None
        return self.rfile.read(length)

    def _shed(self, verdict) -> None:
        """Answer a rejected admission verdict with 429 + Retry-After."""
        retry = verdict.retry_after
        seconds = 3600 if math.isinf(retry) else max(1, math.ceil(retry))
        self._json(
            429,
            {"error": "too many requests", "reason": verdict.reason,
             "retry_after": seconds},
            headers=[("Retry-After", str(seconds))],
        )

    def _refused(self, exc: BaseException) -> None:
        """Answer a refused submit (shutdown race / draining) with 503.

        Mirrors :meth:`_shed`'s contract — ``Retry-After`` header plus
        ``reason``/``retry_after`` body fields — so clients back off the
        same way on 429 and 503.
        """
        self._json(
            503,
            {"error": f"{type(exc).__name__}: {exc}",
             "reason": "draining",
             "retry_after": DRAIN_RETRY_AFTER_S},
            headers=[("Retry-After", str(DRAIN_RETRY_AFTER_S))],
        )

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        if self.path == "/healthz":
            if self.service.draining:
                self._json(503, {"status": "draining"})
            else:
                self._json(200, {"status": "ok"})
        elif self.path == "/metrics":
            body = render_metrics(self.service, self.admission).encode()
            self._respond(200, body,
                          content_type="text/plain; version=0.0.4")
        elif self.path.startswith("/api/v1/jobs/"):
            self._get_job(self.path[len("/api/v1/jobs/"):])
        else:
            self._json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        body = self._read_body()
        if body is None:
            return
        if self.path == "/api/v1/solve":
            self._post_solve(body)
        elif self.path == "/api/v1/remap":
            self._post_remap(body)
        elif self.path == "/api/v1/batch":
            self._post_batch(body)
        else:
            self._json(404, {"error": f"no such endpoint: {self.path}"})

    # -- endpoint bodies -----------------------------------------------
    def _tenant(self) -> str:
        return self.headers.get("X-Tenant", "anonymous")

    def _get_job(self, key: str) -> None:
        job = self.service.store.get(key)
        if job is None:
            self._json(404, {"error": f"unknown job key: {key}"})
            return
        self._json(200, job.to_json())

    def _post_solve(self, body: bytes) -> None:
        """One request in, one response line out.

        The success body is exactly the line ``serve_stream`` would
        write for the same request — ``response_to_line(response)``
        plus a newline — which is what makes the byte-identity contract
        hold by construction.
        """
        try:
            request = parse_request_line(body.decode("utf-8", "replace"))
            request.validate()
        except ValueError as exc:
            self._json(400, {"error": str(exc)})
            return
        verdict = self.admission.admit(
            self._tenant(), budget=request.budget,
            queue_depth=self.service.queue_depth(),
        )
        if not verdict.allowed:
            self._shed(verdict)
            return
        try:
            ticket = self.service.submit(request)
        except BaseException as exc:  # submit raced a shutdown
            self._refused(exc)
            return
        response = ticket.response()
        self._respond(200, (response_to_line(response) + "\n").encode())

    def _post_remap(self, body: bytes) -> None:
        """One remap object in, one repaired-mapping line out.

        Accepts the wrapped ``{"remap": {...}}`` wire form (and, for
        convenience, the bare inner object).  Admission-priced by the
        base request's budget tier like ``/api/v1/solve``; the success
        body is byte-identical to the ``serve_stream`` response line
        for the same remap line.
        """
        from repro.service.remap import remap_from_json

        try:
            payload = json.loads(body.decode("utf-8", "replace"))
            if not isinstance(payload, dict):
                raise ValueError("request line must be a JSON object")
            request = remap_from_json(payload)
            request.validate()
        except ValueError as exc:
            self._json(400, {"error": str(exc)})
            return
        verdict = self.admission.admit(
            self._tenant(), budget=request.base.budget,
            queue_depth=self.service.queue_depth(),
        )
        if not verdict.allowed:
            self._shed(verdict)
            return
        try:
            ticket = self.service.submit_remap(request)
        except BaseException as exc:  # draining, or submit raced one
            self._refused(exc)
            return
        response = ticket.response()
        self._respond(200, (response_to_line(response) + "\n").encode())

    def _post_batch(self, body: bytes) -> None:
        """A JSONL stream in, the ``serve_stream`` output stream out.

        The whole batch is admitted or shed as one unit: its token cost
        is the sum of the per-line tier costs (malformed lines charge
        the minimum — they still cost a parse), so a batch cannot
        sidestep the per-request rate limit.
        """
        text = body.decode("utf-8", "replace")
        cost = 0
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
                # remap lines nest the base fields under "remap"
                inner = payload.get("remap", payload)
                tier = inner.get("budget", "default")
                cost += TIER_COST.get(tier, min(TIER_COST.values()))
            except (ValueError, AttributeError):
                cost += min(TIER_COST.values())
        verdict = self.admission.admit(
            self._tenant(), cost=float(cost),
            queue_depth=self.service.queue_depth(),
        )
        if not verdict.allowed:
            self._shed(verdict)
            return
        out = io.StringIO()
        serve_stream(io.StringIO(text), out, self.service)
        self._respond(200, out.getvalue().encode(),
                      content_type="application/x-ndjson")


class MappingHTTPServer(ThreadingHTTPServer):
    """The HTTP front end: a threading server bound to one
    :class:`~repro.service.server.MappingService`.

    Construct with ``port=0`` for an ephemeral port (tests, benchmarks);
    drive with :meth:`serve_forever` in the foreground (the CLI) or via
    :func:`serve_http` for a background thread.  The server does not own
    the service — shut the service down separately.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Stop the accept loop and release the socket (idempotent)."""
        self.shutdown()
        self.server_close()


def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    admission: Optional[AdmissionController] = None,
    verbose: bool = False,
) -> MappingHTTPServer:
    """Start an HTTP front end on a background thread; returns the
    bound server (``server.url`` is ready immediately).

    The accept loop runs on a daemon thread; call ``server.stop()``
    when done.  The service itself is not owned by the server.

    >>> from repro.service.server import MappingService
    >>> with MappingService() as service:
    ...     server = serve_http(service, port=0)
    ...     try:
    ...         import urllib.request
    ...         with urllib.request.urlopen(
    ...             f"{server.url}/metrics", timeout=10) as resp:
    ...             ok = resp.status == 200
    ...     finally:
    ...         server.stop()
    >>> ok
    True
    """
    server = MappingHTTPServer(
        service, host=host, port=port, admission=admission, verbose=verbose,
    )
    thread = threading.Thread(
        target=server.serve_forever, daemon=True, name="repro-http",
    )
    thread.start()
    return server
