"""Priority-aware FIFO work queue for the mapping service.

A tiny, dependency-free synchronized queue: items drain in ascending
``priority`` order (0 is the default; *lower* is sooner, like ``nice``),
and equal priorities drain strictly FIFO — the tie-break is a
monotonically increasing submission sequence number, so two requests at
the same priority can never reorder.  ``close()`` wakes every blocked
consumer; a closed, drained queue returns ``None`` from :meth:`get`,
which is the worker-thread shutdown signal.

>>> q = WorkQueue()
>>> q.put("background", priority=5)
>>> q.put("first"); q.put("second")
>>> q.put("urgent", priority=-1)
>>> [q.get() for _ in range(4)]
['urgent', 'first', 'second', 'background']
>>> q.close(); q.get() is None
True
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, List, Optional, Tuple


class QueueClosed(RuntimeError):
    """Raised by :meth:`WorkQueue.put` after :meth:`WorkQueue.close`."""


class WorkQueue:
    """Synchronized priority/FIFO queue (see module docstring)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0
        self._closed = False
        self._cond = threading.Condition()

    def put(self, item: Any, priority: int = 0) -> None:
        """Enqueue ``item``; lower ``priority`` values drain sooner."""
        with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            heapq.heappush(self._heap, (priority, self._seq, item))
            self._seq += 1
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the next item, blocking while the queue is empty.

        Returns ``None`` when the queue is closed and drained, or when
        ``timeout`` (seconds) elapses first.  The timeout is a
        *deadline*: it is converted to a monotonic-clock instant once,
        and every pass through the wait loop sleeps only on the time
        remaining — a notify that another consumer wins (or a spurious
        wakeup) must not re-arm the full timeout, or a "0.5 s" get
        could block for many multiples of that under contention.
        """
        with self._cond:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while not self._heap and not self._closed:
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(timeout=remaining)
            if not self._heap:
                return None  # closed and drained
            return heapq.heappop(self._heap)[-1]

    def drain(self) -> List[Any]:
        """Atomically remove and return every queued item, drain order.

        The shutdown path uses this to take custody of the backlog in
        one step, so every un-run item can be resolved (failed) instead
        of stranding its waiters.

        >>> q = WorkQueue()
        >>> q.put("a"); q.put("b", priority=-1)
        >>> q.drain(), len(q)
        (['b', 'a'], 0)
        """
        with self._cond:
            return [
                heapq.heappop(self._heap)[-1]
                for _ in range(len(self._heap))
            ]

    def close(self) -> None:
        """Refuse further puts and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)
