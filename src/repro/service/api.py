"""Request model and JSON-lines client API of the mapping service.

A :class:`MappingRequest` names a solve the way a client thinks of it
(app + size, machine, strategy, budget tier); :func:`request_key`
canonicalizes it to a content-addressed identity — the *graph
fingerprint* (not the app name), the *platform key* (the full
interconnect content, not the platform's name), and the solver
configuration.  Two requests share a key iff their solves are guaranteed
to produce identical results, which is exactly the dedup criterion the
service needs.  Scheduling metadata (``priority``, ``deadline_s``,
``tag``) never enters the key: an urgent duplicate of a background
request is still a duplicate.

The wire format is JSON lines: one request object per line in, one
response object per line out, ``tag`` echoed back for correlation.
``repro submit`` emits request lines; ``repro serve`` consumes them (see
:mod:`repro.cli`); :func:`serve_stream` is the shared loop.

>>> req = MappingRequest(app="Bitonic", n=8, num_gpus=2)
>>> req2 = request_from_json(request_to_json(req))
>>> req2 == req and len(request_key(req)) == 64
True
>>> request_key(req) == request_key(MappingRequest(app="Bitonic", n=8,
...                                                num_gpus=2, priority=9))
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import IO, List, Optional

from repro.apps.registry import build_app, is_known_app
from repro.flow import MAPPERS, PARTITIONERS, topology_key_parts
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.stream_graph import StreamGraph
from repro.mapping.budget import BUDGET_TIERS
from repro.sweep.spec import SPECS


@dataclass(frozen=True)
class MappingRequest:
    """One client request to the mapping service."""

    #: bundled benchmark name or ``synth:<family>[;k=v...]``
    app: str
    #: benchmark size parameter (the synth families read it as the seed)
    n: int
    #: reference-tree GPU count; ignored when ``platform`` is given
    num_gpus: int = 1
    #: named machine from :mod:`repro.gpu.platforms` (fixes the GPU count)
    platform: Optional[str] = None
    #: target device name (see :data:`repro.sweep.spec.SPECS`)
    spec: str = "M2090"
    partitioner: str = "ours"
    #: ``"portfolio"`` (the service default) or any flow mapper
    mapper: str = "portfolio"
    #: solve-budget tier name (see :data:`repro.mapping.BUDGET_TIERS`)
    budget: str = "default"
    peer_to_peer: bool = True
    #: simulator noise seed
    seed: int = 0
    #: scheduling only — lower drains sooner; never part of the key
    priority: int = 0
    #: scheduling only — relative wall-clock allowance in seconds
    deadline_s: Optional[float] = None
    #: scheduling only — client correlation id, echoed in responses
    tag: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on any unknown knob value."""
        if not is_known_app(self.app):
            raise ValueError(f"unknown app {self.app!r}")
        if self.partitioner not in PARTITIONERS:
            raise ValueError(f"unknown partitioner {self.partitioner!r}")
        if self.mapper not in MAPPERS:
            raise ValueError(f"unknown mapper {self.mapper!r}")
        if self.budget not in BUDGET_TIERS:
            raise ValueError(f"unknown budget tier {self.budget!r}")
        if self.spec not in SPECS:
            raise ValueError(f"unknown spec {self.spec!r}")
        if self.platform is None and self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.platform is not None:
            from repro.gpu.platforms import PLATFORM_NAMES

            if self.platform not in PLATFORM_NAMES:
                raise ValueError(f"unknown platform {self.platform!r}")


def build_request_graph(request: MappingRequest) -> StreamGraph:
    """Build the request's stream graph (deterministic per request).

    >>> build_request_graph(MappingRequest(app="Bitonic", n=8)).name
    'bitonic-n8'
    """
    return build_app(request.app, request.n)


def request_key(
    request: MappingRequest,
    graph_fp: Optional[str] = None,
) -> str:
    """Canonical content-addressed identity of a request (sha256 hex).

    The key digests the graph *fingerprint* (so two apps that flatten to
    the same graph dedup together), the machine content (the platform's
    full per-link interconnect description via
    :func:`repro.flow.topology_key_parts`, or the reference-tree GPU
    count), and every solver knob.  ``graph_fp`` skips the graph build
    when the caller already fingerprinted it.

    >>> a = request_key(MappingRequest(app="Bitonic", n=8))
    >>> b = request_key(MappingRequest(app="Bitonic", n=8, budget="ample"))
    >>> a != b
    True
    """
    if graph_fp is None:
        graph_fp = graph_fingerprint(build_request_graph(request))
    if request.platform is not None:
        from repro.gpu.platforms import build_platform

        machine = topology_key_parts(build_platform(request.platform))
    else:
        machine = {"tree": request.num_gpus}
    payload = {
        "graph": graph_fp,
        "machine": machine,
        "spec": request.spec,
        "partitioner": request.partitioner,
        "mapper": request.mapper,
        "budget": BUDGET_TIERS[request.budget].key_parts(),
        "peer_to_peer": request.peer_to_peer,
        "seed": request.seed,
    }
    digest = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                        default=str)
    return hashlib.sha256(digest.encode()).hexdigest()


def request_to_json(request: MappingRequest) -> dict:
    """The request as a plain JSON object (the wire format).

    >>> request_to_json(MappingRequest(app="DES", n=4))["app"]
    'DES'
    """
    return asdict(request)


def request_from_json(payload: dict) -> MappingRequest:
    """Parse one wire-format request object.

    Unknown keys are rejected — a typoed knob must not silently become a
    default solve.

    >>> request_from_json({"app": "DES", "n": 4}).mapper
    'portfolio'
    >>> request_from_json({"app": "DES", "n": 4, "gpus": 2})
    Traceback (most recent call last):
        ...
    ValueError: unknown request field(s): gpus
    """
    known = {f.name for f in fields(MappingRequest)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown request field(s): {', '.join(unknown)}")
    if "app" not in payload or "n" not in payload:
        raise ValueError("request needs at least 'app' and 'n'")
    return MappingRequest(**payload)


def parse_request_line(line: str) -> MappingRequest:
    """Parse one JSONL request line.

    >>> parse_request_line('{"app": "DES", "n": 4}').app
    'DES'
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad request line: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("request line must be a JSON object")
    return request_from_json(payload)


def parse_stream_line(line: str):
    """Parse one JSONL stream line into a request object.

    Returns a :class:`MappingRequest`, or — when the object carries a
    ``"remap"`` key — a :class:`~repro.service.remap.RemapRequest` (the
    scenario-replay wire form).

    >>> parse_stream_line('{"app": "DES", "n": 4}').app
    'DES'
    >>> parse_stream_line('{"remap": {"app": "DES", "n": 4, '
    ...     '"platform": "host-star", '
    ...     '"deltas": [{"kind": "restore"}]}}').base.app
    'DES'
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad request line: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("request line must be a JSON object")
    if "remap" in payload:
        from repro.service.remap import remap_from_json

        return remap_from_json(payload)
    return request_from_json(payload)


def response_to_line(response: dict) -> str:
    """Encode one response object as a JSONL line (no trailing newline)."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))


def serve_stream(
    in_fh: IO[str],
    out_fh: IO[str],
    service,
    strict: bool = False,
) -> int:
    """Drain JSONL requests from ``in_fh`` through ``service``.

    The stream is consumed in three phases: parse every line, submit
    every request up front (so duplicates dedup against each other and
    independent solves overlap across workers), then write responses to
    ``out_fh`` in *input order* — one line per request, each carrying
    ``state`` (``done``/``failed``), ``dedup`` provenance, and the
    solve result.  Returns the number of failed requests; a malformed
    line counts as a failure and, with ``strict=True``, raises during
    the parse phase — before anything is submitted, so an invalid
    stream has no side effects.

    A line whose object carries a ``"remap"`` key is a
    :class:`~repro.service.remap.RemapRequest` (scenario replay); it is
    routed through :meth:`~repro.service.server.MappingService.submit_remap`
    and answered in the same stream, in the same input order.

    >>> import io
    >>> from repro.service.server import MappingService
    >>> out = io.StringIO()
    >>> with MappingService() as service:
    ...     failures = serve_stream(io.StringIO(
    ...         '{"app": "Bitonic", "n": 8, "num_gpus": 2, '
    ...         '"budget": "instant"}\\n'), out, service)
    >>> failures, '"state":"done"' in out.getvalue()
    (0, True)
    """
    # local import: remap builds on this module, so the dependency must
    # not also run module-level in the other direction
    from repro.service.remap import RemapRequest

    parsed: List[object] = []  # request object | failure placeholder
    for lineno, line in enumerate(in_fh, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            request = parse_stream_line(line)
            request.validate()
        except ValueError as exc:
            if strict:
                raise
            parsed.append(
                {"state": "failed", "error": f"line {lineno}: {exc}"}
            )
            continue
        parsed.append(request)
    tickets = [
        item if isinstance(item, dict)
        else service.submit_remap(item) if isinstance(item, RemapRequest)
        else service.submit(item)
        for item in parsed
    ]
    failures = 0
    for ticket in tickets:
        if isinstance(ticket, dict):  # a parse failure placeholder
            response = ticket
        else:
            response = ticket.response()
        if response.get("state") != "done":
            failures += 1
        out_fh.write(response_to_line(response) + "\n")
    return failures
