"""Async mapping service: dedup, deadline budgets, anytime portfolio.

The serving layer the ROADMAP's production north star asks for, built
from four pieces:

* :mod:`repro.service.api` — the request model, canonical request keys,
  and the JSON-lines wire format (``repro submit`` / ``repro serve``);
* :mod:`repro.service.queue` — a priority/FIFO work queue;
* :mod:`repro.service.jobs` — the persistent job store (one job per
  canonical key; dedup is the storage layout);
* :mod:`repro.service.portfolio` — the anytime solver portfolio:
  greedy instantly, branch-and-bound and MILP as the budget allows,
  always a valid best-so-far mapping;
* :mod:`repro.service.server` — :class:`MappingService`, tying them
  together over worker threads (or a process pool) and a shared
  :class:`~repro.sweep.StageCache`;
* :mod:`repro.service.http` — the network front end (``/api/v1/solve``,
  ``/api/v1/remap``, ``/api/v1/batch``, ``/api/v1/jobs/<key>``,
  ``/metrics``, ``/healthz``), byte-identical to the stdio wire format;
* :mod:`repro.service.admission` — per-tenant token-bucket rate
  limiting (tier-priced) and queue-depth load shedding for the HTTP
  tier;
* :mod:`repro.service.remap` — fault-tolerant re-mapping requests: a
  deployed mapping plus a :class:`~repro.gpu.delta.PlatformDelta` list
  in, an incrementally repaired mapping out
  (:func:`repro.mapping.repair.solve_repair` under the hood).

Quick round trip::

    from repro.service import MappingService, MappingRequest

    with MappingService(workers=2) as service:
        tickets = [service.submit(MappingRequest(app="DES", n=8,
                                                 num_gpus=2))
                   for _ in range(8)]
        answers = [t.result() for t in tickets]
    # 8 identical answers, exactly 1 solve: service.stats().solved == 1

>>> from repro.service import MappingRequest, request_key
>>> request_key(MappingRequest(app="Bitonic", n=8)) \\
...     == request_key(MappingRequest(app="Bitonic", n=8, tag="again"))
True
"""

from repro.service.admission import (
    TIER_COST,
    Admission,
    AdmissionController,
    TokenBucket,
)
from repro.service.api import (
    MappingRequest,
    parse_request_line,
    parse_stream_line,
    request_from_json,
    request_key,
    request_to_json,
    serve_stream,
)
from repro.service.http import (
    MappingHTTPServer,
    render_metrics,
    serve_http,
)
from repro.service.jobs import Job, JobStore
from repro.service.remap import (
    RemapRequest,
    remap_from_json,
    remap_request_key,
    remap_to_json,
    solve_remap_request,
)
from repro.service.portfolio import (
    PortfolioResult,
    StageOutcome,
    solve_portfolio,
    tier_for_deadline,
)
from repro.service.queue import WorkQueue
from repro.service.server import (
    MappingService,
    ServiceError,
    ServiceStats,
    Ticket,
    solve_request,
)
from repro.mapping.budget import BUDGET_TIERS, TIER_ORDER, SolveBudget

__all__ = [
    "Admission",
    "AdmissionController",
    "BUDGET_TIERS",
    "Job",
    "JobStore",
    "MappingHTTPServer",
    "MappingRequest",
    "MappingService",
    "PortfolioResult",
    "RemapRequest",
    "ServiceError",
    "ServiceStats",
    "SolveBudget",
    "StageOutcome",
    "TIER_COST",
    "TIER_ORDER",
    "Ticket",
    "TokenBucket",
    "WorkQueue",
    "parse_request_line",
    "parse_stream_line",
    "remap_from_json",
    "remap_request_key",
    "remap_to_json",
    "render_metrics",
    "request_from_json",
    "request_key",
    "request_to_json",
    "serve_http",
    "serve_stream",
    "solve_portfolio",
    "solve_remap_request",
    "solve_request",
    "tier_for_deadline",
]
