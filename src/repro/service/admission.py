"""Admission control for the HTTP serving tier.

Two independent load-shedding mechanisms, both *scheduling-only* — an
admitted request is submitted completely unchanged, so canonical
request keys and every cached or golden result stay byte-identical:

* **per-tenant token buckets** — each tenant (the ``X-Tenant`` request
  header; anonymous traffic shares one bucket) refills at ``rate``
  tokens per second up to ``burst``.  A request's token cost is tied to
  its :class:`~repro.mapping.budget.SolveBudget` tier
  (:data:`TIER_COST`: ``instant`` 1, ``small`` 2, ``default`` 4,
  ``ample`` 8), so a tenant's budget buys eight quick heuristic answers
  or one full MILP proof — admission speaks the same currency as the
  solver portfolio.
* **a queue-depth bound** — once the service's
  :class:`~repro.service.queue.WorkQueue` holds ``max_queue_depth``
  jobs, further submissions are shed instead of growing the backlog
  without bound.

A shed request is answered ``429 Too Many Requests`` with a
``Retry-After`` hint (seconds until the bucket can cover the cost, or
the configured re-poll interval when the queue is full).

Tenant buckets live in a bounded LRU (``max_tenants``): a flood of
one-shot tenant names must not grow a long-lived server's memory, and
an evicted tenant merely restarts from a full burst allowance.

>>> clock = _FakeClock()
>>> control = AdmissionController(rate=1.0, burst=4.0, clock=clock)
>>> control.admit("alice", budget="default").allowed   # cost 4 of 4
True
>>> verdict = control.admit("alice", budget="instant")  # bucket empty
>>> verdict.allowed, verdict.reason, verdict.retry_after
(False, 'rate', 1.0)
>>> clock.advance(1.0)                                  # 1 token back
>>> control.admit("alice", budget="instant").allowed
True
>>> control.admit("bob", budget="instant").allowed      # separate bucket
True
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.mapping.budget import TIER_ORDER

#: token cost per solve-budget tier: each rung of the escalation ladder
#: does a strict superset of the previous one's work, so cost doubles
#: per rung — one "ample" proof rents the same admission budget as
#: eight "instant" heuristics
TIER_COST: Dict[str, int] = {
    name: 2 ** index for index, name in enumerate(TIER_ORDER)
}


class _FakeClock:
    """Deterministic test/doctest clock (callable like ``time.monotonic``)."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@dataclass(frozen=True)
class Admission:
    """One admission verdict."""

    #: whether the request may be submitted
    allowed: bool
    #: seconds the client should wait before retrying (the 429
    #: ``Retry-After`` value; ``0.0`` on an allowed request)
    retry_after: float = 0.0
    #: ``None`` (allowed), ``"rate"``, or ``"queue"``
    reason: Optional[str] = None


class TokenBucket:
    """One tenant's token bucket (not thread-safe on its own; the
    controller serializes access)."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def acquire(self, cost: float, now: float):
        """Try to take ``cost`` tokens; returns ``(ok, retry_after)``.

        >>> bucket = TokenBucket(rate=2.0, burst=4.0, now=0.0)
        >>> bucket.acquire(4.0, now=0.0)
        (True, 0.0)
        >>> bucket.acquire(1.0, now=0.0)   # empty: 1 token is 0.5 s away
        (False, 0.5)
        >>> bucket.acquire(1.0, now=1.0)   # refilled 2, spend 1
        (True, 0.0)
        """
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        if self.rate <= 0:
            return False, math.inf
        return False, (cost - self.tokens) / self.rate


class AdmissionController:
    """Thread-safe admission control (see module docstring).

    Parameters
    ----------
    rate, burst:
        Token-bucket refill rate (tokens/second) and capacity, per
        tenant.  Costs come from :data:`TIER_COST`.
    max_queue_depth:
        Shed once this many accepted jobs are already queued.
    queue_retry_after:
        The ``Retry-After`` hint (seconds) on a queue-full shed.
    max_tenants:
        LRU bound on distinct tenant buckets.
    clock:
        Injectable monotonic clock (tests and doctests).
    """

    def __init__(
        self,
        rate: float = 16.0,
        burst: float = 64.0,
        max_queue_depth: int = 256,
        queue_retry_after: float = 1.0,
        max_tenants: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError("rate must be >= 0 and burst > 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_queue_depth = max_queue_depth
        self.queue_retry_after = queue_retry_after
        self.max_tenants = max_tenants
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()
        self._admitted = 0
        self._shed_rate = 0
        self._shed_queue = 0

    def admit(
        self,
        tenant: str,
        budget: str = "default",
        cost: Optional[float] = None,
        queue_depth: int = 0,
    ) -> Admission:
        """Judge one submission attempt.

        ``budget`` names the request's solve tier (its
        :data:`TIER_COST` is the token cost unless an explicit ``cost``
        overrides it — the batch endpoint charges a whole stream at
        once); ``queue_depth`` is the service's current backlog.

        >>> control = AdmissionController(max_queue_depth=2,
        ...                               clock=_FakeClock())
        >>> control.admit("t", queue_depth=0).allowed
        True
        >>> full = control.admit("t", queue_depth=2)
        >>> full.allowed, full.reason, full.retry_after
        (False, 'queue', 1.0)
        """
        if cost is None:
            cost = TIER_COST.get(budget, TIER_COST["default"])
        with self._lock:
            if queue_depth >= self.max_queue_depth:
                self._shed_queue += 1
                return Admission(False, self.queue_retry_after, "queue")
            now = self._clock()
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[tenant] = bucket
            self._buckets.move_to_end(tenant)
            while len(self._buckets) > self.max_tenants:
                self._buckets.popitem(last=False)
            ok, retry_after = bucket.acquire(cost, now)
            if not ok:
                self._shed_rate += 1
                return Admission(False, retry_after, "rate")
            self._admitted += 1
            return Admission(True)

    def stats(self) -> Dict[str, int]:
        """Admission counters (scraped by ``/metrics``).

        >>> AdmissionController(clock=_FakeClock()).stats()
        {'admitted': 0, 'shed_rate': 0, 'shed_queue': 0, 'tenants': 0}
        """
        with self._lock:
            return {
                "admitted": self._admitted,
                "shed_rate": self._shed_rate,
                "shed_queue": self._shed_queue,
                "tenants": len(self._buckets),
            }
