"""The mapping service: async request execution with deduplication.

``MappingService`` is the in-process serving layer over the Figure-3.1
flow.  A submitted :class:`~repro.service.api.MappingRequest` travels:

1. **canonicalize** — :func:`~repro.service.api.request_key` reduces the
   request to (graph fingerprint, platform content, solver config);
2. **dedup** — a key already DONE in the :class:`~repro.service.jobs.JobStore`
   answers instantly from the store; a key currently in flight shares
   the in-flight ticket (many submissions, one solve); everything else
   becomes a new job on the :class:`~repro.service.queue.WorkQueue`;
3. **execute** — worker threads drain the queue in priority order and
   run the flow (optionally on a process pool), with every pipeline
   stage cached in a shared :class:`~repro.sweep.StageCache`, so even
   *non*-identical requests reuse each other's profile/partition work;
4. **answer** — the anytime portfolio guarantees a valid mapping under
   the request's budget tier; a request with a ``deadline_s`` is
   downgraded to the richest tier that still fits the remaining time,
   or failed outright if it expired while queued.

Everything is deterministic except opt-in deadlines: equal requests
yield equal answers, and the dedup layer makes that literal — they yield
the *same* answer object.  Deadline-downgraded and failed jobs are not
canonical: a downgraded completion is stored with a structural
``downgraded_from`` marker that dedup refuses to serve, so later
submissions of the same key re-solve at full budget instead of
replaying it — while a canonical copy of the same result is filed under
the *effective* tier's own key, where it is an untainted answer (the
one sharing window is a duplicate that attaches while a deadline job is
already in flight — it receives that job's possibly-downgraded answer,
like any in-flight rider).

>>> from repro.service.api import MappingRequest
>>> with MappingService(workers=2) as service:
...     tickets = [service.submit(MappingRequest(app="Bitonic", n=8,
...                                              num_gpus=2,
...                                              budget="instant"))
...                for _ in range(3)]
...     results = [t.result() for t in tickets]
>>> results[0] == results[1] == results[2]
True
>>> service.stats().solved, service.stats().dedup_hits
(1, 2)
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.flow import map_stream_graph
from repro.mapping.budget import TIER_ORDER, SolveBudget
from repro.service.api import (
    MappingRequest,
    build_request_graph,
    request_key,
    request_to_json,
)
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobStore
from repro.service.portfolio import tier_for_deadline
from repro.service.queue import WorkQueue
from repro.sweep.cache import StageCache
from repro.sweep.spec import SPECS


class ServiceError(RuntimeError):
    """A job failed; carries the job's error message."""


def solve_request(
    request: MappingRequest,
    budget_tier: Optional[str] = None,
    cache: Optional[StageCache] = None,
) -> dict:
    """Run one request through the flow; returns the compact result.

    This is the service's unit of real work — everything around it
    (dedup, queueing, deadlines) exists to avoid calling it twice for
    the same answer.  ``budget_tier`` overrides the request's tier (the
    deadline downgrade path); the result is plain JSON so it crosses
    process-pool and wire boundaries unchanged.

    >>> from repro.service.api import MappingRequest
    >>> out = solve_request(MappingRequest(app="Bitonic", n=8, num_gpus=2,
    ...                                    budget="instant"))
    >>> out["num_gpus"], out["budget"], len(out["assignment"]) >= 1
    (2, 'instant', True)
    """
    tier = budget_tier or request.budget
    flow = map_stream_graph(
        build_request_graph(request),
        num_gpus=request.num_gpus,
        spec=SPECS[request.spec],
        partitioner=request.partitioner,
        mapper=request.mapper,
        peer_to_peer=request.peer_to_peer,
        platform=request.platform,
        seed=request.seed,
        solve_budget=SolveBudget.tier(tier),
        cache=cache,
    )
    return {
        "assignment": list(flow.mapping.assignment),
        "tmax": flow.mapping.tmax,
        "solver": flow.mapping.solver,
        "optimal": flow.mapping.optimal,
        "num_partitions": flow.num_partitions,
        "num_gpus": flow.num_gpus,
        "throughput": flow.throughput,
        "beat_ns": flow.report.beat_ns,
        "budget": tier,
    }


def _process_worker(payload) -> dict:
    """Process-pool entry: one solve against the shared on-disk cache."""
    from repro.service.api import request_from_json

    request_json, budget_tier, cache_path = payload
    cache = StageCache(cache_path) if cache_path is not None else None
    result = solve_request(
        request_from_json(request_json), budget_tier, cache
    )
    if cache is not None:
        # the child's counters die with it unless folded into the
        # directory's shared stats file (repro cache stats reads it)
        cache.persist_stats()
    return result


@dataclass
class ServiceStats:
    """Service-lifetime counters (all monotone)."""

    submitted: int = 0
    solved: int = 0
    failed: int = 0
    #: duplicate of a job still in flight — shared its ticket
    dedup_inflight: int = 0
    #: duplicate of a completed job — answered from the store
    dedup_completed: int = 0
    #: failed before solving because the deadline expired in the queue
    expired: int = 0

    @property
    def dedup_hits(self) -> int:
        return self.dedup_inflight + self.dedup_completed

    def to_json(self) -> dict:
        return {
            "submitted": self.submitted,
            "solved": self.solved,
            "failed": self.failed,
            "dedup_inflight": self.dedup_inflight,
            "dedup_completed": self.dedup_completed,
            "expired": self.expired,
        }

    def render(self) -> str:
        """One-line human summary."""
        return (
            f"{self.submitted} submitted: {self.solved} solved, "
            f"{self.dedup_hits} deduped "
            f"({self.dedup_inflight} in-flight, "
            f"{self.dedup_completed} completed), "
            f"{self.failed} failed, {self.expired} expired"
        )


#: upper bucket bounds (seconds) of the per-tier solve-latency
#: histograms — the classic Prometheus ladder, µs heuristics through
#: multi-second MILP proofs
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class _LatencyHistogram:
    """Cumulative-bucket latency histogram (one per budget tier).

    Mutated only under the service lock; :meth:`snapshot` returns plain
    data so readers never alias live state.
    """

    __slots__ = ("counts", "count", "total")

    def __init__(self) -> None:
        self.counts = [0] * len(LATENCY_BUCKETS)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        for i, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                self.counts[i] += 1
        self.count += 1
        self.total += seconds

    def snapshot(self) -> dict:
        return {
            "buckets": [
                [bound, count]
                for bound, count in zip(LATENCY_BUCKETS, self.counts)
            ],
            "count": self.count,
            "sum": self.total,
        }


class _JobTicket:
    """The shared completion handle of one in-flight job."""

    def __init__(self, key: str, request: MappingRequest) -> None:
        self.key = key
        self.request = request
        self.enqueued_at = time.monotonic()
        self._event = threading.Event()
        self.payload: Optional[dict] = None

    def resolve(self, payload: dict) -> None:
        self.payload = payload
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> dict:
        if not self._event.wait(timeout):
            raise TimeoutError(f"job {self.key[:16]} still pending")
        assert self.payload is not None
        return self.payload


class Ticket:
    """What :meth:`MappingService.submit` returns — one submission's view
    of a (possibly shared) job."""

    def __init__(
        self, job: _JobTicket, dedup: Optional[str], tag: Optional[str]
    ) -> None:
        self._job = job
        #: ``None`` (this submission caused the solve), ``"inflight"``,
        #: or ``"completed"``
        self.dedup = dedup
        self.tag = tag

    @property
    def key(self) -> str:
        """The canonical request key this submission resolved to."""
        return self._job.key

    @property
    def done(self) -> bool:
        return self._job.payload is not None

    def response(self, timeout: Optional[float] = None) -> dict:
        """The full wire response (state, result/error, dedup, tag)."""
        payload = dict(self._job.wait(timeout))
        payload["key"] = self.key
        payload["dedup"] = self.dedup
        if self.tag is not None:
            payload["tag"] = self.tag
        return payload

    def result(self, timeout: Optional[float] = None) -> dict:
        """The solve result; raises :class:`ServiceError` on failure."""
        payload = self._job.wait(timeout)
        if payload["state"] != DONE:
            raise ServiceError(payload.get("error") or "job failed")
        return payload["result"]


class MappingService:
    """In-process async mapping service (see module docstring).

    Parameters
    ----------
    cache:
        Shared :class:`~repro.sweep.StageCache` for pipeline-stage reuse
        across requests.  ``None`` creates a private in-memory cache.
    store:
        :class:`~repro.service.jobs.JobStore` for completed-job dedup;
        give it a directory to survive restarts.  ``None`` keeps jobs in
        memory for the service's lifetime.
    workers:
        Worker-thread count (and, in process mode, the pool size).
    executor:
        ``"thread"`` (default) solves in the worker threads;
        ``"process"`` fans solves out to a process pool — requires a
        disk-backed cache (a memory-only cache cannot cross the pool
        boundary, so it forces thread mode, mirroring the sweep runner).
    solve_fn:
        Test seam: replaces :func:`solve_request`.
    """

    #: LRU capacity of the graph-fingerprint memo
    FINGERPRINT_CACHE_SIZE = 512

    def __init__(
        self,
        cache: Optional[StageCache] = None,
        store: Optional[JobStore] = None,
        workers: int = 1,
        executor: str = "thread",
        solve_fn: Optional[Callable] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.cache = cache if cache is not None else StageCache()
        self.store = store if store is not None else JobStore()
        if executor == "process" and self.cache.path is None:
            executor = "thread"
        self.executor = executor
        self.workers = workers
        self._solve = solve_fn or solve_request
        self._progress = progress
        self._queue = WorkQueue()
        self._inflight: Dict[str, _JobTicket] = {}
        self._lock = threading.Lock()
        self._stats = ServiceStats()
        self._draining = False
        #: per-tier solve-latency histograms (see LATENCY_BUCKETS)
        self._latency: Dict[str, _LatencyHistogram] = {}
        #: (app, n) -> graph fingerprint, so a burst of duplicates pays
        #: one graph build instead of one per submission.  LRU-bounded
        #: (mirroring MilpModelCache): adversarial-unique traffic must
        #: not grow a long-lived server's memory without bound.
        self._fingerprints: OrderedDict = OrderedDict()
        self._fingerprint_cap = self.FINGERPRINT_CACHE_SIZE
        self._pool: Optional[ProcessPoolExecutor] = None
        if executor == "process":
            self._pool = ProcessPoolExecutor(max_workers=workers)
        self._threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-service-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, request: MappingRequest) -> Ticket:
        """Submit one request; returns its :class:`Ticket` immediately.

        Duplicate requests (same canonical key) never solve twice: they
        share the in-flight ticket or answer from the completed-job
        store.  Only *canonical* completions serve as dedup sources — a
        job that FAILED (a transient worker error, an expired deadline)
        or whose solve was deadline-downgraded to a cheaper tier is
        re-solved on the next submission rather than replayed.
        """
        request.validate()
        key = request_key(request, graph_fp=self._fingerprint(request))
        with self._lock:
            self._stats.submitted += 1
            ticket = self._inflight.get(key)
            if ticket is not None:
                self._stats.dedup_inflight += 1
                return Ticket(ticket, "inflight", request.tag)
            job = self.store.get(key)
            # only canonical completions serve as dedup sources: the
            # structural `downgraded_from` marker (not the result
            # payload, which a solver backend could echo wrongly) is
            # what keeps a deadline-downgraded answer from being
            # replayed as a full-tier one forever
            if (
                job is not None
                and job.state == DONE
                and job.downgraded_from is None
                and (job.result or {}).get("budget") == request.budget
            ):
                self._stats.dedup_completed += 1
                done = _JobTicket(key, request)
                done.resolve(self._job_payload(job))
                return Ticket(done, "completed", request.tag)
            ticket = _JobTicket(key, request)
            self._inflight[key] = ticket
            self.store.put(Job(
                key=key, request=request_to_json(request), state=QUEUED,
            ))
        try:
            self._queue.put(ticket, priority=request.priority)
        except BaseException:
            # submit raced a shutdown: undo, and resolve the ticket as
            # failed — a duplicate may already be riding it, and an
            # unresolved ticket would block that rider's result() forever
            with self._lock:
                self._inflight.pop(key, None)
                self._stats.failed += 1
            error = "service shut down before the job was queued"
            self.store.update(key, state=FAILED, error=error)
            ticket.resolve({"state": FAILED, "error": error})
            raise
        return Ticket(ticket, None, request.tag)

    def submit_remap(self, request) -> Ticket:
        """Submit one :class:`~repro.service.remap.RemapRequest`.

        Remaps share the service's dedup machinery — the content-addressed
        :func:`~repro.service.remap.remap_request_key` (base request +
        deltas + old assignment + alpha) dedups against in-flight and
        completed remap jobs exactly like plain solves — but *execute
        synchronously in the calling thread*: a repair is orders of
        magnitude cheaper than the solve it repairs (the expensive
        baseline replays from the stage cache), so queueing it behind
        full solves would invert the service's latency story.  Raises
        :class:`ServiceError` once the service is draining (the HTTP
        tier maps that to 503 + ``Retry-After``).
        """
        from repro.service.remap import (
            remap_request_key,
            remap_to_json,
            solve_remap_request,
        )

        request.validate()
        key = remap_request_key(
            request, graph_fp=self._fingerprint(request.base)
        )
        tag = request.base.tag
        with self._lock:
            if self._draining:
                raise ServiceError("service is draining: remap refused")
            self._stats.submitted += 1
            ticket = self._inflight.get(key)
            if ticket is not None:
                self._stats.dedup_inflight += 1
                return Ticket(ticket, "inflight", tag)
            job = self.store.get(key)
            if (
                job is not None
                and job.state == DONE
                and job.downgraded_from is None
                and (job.result or {}).get("budget") == request.base.budget
            ):
                self._stats.dedup_completed += 1
                done = _JobTicket(key, request.base)
                done.resolve(self._job_payload(job))
                return Ticket(done, "completed", tag)
            ticket = _JobTicket(key, request.base)
            self._inflight[key] = ticket
            self.store.put(Job(
                key=key, request=remap_to_json(request), state=QUEUED,
            ))
        self.store.update(key, state=RUNNING)
        started = time.monotonic()
        try:
            result = solve_remap_request(request, cache=self.cache)
        except Exception as exc:  # the rider contract: always resolve
            with self._lock:
                self._stats.failed += 1
                self._observe_latency(
                    request.base.budget, time.monotonic() - started
                )
            self._finish(ticket, FAILED, solves=1,
                         error=f"{type(exc).__name__}: {exc}")
            return Ticket(ticket, None, tag)
        with self._lock:
            self._stats.solved += 1
            self._observe_latency(
                request.base.budget, time.monotonic() - started
            )
        self._finish(ticket, DONE, solves=1, result=result)
        return Ticket(ticket, None, tag)

    def submit_many(self, requests) -> List[Ticket]:
        """Submit a batch; returns tickets in submission order.

        >>> from repro.service.api import MappingRequest
        >>> with MappingService() as service:
        ...     pair = service.submit_many([
        ...         MappingRequest(app="Bitonic", n=8, num_gpus=2,
        ...                        budget="instant"),
        ...     ] * 2)
        ...     _ = [t.response() for t in pair]
        >>> pair[1].dedup in ("inflight", "completed")
        True
        """
        return [self.submit(request) for request in requests]

    def stats(self) -> ServiceStats:
        """A consistent *snapshot* of the service counters.

        Workers increment the live :class:`ServiceStats` under the
        service lock, so handing the mutable object out would expose
        callers to torn multi-field reads — and let them corrupt the
        service's own counters through the alias.  The copy is taken
        under the same lock; ``to_json()``/``render()`` on it see one
        coherent instant.
        """
        with self._lock:
            return replace(self._stats)

    def queue_depth(self) -> int:
        """How many accepted jobs are waiting for a worker right now."""
        return len(self._queue)

    @property
    def draining(self) -> bool:
        """True once :meth:`shutdown` has begun (``/healthz`` turns 503)."""
        return self._draining

    def solve_latency(self) -> Dict[str, dict]:
        """Per-tier solve-latency histogram snapshots (``/metrics``).

        Keys are budget-tier names; values carry cumulative ``buckets``
        (``[upper_bound_s, count]`` pairs over :data:`LATENCY_BUCKETS`),
        ``count``, and ``sum`` — the Prometheus histogram triple.
        """
        with self._lock:
            return {
                tier: hist.snapshot()
                for tier, hist in sorted(self._latency.items())
            }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; with ``wait``, drain the queue first.

        Without ``wait``, the backlog is *failed*, not abandoned: every
        still-queued ticket resolves as FAILED ("service shut down"),
        mirroring the submit/close race path — a rider blocked in
        :meth:`Ticket.result` must never hang on a ticket no worker
        will run (the worker threads are daemons; they die with the
        process).  Jobs already running when shutdown starts still
        complete normally.

        On a disk-backed cache the hit counters are folded into the
        cache directory's shared stats file (``repro cache stats`` reads
        them back).
        """
        self._draining = True
        self._queue.close()
        if wait:
            for thread in self._threads:
                thread.join()
        else:
            error = "service shut down"
            for ticket in self._queue.drain():
                with self._lock:
                    self._stats.failed += 1
                self._finish(ticket, FAILED, error=error)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if self.cache.path is not None:
            self.cache.persist_stats()

    def __enter__(self) -> "MappingService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _fingerprint(self, request: MappingRequest) -> str:
        """Memoized graph fingerprint (deterministic per app + n).

        The memo is a bounded LRU: recomputing a fingerprint on
        eviction is cheap and deterministic, while an unbounded dict
        would grow forever under adversarial-unique traffic.
        """
        from repro.graph.fingerprint import graph_fingerprint
        from repro.service.api import build_request_graph

        memo_key = (request.app, request.n)
        with self._lock:
            cached = self._fingerprints.get(memo_key)
            if cached is not None:
                self._fingerprints.move_to_end(memo_key)
                return cached
        fp = graph_fingerprint(build_request_graph(request))
        with self._lock:
            self._fingerprints[memo_key] = fp
            self._fingerprints.move_to_end(memo_key)
            while len(self._fingerprints) > self._fingerprint_cap:
                self._fingerprints.popitem(last=False)
        return fp

    @staticmethod
    def _job_payload(job: Job) -> dict:
        if job.state == DONE:
            return {"state": DONE, "result": job.result}
        return {"state": FAILED, "error": job.error}

    def _effective_tier(self, ticket: _JobTicket) -> Optional[str]:
        """The budget tier a dequeued job should solve under.

        ``None`` means the deadline already expired.  Without a
        deadline, the requested tier passes through untouched (the
        deterministic path).
        """
        request = ticket.request
        if request.deadline_s is None:
            return request.budget
        remaining = request.deadline_s - (time.monotonic() - ticket.enqueued_at)
        if remaining <= 0:
            return None
        fitting = tier_for_deadline(remaining)
        order = {name: i for i, name in enumerate(TIER_ORDER)}
        if order.get(fitting, 0) < order.get(request.budget, 0):
            return fitting
        return request.budget

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:
                return
            self._run_job(ticket)

    def _run_job(self, ticket: _JobTicket) -> None:
        tier = self._effective_tier(ticket)
        if tier is None:
            with self._lock:
                self._stats.expired += 1
                self._stats.failed += 1
            self._finish(ticket, FAILED, solves=0,
                         error="deadline expired in queue")
            return
        self.store.update(ticket.key, state=RUNNING)
        started = time.monotonic()
        try:
            if self._pool is not None:
                payload = (
                    request_to_json(ticket.request), tier, self.cache.path,
                )
                result = self._pool.submit(_process_worker, payload).result()
            else:
                result = self._solve(ticket.request, tier, self.cache)
        except Exception as exc:  # a failed job must not kill the worker
            with self._lock:
                self._stats.failed += 1
                self._observe_latency(tier, time.monotonic() - started)
            self._finish(ticket, FAILED, solves=1,
                         error=f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            self._stats.solved += 1
            self._observe_latency(tier, time.monotonic() - started)
        downgraded = tier != ticket.request.budget
        self._finish(
            ticket, DONE, solves=1, result=result,
            downgraded_from=ticket.request.budget if downgraded else None,
        )
        if downgraded:
            # the answer is tainted for *this* key, but it is a genuine
            # full-quality answer for the tier it actually ran under —
            # file a canonical copy there so an honest effective-tier
            # request dedups instead of re-solving
            self._store_effective_copy(ticket, tier, result)
        if self._progress is not None:
            self._progress(
                f"{ticket.request.app}/{ticket.request.n} [{tier}] done"
            )

    def _store_effective_copy(
        self, ticket: _JobTicket, tier: str, result: dict
    ) -> None:
        """File a downgraded solve's result under the effective tier's
        own canonical key (scheduling fields stripped), where it is an
        untainted answer.  Existing or in-flight jobs win — this is a
        dedup bonus, never an overwrite."""
        effective = replace(
            ticket.request, budget=tier,
            deadline_s=None, priority=0, tag=None,
        )
        key = request_key(effective, graph_fp=self._fingerprint(effective))
        with self._lock:
            if key in self._inflight:
                return
        if self.store.get(key) is not None:
            return
        self.store.put(Job(
            key=key, request=request_to_json(effective), state=DONE,
            result=result, solves=0,
        ))

    def _observe_latency(self, tier: str, seconds: float) -> None:
        """Record one solve latency (caller holds the service lock)."""
        hist = self._latency.get(tier)
        if hist is None:
            hist = self._latency[tier] = _LatencyHistogram()
        hist.observe(seconds)

    def _finish(self, ticket: _JobTicket, state: str, **fields) -> None:
        job = self.store.update(ticket.key, state=state, **fields)
        with self._lock:
            self._inflight.pop(ticket.key, None)
        ticket.resolve(self._job_payload(job))
