"""Remap requests: the service surface of the repair solver.

A :class:`RemapRequest` wraps an ordinary
:class:`~repro.service.api.MappingRequest` (which must name a catalog
``platform``) with the degradation context: the ordered
:class:`~repro.gpu.delta.PlatformDelta` list, optionally the deployed
``old_assignment`` (omitted, the service solves — and caches — the
pristine baseline itself), and the migration price ``alpha``.

Wire format — one JSON object whose single ``"remap"`` key holds the
base request fields plus ``deltas`` / ``old_assignment`` / ``alpha``::

    {"remap": {"app": "Bitonic", "n": 8, "platform": "two-island",
               "deltas": [{"kind": "kill-gpu", "gpu": 1}]}}

The same object is accepted as a ``serve_stream`` JSONL line and as the
``POST /api/v1/remap`` body; responses use the ordinary response-line
schema with repair provenance fields added.

Identity is content-addressed like everything else:
:func:`remap_request_key` digests the base request's canonical key plus
the full delta contents, the old assignment, and ``alpha`` — two remaps
dedup iff their repairs are guaranteed bit-identical, and a remap can
never collide with a plain solve of the same app (different key
namespace).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.gpu.delta import PlatformDelta, degrade_platform
from repro.mapping.budget import SolveBudget
from repro.mapping.repair import REPAIR_ALPHA
from repro.service.api import (
    MappingRequest,
    build_request_graph,
    request_from_json,
    request_key,
    request_to_json,
)
from repro.sweep.spec import SPECS

__all__ = [
    "RemapRequest",
    "parse_remap_line",
    "remap_from_json",
    "remap_request_key",
    "remap_to_json",
    "solve_remap_request",
]


@dataclass(frozen=True)
class RemapRequest:
    """One re-mapping request: a base solve plus its degradation context."""

    #: the deployed workload and solver config; ``platform`` is required
    base: MappingRequest
    #: platform deltas in application order (at least one)
    deltas: Tuple[PlatformDelta, ...] = ()
    #: the deployed assignment in the *pristine* platform's GPU ids;
    #: ``None`` lets the service solve the baseline itself (cached)
    old_assignment: Optional[Tuple[int, ...]] = None
    #: migration price in the repair objective (see
    #: :data:`repro.mapping.repair.REPAIR_ALPHA`)
    alpha: float = field(default=REPAIR_ALPHA)

    def validate(self) -> None:
        """Raise ``ValueError`` on any unknown or illegal knob value."""
        self.base.validate()
        if self.base.platform is None:
            raise ValueError("remap requires a named platform")
        if not self.deltas:
            raise ValueError("remap needs at least one delta")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        # apply the script now so an illegal delta (kill the last GPU,
        # unknown edge child, ...) fails at validation, not mid-solve
        degrade_platform(self.base.platform, self.deltas)
        if self.old_assignment is not None:
            bad = [
                g for g in self.old_assignment
                if not isinstance(g, int) or g < 0
            ]
            if bad:
                raise ValueError(f"old_assignment has bad GPU ids: {bad}")


def remap_request_key(
    request: RemapRequest, graph_fp: Optional[str] = None
) -> str:
    """Canonical content-addressed identity of a remap (sha256 hex).

    Digests the base request's own canonical key (graph fingerprint,
    machine content, solver config) plus the full delta contents, the
    old assignment, and ``alpha`` — everything the repair's answer
    depends on, and nothing it does not.

    >>> base = MappingRequest(app="Bitonic", n=8, platform="host-star")
    >>> a = remap_request_key(RemapRequest(
    ...     base=base, deltas=(PlatformDelta.kill_gpu(1),)))
    >>> b = remap_request_key(RemapRequest(
    ...     base=base, deltas=(PlatformDelta.kill_gpu(2),)))
    >>> len(a), a != b
    (64, True)
    """
    payload = {
        "remap": request_key(request.base, graph_fp=graph_fp),
        "deltas": [delta.key_parts() for delta in request.deltas],
        "old_assignment": (
            list(request.old_assignment)
            if request.old_assignment is not None else None
        ),
        "alpha": request.alpha,
    }
    digest = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                        default=str)
    return hashlib.sha256(digest.encode()).hexdigest()


def remap_to_json(request: RemapRequest) -> dict:
    """The remap request as its wire-format JSON object.

    >>> base = MappingRequest(app="DES", n=4, platform="host-star")
    >>> out = remap_to_json(RemapRequest(
    ...     base=base, deltas=(PlatformDelta.kill_gpu(0),)))
    >>> sorted(out) == ["remap"] and out["remap"]["app"]
    'DES'
    """
    inner = request_to_json(request.base)
    inner["deltas"] = [delta.to_json() for delta in request.deltas]
    if request.old_assignment is not None:
        inner["old_assignment"] = list(request.old_assignment)
    if request.alpha != REPAIR_ALPHA:
        inner["alpha"] = request.alpha
    return {"remap": inner}


def remap_from_json(payload: dict) -> RemapRequest:
    """Parse one wire-format remap object (wrapped or bare inner form).

    Accepts both ``{"remap": {...}}`` (the stream/HTTP line) and the
    bare inner object.  Unknown base fields are rejected exactly like
    plain requests.

    >>> req = remap_from_json({"remap": {
    ...     "app": "DES", "n": 4, "platform": "host-star",
    ...     "deltas": [{"kind": "kill-gpu", "gpu": 1}]}})
    >>> req.base.app, req.deltas[0].gpu
    ('DES', 1)
    """
    if not isinstance(payload, dict):
        raise ValueError("remap request must be a JSON object")
    inner = payload.get("remap", payload)
    if not isinstance(inner, dict):
        raise ValueError("'remap' must hold a JSON object")
    inner = dict(inner)
    deltas_json = inner.pop("deltas", None)
    if not isinstance(deltas_json, list) or not deltas_json:
        raise ValueError("remap needs a non-empty 'deltas' list")
    old = inner.pop("old_assignment", None)
    if old is not None and not isinstance(old, list):
        raise ValueError("'old_assignment' must be a list of GPU ids")
    alpha = inner.pop("alpha", REPAIR_ALPHA)
    if not isinstance(alpha, (int, float)) or isinstance(alpha, bool):
        raise ValueError("'alpha' must be a number")
    return RemapRequest(
        base=request_from_json(inner),
        deltas=tuple(PlatformDelta.from_json(d) for d in deltas_json),
        old_assignment=tuple(old) if old is not None else None,
        alpha=float(alpha),
    )


def parse_remap_line(line: str) -> RemapRequest:
    """Parse one JSONL remap line (the ``{"remap": ...}`` wire form).

    >>> parse_remap_line('{"remap": {"app": "DES", "n": 4, '
    ...     '"platform": "host-star", '
    ...     '"deltas": [{"kind": "restore"}]}}').base.platform
    'host-star'
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad request line: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("request line must be a JSON object")
    return remap_from_json(payload)


def solve_remap_request(request: RemapRequest, cache=None) -> dict:
    """Run one remap through the flow; returns the compact wire result.

    The remap analogue of :func:`repro.service.server.solve_request` —
    the front half and the pristine baseline replay from ``cache``; the
    repair itself is cheap and always computed (the service's job store
    dedups whole remap answers by :func:`remap_request_key`).

    >>> base = MappingRequest(app="Bitonic", n=8, platform="host-star",
    ...                       budget="instant")
    >>> out = solve_remap_request(RemapRequest(
    ...     base=base, deltas=(PlatformDelta.kill_gpu(1),)))
    >>> out["num_gpus"], out["budget"], out["tmax"] > 0
    (3, 'instant', True)
    """
    from repro.flow import remap_stream_graph

    base = request.base
    out = remap_stream_graph(
        build_request_graph(base),
        base.platform,
        list(request.deltas),
        old_assignment=(
            list(request.old_assignment)
            if request.old_assignment is not None else None
        ),
        spec=SPECS[base.spec],
        partitioner=base.partitioner,
        mapper=base.mapper,
        peer_to_peer=base.peer_to_peer,
        alpha=request.alpha,
        solve_budget=SolveBudget.tier(base.budget),
        seed=base.seed,
        cache=cache,
    )
    repair = out.repair
    return {
        "assignment": list(repair.mapping.assignment),
        "tmax": repair.mapping.tmax,
        "solver": repair.mapping.solver,
        "optimal": repair.mapping.optimal,
        "num_partitions": out.num_partitions,
        "num_gpus": out.degraded.topology.num_gpus,
        "budget": base.budget,
        "alpha": request.alpha,
        "migration_bytes": repair.migration_bytes,
        "migrated": list(repair.migrated),
        "evicted": list(repair.evicted),
        "fallback": repair.fallback,
        "baseline_tmax": (
            out.baseline.tmax if out.baseline is not None else None
        ),
        "greedy_tmax": repair.greedy_tmax,
    }
