"""Anytime solver portfolio: greedy -> branch-and-bound -> MILP.

The mapping service must answer every request with a *valid* mapping no
matter how little budget the caller grants, and must never answer worse
for a *larger* budget.  The portfolio delivers both by escalating
through the solver ladder under a :class:`~repro.mapping.SolveBudget`:

1. **greedy** — LPT, round-robin, and contiguous-blocks heuristics plus
   a bounded local-search polish: microseconds, always feasible;
2. **metaheuristic** — population simulated annealing over the batch
   evaluator (:mod:`repro.mapping.metaheuristic`), opt-in via the
   budget's ``mh_rounds`` / ``mh_population`` knobs (zero in every
   named tier), seeded with the refine incumbent;
3. **branch-and-bound** — the from-scratch exact solver, seeded with the
   best incumbent so far and capped at ``budget.bb_node_limit`` nodes;
4. **MILP** — the HiGHS backend under ``budget.milp_node_limit``.

Every stage runs on the *same* :class:`~repro.mapping.MappingProblem`
and the best-so-far assignment is tracked across stages, so the answer
is the minimum over everything computed — a later stage can only improve
it.  One compiled :class:`~repro.mapping.kernel.EvalKernel` is built per
solve and shared by every stage: greedy seeds are ranked in a single
kernel batch, the refine stage scores moves through the delta evaluator,
and the branch-and-bound stage searches on the kernel's route tables —
the interpreted evaluator is never touched on the hot path (kernel
scores are bit-identical to it, so answers are unchanged).  Budget tiers form strict supersets of work (see
:mod:`repro.mapping.budget`), which gives the *anytime monotonicity*
guarantee the service tests pin: ``tmax(tier k) >= tmax(tier k+1)``.

``deadline_s`` adds an opt-in wall-clock stop checked *between* stages:
the portfolio never abandons a stage midway, it just stops escalating.
Deadline-truncated answers are still valid and still best-so-far, but
which stages ran then depends on machine speed — deterministic callers
leave ``deadline_s`` unset.

>>> from repro.gpu.topology import default_topology
>>> from repro.mapping.problem import MappingProblem
>>> problem = MappingProblem(
...     times=[400e3, 300e3, 200e3, 100e3],
...     edges={(0, 1): 64.0, (1, 2): 64.0},
...     host_io=[(64.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, 64.0)],
...     topology=default_topology(2),
... )
>>> answer = solve_portfolio(problem, budget="ample")
>>> answer.status, answer.mapping.tmax <= solve_portfolio(
...     problem, budget="instant").mapping.tmax
('optimal', True)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.mapping.budget import BUDGET_TIERS, SolveBudget
from repro.mapping.greedy import (
    contiguous_assignment,
    lpt_assignment,
    round_robin_assignment,
)
from repro.mapping.kernel import EvalKernel
from repro.mapping.problem import MappingProblem
from repro.mapping.refine import refine_mapping
from repro.mapping.result import MappingResult, make_result
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.solver_milp import MilpNoIncumbent, solve_milp

#: deadline-to-tier downgrade ladder: (minimum remaining seconds, tier).
#: Scanned top-down; the first row whose threshold still fits wins.
DEADLINE_TIERS: Tuple[Tuple[float, str], ...] = (
    (5.0, "ample"),
    (1.0, "default"),
    (0.2, "small"),
    (0.0, "instant"),
)


def tier_for_deadline(remaining_s: float) -> str:
    """The richest budget tier that typically fits ``remaining_s``.

    The thresholds are deliberately coarse — they pick how hard to *try*,
    not a hard guarantee; the portfolio's between-stage deadline check
    handles the rest.

    >>> tier_for_deadline(10.0), tier_for_deadline(0.5), tier_for_deadline(0.01)
    ('ample', 'small', 'instant')
    """
    for threshold, tier in DEADLINE_TIERS:
        if remaining_s >= threshold:
            return tier
    return "instant"


@dataclass(frozen=True)
class StageOutcome:
    """One portfolio stage's contribution."""

    stage: str  #: "greedy", "refine", "metaheuristic", "branch-and-bound", or "milp"
    solver: str  #: the winning backend's name for this stage
    tmax: float  #: the stage's own best objective (inf if it failed)
    optimal: bool  #: whether this stage *proved* optimality
    ran: bool  #: False when the stage was skipped
    note: str = ""  #: why skipped / how it ended


@dataclass(frozen=True)
class PortfolioResult:
    """The portfolio's answer: best-so-far mapping plus its provenance."""

    #: the best valid mapping found; ``solver`` is ``portfolio[<stage>]``
    mapping: MappingResult
    #: ``"optimal"`` when a proving stage certified the answer (modulo
    #: the budget's MIP gap), else ``"feasible"``
    status: str
    #: name of the budget tier the solve ran under
    budget: str
    #: every stage in escalation order, including skipped ones
    stages: Tuple[StageOutcome, ...]
    #: wall-clock seconds the whole portfolio spent
    wall_s: float

    @property
    def winner(self) -> str:
        """The stage that produced the returned mapping."""
        return self.mapping.solver.split("[", 1)[1].rstrip("]")

    def stage(self, name: str) -> StageOutcome:
        """The outcome of stage ``name`` (KeyError if unknown)."""
        for outcome in self.stages:
            if outcome.stage == name:
                return outcome
        raise KeyError(name)


def solve_portfolio(
    problem: MappingProblem,
    budget: Union[SolveBudget, str, None] = None,
    topo_order: Optional[Sequence[int]] = None,
    deadline_s: Optional[float] = None,
) -> PortfolioResult:
    """Solve ``problem`` anytime-style under ``budget`` (see module doc).

    ``budget`` is a :class:`~repro.mapping.SolveBudget` or a tier name;
    omitted, the deterministic default tier.  ``topo_order`` feeds the
    contiguous-blocks heuristic a topological order of the partitions
    (the flow passes the PDG's); omitted, index order is used.
    ``deadline_s`` is a *relative* wall-clock allowance for the whole
    portfolio, checked between stages.

    >>> from repro.gpu.topology import default_topology
    >>> from repro.mapping.problem import MappingProblem
    >>> p = MappingProblem(times=[5.0, 4.0], edges={}, host_io=[(0, 0)] * 2,
    ...                    topology=default_topology(2))
    >>> solve_portfolio(p, budget="instant").mapping.assignment in ((0, 1), (1, 0))
    True
    """
    if budget is None:
        budget = SolveBudget.default()
    elif isinstance(budget, str):
        budget = SolveBudget.tier(budget)
    start = time.perf_counter()
    deadline = start + deadline_s if deadline_s is not None else None
    kernel = EvalKernel(problem)  # compiled once, shared by every stage

    stages: List[StageOutcome] = []
    best: Optional[MappingResult] = None
    best_stage = ""
    # the smallest tmax any stage *certified* (proved optimal, modulo
    # that stage's mip_rel_gap).  The portfolio's answer is only
    # "optimal" when the returned best equals a certified tmax: a
    # budget-capped stage can hold an incumbent strictly better than a
    # gap-optimal MILP answer, and stamping `optimal=True` on that
    # incumbent would claim a proof nothing produced.
    proven_tmax: Optional[float] = None

    def consider(result: MappingResult, stage: str) -> None:
        nonlocal best, best_stage, proven_tmax
        if best is None or result.tmax < best.tmax:
            best = result
            best_stage = stage
        if result.optimal:
            proven_tmax = (
                result.tmax
                if proven_tmax is None
                else min(proven_tmax, result.tmax)
            )

    def certified() -> bool:
        return proven_tmax is not None and best.tmax == proven_tmax

    def expired() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    # -- stage 1: greedy heuristics (always run; instant) ---------------
    # seeds are built unscored and ranked in one kernel batch; only the
    # winner is materialized into a MappingResult (kernel-scored too)
    order = (
        list(topo_order)
        if topo_order is not None
        else list(range(problem.num_partitions))
    )
    seeds = [
        ("greedy-lpt", lpt_assignment(problem)),
        ("round-robin", round_robin_assignment(problem)),
        ("contiguous", contiguous_assignment(problem, order)),
    ]
    scores = kernel.batch_tmax(assignment for _name, assignment in seeds)
    winner = min(range(len(seeds)), key=scores.__getitem__)
    stage_best = make_result(
        problem, seeds[winner][1], seeds[winner][0], optimal=False,
        kernel=kernel,
    )
    consider(stage_best, "greedy")
    stages.append(
        StageOutcome(
            stage="greedy", solver=stage_best.solver, tmax=stage_best.tmax,
            optimal=False, ran=True,
        )
    )

    # -- stage 2: local-search polish ------------------------------------
    if budget.refine_steps > 0 and not expired():
        refined = refine_mapping(
            problem, best.assignment, max_steps=budget.refine_steps,
            use_swaps=False, kernel=kernel,
        )
        consider(refined, "refine")
        stages.append(
            StageOutcome(
                stage="refine", solver="refined", tmax=refined.tmax,
                optimal=False, ran=True,
            )
        )
    else:
        stages.append(
            StageOutcome(
                stage="refine", solver="refined", tmax=float("inf"),
                optimal=False, ran=False,
                note="skipped: no steps budgeted" if budget.refine_steps <= 0
                else "skipped: deadline",
            )
        )

    # -- stage 3: metaheuristic population search -------------------------
    # opt-in via the budget's mh knobs (zero in every named tier, so the
    # pinned portfolio answers are untouched); seeded with the incumbent,
    # so it can only improve on the refine stage
    if budget.mh_rounds > 0 and budget.mh_population > 0 and not expired():
        from repro.mapping.metaheuristic import solve_metaheuristic

        mh = solve_metaheuristic(
            problem, budget=budget, topo_order=topo_order,
            incumbent=best.assignment, kernel=kernel,
        )
        consider(mh, "metaheuristic")
        stages.append(
            StageOutcome(
                stage="metaheuristic", solver=mh.solver, tmax=mh.tmax,
                optimal=False, ran=True,
            )
        )
    else:
        stages.append(
            StageOutcome(
                stage="metaheuristic", solver="metaheuristic",
                tmax=float("inf"), optimal=False, ran=False,
                note="skipped: no rounds budgeted"
                if budget.mh_rounds <= 0 or budget.mh_population <= 0
                else "skipped: deadline",
            )
        )

    # -- stage 4: branch-and-bound incumbent improvement -----------------
    if budget.use_bb and not expired():
        bb = solve_branch_and_bound(
            problem, budget=budget, incumbent=best.assignment, kernel=kernel
        )
        consider(bb, "branch-and-bound")
        stages.append(
            StageOutcome(
                stage="branch-and-bound", solver=bb.solver, tmax=bb.tmax,
                optimal=bb.optimal, ran=True,
                note="" if bb.optimal else "node budget exhausted",
            )
        )
    else:
        stages.append(
            StageOutcome(
                stage="branch-and-bound", solver="branch-and-bound",
                tmax=float("inf"), optimal=False, ran=False,
                note="skipped: budget" if not budget.use_bb
                else "skipped: deadline",
            )
        )

    # -- stage 5: MILP ----------------------------------------------------
    if budget.use_milp and not certified() and not expired():
        try:
            # warm-start HiGHS from the best incumbent so far (a MIP
            # start), instead of letting it rediscover the mapping the
            # earlier stages already paid for
            milp = solve_milp(
                problem, budget=budget, incumbent=list(best.assignment)
            )
        except MilpNoIncumbent as exc:
            stages.append(
                StageOutcome(
                    stage="milp", solver="milp", tmax=float("inf"),
                    optimal=False, ran=True, note=f"no incumbent: {exc}",
                )
            )
        else:
            consider(milp, "milp")
            stages.append(
                StageOutcome(
                    stage="milp", solver="milp", tmax=milp.tmax,
                    optimal=milp.optimal, ran=True,
                    note="" if milp.optimal else "work limit hit",
                )
            )
    else:
        note = (
            "skipped: budget" if not budget.use_milp
            else "skipped: already proven optimal" if certified()
            else "skipped: deadline"
        )
        stages.append(
            StageOutcome(
                stage="milp", solver="milp", tmax=float("inf"),
                optimal=False, ran=False, note=note,
            )
        )

    # `optimal` only when a proving stage certified *this* tmax.  Note
    # the mip_rel_gap caveat: an "optimal" MILP stage certifies its
    # answer modulo the budget's relative gap (nonzero in every tier but
    # "ample"), so portfolio-level "optimal" inherits that tolerance.
    proven = certified()
    mapping = make_result(
        problem,
        list(best.assignment),
        f"portfolio[{best_stage}]",
        optimal=proven,
        stats=best.solve_stats,
        kernel=kernel,
    )
    return PortfolioResult(
        mapping=mapping,
        status="optimal" if proven else "feasible",
        budget=budget.name,
        stages=tuple(stages),
        wall_s=time.perf_counter() - start,
    )
