"""Persistent job store for the mapping service.

One :class:`Job` per *canonical request key* (see
:func:`repro.service.api.request_key`): because the key is
content-addressed, "the same request submitted twice" and "two clients
asking for the same thing" are literally the same job — dedup falls out
of the storage layout.

The store is two-level like the stage cache: an in-memory dict under a
lock (the service's worker threads all touch it) plus an optional
on-disk directory — one JSON file per job, written via atomic temp-file
rename, so a service restarted on the same ``--store`` directory
resumes deduplicating against every previously completed job.  Startup
is crash-robust: orphaned ``*.tmp`` files (a writer died between
``mkstemp`` and the rename) are swept away, and a truncated or corrupt
job file is quarantined as ``*.corrupt`` instead of crashing the
service — its key simply re-solves and re-persists cleanly.

>>> store = JobStore()
>>> job = Job(key="k1", request={"app": "DES"}, state=QUEUED)
>>> store.put(job)
>>> store.get("k1").state
'queued'
>>> _ = store.update("k1", state=DONE, result={"tmax": 1.0})
>>> store.get("k1").state, len(store)
('done', 1)
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.sweep.cache import atomic_write_json

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

STATES = (QUEUED, RUNNING, DONE, FAILED)


@dataclass
class Job:
    """One unit of service work, keyed by canonical request identity."""

    #: canonical request key (sha256 hex; see ``api.request_key``)
    key: str
    #: canonical request payload (``api.request_to_json``)
    request: dict
    #: one of :data:`STATES`
    state: str = QUEUED
    #: compact solve result (assignment, tmax, status, ...) once DONE
    result: Optional[dict] = None
    #: error message once FAILED
    error: Optional[str] = None
    #: how many solver invocations this job actually cost (0 on dedup)
    solves: int = 0
    #: the *requested* budget tier when a deadline downgraded the solve
    #: to a cheaper tier (``None`` on any untainted job).  Dedup refuses
    #: to serve a marked job: its result answers a cheaper question than
    #: the key promises, and the store is persistent — without the
    #: marker one deadline request would poison the key forever.
    downgraded_from: Optional[str] = None

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "Job":
        return cls(**payload)


class JobStore:
    """Thread-safe two-level (memory + optional disk) job store."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._load()

    def _file(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.job.json")

    def _load(self) -> None:
        for name in sorted(os.listdir(self.path)):
            path = os.path.join(self.path, name)
            if name.endswith(".tmp"):
                # orphan from a crash between mkstemp and the atomic
                # rename; its key's real file either exists (the old
                # value — fine) or never will (the job re-solves)
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            if not name.endswith(".job.json"):
                continue
            try:
                with open(path) as fh:
                    job = Job.from_json(json.load(fh))
            except (json.JSONDecodeError, TypeError):
                # truncated/corrupt content: quarantine rather than
                # silently skip, so the broken bytes stop shadowing the
                # key (it re-solves and re-persists cleanly) and stay
                # on disk for a post-mortem
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                continue
            except OSError:
                continue  # unreadable (permissions, races); ignore
            # an interrupted run's queued/running jobs are not resumable
            # state — only finished jobs are worth deduplicating against
            if job.state in (DONE, FAILED):
                self._jobs[job.key] = job

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def put(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.key] = job
            self._persist(job)

    def update(self, key: str, **fields) -> Job:
        """Atomically apply ``fields`` to the job and persist it."""
        with self._lock:
            job = self._jobs[key]
            for name, value in fields.items():
                if not hasattr(job, name):
                    raise AttributeError(f"Job has no field {name!r}")
                setattr(job, name, value)
            self._persist(job)
            return job

    def _persist(self, job: Job) -> None:
        if self.path is None:
            return
        atomic_write_json(self.path, self._file(job.key), job.to_json())

    # ------------------------------------------------------------------
    def jobs(self, state: Optional[str] = None) -> List[Job]:
        """All jobs (optionally filtered by state), key-sorted."""
        with self._lock:
            out = [
                job for job in self._jobs.values()
                if state is None or job.state == state
            ]
        return sorted(out, key=lambda job: job.key)

    def purge(self) -> int:
        """Drop every job (memory and disk); returns the count dropped."""
        with self._lock:
            count = len(self._jobs)
            self._jobs.clear()
            if self.path is not None:
                for name in os.listdir(self.path):
                    if name.endswith(".job.json"):
                        try:
                            os.unlink(os.path.join(self.path, name))
                        except OSError:
                            pass
        return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
