"""The StreamIt benchmark suite used in the paper's evaluation.

Eight applications, the same set as the previous work [7] (Section 4.0.1),
each parameterized by the size knob ``N`` shown on the x-axes of
Figures 4.2/4.3:

========== ============================ =========================
app        N meaning                    paper classification
========== ============================ =========================
DES        cipher rounds                compute-bound
FMRadio    equalizer bands              compute-bound
FFT        transform size               compute-bound
DCT        2D block edge                compute-bound
MatMul2    blocks per matrix dimension  compute-bound
MatMul3    blocks per matrix dimension  memory-bound
BitonicRec sort keys (recursive form)   memory-bound
Bitonic    sort keys (iterative form)   memory-bound
========== ============================ =========================

The generators mirror the published StreamIt program structures (pipelines
of rounds, butterfly split-joins, comparator stages, ...) with abstract
per-filter work chosen so the compute/memory-bound split above emerges in
the cost model.  See :mod:`repro.apps.registry` for the catalogue.
"""

from repro.apps.registry import APPS, AppInfo, build_app, paper_n_values

__all__ = ["APPS", "AppInfo", "build_app", "paper_n_values"]
