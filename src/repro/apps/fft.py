"""FFT of size ``n`` (StreamIt benchmark, FFT5-like structure).

Bit-reversal reordering feeds two half-size butterfly pipelines inside a
single split-join (Chapter V: "FFT only has one splitter and one joiner"),
followed by the final cross-half combine stage.  log2(n) butterfly stages
of ~5 flops per point make it compute-bound while still moving 2n points
per execution.
"""

from __future__ import annotations

import math

from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import join_roundrobin, pipeline, roundrobin, splitjoin


#: independent transforms batched per steady-state execution — the
#: vectorization StreamIt applies to fill GPU threads; also scales stage
#: buffers so large-n instances split into many partitions (Fig. 4.2's
#: FFT partition counts grow 1 -> 20 over the n sweep)
BATCH = 4


def build(n: int) -> StreamGraph:
    """FFT of size ``n`` (power of two; paper sweeps n = 8..1024)."""
    if n < 4 or n & (n - 1):
        raise ValueError("FFT size must be a power of two >= 4")
    n = n * BATCH
    half = n // 2
    stages = int(math.log2(n // BATCH))

    def core(side: str):
        return pipeline(
            *[
                FilterSpec(
                    name=f"{side}.bf{s}",
                    pop=half,
                    push=half,
                    work=5.0 * half,
                    semantics="butterfly",
                    params=(max(1, half >> (s + 1)),),
                )
                for s in range(stages - 1)
            ],
            name=f"{side}.core",
        )

    halves = splitjoin(
        roundrobin(half, half),
        [core("even"), core("odd")],
        join_roundrobin(half, half),
        name="halves",
    )
    root = pipeline(
        source("src", n, work=n),
        FilterSpec(name="reorder", pop=n, push=n, work=1.0 * n,
                   semantics="shuffle"),
        halves,
        FilterSpec(name="combine", pop=n, push=n, work=5.0 * n,
                   semantics="butterfly", params=(half,)),
        sink("snk", n, work=n),
        name="fft",
    )
    return flatten(root, f"fft-n{n}")
