"""2D DCT on ``n`` x ``n`` blocks (StreamIt benchmark).

Separable implementation: a split-join of ``n`` row 1D-DCTs, a transpose,
and a split-join of ``n`` column 1D-DCTs.  Each 1D DCT is O(n^2) flops on
n points, so the app is strongly compute-bound and its per-round fan-out
width grows with n — the paper's most partition-hungry benchmark.
"""

from __future__ import annotations

from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import join_roundrobin, pipeline, roundrobin, splitjoin


def _lane(kind: str, index: int, n: int):
    """One 1D-DCT lane: O(n^2) flops on an n-point row/column.

    Lanes have tiny buffers (large W) while the pass splitter/joiner
    stage the whole n x n block (small W); Try-Merge therefore refuses
    to pull lanes into the mover partitions — which is how the paper's
    DCT ends up with roughly 2n partitions.
    """
    return FilterSpec(
        name=f"{kind}{index}.dct1d",
        pop=n,
        push=n,
        work=4.0 * n * n,
        semantics="opaque",
    )


def _pass(kind: str, n: int):
    return splitjoin(
        roundrobin(*([n] * n)),
        [_lane(kind, i, n) for i in range(n)],
        join_roundrobin(*([n] * n)),
        name=f"{kind}pass",
    )


def build(n: int) -> StreamGraph:
    """2D DCT with block edge ``n`` (paper sweeps n = 2..30)."""
    if n < 2:
        raise ValueError("DCT block edge must be >= 2")
    block = n * n
    root = pipeline(
        source("src", block, work=block),
        _pass("row", n),
        FilterSpec(name="transpose", pop=block, push=block, work=1.0 * block,
                   semantics="shuffle"),
        _pass("col", n),
        FilterSpec(name="scale", pop=block, push=block, work=2.0 * block,
                   semantics="scale", params=(0.25,)),
        sink("snk", block, work=block),
        name="dct2d",
    )
    return flatten(root, f"dct-n{n}")
