"""Bitonic sorting networks (StreamIt benchmarks Bitonic / BitonicRec).

Both sort ``n`` keys with compare-exchange stages; both are memory-bound
(a comparator does ~3 ops per key it moves) and extremely splitter/joiner
rich — the motivating workloads for the Chapter V elimination.

``Bitonic`` is the iterative network: ``k(k+1)/2`` stages (k = log2 n),
each a split-join of comparator lanes.

``BitonicRec`` is the recursive formulation: sort(n) = two half sorts
inside a split-join followed by merge(n), with merge recursing the same
way — a deeper, nested split-join structure (even more movers per key).
"""

from __future__ import annotations

import math

from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import (
    Filt,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)

#: maximum comparator lanes per stage (grouping keeps node counts sane
#: while preserving the splitjoin-per-stage structure)
MAX_LANES = 4
#: independent sort instances batched per execution (vectorization)
BATCH = 8


def _stage(tag: str, n: int):
    lanes = min(MAX_LANES, max(1, n // 2))
    per_lane = BATCH * n // lanes
    lane_filters = [
        FilterSpec(
            name=f"{tag}.cmp{i}",
            pop=per_lane,
            push=per_lane,
            # well under one op per key moved (a compare-exchange is one
            # predicated min/max pair over two keys): comparators move far
            # more than they compute, which is what makes bitonic IO-bound
            # and lets phase 3 merge its stages into a handful of
            # partitions
            work=0.75 * per_lane,
            semantics="sort2",
        )
        for i in range(lanes)
    ]
    if lanes == 1:
        return Filt(lane_filters[0])
    return splitjoin(
        roundrobin(*([per_lane] * lanes)),
        lane_filters,
        join_roundrobin(*([per_lane] * lanes)),
        name=f"{tag}.sj",
    )


def build_bitonic(n: int) -> StreamGraph:
    """Iterative bitonic sort of ``n`` keys (paper sweeps n = 2..64)."""
    if n < 2 or n & (n - 1):
        raise ValueError("bitonic size must be a power of two >= 2")
    k = int(math.log2(n))
    stages = []
    for phase in range(1, k + 1):
        for depth in range(phase):
            stages.append(_stage(f"p{phase}d{depth}", n))
    root = pipeline(
        source("src", n, work=n),
        *stages,
        sink("snk", n, work=n),
        name="bitonic",
    )
    return flatten(root, f"bitonic-n{n}")


#: recursion cutoff: sizes at or below this become a single leaf filter
_LEAF = 8


def _merge(tag: str, n: int):
    head = _stage(f"{tag}.x", n)
    if n <= _LEAF:
        return head
    half = n // 2
    rec = splitjoin(
        roundrobin(half, half),
        [_merge(f"{tag}.lo", half), _merge(f"{tag}.hi", half)],
        join_roundrobin(half, half),
        name=f"{tag}.rec",
    )
    return pipeline(head, rec, name=f"{tag}.merge")


def _sort(tag: str, n: int):
    if n <= _LEAF:
        return Filt(
            FilterSpec(
                name=f"{tag}.leafsort", pop=n, push=n,
                work=0.75 * n * max(1, int(math.log2(max(n, 2)))),
                semantics="sort2",
            )
        )
    half = n // 2
    halves = splitjoin(
        roundrobin(half, half),
        [_sort(f"{tag}.asc", half), _sort(f"{tag}.desc", half)],
        join_roundrobin(half, half),
        name=f"{tag}.halves",
    )
    return pipeline(halves, _merge(tag, n), name=f"{tag}.sort")


def build_bitonic_rec(n: int) -> StreamGraph:
    """Recursive bitonic sort of ``n`` keys (paper sweeps n = 2..64)."""
    if n < 2 or n & (n - 1):
        raise ValueError("bitonic size must be a power of two >= 2")
    root = pipeline(
        source("src", n, work=n),
        _sort("s", n),
        sink("snk", n, work=n),
        name="bitonic-rec",
    )
    return flatten(root, f"bitonicrec-n{n}")
