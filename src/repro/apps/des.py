"""DES block cipher (StreamIt benchmark).

``n`` Feistel rounds over 64-bit blocks (one stream element = one bit
word here).  Each round splits the block into left/right halves, runs the
right half through expand -> key-xor -> S-boxes -> P-box, then crosses and
xors the halves.  S-boxes dominate the work: DES is firmly compute-bound,
and its rounds are deep pipelines — the best case for partition phase 1.
"""

from __future__ import annotations

from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import (
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)

#: streamed words per cipher block-batch; sized so one round's buffers are
#: a meaningful fraction of the 48 KB shared memory (a round partition
#: runs at W ~ 2 and merging two rounds would halve W — the force that
#: keeps compute-bound rounds in separate partitions, Section 4.0.3)
BLOCK = 512
HALF = BLOCK // 2
EXPANDED = 3 * BLOCK // 4


def _round(index: int):
    # Fine-grained (few-word) firings mirror StreamIt's bit-level DES:
    # firing rates range from 64 to 384, so the kernel-parameter search
    # has a real S knob and the paper's thread-sharing tension appears.
    right_path = pipeline(
        FilterSpec(
            name=f"r{index}.expand",
            pop=4,
            push=6,
            work=48.0,
            semantics="shuffle",
        ),
        FilterSpec(
            name=f"r{index}.keyxor",
            pop=2,
            push=2,
            work=24.0,
            semantics="xor_const",
            params=(0x3F ^ index,),
        ),
        FilterSpec(
            name=f"r{index}.sbox",
            pop=6,
            push=4,
            work=720.0,  # table lookups dominate DES
            semantics="opaque",
        ),
        FilterSpec(
            name=f"r{index}.pbox",
            pop=4,
            push=4,
            work=32.0,
            semantics="shuffle",
        ),
        name=f"r{index}.f",
    )
    left_path = FilterSpec(
        name=f"r{index}.left",
        pop=4,
        push=4,
        work=8.0,
        semantics="identity",
    )
    halves = splitjoin(
        roundrobin(HALF, HALF),
        [left_path, right_path],
        join_roundrobin(HALF, HALF),
        name=f"r{index}.halves",
    )
    crossxor = FilterSpec(
        name=f"r{index}.crossxor",
        pop=8,
        push=8,
        work=64.0,
        semantics="opaque",
    )
    return pipeline(halves, crossxor, name=f"r{index}")


def build(n: int) -> StreamGraph:
    """DES with ``n`` rounds (paper sweeps n = 4..32)."""
    if n < 1:
        raise ValueError("DES needs at least one round")
    stages = [source("src", BLOCK, work=BLOCK)]
    stages.append(
        FilterSpec(name="ip", pop=4, push=4, work=16.0, semantics="shuffle")
    )
    for index in range(n):
        stages.append(_round(index))
    stages.append(
        FilterSpec(name="fp", pop=4, push=4, work=16.0, semantics="shuffle")
    )
    stages.append(sink("snk", BLOCK, work=BLOCK))
    return flatten(pipeline(*stages, name="des"), f"des-n{n}")
