"""Blocked matrix multiplication (StreamIt benchmarks MatMul2 / MatMul3).

``MatMul2`` multiplies two matrices of ``n x n`` blocks: per execution the
source emits a block-row of A and a block-column of B, a round-robin
split-join fans block pairs out to ``n`` multiply lanes (O(b^3) flops per
block pair), and an accumulator reduces the partial products —
compute-bound.

``MatMul3`` chains a third factor: the intermediate product is streamed
through a second multiply layer.  It uses larger blocks with much lighter
per-element work (the StreamIt version re-reads operands instead of
caching them), so its communication-to-computation ratio is high —
memory-bound, the paper's hardest case (SOSP ratio < 1 against [7]).
"""

from __future__ import annotations

from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import join_roundrobin, pipeline, roundrobin, splitjoin

#: block edge for MatMul2 (block = BLOCK2^2 elements); sized so the
#: distribution splitter's window stays inside shared memory even at the
#: largest paper n (otherwise every mapping spills and degenerates)
BLOCK2 = 12
#: block edge for MatMul3 — same constraint, more lanes
BLOCK3 = 12


def _multiply_layer(tag: str, n: int, block_elems: int, work_per_lane: float):
    lanes = [
        FilterSpec(
            name=f"{tag}.mm{i}",
            pop=2 * block_elems,
            push=block_elems,
            work=work_per_lane,
            semantics="opaque",
        )
        for i in range(n)
    ]
    return splitjoin(
        roundrobin(*([2 * block_elems] * n)),
        lanes,
        join_roundrobin(*([block_elems] * n)),
        name=f"{tag}.layer",
    )


def build_matmul2(n: int) -> StreamGraph:
    """MatMul2 with ``n`` blocks per dimension (paper sweeps n = 2..9)."""
    if n < 1:
        raise ValueError("need at least one block")
    block = BLOCK2 * BLOCK2
    work = 2.0 * (BLOCK2 ** 3) * n  # n block-pair MACs per lane
    root = pipeline(
        source("src", 2 * block * n, work=block),
        _multiply_layer("l1", n, block, work),
        FilterSpec(
            name="accum", pop=block * n, push=block * n, work=2.0 * block * n,
            semantics="opaque",
        ),
        sink("snk", block * n, work=block),
        name="matmul2",
    )
    return flatten(root, f"matmul2-n{n}")


def build_matmul3(n: int) -> StreamGraph:
    """MatMul3 with ``n`` blocks per dimension (paper sweeps n = 1..7)."""
    if n < 1:
        raise ValueError("need at least one block")
    block = BLOCK3 * BLOCK3
    # light per-lane work relative to the 2*block elements each lane moves
    work = 3.0 * block
    root = pipeline(
        source("src", 2 * block * n, work=block),
        _multiply_layer("ab", n, block, work),
        FilterSpec(
            name="stage", pop=block * n, push=2 * block * n,
            work=1.0 * block * n, semantics="opaque",
        ),
        _multiply_layer("abc", n, block, work),
        FilterSpec(
            name="accum", pop=block * n, push=block * n, work=1.0 * block * n,
            semantics="opaque",
        ),
        sink("snk", block * n, work=block),
        name="matmul3",
    )
    return flatten(root, f"matmul3-n{n}")
