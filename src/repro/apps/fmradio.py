"""FM radio with an ``n``-band equalizer (StreamIt benchmark).

A sliding-window low-pass front end and demodulator feed an equalizer
that fans out to ``n`` band-pass branches (each a peeking FIR plus gain),
joined and summed.  FIR taps make it compute-bound; the peeking windows
exercise the buffer model's history carry.
"""

from __future__ import annotations

from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import duplicate, join_roundrobin, pipeline, splitjoin

TAPS = 64
#: samples per steady-state execution: filters fire SAMPLES times per
#: execution (exercising the S knob); the n-wide equalizer splitter
#: stages n*SAMPLES samples, so its W is far below the bands' — which is
#: what keeps bands in their own partitions (paper: ~45 partitions at
#: n = 28).
SAMPLES = 64


#: front-end decimation: the low-pass filter keeps 1 of 4 samples, as in
#: the StreamIt original — downstream traffic shrinks 4x
DECIMATION = 4


def _band(index: int):
    return pipeline(
        FilterSpec(
            name=f"band{index}.bpf",
            pop=1,
            push=1,
            peek=4 * TAPS,
            # a band-pass section is two FIRs (low + high cutoff) of
            # 2*TAPS taps each: heavy per-sample arithmetic is what lets
            # the duplicated equalizer input amortize across GPUs
            work=2.0 * 2 * (2 * TAPS),
            semantics="opaque",
        ),
        FilterSpec(
            name=f"band{index}.gain",
            pop=1,
            push=1,
            work=8.0,
            semantics="scale",
            params=(1.0 + index * 0.1,),
        ),
        name=f"band{index}",
    )


def build(n: int) -> StreamGraph:
    """FMRadio with ``n`` equalizer bands (paper sweeps n = 4..32)."""
    if n < 1:
        raise ValueError("FMRadio needs at least one band")
    equalizer = splitjoin(
        duplicate(1, n),
        [_band(i) for i in range(n)],
        join_roundrobin(*([1] * n)),
        name="equalizer",
    )
    root = pipeline(
        source("src", SAMPLES * DECIMATION, work=SAMPLES * DECIMATION),
        FilterSpec(
            name="lowpass", pop=DECIMATION, push=1, peek=TAPS,
            work=2.0 * TAPS, semantics="dot",
        ),
        FilterSpec(name="demod", pop=1, push=1, peek=2, work=48.0,
                   semantics="opaque"),
        equalizer,
        FilterSpec(name="sum", pop=n, push=1, work=2.0 * n, semantics="dot"),
        sink("snk", 1, work=1.0),
        name="fmradio",
    )
    return flatten(root, f"fmradio-n{n}")
