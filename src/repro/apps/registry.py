"""Catalogue of the benchmark applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.apps import bitonic, dct, des, fft, fmradio, matmul
from repro.graph.stream_graph import StreamGraph


@dataclass(frozen=True)
class AppInfo:
    """Benchmark metadata.

    ``paper_n`` are the N values on the x-axis of Figure 4.2;
    ``compute_bound`` is the paper's classification (kernel count ratio
    >= 3 vs <= 1.5); ``in_fig43`` marks the five apps whose multi-GPU
    numbers [7] reports, used for the Figure 4.3 comparison.
    """

    name: str
    build: Callable[[int], StreamGraph]
    paper_n: Tuple[int, ...]
    compute_bound: bool
    in_fig43: bool
    description: str


APPS: Dict[str, AppInfo] = {
    "DES": AppInfo(
        name="DES",
        build=des.build,
        paper_n=(4, 8, 12, 16, 20, 24, 28, 32),
        compute_bound=True,
        in_fig43=True,
        description="DES cipher, N rounds",
    ),
    "FMRadio": AppInfo(
        name="FMRadio",
        build=fmradio.build,
        paper_n=(4, 8, 12, 16, 20, 24, 28, 32),
        compute_bound=True,
        in_fig43=False,
        description="FM radio with N-band equalizer",
    ),
    "FFT": AppInfo(
        name="FFT",
        build=fft.build,
        paper_n=(8, 16, 32, 64, 128, 256, 512, 1024),
        compute_bound=True,
        in_fig43=True,
        description="size-N fast Fourier transform",
    ),
    "DCT": AppInfo(
        name="DCT",
        build=dct.build,
        paper_n=(2, 6, 10, 14, 18, 22, 26, 30),
        compute_bound=True,
        in_fig43=True,
        description="2D discrete cosine transform on NxN blocks",
    ),
    "MatMul2": AppInfo(
        name="MatMul2",
        build=matmul.build_matmul2,
        paper_n=(2, 3, 4, 5, 6, 7, 8, 9),
        compute_bound=True,
        in_fig43=False,
        description="two-matrix blocked multiplication",
    ),
    "MatMul3": AppInfo(
        name="MatMul3",
        build=matmul.build_matmul3,
        paper_n=(1, 2, 3, 4, 5, 6, 7),
        compute_bound=False,
        in_fig43=True,
        description="three-matrix blocked multiplication",
    ),
    "BitonicRec": AppInfo(
        name="BitonicRec",
        build=bitonic.build_bitonic_rec,
        paper_n=(2, 4, 8, 16, 32, 64),
        compute_bound=False,
        in_fig43=False,
        description="recursive bitonic sort of N keys",
    ),
    "Bitonic": AppInfo(
        name="Bitonic",
        build=bitonic.build_bitonic,
        paper_n=(2, 4, 8, 16, 32, 64),
        compute_bound=False,
        in_fig43=True,
        description="iterative bitonic sort of N keys",
    ),
}

#: Figure 4.2 presents apps in decreasing kernel-count-ratio order.
FIG42_ORDER = (
    "DES", "FMRadio", "FFT", "DCT", "MatMul2", "MatMul3", "BitonicRec",
    "Bitonic",
)

#: The five applications reported in [7], hence in Figure 4.3.
FIG43_APPS = ("DES", "DCT", "FFT", "MatMul3", "Bitonic")


def is_known_app(name: str) -> bool:
    """Whether ``name`` resolves to a bundled or synthetic app.

    >>> is_known_app("DES"), is_known_app("synth:pipeline"), is_known_app("Nope")
    (True, True, False)
    """
    if name in APPS:
        return True
    if name.startswith("synth:"):
        from repro.synth import SynthError, SynthSpec, parse_app_name

        try:
            family, overrides = parse_app_name(name)
            # validates the family, every parameter name, and the
            # parameter floors up front (build_app can still reject an
            # *extreme* parameter combination whose steady state blows
            # the generator's firing guard — that check needs the seed)
            SynthSpec.make(family, 0, overrides or None)
        except SynthError:
            return False
        return True
    return False


def build_app(name: str, n: int) -> StreamGraph:
    """Build benchmark ``name`` at size ``n``.

    ``synth:<family>[;key=value...]`` names route to the synthetic
    generator (:mod:`repro.synth`) with ``n`` as the seed, so sweep
    points and CLI cases address generated corpora exactly like the
    bundled benchmarks.

    >>> graph = build_app("DES", 4)
    >>> graph.name, len(graph.nodes) > 10
    ('des-n4', True)
    >>> build_app("synth:pipeline", 7).name
    'synth-pipeline-s7'
    >>> build_app("NoSuchApp", 1)
    Traceback (most recent call last):
    ...
    KeyError: "unknown app 'NoSuchApp'; known: Bitonic, BitonicRec, DCT, DES, FFT, FMRadio, MatMul2, MatMul3"
    """
    if name.startswith("synth:"):
        from repro.synth import build_synth_app

        return build_synth_app(name, n)
    try:
        info = APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; known: {', '.join(sorted(APPS))}"
        ) from None
    return info.build(n)


def paper_n_values(name: str) -> Tuple[int, ...]:
    """The Figure 4.2 x-axis values for ``name``."""
    return APPS[name].paper_n
