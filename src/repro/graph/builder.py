"""Small DSL for building stream graphs programmatically.

The benchmark generators in :mod:`repro.apps` and user code build graphs
through this module; it re-exports the structure constructors plus a
``GraphBuilder`` for ad-hoc flat graphs (used heavily in tests).
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.scheduling import solve_repetition_vector
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)

__all__ = [
    "FilterSpec",
    "FilterRole",
    "GraphBuilder",
    "duplicate",
    "join_roundrobin",
    "linear_pipeline_graph",
    "pipeline",
    "roundrobin",
    "sink",
    "source",
    "splitjoin",
]


class GraphBuilder:
    """Imperative builder for flat stream graphs.

    Example
    -------
    >>> b = GraphBuilder("tiny")
    >>> s = b.filter("src", pop=0, push=4, role=FilterRole.SOURCE)
    >>> f = b.filter("work", pop=4, push=4, work=10.0)
    >>> t = b.filter("snk", pop=4, push=0, role=FilterRole.SINK)
    >>> b.connect(s, f)
    >>> b.connect(f, t)
    >>> g = b.build()
    >>> [n.firing for n in g.nodes]
    [1, 1, 1]
    """

    def __init__(self, name: str, elem_bytes: int = 4) -> None:
        self.graph = StreamGraph(name, elem_bytes=elem_bytes)

    def filter(
        self,
        name: str,
        pop: int,
        push: int,
        peek: int = 0,
        work: float = 1.0,
        role: FilterRole = FilterRole.COMPUTE,
        semantics: str = "opaque",
        params: tuple = (),
        stateful: bool = False,
    ) -> int:
        """Add a filter node; returns its node id."""
        spec = FilterSpec(
            name=name,
            pop=pop,
            push=push,
            peek=peek,
            work=work,
            role=role,
            semantics=semantics,
            params=params,
            stateful=stateful,
        )
        return self.graph.add_node(spec).node_id

    def connect(
        self,
        src: int,
        dst: int,
        src_push: Optional[int] = None,
        dst_pop: Optional[int] = None,
        dst_peek: Optional[int] = None,
        delay: int = 0,
    ) -> None:
        """Connect two nodes; rates/peek default to the specs' values."""
        push = src_push if src_push is not None else self.graph.nodes[src].spec.push
        pop = dst_pop if dst_pop is not None else self.graph.nodes[dst].spec.pop
        if dst_peek is None:
            declared = self.graph.nodes[dst].spec.peek
            dst_peek = declared if declared > pop else 0
        self.graph.add_channel(src, dst, push, pop, dst_peek, delay)

    def mark_pipeline(self, node_ids: List[int]) -> None:
        """Record an innermost-pipeline segment (phase-1 input)."""
        seg_id = len(self.graph.pipelines)
        self.graph.pipelines.append(list(node_ids))
        for nid in node_ids:
            self.graph.nodes[nid].pipeline_id = seg_id

    def build(self, solve_rates: bool = True) -> StreamGraph:
        """Finish the graph (solves the repetition vector by default)."""
        if solve_rates:
            solve_repetition_vector(self.graph)
        return self.graph


def linear_pipeline_graph(
    name: str,
    stages: int,
    rate: int = 16,
    work: float = 8.0,
    mark_segment: bool = True,
) -> StreamGraph:
    """A source -> N compute stages -> sink chain (testing workhorse)."""
    builder = GraphBuilder(name)
    src = builder.filter(
        "src", pop=0, push=rate, role=FilterRole.SOURCE, semantics="source"
    )
    prev = src
    stage_ids = []
    for i in range(stages):
        nid = builder.filter(f"stage{i}", pop=rate, push=rate, work=work)
        builder.connect(prev, nid)
        stage_ids.append(nid)
        prev = nid
    snk = builder.filter("snk", pop=rate, push=0, role=FilterRole.SINK, semantics="sink")
    builder.connect(prev, snk)
    if mark_segment and len(stage_ids) >= 2:
        builder.mark_pipeline(stage_ids)
    return builder.build()
