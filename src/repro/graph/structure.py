"""Hierarchical stream-graph composition operators.

StreamIt composes programs from three operators (Section 2.1.1 of the
paper): *pipeline* (sequential composition), *split-join* (fan-out /
fan-in), and *feedback loop*.  This module defines the corresponding
declaration tree; :mod:`repro.graph.flatten` lowers the tree into a flat
:class:`~repro.graph.stream_graph.StreamGraph`.

Every structure node knows its external ``pop``/``push`` signature so that
rate errors are caught at construction time rather than during steady-state
scheduling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from repro.graph.filters import FilterSpec


class SplitKind(enum.Enum):
    """Splitter flavour of a split-join."""

    DUPLICATE = "duplicate"
    ROUNDROBIN = "roundrobin"


@dataclass(frozen=True)
class SplitSpec:
    """Splitter declaration.

    ``DUPLICATE`` copies each consumed window to all branches; weights give
    the elements delivered to each branch per firing (they must be equal
    for duplicate splitters).  ``ROUNDROBIN`` deals ``weights[i]`` elements
    to branch ``i`` in order.
    """

    kind: SplitKind
    weights: tuple

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("splitter needs at least one branch weight")
        if any(w <= 0 for w in self.weights):
            raise ValueError("splitter weights must be positive")
        if self.kind is SplitKind.DUPLICATE and len(set(self.weights)) != 1:
            raise ValueError("duplicate splitter weights must be identical")

    @property
    def pop_per_firing(self) -> int:
        """Elements the splitter consumes per firing."""
        if self.kind is SplitKind.DUPLICATE:
            return self.weights[0]
        return sum(self.weights)

    def push_to(self, branch: int) -> int:
        """Elements pushed to ``branch`` per firing."""
        return self.weights[branch]


@dataclass(frozen=True)
class JoinSpec:
    """Round-robin joiner declaration: collects ``weights[i]`` elements from
    branch ``i`` per firing and emits them in branch order."""

    weights: tuple

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("joiner needs at least one branch weight")
        if any(w <= 0 for w in self.weights):
            raise ValueError("joiner weights must be positive")

    @property
    def push_per_firing(self) -> int:
        """Elements the joiner produces per firing."""
        return sum(self.weights)

    def pop_from(self, branch: int) -> int:
        """Elements popped from ``branch`` per firing."""
        return self.weights[branch]


def duplicate(weight: int, branches: int) -> SplitSpec:
    """Duplicate splitter delivering ``weight`` elements to each of
    ``branches`` branches per firing."""
    return SplitSpec(SplitKind.DUPLICATE, tuple([weight] * branches))


def roundrobin(*weights: int) -> SplitSpec:
    """Round-robin splitter with the given per-branch weights."""
    return SplitSpec(SplitKind.ROUNDROBIN, tuple(weights))


def join_roundrobin(*weights: int) -> JoinSpec:
    """Round-robin joiner with the given per-branch weights."""
    return JoinSpec(tuple(weights))


@dataclass(frozen=True)
class Filt:
    """Leaf of the structure tree: a single filter instance."""

    spec: FilterSpec

    @property
    def pop_rate(self) -> int:
        return self.spec.pop

    @property
    def push_rate(self) -> int:
        return self.spec.push

    def __iter__(self) -> Iterator["StreamNode"]:
        return iter(())


@dataclass(frozen=True)
class Pipeline:
    """Sequential composition of stream nodes."""

    children: tuple
    name: str = "pipeline"

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("pipeline must have at least one child")

    @property
    def pop_rate(self) -> int:
        return self.children[0].pop_rate

    @property
    def push_rate(self) -> int:
        return self.children[-1].push_rate

    def __iter__(self) -> Iterator["StreamNode"]:
        return iter(self.children)


@dataclass(frozen=True)
class SplitJoin:
    """Fan-out/fan-in composition: splitter, parallel branches, joiner."""

    split: SplitSpec
    branches: tuple
    join: JoinSpec
    name: str = "splitjoin"

    def __post_init__(self) -> None:
        if not self.branches:
            raise ValueError("split-join must have at least one branch")
        if len(self.branches) != len(self.split.weights):
            raise ValueError(
                f"{self.name}: {len(self.branches)} branches but "
                f"{len(self.split.weights)} splitter weights"
            )
        if len(self.branches) != len(self.join.weights):
            raise ValueError(
                f"{self.name}: {len(self.branches)} branches but "
                f"{len(self.join.weights)} joiner weights"
            )

    @property
    def pop_rate(self) -> int:
        return self.split.pop_per_firing

    @property
    def push_rate(self) -> int:
        return self.join.push_per_firing

    def __iter__(self) -> Iterator["StreamNode"]:
        return iter(self.branches)


@dataclass(frozen=True)
class FeedbackLoop:
    """Cyclic composition: ``body`` output feeds both downstream and, via
    ``loopback``, back into the joiner that precedes the body.

    ``delay`` initial elements pre-populate the loopback channel so the
    steady state is well defined.
    """

    body: "StreamNode"
    loopback: "StreamNode"
    join: JoinSpec
    split: SplitSpec
    delay: int = 0
    name: str = "feedbackloop"

    def __post_init__(self) -> None:
        if len(self.join.weights) != 2 or len(self.split.weights) != 2:
            raise ValueError(f"{self.name}: feedback join/split must be binary")
        if self.delay < 0:
            raise ValueError(f"{self.name}: delay must be non-negative")

    @property
    def pop_rate(self) -> int:
        return self.join.pop_from(0)

    @property
    def push_rate(self) -> int:
        return self.split.push_to(0)

    def __iter__(self) -> Iterator["StreamNode"]:
        return iter((self.body, self.loopback))


StreamNode = Union[Filt, Pipeline, SplitJoin, FeedbackLoop]


def pipeline(*children: StreamNode, name: str = "pipeline") -> Pipeline:
    """Convenience constructor accepting varargs children.

    Bare :class:`~repro.graph.filters.FilterSpec` values are wrapped in
    :class:`Filt` automatically.
    """
    return Pipeline(tuple(_wrap(c) for c in children), name=name)


def splitjoin(
    split: SplitSpec,
    branches: Sequence[StreamNode],
    join: JoinSpec,
    name: str = "splitjoin",
) -> SplitJoin:
    """Convenience constructor wrapping bare filter specs in branches."""
    return SplitJoin(split, tuple(_wrap(b) for b in branches), join, name=name)


def _wrap(node) -> StreamNode:
    if isinstance(node, FilterSpec):
        return Filt(node)
    return node


def count_filters(node: StreamNode) -> int:
    """Number of leaf filters in a structure tree (splitters/joiners of
    split-joins are not counted; they materialize during flattening)."""
    if isinstance(node, Filt):
        return 1
    return sum(count_filters(child) for child in node)
