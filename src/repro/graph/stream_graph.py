"""Flat stream graph: the IR consumed by the mapping flow.

A :class:`StreamGraph` is a directed graph whose nodes are filter instances
(:class:`FilterNode`) and whose edges are FIFO channels (:class:`Channel`)
annotated with per-firing production/consumption rates.  After steady-state
scheduling each node carries its *firing rate* (repetition count per graph
execution) and each channel its buffer size in elements/bytes — exactly the
annotation the paper's Figure 3.1 flow expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.filters import FilterRole, FilterSpec

#: Size of one stream element in bytes (32-bit words, as in StreamIt's
#: float/int streams).
ELEM_BYTES = 4


@dataclass
class FilterNode:
    """A filter instance in the flat graph.

    Attributes
    ----------
    node_id:
        Dense integer id, index into :attr:`StreamGraph.nodes`.
    spec:
        The immutable filter declaration.
    firing:
        Firing rate (repetitions per steady-state graph execution); filled
        by :func:`repro.graph.scheduling.solve_repetition_vector`.
    pipeline_id:
        Id of the innermost pipeline segment this node belongs to, or
        ``None``.  Phase 1 of the partitioning heuristic iterates these
        segments.
    """

    node_id: int
    spec: FilterSpec
    firing: int = 0
    pipeline_id: Optional[int] = None
    #: extension metadata (e.g. the ``interleave`` pattern a consumer
    #: uses after joiner elimination); absent from equality semantics
    meta: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def role(self) -> FilterRole:
        return self.spec.role

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FilterNode({self.node_id}, {self.spec.name!r}, f={self.firing})"


@dataclass
class Channel:
    """A FIFO channel between two filters.

    ``src_push`` elements enter per source firing; ``dst_pop`` elements
    leave per destination firing (``dst_peek >= dst_pop`` for sliding
    windows).  ``delay`` elements pre-populate the channel (feedback
    loops).

    ``alias_group`` marks channels that share one physical shared-memory
    buffer after the Chapter V splitter/joiner elimination: consumers read
    slices of the producer's output block instead of private copies, so
    the memory model charges the group once.  ``slice_*`` describe the
    strided view a consumer gets of the producer's output after a
    round-robin splitter was eliminated: of every ``slice_period``
    produced elements, the channel carries ``slice_width`` starting at
    ``slice_offset``.
    """

    src: int
    dst: int
    src_push: int
    dst_pop: int
    dst_peek: int = 0
    delay: int = 0
    alias_group: Optional[int] = None
    slice_offset: int = 0
    slice_period: int = 0
    slice_width: int = 0

    def __post_init__(self) -> None:
        if self.src_push <= 0 or self.dst_pop <= 0:
            raise ValueError("channel rates must be positive")
        if self.dst_peek and self.dst_peek < self.dst_pop:
            raise ValueError("channel peek < pop")

    @property
    def effective_peek(self) -> int:
        return self.dst_peek if self.dst_peek else self.dst_pop


class StreamGraph:
    """Flat, rate-annotated stream graph.

    The graph owns its nodes and channels and provides the structural
    queries used throughout the flow: topological order, reachability,
    per-steady-state buffer sizes, and primary I/O volumes.
    """

    def __init__(self, name: str, elem_bytes: int = ELEM_BYTES) -> None:
        self.name = name
        self.elem_bytes = elem_bytes
        self.nodes: List[FilterNode] = []
        self.channels: List[Channel] = []
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        #: innermost pipeline segments (ordered node-id lists), phase-1 input
        self.pipelines: List[List[int]] = []
        self._topo_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, spec: FilterSpec) -> FilterNode:
        """Append a filter node and return it."""
        node = FilterNode(node_id=len(self.nodes), spec=spec)
        self.nodes.append(node)
        self._succ[node.node_id] = []
        self._pred[node.node_id] = []
        self._topo_cache = None
        return node

    def add_channel(
        self,
        src: int,
        dst: int,
        src_push: int,
        dst_pop: int,
        dst_peek: int = 0,
        delay: int = 0,
    ) -> Channel:
        """Append a channel ``src -> dst`` and return it."""
        if not (0 <= src < len(self.nodes)) or not (0 <= dst < len(self.nodes)):
            raise ValueError(f"channel endpoints out of range: {src}->{dst}")
        channel = Channel(src, dst, src_push, dst_pop, dst_peek, delay)
        self.channels.append(channel)
        self._succ[src].append(len(self.channels) - 1)
        self._pred[dst].append(len(self.channels) - 1)
        self._topo_cache = None
        return channel

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def out_channels(self, node_id: int) -> List[Channel]:
        """Channels leaving ``node_id``."""
        return [self.channels[i] for i in self._succ[node_id]]

    def in_channels(self, node_id: int) -> List[Channel]:
        """Channels entering ``node_id``."""
        return [self.channels[i] for i in self._pred[node_id]]

    def successors(self, node_id: int) -> List[int]:
        """Distinct successor node ids."""
        seen, out = set(), []
        for ch in self.out_channels(node_id):
            if ch.dst not in seen:
                seen.add(ch.dst)
                out.append(ch.dst)
        return out

    def predecessors(self, node_id: int) -> List[int]:
        """Distinct predecessor node ids."""
        seen, out = set(), []
        for ch in self.in_channels(node_id):
            if ch.src not in seen:
                seen.add(ch.src)
                out.append(ch.src)
        return out

    def neighbors(self, node_id: int) -> List[int]:
        """Union of predecessors and successors."""
        out = self.predecessors(node_id)
        seen = set(out)
        for succ in self.successors(node_id):
            if succ not in seen:
                out.append(succ)
        return out

    def sources(self) -> List[int]:
        """Nodes with no incoming channels (primary inputs)."""
        return [n.node_id for n in self.nodes if not self._pred[n.node_id]]

    def sinks(self) -> List[int]:
        """Nodes with no outgoing channels (primary outputs)."""
        return [n.node_id for n in self.nodes if not self._succ[n.node_id]]

    def topological_order(self) -> List[int]:
        """Topological order of node ids (Kahn); raises on cycles.

        Feedback-loop back edges (``delay > 0``) are ignored for ordering,
        mirroring how an SDF schedule breaks delay edges.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg = {n.node_id: 0 for n in self.nodes}
        for ch in self.channels:
            if ch.delay == 0:
                indeg[ch.dst] += 1
        ready = sorted(nid for nid, d in indeg.items() if d == 0)
        order: List[int] = []
        queue = list(ready)
        while queue:
            nid = queue.pop(0)
            order.append(nid)
            for ci in self._succ[nid]:
                ch = self.channels[ci]
                if ch.delay:
                    continue
                indeg[ch.dst] -= 1
                if indeg[ch.dst] == 0:
                    queue.append(ch.dst)
        if len(order) != len(self.nodes):
            raise ValueError(
                f"{self.name}: graph has a cycle not broken by delay edges"
            )
        self._topo_cache = order
        return list(order)

    def is_dag(self) -> bool:
        """Whether the graph (ignoring delay edges) is acyclic."""
        try:
            self.topological_order()
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------
    # steady-state quantities (valid once firings are set)
    # ------------------------------------------------------------------
    def channel_elems(self, channel: Channel) -> int:
        """Buffer elements ``channel`` needs per steady-state execution.

        This is the data produced per execution plus the sliding-window
        history a peeking consumer keeps alive across executions.
        """
        firing = self.nodes[channel.src].firing
        if firing <= 0:
            raise ValueError("firing rates not solved yet")
        window_carry = max(0, channel.effective_peek - channel.dst_pop)
        return firing * channel.src_push + window_carry

    def channel_traffic_elems(self, channel: Channel) -> int:
        """Elements *communicated* through ``channel`` per execution
        (excludes the resident peek window, which never moves)."""
        firing = self.nodes[channel.src].firing
        if firing <= 0:
            raise ValueError("firing rates not solved yet")
        return firing * channel.src_push

    def channel_bytes(self, channel: Channel) -> int:
        """Buffer bytes ``channel`` needs per steady-state execution."""
        return self.channel_elems(channel) * self.elem_bytes

    def channel_traffic_bytes(self, channel: Channel) -> int:
        """Bytes communicated through ``channel`` per execution."""
        return self.channel_traffic_elems(channel) * self.elem_bytes

    def primary_input_elems(self, node_id: int) -> int:
        """Primary-input elements consumed by ``node_id`` per execution
        (non-zero only for nodes with no predecessors that still pop)."""
        node = self.nodes[node_id]
        if self._pred[node_id]:
            return 0
        if node.spec.role is FilterRole.SOURCE:
            # Sources synthesize `push` elements per firing from the host
            # input stream: the host feeds them what they emit.
            return node.firing * node.spec.push
        return node.firing * node.spec.pop

    def primary_output_elems(self, node_id: int) -> int:
        """Primary-output elements produced by ``node_id`` per execution."""
        node = self.nodes[node_id]
        if self._succ[node_id]:
            return 0
        if node.spec.role is FilterRole.SINK:
            return node.firing * node.spec.pop
        return node.firing * node.spec.push

    def io_elems(self, node_ids: Optional[Iterable[int]] = None) -> Tuple[int, int]:
        """(input, output) element volume per execution for a node set.

        Counts channels crossing the boundary of the set plus primary
        I/O of member nodes.  With ``node_ids=None`` the whole graph is
        used, so only primary I/O counts.
        """
        members: Set[int] = (
            set(node_ids) if node_ids is not None else {n.node_id for n in self.nodes}
        )
        inp = out = 0
        for ch in self.channels:
            if ch.dst in members and ch.src not in members:
                inp += self.channel_traffic_elems(ch)
            elif ch.src in members and ch.dst not in members:
                out += self.channel_traffic_elems(ch)
        for nid in members:
            inp += self.primary_input_elems(nid)
            out += self.primary_output_elems(nid)
        return inp, out

    def total_work(self, node_ids: Optional[Iterable[int]] = None) -> float:
        """Abstract work per execution (Σ firing · work) for a node set."""
        members = set(node_ids) if node_ids is not None else None
        total = 0.0
        for node in self.nodes:
            if members is None or node.node_id in members:
                total += node.firing * node.spec.work
        return total

    # ------------------------------------------------------------------
    # reachability (used by convexity checks)
    # ------------------------------------------------------------------
    def reachable_from(self, node_ids: Iterable[int]) -> Set[int]:
        """All nodes reachable from the set (including the set)."""
        seen = set(node_ids)
        stack = list(seen)
        while stack:
            nid = stack.pop()
            for succ in self.successors(nid):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reaching(self, node_ids: Iterable[int]) -> Set[int]:
        """All nodes that can reach the set (including the set)."""
        seen = set(node_ids)
        stack = list(seen)
        while stack:
            nid = stack.pop()
            for pred in self.predecessors(nid):
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return seen

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def node_by_name(self, name: str) -> FilterNode:
        """First node whose spec has the given name (testing aid)."""
        for node in self.nodes:
            if node.spec.name == name:
                return node
        raise KeyError(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamGraph({self.name!r}, nodes={len(self.nodes)}, "
            f"channels={len(self.channels)})"
        )


def induced_channels(graph: StreamGraph, members: Sequence[int]) -> List[Channel]:
    """Channels with both endpoints inside ``members``."""
    mset = set(members)
    return [ch for ch in graph.channels if ch.src in mset and ch.dst in mset]
