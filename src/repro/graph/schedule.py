"""Steady-state schedule utilities.

SDF graphs admit a *single-appearance schedule*: each filter appears once,
annotated with its repetition count, in topological order.  The generated
kernels execute exactly this schedule per execution (compute threads walk
the filters in order), so the schedule string doubles as a readable
summary of what a partition's kernel does.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.graph.stream_graph import StreamGraph


def steady_state_schedule(
    graph: StreamGraph, members: Optional[Iterable[int]] = None
) -> List[Tuple[str, int]]:
    """(filter name, firings) in execution order for a node set."""
    mset = (
        set(members) if members is not None else {n.node_id for n in graph.nodes}
    )
    out: List[Tuple[str, int]] = []
    for nid in graph.topological_order():
        if nid in mset:
            node = graph.nodes[nid]
            out.append((node.spec.name, node.firing))
    return out


def schedule_string(
    graph: StreamGraph, members: Optional[Iterable[int]] = None
) -> str:
    """Human-readable single-appearance schedule, e.g. ``src 3(f0) 2(f1)``."""
    parts = []
    for name, firings in steady_state_schedule(graph, members):
        parts.append(name if firings == 1 else f"{firings}({name})")
    return " ".join(parts)


def executions_for_elements(graph: StreamGraph, elements: int) -> int:
    """Steady-state executions needed to consume ``elements`` primary
    inputs (rounded up)."""
    inp, _ = graph.io_elems()
    if inp <= 0:
        raise ValueError("graph consumes no primary input")
    return -(-elements // inp)
