"""JSON serialization of stream graphs.

Lets graphs travel between tools (the CLI, external front ends, saved
benchmark instances).  The format is a direct transcription of the flat
IR: filters with their specs, channels with their rates, pipeline
segments, and (optionally) the solved firing rates.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.scheduling import solve_repetition_vector
from repro.graph.stream_graph import StreamGraph

FORMAT_VERSION = 1


def graph_to_dict(graph: StreamGraph) -> Dict[str, Any]:
    """Serialize a stream graph to plain data."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "elem_bytes": graph.elem_bytes,
        "nodes": [
            {
                "name": node.spec.name,
                "pop": node.spec.pop,
                "push": node.spec.push,
                "peek": node.spec.peek,
                "work": node.spec.work,
                "role": node.spec.role.value,
                "semantics": node.spec.semantics,
                "params": list(node.spec.params),
                "stateful": node.spec.stateful,
                "firing": node.firing,
                "pipeline_id": node.pipeline_id,
            }
            for node in graph.nodes
        ],
        "channels": [
            {
                "src": ch.src,
                "dst": ch.dst,
                "src_push": ch.src_push,
                "dst_pop": ch.dst_pop,
                "dst_peek": ch.dst_peek,
                "delay": ch.delay,
                "alias_group": ch.alias_group,
                "slice": [ch.slice_offset, ch.slice_period, ch.slice_width],
            }
            for ch in graph.channels
        ],
        "pipelines": [list(seg) for seg in graph.pipelines],
    }


def graph_from_dict(data: Dict[str, Any]) -> StreamGraph:
    """Deserialize a stream graph; re-solves firing rates if absent."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported stream-graph format version {version!r}")
    graph = StreamGraph(data["name"], elem_bytes=data.get("elem_bytes", 4))
    for entry in data["nodes"]:
        spec = FilterSpec(
            name=entry["name"],
            pop=entry["pop"],
            push=entry["push"],
            peek=entry.get("peek", 0),
            work=entry.get("work", 1.0),
            role=FilterRole(entry.get("role", "compute")),
            semantics=entry.get("semantics", "opaque"),
            params=tuple(entry.get("params", ())),
            stateful=entry.get("stateful", False),
        )
        node = graph.add_node(spec)
        node.firing = entry.get("firing", 0)
        node.pipeline_id = entry.get("pipeline_id")
    for entry in data["channels"]:
        channel = graph.add_channel(
            entry["src"],
            entry["dst"],
            entry["src_push"],
            entry["dst_pop"],
            entry.get("dst_peek", 0),
            entry.get("delay", 0),
        )
        channel.alias_group = entry.get("alias_group")
        offset, period, width = entry.get("slice", [0, 0, 0])
        channel.slice_offset = offset
        channel.slice_period = period
        channel.slice_width = width
    graph.pipelines = [list(seg) for seg in data.get("pipelines", [])]
    for seg_id, seg in enumerate(graph.pipelines):
        for nid in seg:
            graph.nodes[nid].pipeline_id = seg_id
    if any(node.firing <= 0 for node in graph.nodes):
        solve_repetition_vector(graph)
    return graph


def dumps(graph: StreamGraph, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> StreamGraph:
    """Deserialize from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: StreamGraph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as fh:
        fh.write(dumps(graph))


def load(path: str) -> StreamGraph:
    """Read a graph from a JSON file."""
    with open(path) as fh:
        return loads(fh.read())
