"""NetworkX interoperability.

Exports flat stream graphs (and partition quotients) as
:class:`networkx.MultiDiGraph` / :class:`networkx.DiGraph` so users can
apply the wider graph-algorithm ecosystem — and so the test suite can
cross-check our hand-rolled reachability/convexity against an independent
implementation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

import networkx as nx

from repro.graph.stream_graph import StreamGraph
from repro.partition.pdg import PartitionDependenceGraph


def to_networkx(graph: StreamGraph) -> "nx.MultiDiGraph":
    """Flat stream graph -> MultiDiGraph with spec attributes.

    Nodes carry ``name``, ``role``, ``work`` and ``firing``; edges carry
    the rates, ``delay`` and per-execution ``traffic_bytes``.
    """
    out = nx.MultiDiGraph(name=graph.name, elem_bytes=graph.elem_bytes)
    for node in graph.nodes:
        out.add_node(
            node.node_id,
            name=node.spec.name,
            role=node.spec.role.value,
            work=node.spec.work,
            firing=node.firing,
        )
    for ch in graph.channels:
        out.add_edge(
            ch.src,
            ch.dst,
            src_push=ch.src_push,
            dst_pop=ch.dst_pop,
            delay=ch.delay,
            traffic_bytes=graph.channel_traffic_bytes(ch)
            if graph.nodes[ch.src].firing
            else None,
        )
    return out


def forward_dag(graph: StreamGraph) -> "nx.DiGraph":
    """The delay-free dependence DAG (what orders the pipeline)."""
    out = nx.DiGraph(name=graph.name)
    out.add_nodes_from(node.node_id for node in graph.nodes)
    for ch in graph.channels:
        if ch.delay == 0:
            out.add_edge(ch.src, ch.dst)
    return out


def pdg_to_networkx(pdg: PartitionDependenceGraph) -> "nx.DiGraph":
    """Partition dependence graph -> DiGraph with fragment weights."""
    out = nx.DiGraph(name=f"{pdg.graph.name}-pdg")
    for node in pdg.nodes:
        out.add_node(
            node.index,
            t_fragment=node.t_fragment,
            compute_bound=node.is_compute_bound,
            size=len(node.members),
        )
    for (src, dst), nbytes in pdg.edges.items():
        out.add_edge(src, dst, bytes_per_execution=nbytes, feedback=False)
    for (src, dst), nbytes in pdg.feedback_edges.items():
        if out.has_edge(src, dst):
            out[src][dst]["bytes_per_execution"] += nbytes
        else:
            out.add_edge(src, dst, bytes_per_execution=nbytes, feedback=True)
    return out


def quotient_graph(
    graph: StreamGraph, partitions: Sequence[FrozenSet[int]]
) -> "nx.DiGraph":
    """Contract each partition to a node (forward edges only)."""
    assignment: Dict[int, int] = {}
    for pid, members in enumerate(partitions):
        for nid in members:
            assignment[nid] = pid
    out = nx.DiGraph()
    out.add_nodes_from(range(len(partitions)))
    for ch in graph.channels:
        if ch.delay:
            continue
        a, b = assignment[ch.src], assignment[ch.dst]
        if a != b:
            out.add_edge(a, b)
    return out
