"""Graphviz (DOT) export of stream graphs and partitioned graphs."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.graph.filters import FilterRole
from repro.graph.stream_graph import StreamGraph

_ROLE_SHAPE = {
    FilterRole.SOURCE: "invtriangle",
    FilterRole.SINK: "triangle",
    FilterRole.COMPUTE: "box",
    FilterRole.SPLITTER: "diamond",
    FilterRole.JOINER: "diamond",
}


def to_dot(
    graph: StreamGraph,
    partition_of: Optional[Dict[int, int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``graph`` as a DOT digraph.

    ``partition_of`` optionally maps node id -> partition index; nodes are
    then grouped into clusters, which is handy for eyeballing the
    partitioning heuristic's output.
    """
    lines = [f'digraph "{title or graph.name}" {{', "  rankdir=TB;"]
    if partition_of:
        by_part: Dict[int, list] = {}
        for nid, pid in partition_of.items():
            by_part.setdefault(pid, []).append(nid)
        for pid in sorted(by_part):
            lines.append(f"  subgraph cluster_{pid} {{")
            lines.append(f'    label="P{pid}";')
            for nid in sorted(by_part[pid]):
                lines.append(f"    {_node_line(graph, nid)}")
            lines.append("  }")
        rendered = set(partition_of)
    else:
        rendered = set()
    for node in graph.nodes:
        if node.node_id not in rendered:
            lines.append(f"  {_node_line(graph, node.node_id)}")
    for ch in graph.channels:
        elems = graph.channel_elems(ch) if graph.nodes[ch.src].firing else "?"
        style = ' style=dashed' if ch.delay else ""
        lines.append(f'  n{ch.src} -> n{ch.dst} [label="{elems}"{style}];')
    lines.append("}")
    return "\n".join(lines)


def _node_line(graph: StreamGraph, nid: int) -> str:
    node = graph.nodes[nid]
    shape = _ROLE_SHAPE[node.spec.role]
    label = f"{node.spec.name}\\nf={node.firing}" if node.firing else node.spec.name
    return f'n{nid} [shape={shape} label="{label}"];'


def partition_map(assignments: Sequence[Sequence[int]]) -> Dict[int, int]:
    """Build the node->partition map from a list of member lists."""
    mapping: Dict[int, int] = {}
    for pid, members in enumerate(assignments):
        for nid in members:
            mapping[nid] = pid
    return mapping
