"""Stream-graph intermediate representation.

This package is the StreamIt-like front end of the reproduction: it provides

* :mod:`repro.graph.filters` -- filter declarations (rates, work, roles),
* :mod:`repro.graph.structure` -- hierarchical composition operators
  (pipeline, split-join, feedback loop),
* :mod:`repro.graph.flatten` -- flattening a hierarchy into a flat
  :class:`~repro.graph.stream_graph.StreamGraph`,
* :mod:`repro.graph.scheduling` -- steady-state scheduling (repetition
  vector via the SDF balance equations),
* :mod:`repro.graph.validate` -- structural validation,
* :mod:`repro.graph.dot` -- Graphviz export for debugging.

The mapping flow (partitioning, ILP mapping, code generation) consumes the
flat, rate-annotated :class:`~repro.graph.stream_graph.StreamGraph`.
"""

from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    JoinSpec,
    Pipeline,
    SplitJoin,
    SplitKind,
    SplitSpec,
)
from repro.graph.stream_graph import Channel, FilterNode, StreamGraph
from repro.graph.fingerprint import canonical_graph, graph_fingerprint
from repro.graph.flatten import flatten
from repro.graph.scheduling import RateConsistencyError, solve_repetition_vector
from repro.graph.validate import GraphValidationError, validate_graph

__all__ = [
    "Channel",
    "FeedbackLoop",
    "Filt",
    "FilterNode",
    "FilterRole",
    "FilterSpec",
    "GraphValidationError",
    "JoinSpec",
    "Pipeline",
    "RateConsistencyError",
    "SplitJoin",
    "SplitKind",
    "SplitSpec",
    "StreamGraph",
    "canonical_graph",
    "flatten",
    "graph_fingerprint",
    "solve_repetition_vector",
    "validate_graph",
]
