"""Structural validation of flat stream graphs."""

from __future__ import annotations

from typing import List

from repro.graph.scheduling import steady_state_is_consistent
from repro.graph.stream_graph import StreamGraph


class GraphValidationError(ValueError):
    """Raised when a stream graph violates a structural invariant."""


def validate_graph(graph: StreamGraph) -> None:
    """Validate a flat stream graph; raises :class:`GraphValidationError`.

    Checks: non-empty, weak connectivity, solved and balanced firing
    rates, acyclicity modulo delay edges, and positive channel rates
    (enforced at construction, re-checked here for safety).
    """
    problems = collect_problems(graph)
    if problems:
        raise GraphValidationError(
            f"{graph.name}: " + "; ".join(problems)
        )


def collect_problems(graph: StreamGraph) -> List[str]:
    """Return a list of human-readable invariant violations (empty = valid)."""
    problems: List[str] = []
    if not graph.nodes:
        return ["graph is empty"]
    if any(node.firing <= 0 for node in graph.nodes):
        problems.append("firing rates not solved (run solve_repetition_vector)")
    elif not steady_state_is_consistent(graph):
        problems.append("firing rates violate balance equations")
    if not graph.is_dag():
        problems.append("cycle not broken by a delay edge")
    if not _weakly_connected(graph):
        problems.append("graph is not weakly connected")
    for ch in graph.channels:
        if ch.src == ch.dst:
            problems.append(f"self loop on node {ch.src}")
    return problems


def _weakly_connected(graph: StreamGraph) -> bool:
    if len(graph.nodes) <= 1:
        return True
    seen = {0}
    stack = [0]
    while stack:
        nid = stack.pop()
        for other in graph.neighbors(nid):
            if other not in seen:
                seen.add(other)
                stack.append(other)
    return len(seen) == len(graph.nodes)
