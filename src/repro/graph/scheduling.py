"""Steady-state scheduling: solving the SDF balance equations.

For every channel ``(i, j)`` the steady state requires

    firing(i) * src_push == firing(j) * dst_pop

The smallest positive integer solution (the *repetition vector*) gives each
filter's firing rate, which the paper uses both in the compute-time model
(Eq. III.9, the ``min(f_i, S)`` term) and for channel buffer sizes.

We solve by propagating rational ratios over the connected components of
the graph and normalizing with lcm/gcd — exact arithmetic, no floating
point.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List

from repro.graph.stream_graph import StreamGraph


class RateConsistencyError(ValueError):
    """Raised when the balance equations have no positive solution
    (mismatched split-join weights, inconsistent rates, ...)."""


def solve_repetition_vector(graph: StreamGraph) -> List[int]:
    """Solve the balance equations and annotate ``graph`` in place.

    Returns the repetition vector indexed by node id.  Raises
    :class:`RateConsistencyError` on inconsistent rates.
    """
    n = len(graph.nodes)
    if n == 0:
        return []
    ratio: Dict[int, Fraction] = {}

    # Union of both directions as an undirected adjacency over channels.
    adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
    for idx, ch in enumerate(graph.channels):
        adjacency[ch.src].append(idx)
        adjacency[ch.dst].append(idx)

    for root in range(n):
        if root in ratio:
            continue
        ratio[root] = Fraction(1)
        stack = [root]
        while stack:
            nid = stack.pop()
            for ci in adjacency[nid]:
                ch = graph.channels[ci]
                if ch.src == nid:
                    other = ch.dst
                    # r_other = r_nid * push / pop
                    implied = ratio[nid] * Fraction(ch.src_push, ch.dst_pop)
                else:
                    other = ch.src
                    implied = ratio[nid] * Fraction(ch.dst_pop, ch.src_push)
                if other in ratio:
                    if ratio[other] != implied:
                        raise RateConsistencyError(
                            f"{graph.name}: inconsistent rates on channel "
                            f"{graph.nodes[ch.src].name} -> {graph.nodes[ch.dst].name}"
                        )
                else:
                    ratio[other] = implied
                    stack.append(other)

    # Normalize each connected component independently: multiply by the
    # lcm of denominators, divide by the gcd of numerators.
    firings = _normalize(graph, ratio)
    for node in graph.nodes:
        node.firing = firings[node.node_id]
    return firings


def _normalize(graph: StreamGraph, ratio: Dict[int, Fraction]) -> List[int]:
    n = len(graph.nodes)
    component = _components(graph)
    firings = [0] * n
    for comp in component:
        denominators = [ratio[nid].denominator for nid in comp]
        lcm = 1
        for d in denominators:
            lcm = lcm * d // math.gcd(lcm, d)
        scaled = {nid: ratio[nid] * lcm for nid in comp}
        numerators = [int(scaled[nid]) for nid in comp]
        g = 0
        for v in numerators:
            g = math.gcd(g, v)
        for nid in comp:
            firings[nid] = int(scaled[nid]) // g
        if any(firings[nid] <= 0 for nid in comp):
            raise RateConsistencyError(f"{graph.name}: non-positive repetition count")
    return firings


def _components(graph: StreamGraph) -> List[List[int]]:
    """Undirected connected components of the graph."""
    n = len(graph.nodes)
    seen = [False] * n
    comps: List[List[int]] = []
    for root in range(n):
        if seen[root]:
            continue
        comp = [root]
        seen[root] = True
        stack = [root]
        while stack:
            nid = stack.pop()
            for other in graph.neighbors(nid):
                if not seen[other]:
                    seen[other] = True
                    comp.append(other)
                    stack.append(other)
        comps.append(comp)
    return comps


def steady_state_is_consistent(graph: StreamGraph) -> bool:
    """Check the already-annotated firing rates against every channel."""
    for ch in graph.channels:
        produced = graph.nodes[ch.src].firing * ch.src_push
        consumed = graph.nodes[ch.dst].firing * ch.dst_pop
        if produced != consumed:
            return False
    return all(node.firing > 0 for node in graph.nodes)
