"""Lowering the hierarchical structure tree to a flat stream graph.

Split-join splitters and joiners materialize as filter nodes with roles
``SPLITTER``/``JOINER`` (they rearrange data in shared memory, which is why
Chapter V of the paper can later eliminate them).  Pipelines contribute the
*innermost pipeline segments* that phase 1 of the partitioning heuristic
iterates (Algorithm 1, lines 2–10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.scheduling import solve_repetition_vector
from repro.graph.stream_graph import StreamGraph
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    Pipeline,
    SplitJoin,
    SplitKind,
    StreamNode,
)

#: Abstract work charged to a splitter/joiner per element it moves.  Their
#: runtime contribution is "significant" per Chapter V; this constant makes
#: the Table 5.1 experiment meaningful.
MOVER_WORK_PER_ELEM = 0.5


@dataclass
class _Port:
    """Endpoint of a flattened subtree: node id plus its external rate."""

    node_id: int
    rate: int
    peek: int = 0


class _Flattener:
    def __init__(self, graph: StreamGraph, mover_work_per_elem: float) -> None:
        self.graph = graph
        self.mover_work = mover_work_per_elem
        self._uid = 0

    def fresh(self, base: str) -> str:
        self._uid += 1
        return f"{base}#{self._uid}"

    # ------------------------------------------------------------------
    def lower(self, node: StreamNode) -> Tuple[Optional[_Port], Optional[_Port]]:
        """Lower ``node``; return (input port, output port).

        A port is ``None`` when the subtree has no external connection on
        that side (rate 0, e.g. a source pipeline).
        """
        if isinstance(node, Filt):
            return self._lower_filter(node)
        if isinstance(node, Pipeline):
            return self._lower_pipeline(node)
        if isinstance(node, SplitJoin):
            return self._lower_splitjoin(node)
        if isinstance(node, FeedbackLoop):
            return self._lower_feedback(node)
        raise TypeError(f"unknown structure node: {node!r}")

    def _lower_filter(self, node: Filt) -> Tuple[Optional[_Port], Optional[_Port]]:
        fnode = self.graph.add_node(node.spec)
        inp = (
            _Port(fnode.node_id, node.spec.pop, node.spec.effective_peek)
            if node.spec.pop
            else None
        )
        out = _Port(fnode.node_id, node.spec.push) if node.spec.push else None
        return inp, out

    def _lower_pipeline(
        self, node: Pipeline
    ) -> Tuple[Optional[_Port], Optional[_Port]]:
        first_in: Optional[_Port] = None
        prev_out: Optional[_Port] = None
        leaf_run: List[int] = []

        def close_run() -> None:
            if len(leaf_run) >= 2:
                seg_id = len(self.graph.pipelines)
                self.graph.pipelines.append(list(leaf_run))
                for nid in leaf_run:
                    self.graph.nodes[nid].pipeline_id = seg_id
            leaf_run.clear()

        for index, child in enumerate(node):
            child_in, child_out = self.lower(child)
            if index == 0:
                first_in = child_in
            else:
                if prev_out is None or child_in is None:
                    raise ValueError(
                        f"{node.name}: cannot connect child {index} "
                        "(missing output or input rate)"
                    )
                self.graph.add_channel(
                    prev_out.node_id,
                    child_in.node_id,
                    src_push=prev_out.rate,
                    dst_pop=child_in.rate,
                    dst_peek=child_in.peek,
                )
            prev_out = child_out
            if isinstance(child, Filt):
                # child_in/child_out reference the same node id
                nid = (child_in or child_out).node_id
                leaf_run.append(nid)
            else:
                close_run()
        close_run()
        return first_in, prev_out

    def _lower_splitjoin(
        self, node: SplitJoin
    ) -> Tuple[Optional[_Port], Optional[_Port]]:
        split, join = node.split, node.join
        k = len(node.branches)
        total_out = sum(split.weights)
        splitter_spec = FilterSpec(
            name=self.fresh(f"{node.name}.split"),
            pop=split.pop_per_firing,
            push=total_out,
            work=self.mover_work * (split.pop_per_firing + total_out),
            role=FilterRole.SPLITTER,
            semantics="duplicate" if split.kind is SplitKind.DUPLICATE else "roundrobin",
            params=tuple(split.weights),
        )
        total_in = sum(join.weights)
        joiner_spec = FilterSpec(
            name=self.fresh(f"{node.name}.join"),
            pop=total_in,
            push=join.push_per_firing,
            work=self.mover_work * (total_in + join.push_per_firing),
            role=FilterRole.JOINER,
            semantics="roundrobin",
            params=tuple(join.weights),
        )
        splitter = self.graph.add_node(splitter_spec)
        joiner = self.graph.add_node(joiner_spec)
        for branch_idx in range(k):
            b_in, b_out = self.lower(node.branches[branch_idx])
            if b_in is None or b_out is None:
                raise ValueError(
                    f"{node.name}: branch {branch_idx} must both consume and produce"
                )
            self.graph.add_channel(
                splitter.node_id,
                b_in.node_id,
                src_push=split.push_to(branch_idx),
                dst_pop=b_in.rate,
                dst_peek=b_in.peek,
            )
            self.graph.add_channel(
                b_out.node_id,
                joiner.node_id,
                src_push=b_out.rate,
                dst_pop=join.pop_from(branch_idx),
            )
        inp = _Port(splitter.node_id, split.pop_per_firing)
        out = _Port(joiner.node_id, join.push_per_firing)
        return inp, out

    def _lower_feedback(
        self, node: FeedbackLoop
    ) -> Tuple[Optional[_Port], Optional[_Port]]:
        join, split = node.join, node.split
        joiner_spec = FilterSpec(
            name=self.fresh(f"{node.name}.join"),
            pop=sum(join.weights),
            push=join.push_per_firing,
            work=self.mover_work * 2 * sum(join.weights),
            role=FilterRole.JOINER,
            semantics="roundrobin",
            params=tuple(join.weights),
        )
        splitter_spec = FilterSpec(
            name=self.fresh(f"{node.name}.split"),
            pop=split.pop_per_firing,
            push=sum(split.weights),
            work=self.mover_work * 2 * split.pop_per_firing,
            role=FilterRole.SPLITTER,
            semantics="duplicate" if split.kind is SplitKind.DUPLICATE else "roundrobin",
            params=tuple(split.weights),
        )
        joiner = self.graph.add_node(joiner_spec)
        splitter = self.graph.add_node(splitter_spec)

        b_in, b_out = self.lower(node.body)
        if b_in is None or b_out is None:
            raise ValueError(f"{node.name}: body must both consume and produce")
        self.graph.add_channel(
            joiner.node_id, b_in.node_id, join.push_per_firing, b_in.rate, b_in.peek
        )
        self.graph.add_channel(
            b_out.node_id, splitter.node_id, b_out.rate, split.pop_per_firing
        )
        l_in, l_out = self.lower(node.loopback)
        if l_in is None or l_out is None:
            raise ValueError(f"{node.name}: loopback must both consume and produce")
        self.graph.add_channel(
            splitter.node_id, l_in.node_id, split.push_to(1), l_in.rate, l_in.peek
        )
        self.graph.add_channel(
            l_out.node_id,
            joiner.node_id,
            l_out.rate,
            join.pop_from(1),
            delay=node.delay,
        )
        inp = _Port(joiner.node_id, join.pop_from(0))
        out = _Port(splitter.node_id, split.push_to(0))
        return inp, out


def flatten(
    root: StreamNode,
    name: str = "stream",
    elem_bytes: int = 4,
    mover_work_per_elem: float = MOVER_WORK_PER_ELEM,
    solve_rates: bool = True,
) -> StreamGraph:
    """Flatten a structure tree into a :class:`StreamGraph`.

    When ``solve_rates`` is true (default) the repetition vector is solved
    and the graph is returned fully annotated, ready for the mapping flow.

    >>> from repro.graph.filters import FilterSpec, sink, source
    >>> from repro.graph.structure import Filt, pipeline
    >>> tree = pipeline(
    ...     source("src", 2),
    ...     FilterSpec(name="f", pop=2, push=1, work=8.0),
    ...     sink("snk", 1),
    ... )
    >>> graph = flatten(tree, "tiny")
    >>> [node.name for node in graph.nodes]
    ['src', 'f', 'snk']
    >>> [node.firing for node in graph.nodes]  # steady-state repetitions
    [1, 1, 1]
    """
    graph = StreamGraph(name, elem_bytes=elem_bytes)
    flattener = _Flattener(graph, mover_work_per_elem)
    flattener.lower(root)
    if solve_rates:
        solve_repetition_vector(graph)
    return graph
