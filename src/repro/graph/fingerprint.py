"""Content-addressed fingerprints of stream graphs.

The sweep engine (:mod:`repro.sweep`) keys its stage cache on *what the
pipeline actually consumes*: the flat, rate-annotated graph.  Two graphs
with identical structure, rates, firings, and filter declarations map
identically under every strategy, so their pipeline stages are
interchangeable — a fingerprint collision across semantically different
graphs would silently serve wrong cached results, which is why every
field that reaches the partitioner, the performance model, or the
executor participates in the digest.

>>> from repro.apps import build_app
>>> a = graph_fingerprint(build_app("DES", 4))
>>> b = graph_fingerprint(build_app("DES", 4))
>>> c = graph_fingerprint(build_app("DES", 8))
>>> a == b and a != c
True
"""

from __future__ import annotations

import hashlib
import json

from repro.graph.stream_graph import StreamGraph

#: bump when the canonical form below changes shape, so stale on-disk
#: cache entries written by older code can never be confused for current
#: ones
FINGERPRINT_VERSION = 1


def canonical_graph(graph: StreamGraph) -> dict:
    """A JSON-able canonical form of everything the mapping flow reads.

    Node order and channel order are part of the canonical form: node ids
    are positional, and the flow's outputs (partitions, assignments) are
    expressed in terms of them.
    """
    return {
        "version": FINGERPRINT_VERSION,
        "name": graph.name,
        "elem_bytes": graph.elem_bytes,
        "nodes": [
            [
                node.spec.name,
                node.spec.pop,
                node.spec.push,
                node.spec.peek,
                node.spec.work,
                node.spec.role.name,
                node.spec.semantics,
                list(node.spec.params),
                node.spec.stateful,
                node.firing,
                node.pipeline_id,
                node.meta,
            ]
            for node in graph.nodes
        ],
        "channels": [
            [
                ch.src,
                ch.dst,
                ch.src_push,
                ch.dst_pop,
                ch.dst_peek,
                ch.delay,
                ch.alias_group,
                ch.slice_offset,
                ch.slice_period,
                ch.slice_width,
            ]
            for ch in graph.channels
        ],
        "pipelines": [list(seg) for seg in graph.pipelines],
    }


def graph_fingerprint(graph: StreamGraph) -> str:
    """Stable hex digest identifying ``graph`` for cache keys.

    >>> from repro.apps import build_app
    >>> fp = graph_fingerprint(build_app("Bitonic", 8))
    >>> len(fp)
    64
    """
    payload = json.dumps(
        canonical_graph(graph), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()
