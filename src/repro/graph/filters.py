"""Filter declarations for stream graphs.

A *filter* (StreamIt terminology; also called an *actor*) is the unit of
computation in a stream graph.  Each firing of a filter pops a fixed number
of elements from its input channel, peeks at most ``peek`` elements, and
pushes a fixed number of elements to its output channel.

Filters carry an abstract *work* estimate (arithmetic operations per firing)
that the profiling substrate (:mod:`repro.perf.profiling`) converts into a
GPU execution-time annotation ``t_i``, and an optional *semantics* tag that
lets the functional VM (:mod:`repro.gpu.functional`) actually execute the
filter on data for end-to-end correctness checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FilterRole(enum.Enum):
    """Structural role of a filter inside a stream graph.

    ``SPLITTER`` and ``JOINER`` are the synthetic data-distribution /
    consolidation filters introduced when flattening a split-join; the
    Chapter V optimization (:mod:`repro.opt.splitjoin_elim`) targets exactly
    these roles because they move data without transforming it.
    """

    SOURCE = "source"
    SINK = "sink"
    COMPUTE = "compute"
    SPLITTER = "splitter"
    JOINER = "joiner"

    @property
    def is_data_movement(self) -> bool:
        """Whether the role only rearranges data (splitter/joiner)."""
        return self in (FilterRole.SPLITTER, FilterRole.JOINER)


#: Semantics tags understood by the functional VM.  ``opaque`` filters are
#: executable too (they copy/reduce input deterministically) so every graph
#: can run end to end.
KNOWN_SEMANTICS = (
    "opaque",
    "identity",
    "duplicate",
    "roundrobin",
    "add",
    "sub",
    "scale",
    "xor_const",
    "butterfly",
    "sort2",
    "dot",
    "shuffle",
    "source",
    "sink",
)


@dataclass(frozen=True)
class FilterSpec:
    """Immutable declaration of a stream filter.

    Parameters
    ----------
    name:
        Human-readable name; needs not be globally unique (flattening
        assigns unique node ids).
    pop:
        Elements consumed from the input channel per firing.  ``0`` for
        sources.
    push:
        Elements produced on the output channel per firing.  ``0`` for
        sinks.
    peek:
        Elements inspected per firing (``peek >= pop``); ``0`` means
        "same as pop".  A sliding-window FIR filter peeks more than it
        pops.
    work:
        Abstract arithmetic operations per firing.  This is the knob the
        benchmark generators use to make an app compute-bound or
        IO-bound.
    role:
        Structural role, see :class:`FilterRole`.
    semantics:
        Tag for the functional VM; must be one of :data:`KNOWN_SEMANTICS`.
    params:
        Semantics-specific constants (e.g. the scale factor).
    stateful:
        Stateful filters cannot be data-parallelized across firings, so
        the kernel parameter search clamps their per-execution thread
        count ``S`` contribution to 1.
    """

    name: str
    pop: int
    push: int
    peek: int = 0
    work: float = 1.0
    role: FilterRole = FilterRole.COMPUTE
    semantics: str = "opaque"
    params: tuple = field(default=())
    stateful: bool = False

    def __post_init__(self) -> None:
        if self.pop < 0 or self.push < 0:
            raise ValueError(f"{self.name}: rates must be non-negative")
        if self.peek and self.peek < self.pop:
            raise ValueError(f"{self.name}: peek ({self.peek}) < pop ({self.pop})")
        if self.work < 0:
            raise ValueError(f"{self.name}: work must be non-negative")
        if self.semantics not in KNOWN_SEMANTICS:
            raise ValueError(f"{self.name}: unknown semantics {self.semantics!r}")

    @property
    def effective_peek(self) -> int:
        """Peek window size (defaults to ``pop`` when not set)."""
        return self.peek if self.peek else self.pop

    def renamed(self, name: str) -> "FilterSpec":
        """Return a copy of this spec under a different name."""
        return FilterSpec(
            name=name,
            pop=self.pop,
            push=self.push,
            peek=self.peek,
            work=self.work,
            role=self.role,
            semantics=self.semantics,
            params=self.params,
            stateful=self.stateful,
        )


def source(name: str, push: int, work: float = 1.0) -> FilterSpec:
    """Convenience constructor for a primary-input filter."""
    return FilterSpec(
        name=name, pop=0, push=push, work=work, role=FilterRole.SOURCE, semantics="source"
    )


def sink(name: str, pop: int, work: float = 1.0) -> FilterSpec:
    """Convenience constructor for a primary-output filter."""
    return FilterSpec(
        name=name, pop=pop, push=0, work=work, role=FilterRole.SINK, semantics="sink"
    )
