"""Command-line front end: single-graph mapping and batched sweeps.

``repro-map`` (or ``repro map``) mirrors how the paper's tool is used:
take a stream graph (a bundled benchmark or a JSON file), run the
mapping flow for a GPU count, and report the decisions — optionally
emitting the generated CUDA source, a Graphviz rendering of the
partitioned graph, and a Chrome trace of the simulated pipelined
execution.

``repro sweep`` runs a whole strategy grid through the sweep engine
(:mod:`repro.sweep`) with pipeline-stage caching and an optional process
pool, printing a result table plus cache-hit statistics.

``repro synth`` generates synthetic stream graphs (:mod:`repro.synth`):
deterministic seeded instances exported as ``.str``/JSON, plus the
differential solver-correctness harness over pinned corpora.

``repro submit`` and ``repro serve`` form the JSON-lines client API of
the mapping service (:mod:`repro.service`): ``submit`` prints canonical
request lines, ``serve`` drains a stream of them through a
:class:`~repro.service.MappingService` — deduplicating, caching, and
answering one JSON response line per request.  ``repro cache`` inspects
and prunes a stage-cache directory.

``repro remap`` repairs a deployed mapping after a platform degradation
(:mod:`repro.gpu.delta` / :mod:`repro.mapping.repair`): direct mode
applies ``--kill-gpu`` / ``--throttle`` / ``--slow`` deltas to a catalog
platform and repairs one graph's mapping; ``--scenario`` replays a
seeded degradation script (:mod:`repro.synth.scenarios`); ``--check``
runs the kill-GPU repair gate behind ``make remap-check``.

Examples::

    repro-map --app DES --n 8 --gpus 4
    repro-map --graph mygraph.json --gpus 2 --mapper lpt --emit-cuda out.cu
    repro-map --app Bitonic --n 32 --gpus 4 --dot parts.dot --trace t.json

    repro sweep --grid ablation --cache-dir .sweep-cache
    repro sweep --case DES:16 --case synth:dag:7 --gpus 1,2,4 \\
                --mappers ilp,lpt --cache-dir .sweep-cache --parallel
    repro sweep --case synth:dag:7 --platform two-island \\
                --platform mixed-box --cache-dir .sweep-cache

    repro synth --family splitjoin --seed 7 --out-str sj7.str --out-json sj7.json
    repro synth --corpus pinned --diffcheck
    repro synth --corpus tiny --diffcheck --platform deep-tree-8
    repro synth --check

    repro submit --app DES --n 16 --gpus 2 --budget ample --to reqs.jsonl
    repro submit --app Bitonic --n 8 --platform two-island >> reqs.jsonl
    repro serve --requests reqs.jsonl --cache-dir .sweep-cache --workers 2
    repro serve --http 8080 --workers 2 --cache-dir .sweep-cache
    repro serve --self-check
    repro serve --self-check-http
    repro cache stats --cache-dir .sweep-cache
    repro cache purge --cache-dir .sweep-cache --stage mapping

    repro remap --app Bitonic --n 8 --platform host-star --kill-gpu 1
    repro remap --scenario 7 --platform mixed-box --steps 6
    repro remap --check --quiet
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.registry import APPS, build_app, is_known_app
from repro.flow import MAPPERS, PARTITIONERS, map_stream_graph
from repro.graph import json_io
from repro.graph.dot import partition_map, to_dot
from repro.gpu.codegen import generate_program
from repro.gpu.platforms import PLATFORM_NAMES, build_platform
from repro.runtime.trace import record_trace, to_chrome_trace
from repro.sweep.runner import SPECS as _SPECS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Map a stream graph onto a (simulated) multi-GPU machine.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--app",
        help="bundled benchmark application "
             f"({', '.join(sorted(APPS))}) or synth:<family>[;key=value...] "
             "(seed via --n)",
    )
    source.add_argument("--graph", help="stream graph JSON file")
    source.add_argument(
        "--stream", help="stream-language source file (see repro.frontend)"
    )
    parser.add_argument("--n", type=int, default=None,
                        help="benchmark size parameter (with --app)")
    parser.add_argument("--gpus", type=int, default=None,
                        choices=(1, 2, 3, 4),
                        help="reference-tree GPU count (default 1)")
    parser.add_argument("--platform", choices=PLATFORM_NAMES,
                        help="named machine from the platform catalog "
                             "(fixes the GPU count; see docs/PLATFORMS.md)")
    parser.add_argument("--spec", choices=sorted(_SPECS), default="M2090")
    parser.add_argument("--partitioner", choices=PARTITIONERS, default="ours")
    parser.add_argument("--mapper", choices=MAPPERS, default="ilp")
    parser.add_argument("--no-p2p", action="store_true",
                        help="route inter-GPU traffic through the host")
    parser.add_argument("--emit-cuda", metavar="FILE",
                        help="write the generated CUDA program")
    parser.add_argument("--dot", metavar="FILE",
                        help="write a Graphviz view of the partitioned graph")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace of the simulated run")
    parser.add_argument("--save-graph", metavar="FILE",
                        help="write the flattened graph as JSON")
    parser.add_argument("--report", action="store_true",
                        help="print the full per-partition compiler report")
    parser.add_argument("--gantt", action="store_true",
                        help="print an ASCII Gantt chart of the simulated "
                             "pipelined schedule")
    return parser


def _parse_case(text: str):
    # rsplit keeps synth app names (synth:family;k=v) intact
    try:
        app, n = text.rsplit(":", 1)
        return app, int(n)
    except ValueError:
        raise SystemExit(
            f"bad --case {text!r}: expected APP:N (e.g. DES:16 or "
            f"synth:dag:7)"
        ) from None


def _parse_csv(text: str, convert=str) -> tuple:
    return tuple(convert(item) for item in text.split(",") if item)


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a strategy grid through the cached sweep engine.",
    )
    parser.add_argument(
        "--grid", choices=("ablation",),
        help="a predefined grid (ablation: the design-ablation points); "
             "presets fix every axis, so the axis flags below are "
             "rejected alongside it",
    )
    parser.add_argument(
        "--case", action="append", default=[], metavar="APP:N",
        help="grid case, repeatable (e.g. --case DES:16 --case DCT:18)",
    )
    parser.add_argument("--gpus", default=None,
                        help="comma-separated GPU counts (default 1,2,4)")
    parser.add_argument(
        "--platform", action="append", default=[], metavar="NAME",
        choices=PLATFORM_NAMES, dest="platforms",
        help="named machine from the platform catalog, repeatable; "
             "replaces the --gpus reference-tree axis "
             f"({', '.join(PLATFORM_NAMES)})",
    )
    parser.add_argument("--partitioners", default=None,
                        help=f"comma-separated subset of {PARTITIONERS}")
    parser.add_argument("--mappers", default=None,
                        help=f"comma-separated subset of {MAPPERS}")
    parser.add_argument("--p2p", choices=("on", "off", "both"), default=None,
                        help="peer-to-peer axis (default on)")
    parser.add_argument("--spec", choices=sorted(_SPECS), default=None)
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persist stage results here for cross-run reuse")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the stage cache entirely")
    parser.add_argument("--parallel", action="store_true",
                        help="fan prefix groups out over a process pool")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: CPU count)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    return parser


def sweep_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro sweep``."""
    from repro.experiments.common import render_table
    from repro.sweep import StageCache, SweepRunner, SweepSpec

    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")

    axis_flags = [
        ("--case", args.case), ("--gpus", args.gpus),
        ("--platform", args.platforms),
        ("--partitioners", args.partitioners), ("--mappers", args.mappers),
        ("--p2p", args.p2p), ("--spec", args.spec),
    ]
    if args.platforms and args.gpus:
        parser.error("--platform fixes the machine axis; drop --gpus")
    if args.grid == "ablation":
        used = [name for name, value in axis_flags if value]
        if used:
            parser.error(
                f"--grid fixes every axis; drop {', '.join(used)}"
            )
        from repro.experiments import ablations

        points = ablations.full_grid()
    else:
        if not args.case:
            parser.error("give --grid ablation or at least one --case APP:N")
        cases = [_parse_case(text) for text in args.case]
        unknown = sorted(
            {app for app, _ in cases if not is_known_app(app)}
        )
        if unknown:
            parser.error(
                f"unknown app(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(APPS))} plus synth:<family>"
            )
        p2p_axis = {
            "on": (True,), "off": (False,), "both": (True, False),
        }[args.p2p or "on"]
        try:
            spec = SweepSpec(
                cases=cases,
                gpu_counts=_parse_csv(args.gpus or "1,2,4", int),
                specs=(args.spec or "M2090",),
                partitioners=_parse_csv(args.partitioners or "ours"),
                mappers=_parse_csv(args.mappers or "ilp"),
                peer_to_peer=p2p_axis,
                platforms=tuple(args.platforms) or (None,),
            )
            points = spec.expand()
        except ValueError as exc:
            parser.error(str(exc))

    cache = None
    if not args.no_cache:
        try:
            cache = StageCache(args.cache_dir)
        except OSError as exc:
            parser.error(f"unusable --cache-dir {args.cache_dir!r}: {exc}")
    runner = SweepRunner(
        cache=cache,
        parallel=args.parallel,
        workers=args.workers,
        progress=not args.quiet,
    )
    result = runner.run(points)

    print(render_table(result.rows()))
    print()
    print(f"{len(result)} points in {result.wall_s:.1f}s "
          f"({len(result) / result.wall_s:.2f} points/s)")
    if result.cache_stats is not None and result.cache_stats.lookups:
        print(f"stage cache: {result.cache_stats.render()}")
    return 0


def build_synth_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro synth",
        description="Generate synthetic stream graphs and run the "
                    "differential solver-correctness harness.",
    )
    parser.add_argument("--family", help="graph family (see --list-families)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=N",
        help="family parameter override, repeatable "
             "(e.g. --param depth=12)",
    )
    parser.add_argument("--list-families", action="store_true",
                        help="list the graph families and their parameters")
    parser.add_argument("--out-str", metavar="FILE",
                        help="write the instance as stream-language source")
    parser.add_argument("--out-json", metavar="FILE",
                        help="write the instance as flat-graph JSON")
    parser.add_argument("--show", choices=("str", "json"),
                        help="print the instance in the given format")
    parser.add_argument("--diffcheck", action="store_true",
                        help="cross-check greedy/B&B/MILP on the instance "
                             "(or, with --corpus, on the whole corpus)")
    parser.add_argument("--corpus", choices=("pinned", "tiny"),
                        help="operate on a bundled corpus instead of one "
                             "(--family, --seed) instance")
    parser.add_argument("--check", action="store_true",
                        help="generate + diffcheck the tiny corpus and exit "
                             "non-zero on any violation (CI gate)")
    parser.add_argument("--gpus", type=int, default=None,
                        choices=(1, 2, 3, 4),
                        help="reference-tree GPU count for --diffcheck "
                             "(default 2)")
    parser.add_argument("--platform", choices=PLATFORM_NAMES,
                        help="run --diffcheck against a named platform "
                             "(fixes the GPU count; see docs/PLATFORMS.md)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-instance progress lines")
    return parser


def _parse_params(items: List[str], parser: argparse.ArgumentParser) -> dict:
    from repro.synth import SynthError, parse_param

    overrides = {}
    for item in items:
        try:
            key, value = parse_param(item)
        except SynthError as exc:
            parser.error(f"--param: {exc}")
        overrides[key] = value
    return overrides


def synth_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro synth``."""
    from repro import synth

    parser = build_synth_parser()
    args = parser.parse_args(argv)

    if args.platform and args.gpus is not None:
        parser.error("--platform fixes the GPU count; drop --gpus")
    num_gpus = args.gpus if args.gpus is not None else 2

    if args.list_families:
        for family in synth.FAMILIES:
            defaults = ", ".join(
                f"{k}={v}" for k, v in sorted(
                    synth.FAMILY_DEFAULTS[family].items()
                )
            )
            print(f"{family:10s} {synth.FAMILY_DESCRIPTIONS[family]}")
            print(f"{'':10s} params: {defaults}")
        return 0

    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr)
    )

    if args.check or args.corpus:
        instance_flags = [
            name for name, value in (
                ("--family", args.family), ("--out-str", args.out_str),
                ("--out-json", args.out_json), ("--show", args.show),
            ) if value
        ]
        if instance_flags:
            parser.error(
                "--check/--corpus operate on whole corpora; drop "
                + ", ".join(instance_flags)
            )
        # --check defaults to the tiny gate corpus, but an explicit
        # --corpus choice always wins (--check --corpus pinned gates on
        # all 30 instances)
        corpus = args.corpus or ("tiny" if args.check else None)
        entries = (
            synth.TINY_CORPUS if corpus == "tiny" else synth.PINNED_CORPUS
        )
        if args.diffcheck or args.check:
            report = synth.diffcheck_corpus(
                entries, num_gpus=num_gpus, progress=progress,
                platform=args.platform,
            )
            print(
                f"{len(report.instances)} instances, "
                f"{len(report.violations)} violations, "
                f"{len(report.skips)} skips"
            )
            for violation in report.violations:
                print(f"VIOLATION: {violation}")
            return 0 if report.ok else 1
        for instance in synth.generate_corpus(entries):
            graph = instance.graph
            print(
                f"{instance.spec.instance_name}: {len(graph.nodes)} filters, "
                f"{len(graph.channels)} channels, "
                f"fingerprint {instance.fingerprint[:16]}"
            )
        return 0

    if not args.family:
        parser.error("give --family (see --list-families), --corpus, "
                     "or --check")
    try:
        instance = synth.generate(
            args.family, args.seed,
            _parse_params(args.param, parser) or None,
        )
    except synth.SynthError as exc:
        parser.error(str(exc))

    graph = instance.graph
    print(f"instance   : {instance.spec.instance_name}")
    print(f"graph      : {len(graph.nodes)} filters, "
          f"{len(graph.channels)} channels, "
          f"{sum(n.firing for n in graph.nodes)} firings/steady state")
    print(f"fingerprint: {instance.fingerprint}")

    if args.out_str:
        try:
            text = instance.source()
        except synth.SourceUnavailableError as exc:
            parser.error(str(exc))
        with open(args.out_str, "w") as fh:
            fh.write(text)
        print(f"wrote stream source to {args.out_str}")
    if args.out_json:
        with open(args.out_json, "w") as fh:
            fh.write(instance.json())
        print(f"wrote graph JSON to {args.out_json}")
    if args.show == "str":
        try:
            print(instance.source(), end="")
        except synth.SourceUnavailableError as exc:
            parser.error(str(exc))
    elif args.show == "json":
        print(instance.json(), end="")

    if args.diffcheck:
        report = synth.diffcheck_graph(
            instance, num_gpus=num_gpus, platform=args.platform
        )
        print(report.render())
        for violation in report.violations:
            print(f"VIOLATION: {violation}")
        for skip in report.skips:
            print(f"skipped: {skip}")
        return 0 if report.ok else 1
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    from repro.mapping.budget import BUDGET_TIERS

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Emit a canonical JSON-lines mapping-service request.",
    )
    parser.add_argument("--app", required=True,
                        help="bundled benchmark or synth:<family>[;k=v...]")
    parser.add_argument("--n", type=int, required=True,
                        help="benchmark size parameter")
    parser.add_argument("--gpus", type=int, default=None,
                        choices=(1, 2, 3, 4),
                        help="reference-tree GPU count (default 1)")
    parser.add_argument("--platform", choices=PLATFORM_NAMES,
                        help="named machine (fixes the GPU count)")
    parser.add_argument("--spec", choices=sorted(_SPECS), default="M2090")
    parser.add_argument("--partitioner", choices=PARTITIONERS, default="ours")
    parser.add_argument("--mapper", choices=MAPPERS, default="portfolio")
    parser.add_argument("--budget", choices=sorted(BUDGET_TIERS),
                        default="default",
                        help="solve-budget tier (see docs/SERVICE.md)")
    parser.add_argument("--no-p2p", action="store_true",
                        help="route inter-GPU traffic through the host")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulator noise seed")
    parser.add_argument("--priority", type=int, default=0,
                        help="queue priority (lower drains sooner)")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="wall-clock allowance in seconds (anytime mode)")
    parser.add_argument("--tag", help="client correlation id, echoed back")
    parser.add_argument("--key", action="store_true",
                        help="also print the canonical request key to stderr")
    parser.add_argument("--to", metavar="FILE",
                        help="append the request line to FILE instead of "
                             "printing it")
    return parser


def submit_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro submit``."""
    import json as _json

    from repro.service import api

    parser = build_submit_parser()
    args = parser.parse_args(argv)
    if args.platform and args.gpus is not None:
        parser.error("--platform fixes the GPU count; drop --gpus")
    request = api.MappingRequest(
        app=args.app, n=args.n,
        num_gpus=args.gpus if args.gpus is not None else 1,
        platform=args.platform, spec=args.spec,
        partitioner=args.partitioner, mapper=args.mapper,
        budget=args.budget, peer_to_peer=not args.no_p2p, seed=args.seed,
        priority=args.priority, deadline_s=args.deadline, tag=args.tag,
    )
    try:
        request.validate()
    except ValueError as exc:
        parser.error(str(exc))
    line = _json.dumps(api.request_to_json(request), sort_keys=True,
                       separators=(",", ":"))
    if args.to:
        with open(args.to, "a") as fh:
            fh.write(line + "\n")
        print(f"appended request to {args.to}", file=sys.stderr)
    else:
        print(line)
    if args.key:
        print(f"key: {api.request_key(request)}", file=sys.stderr)
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve JSON-lines mapping requests through the "
                    "deduplicating mapping service.",
    )
    parser.add_argument("--requests", metavar="FILE",
                        help="JSONL request file ('-' reads stdin); "
                             "see repro submit")
    parser.add_argument("--out", metavar="FILE",
                        help="write JSONL responses here (default stdout)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="shared stage-cache directory (enables "
                             "cross-run and cross-process reuse)")
    parser.add_argument("--store", metavar="DIR",
                        help="persistent job-store directory (dedup "
                             "survives service restarts)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count (default 1)")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="solve in worker threads or a process pool "
                             "(process mode needs --cache-dir)")
    parser.add_argument("--strict", action="store_true",
                        help="abort on the first malformed request line")
    parser.add_argument("--http", type=int, metavar="PORT",
                        help="serve HTTP on PORT instead of a JSONL "
                             "stream (see docs/SERVICE.md for the API)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="HTTP bind address (default 127.0.0.1)")
    parser.add_argument("--rate", type=float, default=16.0,
                        help="admission: token-bucket refill rate per "
                             "tenant, tokens/second (default 16)")
    parser.add_argument("--burst", type=float, default=64.0,
                        help="admission: token-bucket capacity per "
                             "tenant (default 64)")
    parser.add_argument("--max-queue-depth", type=int, default=256,
                        help="admission: shed with 429 once this many "
                             "jobs are queued (default 256)")
    parser.add_argument("--self-check", action="store_true",
                        help="in-process round trip: N duplicate "
                             "submissions must cost exactly one solve "
                             "(CI gate; ignores --requests)")
    parser.add_argument("--self-check-http", action="store_true",
                        help="live-HTTP round trip: N duplicate POSTs "
                             "against a real server must cost exactly "
                             "one solve, asserted via /metrics (CI gate)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line on stderr")
    return parser


def _serve_self_check(args, parser) -> int:
    """The ``repro serve --self-check`` gate: dedup must actually dedup."""
    from repro.service import MappingRequest, MappingService

    duplicates = 8
    request = MappingRequest(
        app="Bitonic", n=8, num_gpus=2, budget="instant", mapper="portfolio",
    )
    with MappingService(workers=2) as service:
        tickets = [service.submit(request) for _ in range(duplicates)]
        results = [ticket.result() for ticket in tickets]
    stats = service.stats()
    identical = all(result == results[0] for result in results)
    ok = (
        identical
        and stats.solved == 1
        and stats.dedup_hits == duplicates - 1
        and stats.failed == 0
    )
    if not args.quiet or not ok:
        print(
            f"service self-check: {duplicates} duplicate submissions -> "
            f"{stats.solved} solve(s), {stats.dedup_hits} dedup hit(s), "
            f"identical results: {identical}",
            file=sys.stderr,
        )
    if not ok:
        print("service self-check FAILED", file=sys.stderr)
        return 1
    return 0


def _serve_self_check_http(args, parser) -> int:
    """The HTTP half of ``make service-check``: duplicate POSTs against
    a *live* server must cost one solve, proven by scraping /metrics."""
    import concurrent.futures
    import json as _json
    import urllib.request

    from repro.service import MappingService, serve_http

    duplicates = 8
    line = _json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                        "budget": "instant"}).encode()

    def post(url):
        request = urllib.request.Request(
            url + "/api/v1/solve", data=line, method="POST",
            headers={"X-Tenant": "self-check"},
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.read()

    with MappingService(workers=2) as service:
        server = serve_http(service, host=args.host, port=0)
        try:
            with concurrent.futures.ThreadPoolExecutor(duplicates) as pool:
                bodies = list(pool.map(
                    post, [server.url] * duplicates,
                ))
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=10,
            ) as resp:
                metrics = resp.read().decode()
        finally:
            server.stop()

    def metric(name):
        for line_ in metrics.splitlines():
            if line_.startswith(name + " "):
                return float(line_.split()[-1])
        return None

    solved = metric("repro_service_solved_total")
    dedup = sum(
        float(line_.split()[-1])
        for line_ in metrics.splitlines()
        if line_.startswith("repro_service_dedup_total{")
    )
    results = [
        _json.loads(body).get("result") for body in bodies
    ]
    identical = all(result == results[0] for result in results)
    ok = solved == 1 and dedup == duplicates - 1 and identical
    if not args.quiet or not ok:
        print(
            f"http self-check: {duplicates} duplicate POSTs -> "
            f"{solved:.0f} solve(s), {dedup:.0f} dedup hit(s) "
            f"(via /metrics), identical results: {identical}",
            file=sys.stderr,
        )
    if not ok:
        print("http self-check FAILED", file=sys.stderr)
        return 1
    return 0


def _serve_http_main(args, parser, cache, store, progress) -> int:
    """Foreground HTTP mode of ``repro serve`` (runs until SIGINT)."""
    from repro.service import (
        AdmissionController,
        MappingHTTPServer,
        MappingService,
    )

    admission = AdmissionController(
        rate=args.rate, burst=args.burst,
        max_queue_depth=args.max_queue_depth,
    )
    service = MappingService(
        cache=cache, store=store, workers=args.workers,
        executor=args.executor, progress=progress,
    )
    server = MappingHTTPServer(
        service, host=args.host, port=args.http,
        admission=admission, verbose=not args.quiet,
    )
    if not args.quiet:
        print(f"serving on {server.url} "
              f"(rate {args.rate}/s, burst {args.burst}, "
              f"queue bound {args.max_queue_depth})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        service.shutdown(wait=True)
    if not args.quiet:
        print(f"service: {service.stats().render()}", file=sys.stderr)
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro serve``."""
    from repro.service import JobStore, MappingService, serve_stream
    from repro.sweep import StageCache

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.self_check:
        return _serve_self_check(args, parser)
    if args.self_check_http:
        return _serve_self_check_http(args, parser)
    if args.http is not None and args.requests:
        parser.error("--http serves the network API; drop --requests")
    if not args.requests and args.http is None:
        parser.error("give --requests FILE ('-' for stdin), --http PORT, "
                     "or --self-check")
    if args.executor == "process" and not args.cache_dir:
        parser.error("--executor process needs --cache-dir (workers share "
                     "stage results through the disk store)")

    cache = None
    if args.cache_dir:
        try:
            cache = StageCache(args.cache_dir)
        except OSError as exc:
            parser.error(f"unusable --cache-dir {args.cache_dir!r}: {exc}")
    store = JobStore(args.store) if args.store else None
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr)
    )

    if args.http is not None:
        return _serve_http_main(args, parser, cache, store, progress)

    try:
        in_fh = sys.stdin if args.requests == "-" else open(args.requests)
    except OSError as exc:
        parser.error(f"unreadable --requests {args.requests!r}: {exc}")
    try:
        out_fh = open(args.out, "w") if args.out else sys.stdout
    except OSError as exc:
        if in_fh is not sys.stdin:
            in_fh.close()
        parser.error(f"unwritable --out {args.out!r}: {exc}")
    try:
        with MappingService(
            cache=cache, store=store, workers=args.workers,
            executor=args.executor, progress=progress,
        ) as service:
            failures = serve_stream(
                in_fh, out_fh, service, strict=args.strict
            )
    except ValueError as exc:  # --strict abort on a malformed line
        parser.error(str(exc))
    finally:
        if in_fh is not sys.stdin:
            in_fh.close()
        if out_fh is not sys.stdout:
            out_fh.close()
    if not args.quiet:
        print(f"service: {service.stats().render()}", file=sys.stderr)
        if cache is not None and cache.stats().lookups:
            print(f"stage cache: {cache.stats().render()}", file=sys.stderr)
    return 1 if failures else 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or prune a stage-cache directory.",
    )
    parser.add_argument("action", choices=("stats", "purge"),
                        help="stats: per-stage entry counts, sizes, and "
                             "persisted hit counters; purge: delete entries")
    parser.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="the cache directory to operate on")
    parser.add_argument("--stage", metavar="NAME",
                        help="restrict purge to one pipeline stage "
                             "(e.g. mapping)")
    return parser


def cache_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro cache``."""
    import os
    from collections import Counter

    from repro.sweep import StageCache

    parser = build_cache_parser()
    args = parser.parse_args(argv)
    if args.action == "stats" and args.stage:
        parser.error("--stage only applies to purge")
    if not os.path.isdir(args.cache_dir):
        parser.error(f"no such cache directory: {args.cache_dir}")
    cache = StageCache(args.cache_dir)

    if args.action == "purge":
        removed = cache.purge(stage=args.stage)
        what = f"{args.stage} entries" if args.stage else "entries"
        print(f"purged {removed} {what} from {args.cache_dir}")
        return 0

    entries = cache.disk_entries()
    counts = Counter(stage for stage, _, _ in entries)
    sizes = Counter()
    for stage, _, size in entries:
        sizes[stage] += size
    total = sum(size for _, _, size in entries)
    print(f"cache dir : {args.cache_dir}")
    print(f"entries   : {len(entries)} ({total / 1024:.1f} KiB)")
    for stage in sorted(counts):
        print(f"  {stage:10s} {counts[stage]:6d} entries "
              f"{sizes[stage] / 1024:10.1f} KiB")
    persisted = StageCache.persisted_stats(args.cache_dir)
    if persisted is not None:
        print(f"lifetime  : {persisted.render()}")
    else:
        print("lifetime  : no persisted counters "
              "(written by repro serve shutdowns)")
    return 0


def build_remap_parser() -> argparse.ArgumentParser:
    from repro.mapping.budget import BUDGET_TIERS

    parser = argparse.ArgumentParser(
        prog="repro remap",
        description="Repair a deployed mapping after a platform degrades "
                    "(kill-GPU, throttled link, slowed clock).",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="run the kill-GPU repair gate: every GPU of "
                           "every catalog platform killed under three "
                           "pinned graphs; exit 1 on any violation")
    mode.add_argument("--scenario", type=int, default=None, metavar="SEED",
                      help="generate and replay a seeded degradation "
                           "scenario on --platform")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the one-line verdict")
    parser.add_argument("--steps", type=int, default=4, metavar="K",
                        help="scripted event count (with --scenario)")
    parser.add_argument("--emit-lines", metavar="FILE",
                        help="also write the scenario as service JSONL "
                             "remap lines (with --scenario)")
    parser.add_argument("--app",
                        help="bundled benchmark or synth:<family>[;k=v...] "
                             "(direct mode)")
    parser.add_argument("--n", type=int, default=None,
                        help="benchmark size parameter (with --app)")
    parser.add_argument("--platform", choices=PLATFORM_NAMES,
                        help="named machine from the platform catalog")
    parser.add_argument("--kill-gpu", type=int, action="append", default=[],
                        metavar="G", help="kill GPU G (repeatable)")
    parser.add_argument("--throttle", action="append", default=[],
                        metavar="CHILD:FACTOR",
                        help="throttle the uplink of CHILD to FACTOR of "
                             "its bandwidth (repeatable)")
    parser.add_argument("--slow", action="append", default=[],
                        metavar="GPU:FACTOR",
                        help="slow GPU's clock by FACTOR (repeatable; "
                             "needs a platform with per-GPU specs)")
    parser.add_argument("--budget", choices=sorted(BUDGET_TIERS),
                        default="default",
                        help="solve-budget tier (see docs/SERVICE.md)")
    parser.add_argument("--alpha", type=float, default=None,
                        help="migration price in the repair objective "
                             "tmax + alpha*migration_bytes")
    parser.add_argument("--spec", choices=sorted(_SPECS), default="M2090")
    parser.add_argument("--partitioner", choices=PARTITIONERS, default="ours")
    parser.add_argument("--mapper", choices=MAPPERS, default="portfolio",
                        help="baseline mapper for the pristine machine")
    parser.add_argument("--no-p2p", action="store_true",
                        help="route inter-GPU traffic through the host")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="stage-cache directory (front half replays)")
    return parser


def _parse_factor_arg(text: str, flag: str, parser):
    try:
        name, factor = text.rsplit(":", 1)
        return name, float(factor)
    except ValueError:
        parser.error(f"bad {flag} {text!r}: expected NAME:FACTOR")


def remap_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro remap``."""
    from repro.gpu.delta import PlatformDelta
    from repro.mapping.budget import SolveBudget
    from repro.sweep import StageCache
    from repro.synth.scenarios import (
        generate_scenario,
        repair_check,
        replay_scenario,
        scenario_request_lines,
    )

    parser = build_remap_parser()
    args = parser.parse_args(argv)
    cache = StageCache(args.cache_dir) if args.cache_dir else None
    budget = SolveBudget.tier(args.budget)

    if args.check:
        report = repair_check(budget=args.budget, cache=cache)
        print(report.render())
        return 0 if report.ok else 1

    if args.scenario is not None:
        if not args.platform:
            parser.error("--scenario requires --platform")
        scenario = generate_scenario(
            args.platform, args.scenario, length=args.steps
        )
        if args.emit_lines:
            with open(args.emit_lines, "w") as fh:
                for line in scenario_request_lines(scenario,
                                                   budget=args.budget):
                    fh.write(line + "\n")
            print(f"wrote scenario request lines to {args.emit_lines}",
                  file=sys.stderr)
        report = replay_scenario(scenario, budget=args.budget, cache=cache)
        text = report.render()
        print(text.splitlines()[-1].strip() if args.quiet else text)
        return 0 if report.ok else 1

    # direct mode: one degraded machine, one repair
    if not args.app or args.n is None or not args.platform:
        parser.error("direct mode needs --app, --n, and --platform "
                     "(or use --check / --scenario)")
    deltas = [PlatformDelta.kill_gpu(g) for g in args.kill_gpu]
    deltas += [
        PlatformDelta.throttle_link(name, factor)
        for name, factor in (
            _parse_factor_arg(t, "--throttle", parser)
            for t in args.throttle
        )
    ]
    deltas += [
        PlatformDelta.slow_gpu(int(name), factor)
        for name, factor in (
            _parse_factor_arg(s, "--slow", parser) for s in args.slow
        )
    ]
    if not deltas:
        parser.error("direct mode needs at least one of --kill-gpu, "
                     "--throttle, --slow")
    from repro.flow import remap_stream_graph

    graph = build_app(args.app, args.n)
    try:
        out = remap_stream_graph(
            graph, args.platform, deltas,
            spec=_SPECS[args.spec], partitioner=args.partitioner,
            mapper=args.mapper, peer_to_peer=not args.no_p2p,
            alpha=args.alpha, solve_budget=budget, cache=cache,
        )
    except ValueError as exc:
        parser.error(str(exc))
    repair = out.repair
    degraded = out.degraded
    print(f"graph     : {graph.name} ({out.num_partitions} partitions)")
    print(f"platform  : {args.platform} -> {degraded.topology.num_gpus} "
          f"GPU(s) after {len(deltas)} delta(s)")
    if out.baseline is not None:
        print(f"baseline  : {out.baseline.solver}, "
              f"Tmax {out.baseline.tmax / 1e3:.1f} us/fragment")
    print(f"repair    : {repair.mapping.solver}, "
          f"Tmax {repair.mapping.tmax / 1e3:.1f} us/fragment"
          f"{' (portfolio fallback)' if repair.fallback else ''}")
    print(f"churn     : {len(repair.migrated)} migrated, "
          f"{len(repair.evicted)} evicted, "
          f"{repair.migration_bytes:.0f} bytes moved "
          f"({repair.moves} polish moves)")
    print(f"assignment: {list(repair.mapping.assignment)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "synth":
        return synth_main(argv[1:])
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "remap":
        return remap_main(argv[1:])
    if argv and argv[0] == "map":
        argv = argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.platform and args.gpus is not None:
        parser.error("--platform fixes the GPU count; drop --gpus")

    if args.app:
        if args.n is None:
            parser.error("--app requires --n")
        if not is_known_app(args.app):
            parser.error(
                f"unknown app {args.app!r}; known: {', '.join(sorted(APPS))} "
                "plus synth:<family>"
            )
        graph = build_app(args.app, args.n)
    elif args.stream:
        from repro.frontend import compile_stream

        with open(args.stream) as fh:
            graph = compile_stream(fh.read())
    else:
        graph = json_io.load(args.graph)

    topology = build_platform(args.platform) if args.platform else None
    num_gpus = (
        topology.num_gpus if topology is not None
        else (args.gpus if args.gpus is not None else 1)
    )
    result = map_stream_graph(
        graph,
        num_gpus=num_gpus,
        spec=_SPECS[args.spec],
        partitioner=args.partitioner,
        mapper=args.mapper,
        peer_to_peer=not args.no_p2p,
        topology=topology,
    )

    if args.report:
        from repro.perf.report import flow_report

        print(flow_report(result))
        print()
    report = result.report
    print(f"graph     : {graph.name} ({len(graph.nodes)} filters)")
    print(f"partitions: {result.num_partitions} "
          f"({sum(1 for e in map(result.engine.estimate, result.partitions) if e.is_compute_bound)} compute-bound)")
    print(f"mapping   : {result.mapping.solver}, "
          f"Tmax {result.mapping.tmax / 1e3:.1f} us/fragment, "
          f"bottleneck {result.mapping.bottleneck}")
    print(f"assignment: {list(result.mapping.assignment)}")
    machine = f" on {args.platform}" if args.platform else ""
    print(f"execution : beat {report.beat_ns / 1e3:.1f} us, "
          f"throughput {report.throughput * 1e6:.1f} exec/ms over "
          f"{num_gpus} GPU(s){machine}")

    if args.save_graph:
        json_io.save(graph, args.save_graph)
        print(f"wrote graph JSON to {args.save_graph}")
    if args.dot:
        mapping = partition_map(result.partitions)
        with open(args.dot, "w") as fh:
            fh.write(to_dot(graph, partition_of=mapping))
        print(f"wrote Graphviz view to {args.dot}")
    if args.emit_cuda:
        configs = [
            result.engine.estimate(members).config
            for members in result.partitions
        ]
        program = generate_program(
            graph, result.partitions, configs, result.mapping.assignment,
            spec=_SPECS[args.spec], peer_to_peer=not args.no_p2p,
        )
        with open(args.emit_cuda, "w") as fh:
            fh.write(program.full_source())
        print(f"wrote CUDA program to {args.emit_cuda}")
    if args.trace or args.gantt:
        from repro.gpu.topology import default_topology

        _, events = record_trace(
            result.pdg,
            result.mapping.assignment,
            topology if topology is not None else default_topology(num_gpus),
            result.engine.simulator,
            result.measurements,
            peer_to_peer=not args.no_p2p,
        )
        if args.trace:
            with open(args.trace, "w") as fh:
                fh.write(to_chrome_trace(events))
            print(f"wrote Chrome trace ({len(events)} events) to {args.trace}")
        if args.gantt:
            from repro.runtime.gantt import render_gantt

            horizon = min(
                report.makespan_ns, 6 * report.pipeline_fill_ns or report.makespan_ns
            )
            print()
            print(render_gantt(events, width=96, until_ns=horizon))
    return 0


if __name__ == "__main__":
    sys.exit(main())
