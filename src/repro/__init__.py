"""Communication-aware mapping of stream graphs for multi-GPU platforms.

A reproduction of the CGO 2016 line of work by Nguyen & Lee: a compile
flow that partitions StreamIt-style stream graphs and maps the partitions
onto multi-GPU machines with an ILP that balances computation *and*
PCIe-link communication, validated end to end on a calibrated simulator.

Typical entry points::

    from repro import build_app, map_stream_graph

    graph = build_app("DES", 16)
    result = map_stream_graph(graph, num_gpus=4)
    print(result.mapping.assignment, result.report.throughput)

Batched grids run through the sweep engine::

    from repro import StageCache, SweepRunner, SweepSpec

    spec = SweepSpec(cases=[("DES", 16)], gpu_counts=(1, 2, 4))
    result = SweepRunner(cache=StageCache()).run(spec)

Request-style serving (dedup, deadline budgets, the anytime solver
portfolio) goes through the mapping service::

    from repro import MappingRequest, MappingService

    with MappingService(workers=2) as service:
        ticket = service.submit(MappingRequest(app="DES", n=16,
                                               num_gpus=4))
        print(ticket.result()["tmax"])

See :mod:`repro.flow` for the pipeline facade and its stages,
:mod:`repro.sweep` for the sweep engine, :mod:`repro.service` for the
serving layer, :mod:`repro.experiments` for the paper's tables/figures,
and ``repro-map`` / ``repro sweep`` / ``repro serve`` /
``repro-experiments`` for the command-line tools.  ``README.md`` has the
quickstart; ``docs/ARCHITECTURE.md`` walks the whole pipeline and
``docs/SERVICE.md`` the service.
"""

from repro.apps import build_app
from repro.flow import FlowResult, map_stream_graph
from repro.frontend import compile_stream, parse_stream
from repro.graph import (
    Channel,
    FilterNode,
    FilterRole,
    FilterSpec,
    StreamGraph,
    flatten,
    graph_fingerprint,
)
from repro.gpu import (
    C2070,
    M2090,
    PLATFORM_NAMES,
    GpuSpec,
    GpuTopology,
    KernelConfig,
    KernelSimulator,
    build_platform,
    default_topology,
)
from repro.mapping import SolveBudget
from repro.perf import PerformanceEstimationEngine
from repro.partition import partition_stream_graph
from repro.service import (
    MappingRequest,
    MappingService,
    solve_portfolio,
)
from repro.sweep import (
    StageCache,
    SweepPoint,
    SweepRunner,
    SweepSpec,
)

__version__ = "1.4.0"

__all__ = [
    "C2070",
    "Channel",
    "FilterNode",
    "FilterRole",
    "FilterSpec",
    "FlowResult",
    "GpuSpec",
    "GpuTopology",
    "KernelConfig",
    "KernelSimulator",
    "M2090",
    "MappingRequest",
    "MappingService",
    "PLATFORM_NAMES",
    "PerformanceEstimationEngine",
    "SolveBudget",
    "StageCache",
    "StreamGraph",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "__version__",
    "build_app",
    "build_platform",
    "compile_stream",
    "default_topology",
    "flatten",
    "graph_fingerprint",
    "map_stream_graph",
    "parse_stream",
    "partition_stream_graph",
    "solve_portfolio",
]
