PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast bench bench-sweep docs-check experiments clean

## tier-1 verify: the full suite, benchmarks included (see ROADMAP.md)
test:
	$(PYTHON) -m pytest -x -q

## unit/property/integration tests only (skips the benchmark harnesses)
test-fast:
	$(PYTHON) -m pytest tests -x -q

## the full benchmark suite
bench:
	$(PYTHON) -m pytest benchmarks -q

## just the sweep-engine benchmark: serial-uncached vs parallel-cached
bench-sweep:
	$(PYTHON) -m pytest benchmarks/test_bench_sweep.py -q

## fail if a public API symbol lacks a docstring / doctest example
docs-check:
	$(PYTHON) tools/docs_check.py

## regenerate every paper table/figure (quick sweeps, cached)
experiments:
	$(PYTHON) -m repro.experiments all --cache-dir .sweep-cache

clean:
	rm -rf .sweep-cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
