PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast test-slow synth-check platform-check service-check perf-check batch-check remap-check bench bench-sweep bench-kernel bench-milp bench-service bench-repair docs-check experiments clean

## tier-1 verify: the full suite, benchmarks included (see ROADMAP.md);
## gated on the synth generate+diffcheck smoke check, the platform
## property suite, the service dedup round trip, the kernel perf bar,
## and the kill-GPU repair gate
test: synth-check platform-check service-check perf-check batch-check remap-check
	$(PYTHON) -m pytest -x -q

## unit/property/integration tests only (skips the benchmark harnesses)
test-fast:
	$(PYTHON) -m pytest tests -x -q

## opt-in wide synthetic-corpus sweeps (pytest -m slow, REPRO_SLOW gate)
test-slow:
	REPRO_SLOW=1 $(PYTHON) -m pytest tests -m slow -q

## generate + differential-check the tiny synthetic corpus (CI gate)
synth-check:
	$(PYTHON) -m repro.cli synth --check --quiet

## the heterogeneous-platform property suite: randomized-tree dtlist and
## evaluator cross-checks, golden link tables, solver heterogeneity
platform-check:
	$(PYTHON) -m pytest tests/test_platforms.py -x -q

## fast service round trips, in-process and over HTTP: 8 duplicate
## submissions must cost exactly one solve and return identical
## results, with the HTTP leg verified through /metrics (CI gate)
service-check:
	$(PYTHON) -m repro.cli serve --self-check --quiet
	$(PYTHON) -m repro.cli serve --self-check-http --quiet

## ratio-based perf gate: delta scoring must stay >=10x the interpreted
## evaluator on the quick corpus, and MILP model rebinds >=1.5x the
## legacy per-solve rebuild (stable under load; see tools/perf_check.py)
perf-check:
	$(PYTHON) tools/perf_check.py

## fast batch-evaluator gate: population-scoring exactness (bitwise vs
## the interpreted evaluator, NumPy and fallback) + metaheuristic
## determinism; the full property suites run under `make test` anyway
batch-check:
	$(PYTHON) -m pytest tests/test_batch_properties.py tests/test_metaheuristic.py -x -q

## the kill-GPU repair gate: every GPU of every catalog platform killed
## under three pinned graphs — repaired mappings must stay valid,
## bit-exact under the shared evaluator, and never worse than
## greedy-from-scratch (CI gate; see docs/SCENARIOS.md)
remap-check:
	$(PYTHON) -m repro.cli remap --check --quiet

## the full benchmark suite
bench:
	$(PYTHON) -m pytest benchmarks -q

## just the sweep-engine benchmark: serial-uncached vs parallel-cached
bench-sweep:
	$(PYTHON) -m pytest benchmarks/test_bench_sweep.py -q

## the compiled-kernel benchmark: measures eval/delta/B&B/refine rates
## and writes/updates BENCH_kernel.json (the perf trajectory record)
bench-kernel:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py -q

## the MILP model-reuse benchmark: preparation rates (rebind vs legacy
## rebuild) and solve amortization, recorded into BENCH_milp.json
bench-milp:
	$(PYTHON) -m pytest benchmarks/test_bench_milp.py -q

## the HTTP serving-tier load benchmark: duplicate-heavy and
## adversarial-unique mixes against a live server, recorded into
## BENCH_service.json (runs under `make test` too, via benchmarks/)
bench-service:
	$(PYTHON) -m pytest benchmarks/test_bench_service.py -q

## the incremental-repair benchmark: repair vs full re-solve wall time
## and quality gap after a kill-GPU delta, recorded into BENCH_repair.json
bench-repair:
	$(PYTHON) -m pytest benchmarks/test_bench_repair.py -q

## fail if a public API symbol lacks a docstring / doctest example
docs-check:
	$(PYTHON) tools/docs_check.py

## regenerate every paper table/figure (quick sweeps, cached)
experiments:
	$(PYTHON) -m repro.experiments all --cache-dir .sweep-cache

clean:
	rm -rf .sweep-cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
