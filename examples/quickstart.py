#!/usr/bin/env python3
"""Quickstart: map a stream graph onto a simulated 4-GPU machine.

Builds a small video-pipeline-like stream graph with the composition DSL,
runs the full flow (profile -> partition -> ILP map -> pipelined
execution), and prints what the compiler decided.
"""

from repro.apps import build_app
from repro.flow import map_stream_graph
from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    splitjoin,
)


def build_toy_app():
    """A decode -> (4 parallel enhancement stages) -> blend pipeline."""
    stages = [
        pipeline(
            FilterSpec(name=f"enhance{i}.fir", pop=64, push=64, peek=96,
                       work=6000.0),
            FilterSpec(name=f"enhance{i}.gamma", pop=64, push=64, work=800.0,
                       semantics="scale", params=(1.1,)),
            name=f"enhance{i}",
        )
        for i in range(4)
    ]
    enhancement = splitjoin(
        duplicate(64, 4), stages, join_roundrobin(64, 64, 64, 64),
        name="enhancement",
    )
    root = pipeline(
        source("capture", 64, work=64),
        FilterSpec(name="decode", pop=64, push=64, work=2000.0),
        enhancement,
        FilterSpec(name="blend", pop=256, push=64, work=1200.0,
                   semantics="add"),
        sink("display", 64, work=64),
        name="toy-video",
    )
    return flatten(root, "toy-video")


def main() -> None:
    graph = build_toy_app()
    print(f"graph: {graph.name} with {len(graph.nodes)} filters, "
          f"{len(graph.channels)} channels")

    result = map_stream_graph(graph, num_gpus=4)

    print(f"\npartitioning: {result.num_partitions} partitions")
    for pid, members in enumerate(result.partitions):
        estimate = result.engine.estimate(members)
        names = ", ".join(
            graph.nodes[nid].spec.name for nid in sorted(members)
        )
        kind = "compute" if estimate.is_compute_bound else "IO"
        print(f"  P{pid} -> GPU{result.mapping.assignment[pid]} "
              f"[{estimate.config.describe()}, {kind}-bound, "
              f"T={estimate.t:.0f} ns/exec]: {names}")

    print(f"\nmapping solved by {result.mapping.solver}; "
          f"bottleneck: {result.mapping.bottleneck} "
          f"(Tmax = {result.mapping.tmax / 1e3:.1f} us/fragment)")

    report = result.report
    print(f"\npipelined execution of {report.num_fragments} fragments x "
          f"{report.executions_per_fragment} executions:")
    print(f"  makespan          {report.makespan_ns / 1e6:.3f} ms")
    print(f"  steady-state beat {report.beat_ns / 1e3:.1f} us/fragment")
    print(f"  throughput        {report.throughput * 1e6:.1f} executions/ms")

    baseline = map_stream_graph(graph, num_gpus=1, engine=result.engine)
    speedup = result.throughput / baseline.throughput
    print(f"  speedup over 1 GPU: {speedup:.2f}x")

    # the same flow runs any bundled benchmark:
    des = build_app("DES", 8)
    des_result = map_stream_graph(des, num_gpus=2)
    print(f"\nbundled DES(8): {des_result.num_partitions} partitions, "
          f"{des_result.throughput * 1e6:.1f} executions/ms on 2 GPUs")


if __name__ == "__main__":
    main()
