#!/usr/bin/env python3
"""Chapter V demo: eliminating splitters and joiners.

Shows the transform on Bitonic (mover-heavy) end to end: the structural
change, the functional-equivalence check on real data, the shared-memory
savings, and the SPSG runtime effect that Table 5.1 reports.
"""

from repro.apps import build_app
from repro.flow import map_stream_graph
from repro.gpu.functional import FunctionalVM
from repro.gpu.memory import partition_memory
from repro.opt.splitjoin_elim import eliminate_movers


def main() -> None:
    graph = build_app("Bitonic", 32)
    movers = sum(1 for n in graph.nodes if n.spec.role.is_data_movement)
    print(f"Bitonic(32): {len(graph.nodes)} filters, {movers} of them "
          "splitters/joiners")

    enhanced, report = eliminate_movers(graph)
    print(f"eliminated {report.splitters_removed} splitters and "
          f"{report.joiners_removed} joiners "
          f"({report.splitters_kept + report.joiners_kept} kept)")

    base_out = FunctionalVM(graph).run(3)
    enh_out = FunctionalVM(enhanced).run(3)
    assert base_out == enh_out, "transform must not change program output"
    print("functional equivalence on 3 steady-state iterations: OK")

    before = partition_memory(graph).working_set
    after = partition_memory(enhanced).working_set
    print(f"whole-graph shared-memory working set: {before} -> {after} bytes "
          f"({before / after:.2f}x smaller)")

    original = map_stream_graph(graph, num_gpus=1, partitioner="single")
    improved = map_stream_graph(enhanced, num_gpus=1, partitioner="single")
    speedup = original.report.makespan_ns / improved.report.makespan_ns
    print(f"SPSG runtime (Table 5.1 regime): {speedup:.2f}x faster "
          "after elimination")


if __name__ == "__main__":
    main()
