#!/usr/bin/env python3
"""The heterogeneous extension of the mapping ILP (Section 3.2.2).

"We assume that GPUs are homogeneous, but our ILP formulation can also be
extended to heterogeneous cases."  This example exercises that extension:
the same DCT instance is mapped onto a homogeneous quad and onto a
machine where two of the four boards run at 60% speed, and the per-GPU
load shares shift accordingly.
"""

from repro.apps import build_app
from repro.flow import map_stream_graph
from repro.perf.engine import PerformanceEstimationEngine


def share_table(result, slowdown):
    loads = [0.0] * result.num_gpus
    for pid, gpu in enumerate(result.mapping.assignment):
        loads[gpu] += result.pdg.nodes[pid].t_fragment * slowdown[gpu]
    total = sum(loads)
    return [load / total for load in loads]


def main() -> None:
    graph = build_app("DCT", 14)
    engine = PerformanceEstimationEngine(graph)

    uniform = [1.0, 1.0, 1.0, 1.0]
    mixed = [1.0, 1.0, 1.67, 1.67]  # two boards at 60% speed

    print(f"DCT(14): {len(graph.nodes)} filters")
    for label, slowdown in (("homogeneous", uniform), ("2 fast + 2 slow", mixed)):
        result = map_stream_graph(
            graph, num_gpus=4, engine=engine, gpu_slowdown=slowdown
        )
        shares = share_table(result, slowdown)
        parts = [0] * 4
        for gpu in result.mapping.assignment:
            parts[gpu] += 1
        print(f"\n{label} (slowdowns {slowdown}):")
        print(f"  ILP Tmax {result.mapping.tmax / 1e3:.1f} us/fragment")
        for gpu in range(4):
            print(f"  gpu{gpu}: {parts[gpu]:2d} partitions, "
                  f"{shares[gpu] * 100:4.1f}% of the adjusted load")

    fast_parts = []
    slow_parts = []
    result = map_stream_graph(
        graph, num_gpus=4, engine=engine, gpu_slowdown=mixed
    )
    for pid, gpu in enumerate(result.mapping.assignment):
        (fast_parts if mixed[gpu] == 1.0 else slow_parts).append(
            result.pdg.nodes[pid].t_fragment
        )
    print(f"\nwork placed on fast boards: {sum(fast_parts) / 1e3:.1f} us; "
          f"slow boards: {sum(slow_parts) / 1e3:.1f} us "
          "(the ILP shifts load toward the fast pair)")


if __name__ == "__main__":
    main()
