#!/usr/bin/env python3
"""Exploring interconnect topologies and the dtlist rule.

The ILP's communication constraints hinge on the PCIe tree: which
source/destination GPU pairs load which link (Section 3.2.1).  This
example prints the dtlist of every link of the reference 4-GPU machine,
then maps the same application onto three different interconnects to
show the mapping adapting:

* the reference switch tree (gpu0/gpu1 near, gpu2/gpu3 far),
* a flat tree (every GPU one hop from the host),
* a degraded tree with half the link bandwidth.
"""

from repro.apps import build_app
from repro.flow import map_stream_graph
from repro.gpu.specs import LinkSpec
from repro.gpu.topology import HOST, GpuTopology, default_topology
from repro.perf.engine import PerformanceEstimationEngine


def show_dtlist() -> None:
    topo = default_topology(4)
    print("dtlist(l) for the reference tree (Figure 3.3):")
    for link in topo.links:
        pairs = topo.dtlist(link.link_id)
        if pairs:
            print(f"  {link.name:12s} carries {pairs}")


def flat_topology(link_spec=None) -> GpuTopology:
    edges = [(f"gpu{i}", HOST) for i in range(4)]
    kwargs = {"link_spec": link_spec} if link_spec else {}
    return GpuTopology(edges, num_gpus=4, **kwargs)


def main() -> None:
    show_dtlist()

    graph = build_app("DCT", 18)
    engine = PerformanceEstimationEngine(graph)
    slow_link = LinkSpec(bandwidth_bytes_per_ns=3.0, latency_ns=10_000.0)
    cases = {
        "reference tree": default_topology(4),
        "flat (all GPUs at host)": flat_topology(),
        "half-bandwidth tree": default_topology(4, slow_link),
    }
    print(f"\nmapping DCT(18) onto 4 GPUs under different interconnects:")
    for label, topology in cases.items():
        result = map_stream_graph(
            graph, num_gpus=4, topology=topology, engine=engine
        )
        comm = max(result.mapping.link_times) / 1e3
        print(f"  {label:26s} Tmax={result.mapping.tmax / 1e3:8.1f} us  "
              f"worst link {comm:7.1f} us  bottleneck={result.mapping.bottleneck}")


if __name__ == "__main__":
    main()
