"""Generate a synthetic corpus, cross-check the solvers, and sweep it.

Run with ``PYTHONPATH=src python examples/synthetic_corpus.py``.
"""

from repro.sweep import StageCache, SweepRunner, SweepSpec
from repro.synth import diffcheck_graph, generate

# -- one instance, end to end -------------------------------------------
instance = generate("splitjoin", seed=7)
print(f"{instance.spec.instance_name}: {len(instance.graph.nodes)} filters")
print(f"fingerprint {instance.fingerprint[:16]}...")
print()
print(instance.source())  # stream-language program, reparseable

# -- differential solver check ------------------------------------------
report = diffcheck_graph(instance, num_gpus=4)
print(report.render())
for name, outcome in sorted(report.outcomes.items()):
    tag = "optimal" if outcome.optimal else "heuristic"
    print(f"  {name:18s} tmax {outcome.tmax / 1e3:8.1f} us  ({tag})")

# -- a cached sweep over a seeded corpus --------------------------------
spec = SweepSpec(
    synth_cases=[("butterfly", s) for s in range(4)],
    gpu_counts=(1, 2),
    mappers=("ilp", "lpt"),
)
result = SweepRunner(cache=StageCache()).run(spec)
print()
for rec in result.records:
    print(f"{rec.point.label():45s} thr {rec.throughput * 1e6:8.1f} exec/ms")
