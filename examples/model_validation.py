#!/usr/bin/env python3
"""Validating the performance model on one application (mini Figure 4.1).

Fits the transfer constants C1/C2 by regression against the simulator
(Section 4.0.1 finds 38.4 and 11.2), then predicts every partition the
heuristic selects for Bitonic and compares against "measured" kernel
times, reporting the correlation.
"""

from repro.apps import build_app
from repro.metrics.stats import r_squared
from repro.partition.heuristic import partition_stream_graph
from repro.perf.engine import PerformanceEstimationEngine
from repro.perf.regression import fit_transfer_constants


def main() -> None:
    report = fit_transfer_constants()
    print("transfer-constant regression (paper: C1=38.4, C2=11.2):")
    print(f"  C1={report.c1:.1f}  C2={report.c2:.1f}  "
          f"R^2={report.r_squared:.3f}  ({report.samples} probe kernels)")

    predicted, measured = [], []
    for n in (16, 32, 64):
        graph = build_app("Bitonic", n)
        engine = PerformanceEstimationEngine(graph)
        partitions = partition_stream_graph(graph, engine=engine).partitions
        for members in partitions:
            estimate = engine.estimate(members)
            measurement = engine.measure(members)
            predicted.append(estimate.estimate.t_exec)
            measured.append(measurement.t_exec)

    print(f"\nBitonic partitions validated: {len(predicted)}")
    print(f"prediction R^2 (paper reports 0.972 suite-wide): "
          f"{r_squared(predicted, measured):.3f}")
    worst = max(
        (m / p, p, m) for p, m in zip(predicted, measured)
    )
    print(f"worst underprediction: measured/predicted = {worst[0]:.2f} "
          f"(the paper attributes such outliers to SM bank conflicts)")


if __name__ == "__main__":
    main()
