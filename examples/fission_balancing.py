#!/usr/bin/env python3
"""Fission: breaking a thread-starved hot filter across GPUs.

The related work balances loads by "fissioning stateless filters".  The
mechanism only pays off when a filter's data parallelism exceeds what one
kernel can exploit: an SM keeps ~576 threads latency-hidden, so a filter
firing thousands of times per execution is *thread-starved* — its kernel
latency is work/576 no matter what.  Fissioning it into replicas lets the
mapper put each replica's 576 threads on a different GPU.

The example maps original and fissioned versions one-kernel-per-filter
(so the effect is isolated from partitioning policy; Algorithm 1's greedy
merging may well re-fuse neutral-looking replicas — the "greedy nature"
limitation the paper's conclusion acknowledges).
"""

from repro.flow import map_stream_graph
from repro.graph.builder import GraphBuilder
from repro.graph.filters import FilterRole
from repro.gpu.functional import FunctionalVM
from repro.opt.fission import fission_filters

FIRINGS = 2048  # >> 576: one kernel cannot use all the parallelism


def build_hotspot():
    b = GraphBuilder("hotspot")
    src = b.filter("src", pop=0, push=FIRINGS, role=FilterRole.SOURCE,
                   semantics="source")
    hot = b.filter("hot", pop=1, push=1, work=4000.0,
                   semantics="scale", params=(1.5,))
    snk = b.filter("snk", pop=FIRINGS, push=0, role=FilterRole.SINK,
                   semantics="sink")
    b.connect(src, hot)
    b.connect(hot, snk)
    return b.build()


def main() -> None:
    graph = build_hotspot()
    base = map_stream_graph(graph, num_gpus=4, partitioner="perfilter")
    print(f"original : hot filter fires {FIRINGS}x/execution, "
          f"Tmax {base.mapping.tmax / 1e3:7.1f} us, "
          f"throughput {base.throughput * 1e6:7.1f} exec/ms")

    split, report = fission_filters(graph, ways=4)
    assert report.fissioned == (("hot", 4),), report

    # the transform must not change the computation
    a = FunctionalVM(graph).run(2)
    b = FunctionalVM(split).run(2)
    assert a == b, "fission changed program output!"
    print("functional equivalence: OK")

    better = map_stream_graph(split, num_gpus=4, partitioner="perfilter")
    print(f"fissioned: 4 replicas of {FIRINGS // 4} firings, "
          f"Tmax {better.mapping.tmax / 1e3:7.1f} us, "
          f"throughput {better.throughput * 1e6:7.1f} exec/ms")
    print(f"replica GPUs: "
          f"{sorted(set(better.mapping.assignment))}")
    print(f"speedup from fission: "
          f"{better.throughput / base.throughput:.2f}x on 4 GPUs")


if __name__ == "__main__":
    main()
