#!/usr/bin/env python3
"""Domain scenario: scaling a software-radio equalizer across GPUs.

The FMRadio benchmark is the paper's motivating DSP workload: a wide
duplicate fan-out of band-pass filters.  This example sweeps the band
count and the GPU count, showing

* how the partition count tracks the equalizer width,
* where the ILP places the bands (and why the duplicate fan-out makes
  communication the binding constraint at small work-per-band),
* the broadcast deduplication the runtime applies (one copy per
  destination GPU, not per band).
"""

from repro.apps import build_app
from repro.flow import map_stream_graph
from repro.perf.engine import PerformanceEstimationEngine


def main() -> None:
    print(f"{'bands':>6} {'parts':>6} {'1-GPU':>9} {'2-GPU':>9} {'4-GPU':>9}"
          f" {'bottleneck':>14}")
    for bands in (4, 8, 16, 32):
        graph = build_app("FMRadio", bands)
        engine = PerformanceEstimationEngine(graph)
        base = map_stream_graph(graph, num_gpus=1, engine=engine)
        row = [f"{bands:>6}", f"{base.num_partitions:>6}", f"{1.0:>9.2f}"]
        last = None
        for gpus in (2, 4):
            mapped = map_stream_graph(graph, num_gpus=gpus, engine=engine)
            row.append(f"{mapped.throughput / base.throughput:>9.2f}")
            last = mapped
        row.append(f"{last.mapping.bottleneck:>14}")
        print(" ".join(row))

    print("\nwhere the 32-band equalizer landed (4 GPUs):")
    graph = build_app("FMRadio", 32)
    result = map_stream_graph(graph, num_gpus=4)
    per_gpu = {}
    for pid, members in enumerate(result.partitions):
        gpu = result.mapping.assignment[pid]
        names = [graph.nodes[n].spec.name for n in members]
        bands = sum(1 for n in names if ".bpf" in n)
        per_gpu.setdefault(gpu, [0, 0])
        per_gpu[gpu][0] += 1
        per_gpu[gpu][1] += bands
    for gpu in sorted(per_gpu):
        parts, bands = per_gpu[gpu]
        print(f"  GPU{gpu}: {parts} partitions, {bands} equalizer bands")

    groups = result.pdg.broadcasts
    if groups:
        fanout = len(groups[0].destinations)
        gpus_used = len(
            {result.mapping.assignment[d] for d in groups[0].destinations}
        )
        print(f"\nduplicate fan-out: {fanout} branch partitions, but the "
              f"runtime ships only {gpus_used} copies (one per GPU)")


if __name__ == "__main__":
    main()
