"""Tests for the pipelined executor and the end-to-end flow facade."""

import pytest

from repro.flow import map_stream_graph
from repro.graph.builder import linear_pipeline_graph
from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import duplicate, join_roundrobin, pipeline, splitjoin
from repro.gpu.simulator import KernelSimulator
from repro.gpu.specs import M2090
from repro.gpu.topology import default_topology
from repro.partition.pdg import build_pdg
from repro.perf.engine import PerformanceEstimationEngine
from repro.runtime.executor import PipelinedExecutor, measure_partitions
from repro.runtime.fragments import FragmentPlan
from repro.runtime.throughput import speedup, utilization


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


def _app(branches=4, rate=32, work=2000.0, depth=2):
    branch_nodes = [
        pipeline(*[_f(f"b{b}s{d}", rate, rate, work=work) for d in range(depth)])
        for b in range(branches)
    ]
    sj = splitjoin(
        duplicate(rate, branches), branch_nodes,
        join_roundrobin(*([rate] * branches)),
    )
    return flatten(
        pipeline(source("src", rate), sj, sink("snk", rate * branches)), "rt-app"
    )


def _pdg_fixture(num_parts=3, work=2000.0):
    g = linear_pipeline_graph("chain", stages=6, rate=16, work=work)
    engine = PerformanceEstimationEngine(g)
    order = g.topological_order()
    chunk = len(order) // num_parts
    partitions = [
        frozenset(order[i * chunk : (i + 1) * chunk if i < num_parts - 1 else None])
        for i in range(num_parts)
    ]
    pdg = build_pdg(g, partitions, engine)
    return g, engine, pdg


class TestFragmentPlan:
    def test_totals(self):
        plan = FragmentPlan(8, 64)
        assert plan.total_executions == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            FragmentPlan(0, 1)
        with pytest.raises(ValueError):
            FragmentPlan(1, 0)


class TestExecutor:
    def _executor(self, gpus, assignment=None, pdg_parts=3):
        g, engine, pdg = _pdg_fixture(pdg_parts)
        topo = default_topology(gpus)
        sim = engine.simulator
        ms = measure_partitions(pdg, sim, engine)
        assignment = assignment or [0] * len(pdg)
        return PipelinedExecutor(pdg, assignment, topo, sim, ms), pdg

    def test_single_gpu_serializes_kernels(self):
        ex, pdg = self._executor(1)
        plan = FragmentPlan(4, 128)
        report = ex.run(plan)
        # with everything on one GPU, busy time ~= sum of kernel times
        assert report.gpu_busy_ns[0] <= report.makespan_ns

    def test_more_fragments_longer_makespan(self):
        ex, _ = self._executor(1)
        short = ex.run(FragmentPlan(2, 128))
        long = ex.run(FragmentPlan(8, 128))
        assert long.makespan_ns > short.makespan_ns

    def test_pipelining_beats_serial_scaling(self):
        """Doubling fragments must far less than double the makespan once
        the pipeline is full (overlap across GPUs)."""
        ex, pdg = self._executor(3, assignment=[0, 1, 2])
        a = ex.run(FragmentPlan(4, 128))
        b = ex.run(FragmentPlan(8, 128))
        assert b.makespan_ns < 2.0 * a.makespan_ns

    def test_throughput_and_beat(self):
        ex, _ = self._executor(2, assignment=[0, 0, 1])
        report = ex.run(FragmentPlan(8, 128))
        assert report.throughput > 0
        assert report.beat_ns <= report.makespan_ns
        assert report.pipeline_fill_ns <= report.makespan_ns

    def test_validation(self):
        g, engine, pdg = _pdg_fixture(3)
        topo = default_topology(2)
        ms = measure_partitions(pdg, engine.simulator, engine)
        with pytest.raises(ValueError):
            PipelinedExecutor(pdg, [0] * (len(pdg) - 1), topo, engine.simulator, ms)
        with pytest.raises(ValueError):
            PipelinedExecutor(pdg, [0, 0, 5], topo, engine.simulator, ms)
        with pytest.raises(ValueError):
            PipelinedExecutor(pdg, [0] * len(pdg), topo, engine.simulator, ms[:-1])

    def test_via_host_slower_than_p2p(self):
        g, engine, pdg = _pdg_fixture(3, work=50.0)
        topo = default_topology(2)
        ms = measure_partitions(pdg, engine.simulator, engine)
        p2p = PipelinedExecutor(pdg, [0, 1, 0], topo, engine.simulator, ms,
                                peer_to_peer=True).run(FragmentPlan(8, 128))
        hosted = PipelinedExecutor(pdg, [0, 1, 0], topo, engine.simulator, ms,
                                   peer_to_peer=False).run(FragmentPlan(8, 128))
        assert hosted.makespan_ns >= p2p.makespan_ns

    def test_utilization_bounds(self):
        ex, _ = self._executor(2, assignment=[0, 1, 0])
        report = ex.run(FragmentPlan(4, 128))
        for gpu in range(2):
            assert 0.0 <= utilization(report, gpu) <= 1.0


class TestFlow:
    def test_end_to_end_ours(self):
        g = _app()
        result = map_stream_graph(g, num_gpus=2)
        assert result.num_partitions >= 1
        assert result.throughput > 0
        assert len(result.mapping.assignment) == result.num_partitions

    def test_multi_gpu_helps_compute_bound(self):
        g = _app(branches=4, rate=16, work=20_000.0, depth=3)
        engine = PerformanceEstimationEngine(g)
        one = map_stream_graph(g, num_gpus=1, engine=engine)
        four = map_stream_graph(g, num_gpus=4, engine=engine)
        assert speedup(four.report, one.report) > 1.5

    def test_partitioner_strategies(self):
        g = _app()
        single = map_stream_graph(g, num_gpus=1, partitioner="single")
        assert single.num_partitions == 1
        prev = map_stream_graph(g, num_gpus=1, partitioner="previous")
        assert prev.num_partitions >= 1

    def test_mapper_strategies(self):
        g = _app(work=8000.0)
        for mapper in ("ilp", "ilp-nocomm", "lpt", "roundrobin"):
            result = map_stream_graph(g, num_gpus=2, mapper=mapper)
            assert result.report.makespan_ns > 0

    def test_ilp_not_worse_than_lpt_on_tmax(self):
        g = _app(branches=6, rate=32, work=5000.0, depth=3)
        engine = PerformanceEstimationEngine(g)
        ilp = map_stream_graph(g, num_gpus=4, mapper="ilp", engine=engine)
        lpt = map_stream_graph(g, num_gpus=4, mapper="lpt", engine=engine)
        assert ilp.mapping.tmax <= lpt.mapping.tmax + 1e-6

    def test_unknown_strategy_rejected(self):
        g = _app()
        with pytest.raises(ValueError):
            map_stream_graph(g, partitioner="magic")
        with pytest.raises(ValueError):
            map_stream_graph(g, mapper="magic")

    def test_shared_engine_reuses_profile(self):
        g = _app()
        engine = PerformanceEstimationEngine(g)
        r1 = map_stream_graph(g, num_gpus=1, engine=engine)
        r2 = map_stream_graph(g, num_gpus=2, engine=engine)
        assert r1.engine is r2.engine
