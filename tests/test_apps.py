"""Tests for the StreamIt benchmark suite."""

import pytest

from repro.apps.registry import APPS, FIG42_ORDER, FIG43_APPS, build_app, paper_n_values
from repro.graph.filters import FilterRole
from repro.graph.validate import validate_graph
from repro.gpu.memory import partition_memory
from repro.perf.engine import PerformanceEstimationEngine


SMALL_N = {
    "DES": 4,
    "FMRadio": 4,
    "FFT": 16,
    "DCT": 4,
    "MatMul2": 2,
    "MatMul3": 2,
    "BitonicRec": 8,
    "Bitonic": 8,
}


class TestRegistry:
    def test_eight_apps(self):
        assert len(APPS) == 8

    def test_fig42_order_covers_all(self):
        assert sorted(FIG42_ORDER) == sorted(APPS)

    def test_fig43_apps_flagged(self):
        for name in FIG43_APPS:
            assert APPS[name].in_fig43
        assert sum(1 for a in APPS.values() if a.in_fig43) == 5

    def test_classification_split(self):
        compute = [a.name for a in APPS.values() if a.compute_bound]
        memory = [a.name for a in APPS.values() if not a.compute_bound]
        assert len(compute) == 5 and len(memory) == 3

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            build_app("nope", 4)

    def test_paper_n_values(self):
        assert paper_n_values("FFT")[-1] == 1024
        assert paper_n_values("DES") == (4, 8, 12, 16, 20, 24, 28, 32)


class TestAllAppsAreValidGraphs:
    @pytest.mark.parametrize("name", sorted(APPS))
    def test_small_instance_valid(self, name):
        g = build_app(name, SMALL_N[name])
        validate_graph(g)

    @pytest.mark.parametrize("name", sorted(APPS))
    def test_smallest_paper_n_valid(self, name):
        g = build_app(name, APPS[name].paper_n[0])
        validate_graph(g)

    @pytest.mark.parametrize("name", sorted(APPS))
    def test_graph_grows_with_n(self, name):
        ns = APPS[name].paper_n
        small = build_app(name, ns[0])
        large = build_app(name, ns[min(3, len(ns) - 1)])
        assert large.total_work() > small.total_work()


class TestAppStructure:
    def test_des_round_count_scales_nodes(self):
        g4 = build_app("DES", 4)
        g8 = build_app("DES", 8)
        assert len(g8.nodes) > len(g4.nodes)

    def test_des_has_pipeline_segments(self):
        g = build_app("DES", 4)
        assert g.pipelines  # phase-1 food

    def test_fmradio_band_count(self):
        g = build_app("FMRadio", 6)
        bands = [n for n in g.nodes if n.spec.name.endswith(".bpf")]
        assert len(bands) == 6

    def test_fmradio_peeking_buffers(self):
        g = build_app("FMRadio", 4)
        lp = g.node_by_name("lowpass")
        ch = g.in_channels(lp.node_id)[0]
        assert g.channel_elems(ch) > g.channel_traffic_elems(ch)

    def test_fft_single_splitjoin(self):
        g = build_app("FFT", 64)
        splitters = [n for n in g.nodes if n.spec.role is FilterRole.SPLITTER]
        joiners = [n for n in g.nodes if n.spec.role is FilterRole.JOINER]
        assert len(splitters) == 1 and len(joiners) == 1

    def test_bitonic_many_movers(self):
        g = build_app("Bitonic", 32)
        movers = [n for n in g.nodes if n.spec.role.is_data_movement]
        assert len(movers) > 10  # Chapter V's motivation

    def test_bitonic_rec_deeper_than_iterative(self):
        rec = build_app("BitonicRec", 32)
        it = build_app("Bitonic", 32)
        rec_movers = sum(1 for n in rec.nodes if n.spec.role.is_data_movement)
        it_movers = sum(1 for n in it.nodes if n.spec.role.is_data_movement)
        assert rec_movers >= it_movers // 2  # both heavily mover-laden

    def test_dct_lane_count(self):
        g = build_app("DCT", 6)
        rows = [n for n in g.nodes if ".dct1d" in n.spec.name and n.spec.name.startswith("row")]
        assert len(rows) == 6

    def test_matmul_sizes(self):
        g2 = build_app("MatMul2", 3)
        g3 = build_app("MatMul3", 3)
        assert len(g3.nodes) > len(g2.nodes)

    @pytest.mark.parametrize("name,bad_n", [("FFT", 12), ("Bitonic", 3), ("DES", 0)])
    def test_invalid_sizes_rejected(self, name, bad_n):
        with pytest.raises(ValueError):
            build_app(name, bad_n)


def _arithmetic_intensity(graph):
    """Abstract ops per byte moved (channels + primary I/O)."""
    traffic = sum(graph.channel_traffic_bytes(ch) for ch in graph.channels)
    inp, out = graph.io_elems()
    traffic += (inp + out) * graph.elem_bytes
    return graph.total_work() / traffic


class TestBoundedness:
    """The compute/memory-bound split must emerge from the workloads
    themselves: compute-bound apps do far more work per byte they move."""

    def test_intensity_separates_classes(self):
        mid_n = {name: info.paper_n[len(info.paper_n) // 2]
                 for name, info in APPS.items()}
        intensity = {
            name: _arithmetic_intensity(build_app(name, mid_n[name]))
            for name in APPS
        }
        compute = [intensity[a.name] for a in APPS.values() if a.compute_bound]
        memory = [intensity[a.name] for a in APPS.values() if not a.compute_bound]
        assert min(compute) > max(memory), intensity

    @pytest.mark.parametrize("name", ["DES", "DCT", "FMRadio"])
    def test_compute_bound_apps_have_compute_bound_whole_graph(self, name):
        g = build_app(name, SMALL_N[name])
        engine = PerformanceEstimationEngine(g)
        est = engine.estimate([n.node_id for n in g.nodes])
        assert est.is_compute_bound

    def test_all_apps_fit_or_spill_gracefully(self):
        # every app at its largest paper N must still be estimable
        for name, info in APPS.items():
            g = build_app(name, info.paper_n[-1])
            mem = partition_memory(g)
            assert mem.working_set > 0
