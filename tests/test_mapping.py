"""Tests for the mapping problem, solvers, and baselines."""

import itertools

import pytest

from repro.gpu.specs import LinkSpec
from repro.gpu.topology import GpuTopology, default_topology
from repro.mapping.greedy import lpt_mapping, round_robin_mapping
from repro.mapping.problem import MappingProblem
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.solver_milp import solve_milp


def _problem(
    times,
    edges=None,
    host_io=None,
    gpus=4,
    peer_to_peer=True,
    include_host_io=True,
    link_spec=None,
):
    topo = default_topology(gpus, link_spec or LinkSpec(6.0, 10_000.0))
    return MappingProblem(
        times=list(times),
        edges=dict(edges or {}),
        host_io=list(host_io or [(0.0, 0.0)] * len(times)),
        topology=topo,
        peer_to_peer=peer_to_peer,
        include_host_io=include_host_io,
    )


def _brute_force(problem):
    best, best_assign = float("inf"), None
    for assign in itertools.product(
        range(problem.num_gpus), repeat=problem.num_partitions
    ):
        t = problem.tmax(assign)
        if t < best:
            best, best_assign = t, assign
    return best, best_assign


class TestEvaluator:
    def test_gpu_times(self):
        p = _problem([10.0, 20.0, 30.0], gpus=2)
        assert p.gpu_times([0, 0, 1]) == [30.0, 30.0]

    def test_same_gpu_edge_is_free(self):
        p = _problem([1.0, 1.0], edges={(0, 1): 1e6}, gpus=2)
        assert all(v == 0.0 for v in p.link_loads([0, 0]))

    def test_cross_gpu_edge_loads_route(self):
        p = _problem([1.0, 1.0], edges={(0, 1): 600.0}, gpus=2)
        loads = p.link_loads([0, 1])
        assert sum(1 for v in loads if v > 0) == 2  # up + down via sw1

    def test_via_host_loads_more_links(self):
        p2p = _problem([1.0, 1.0], edges={(0, 1): 600.0}, gpus=2)
        hosted = _problem(
            [1.0, 1.0], edges={(0, 1): 600.0}, gpus=2, peer_to_peer=False
        )
        assert sum(1 for v in hosted.link_loads([0, 1]) if v > 0) > sum(
            1 for v in p2p.link_loads([0, 1]) if v > 0
        )

    def test_host_io_charged(self):
        p = _problem([1.0], host_io=[(100.0, 50.0)], gpus=2)
        loads = p.link_loads([0])
        assert any(v > 0 for v in loads)

    def test_host_io_can_be_disabled(self):
        p = _problem([1.0], host_io=[(100.0, 50.0)], gpus=2, include_host_io=False)
        assert all(v == 0.0 for v in p.link_loads([0]))

    def test_unused_link_pays_no_latency(self):
        p = _problem([5.0, 5.0], gpus=2, include_host_io=False)
        comm = p.comm_breakdown([0, 1])
        assert comm.bottleneck_time == 0.0

    def test_tmax_is_max_of_sides(self):
        p = _problem(
            [100.0, 100.0], edges={(0, 1): 6_000.0}, gpus=2,
            include_host_io=False,
        )
        split = p.tmax([0, 1])
        spec = p.topology.link_spec
        expected_comm = spec.latency_ns + 6_000.0 / spec.bandwidth_bytes_per_ns
        assert split == pytest.approx(max(100.0, expected_comm))

    def test_validation(self):
        with pytest.raises(ValueError):
            _problem([1.0], edges={(0, 5): 1.0})
        with pytest.raises(ValueError):
            _problem([1.0, 2.0], host_io=[(0.0, 0.0)])


class TestGreedy:
    def test_lpt_balances(self):
        p = _problem([8.0, 7.0, 6.0, 5.0, 4.0, 3.0], gpus=2)
        res = lpt_mapping(p)
        assert max(res.gpu_times) <= 18.0  # LPT bound well under total

    def test_lpt_custom_workloads(self):
        p = _problem([1.0, 1.0], gpus=2)
        res = lpt_mapping(p, workloads=[100.0, 1.0])
        assert res.assignment[0] != res.assignment[1]

    def test_lpt_workload_length_checked(self):
        p = _problem([1.0, 1.0], gpus=2)
        with pytest.raises(ValueError):
            lpt_mapping(p, workloads=[1.0])

    def test_round_robin(self):
        p = _problem([1.0] * 5, gpus=2)
        res = round_robin_mapping(p)
        assert res.assignment == (0, 1, 0, 1, 0)


class TestMilp:
    def test_single_gpu_trivial(self):
        p = _problem([5.0, 5.0], gpus=1)
        res = solve_milp(p)
        assert res.assignment == (0, 0)
        assert res.optimal

    def test_balances_two_gpus(self):
        p = _problem([10.0, 10.0, 10.0, 10.0], gpus=2, include_host_io=False)
        res = solve_milp(p)
        assert res.tmax == pytest.approx(20.0)

    def test_matches_brute_force_with_comm(self):
        times = [50_000.0, 40_000.0, 30_000.0, 20_000.0, 10_000.0]
        edges = {(0, 1): 90_000.0, (1, 2): 240_000.0, (2, 3): 60_000.0,
                 (3, 4): 120_000.0}
        host_io = [(60_000.0, 0.0)] + [(0.0, 0.0)] * 3 + [(0.0, 60_000.0)]
        p = _problem(times, edges, host_io, gpus=3)
        res = solve_milp(p)
        best, _ = _brute_force(p)
        assert res.tmax == pytest.approx(best, rel=1e-6)

    def test_keeps_chatty_partitions_together(self):
        # the heavy edge must not be cut: comm would dominate
        times = [10_000.0, 10_000.0, 10_000.0, 10_000.0]
        edges = {(0, 1): 10_000_000.0, (2, 3): 10.0}
        p = _problem(times, edges, gpus=2, include_host_io=False)
        res = solve_milp(p)
        assert res.assignment[0] == res.assignment[1]

    def test_comm_ablation_ignores_edges(self):
        times = [10_000.0, 10_000.0]
        edges = {(0, 1): 10_000_000.0}
        p = _problem(times, edges, gpus=2, include_host_io=False)
        res = solve_milp(p, include_comm=False)
        # without comm constraints the solver happily splits them
        assert res.assignment[0] != res.assignment[1]

    def test_not_worse_than_greedy(self):
        times = [7.0, 6.5, 6.0, 5.0, 4.0, 3.5, 2.0, 1.0]
        times = [t * 10_000 for t in times]
        edges = {(i, i + 1): 30_000.0 * (i + 1) for i in range(7)}
        p = _problem(times, edges, gpus=4)
        milp_res = solve_milp(p)
        greedy_res = lpt_mapping(p)
        assert milp_res.tmax <= greedy_res.tmax + 1e-6


class TestBranchAndBound:
    def test_matches_milp_small(self):
        times = [50_000.0, 40_000.0, 30_000.0, 20_000.0]
        edges = {(0, 1): 300_000.0, (1, 2): 150_000.0, (2, 3): 450_000.0}
        host_io = [(30_000.0, 0.0), (0, 0), (0, 0), (0.0, 30_000.0)]
        p = _problem(times, edges, host_io, gpus=3)
        bb = solve_branch_and_bound(p)
        ml = solve_milp(p)
        assert bb.tmax == pytest.approx(ml.tmax, rel=1e-6)
        assert bb.optimal

    @pytest.mark.parametrize("gpus", [2, 3, 4])
    def test_matches_brute_force(self, gpus):
        times = [9.0, 7.0, 5.0, 3.0, 1.0]
        times = [t * 20_000 for t in times]
        edges = {(0, 2): 120_000.0, (1, 2): 60_000.0, (2, 3): 300_000.0,
                 (3, 4): 90_000.0}
        p = _problem(times, edges, gpus=gpus)
        bb = solve_branch_and_bound(p)
        best, _ = _brute_force(p)
        assert bb.tmax == pytest.approx(best, rel=1e-6)

    def test_via_host_problem(self):
        times = [40_000.0, 40_000.0, 40_000.0]
        edges = {(0, 1): 200_000.0, (1, 2): 200_000.0}
        p = _problem(times, edges, gpus=2, peer_to_peer=False)
        bb = solve_branch_and_bound(p)
        best, _ = _brute_force(p)
        assert bb.tmax == pytest.approx(best, rel=1e-6)

    def test_node_budget_degrades_gracefully(self):
        times = [float(i + 1) for i in range(12)]
        p = _problem(times, gpus=4)
        res = solve_branch_and_bound(p, max_nodes=10)
        assert not res.optimal
        assert len(res.assignment) == 12


class TestResult:
    def test_bottleneck_label(self):
        p = _problem(
            [100.0, 100.0], edges={(0, 1): 60_000_000.0}, gpus=2,
            include_host_io=False,
        )
        res = lpt_mapping(p)
        if res.assignment[0] != res.assignment[1]:
            assert res.bottleneck == "communication"

    def test_gpus_used(self):
        p = _problem([1.0, 2.0, 3.0], gpus=4)
        res = round_robin_mapping(p)
        assert res.gpus_used() == [0, 1, 2]
