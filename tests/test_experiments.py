"""Smoke and contract tests for the experiment harnesses.

Each experiment runs on a reduced scope here (single app / tiny N) so the
suite stays fast; the benchmarks run the real quick/full sweeps.
"""

import pytest

from repro.experiments import (
    ablations,
    fig3_2,
    fig4_1,
    fig4_2,
    fig4_3,
    fig4_4,
    table5_1,
)
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.common import (
    ExperimentResult,
    gpu_counts,
    render_table,
    sweep_n_values,
)


class TestCommon:
    def test_sweep_quick_is_three_points(self):
        values = sweep_n_values("DES", quick=True)
        assert len(values) == 3
        assert values[0] == 4 and values[-1] == 32

    def test_sweep_full_is_paper_axis(self):
        assert sweep_n_values("FFT", quick=False) == (
            8, 16, 32, 64, 128, 256, 512, 1024
        )

    def test_gpu_counts(self):
        assert gpu_counts(True) == (1, 2, 4)
        assert gpu_counts(False) == (1, 2, 3, 4)

    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # aligned

    def test_render_handles_empty(self):
        assert render_table([]) == "(no rows)"

    def test_result_render(self):
        result = ExperimentResult("x", "desc", rows=[{"a": 1}],
                                  summary={"k": 2.0})
        text = result.render()
        assert "== x: desc ==" in text and "k: 2.00" in text


class TestFig32:
    def test_ratio_grows_with_width(self):
        result = fig3_2.run(quick=True)
        assert result.summary["split/pipeline live-peak ratio grows with width"]


class TestFig41:
    def test_single_app_correlation(self):
        result = fig4_1.run(quick=True, apps=["MatMul2"])
        assert result.summary["overall R^2 (paper: 0.972)"] > 0.9
        assert result.rows[0]["app"] == "MatMul2"

    def test_points_exporter(self):
        points = fig4_1.run_points(quick=True, apps=["MatMul2"])
        assert points and all(len(p) == 4 for p in points)


class TestFig42:
    def test_single_app_scaling(self):
        result = fig4_2.run(quick=True, apps=["DCT"])
        assert any("4-GPU" in row for row in result.rows)
        finals = [row for row in result.rows if row["N"] == 30]
        assert finals and finals[0]["4-GPU"] > 1.5


class TestFig43:
    def test_single_app_sosp(self):
        result = fig4_3.run(quick=True, apps=["DCT"])
        assert all(row["ours-4G"] > 0 for row in result.rows)
        # DCT is the paper's best case: ours must dominate at large N
        big = [row for row in result.rows if row["N"] == 30]
        assert big[0]["ratio-4G"] > 1.0


class TestFig44:
    def test_previous_work_within_bound(self):
        result = fig4_4.run(quick=True, apps=["DES"])
        within = str(
            result.summary["previous-work software within bound (paper's claim)"]
        )
        got, total = (int(v) for v in within.split(" / "))
        assert got == total


class TestTable51:
    def test_quick_subset(self):
        result = table5_1.run(quick=True)
        assert result.summary["all cases improved"]
        assert all(row["N"] <= 256 for row in result.rows)


class TestAblations:
    def test_mapping_ablation(self):
        result = ablations.run_mapping(cases=(("DCT", 10),), num_gpus=2)
        # the ILP optimizes the Tmax model, the executor measures the
        # pipeline; tiny (<5%) discrepancies are expected
        assert result.summary["geomean ILP advantage over round-robin"] >= 0.95

    def test_phase_ablation(self):
        result = ablations.run_phases(cases=(("FFT", 64),))
        assert result.rows[0]["full P"] >= 1

    def test_comm_ablation(self):
        result = ablations.run_comm(cases=(("Bitonic", 16),), num_gpus=2)
        assert result.summary["geomean gain from comm-awareness"] > 0


class TestRunnerIntegration:
    """Experiments execute through SweepRunner: a cached runner must
    reproduce the default runner's rows exactly."""

    def test_cached_runner_reproduces_rows(self):
        from repro.sweep import StageCache, SweepRunner

        cases = (("DCT", 10),)
        plain = ablations.run_mapping(cases=cases, num_gpus=2)
        cache = StageCache()
        cached_runner = SweepRunner(cache=cache)
        first = ablations.run_mapping(cases=cases, num_gpus=2,
                                      runner=cached_runner)
        again = ablations.run_mapping(cases=cases, num_gpus=2,
                                      runner=cached_runner)
        assert first.rows == plain.rows == again.rows
        assert cache.stats().hits > 0  # second pass replayed the stages

    def test_table51_transform_grid(self):
        result = table5_1.run(quick=True,
                              cases=[("Bitonic", 16, 1.05)])
        assert result.rows[0]["movers removed"] > 0


class TestCliEntry:
    def test_main_runs_one_experiment(self, capsys):
        assert experiments_main(["fig3.2"]) == 0
        out = capsys.readouterr().out
        assert "fig3.2" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig9.9"])


class TestPlatformsExperiment:
    def test_catalog_sweep_reduced_scope(self):
        from repro.experiments import platforms
        from repro.sweep import StageCache, SweepRunner

        result = platforms.run(
            quick=True,
            platforms=("gen3-balanced", "two-island"),
            cases=(("Bitonic", 8),),
            runner=SweepRunner(cache=StageCache()),
        )
        assert isinstance(result, ExperimentResult)
        # (1 bundled case + the synthetic dag) x 2 platforms
        assert len(result.rows) == 4
        assert {row["platform"] for row in result.rows} == {
            "gen3-balanced", "two-island",
        }
        assert all(row["gpus"] == 4 for row in result.rows)
        assert all(row["thr(exec/ms)"] > 0 for row in result.rows)
        assert any("best platform" in key for key in result.summary)

    def test_islands_never_beat_uniform_gen3(self):
        """two-island is gen3-balanced with three links slowed down:
        its mapped Tmax can never be better on the same workload."""
        from repro.experiments import platforms
        from repro.sweep import StageCache, SweepRunner

        result = platforms.run(
            quick=True,
            platforms=("gen3-balanced", "two-island"),
            cases=(("DES", 8),),
            runner=SweepRunner(cache=StageCache()),
        )
        by_platform = {}
        for row in result.rows:
            by_platform.setdefault(
                (row["app"], row["N"]), {}
            )[row["platform"]] = (row["tmax(us)"], row["optimal"])
        compared = 0
        for case, entries in by_platform.items():
            slow_tmax, slow_opt = entries["two-island"]
            fast_tmax, fast_opt = entries["gen3-balanced"]
            if not (slow_opt and fast_opt):
                continue  # a time-limited ILP voids the dominance bound
            compared += 1
            assert slow_tmax >= fast_tmax * (1 - 1e-9), case
        assert compared > 0
