"""Tests for the functional stream-graph VM."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)
from repro.gpu.functional import FunctionalError, FunctionalVM


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


class TestBasicExecution:
    def test_identity_pipeline_passes_data_through(self):
        g = flatten(
            pipeline(source("s", 4), _f("id", 4, 4, semantics="identity"),
                     sink("t", 4)),
            "idpipe",
        )
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i))
        out = vm.run(2)
        assert out["t"] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]

    def test_scale_semantics(self):
        g = flatten(
            pipeline(source("s", 2), _f("x3", 2, 2, semantics="scale",
                                        params=(3.0,)), sink("t", 2)),
            "scale",
        )
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i + 1))
        out = vm.run(1)
        assert out["t"] == [3.0, 6.0]

    def test_add_reduces_pairs(self):
        g = flatten(
            pipeline(source("s", 4), _f("sum", 4, 2, semantics="add"),
                     sink("t", 2)),
            "add",
        )
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i))
        out = vm.run(1)
        assert out["t"] == [1.0, 5.0]  # 0+1, 2+3

    def test_sort2_orders_window(self):
        g = flatten(
            pipeline(source("s", 4), _f("cmp", 4, 4, semantics="sort2"),
                     sink("t", 4)),
            "sort",
        )
        vm = FunctionalVM(g, source_fn=lambda name, i: float(3 - i))
        out = vm.run(1)
        assert out["t"] == [0.0, 1.0, 2.0, 3.0]

    def test_butterfly(self):
        g = flatten(
            pipeline(source("s", 4), _f("bf", 4, 4, semantics="butterfly",
                                        params=(2,)), sink("t", 4)),
            "bf",
        )
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i))
        out = vm.run(1)
        # pairs (0,2) and (1,3): sums then differences
        assert out["t"] == [2.0, 4.0, -2.0, -2.0]

    def test_deterministic_across_runs(self):
        g = flatten(
            pipeline(source("s", 4), _f("op", 4, 4), sink("t", 4)), "det"
        )
        a = FunctionalVM(g).run(3)
        b = FunctionalVM(g).run(3)
        assert a == b


class TestSplitJoinExecution:
    def test_duplicate_copies_to_both_branches(self):
        sj = splitjoin(
            duplicate(2, 2),
            [_f("a", 2, 2, semantics="identity"),
             _f("b", 2, 2, semantics="scale", params=(10.0,))],
            join_roundrobin(2, 2),
        )
        g = flatten(pipeline(source("s", 2), sj, sink("t", 4)), "dup")
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i + 1))
        out = vm.run(1)
        assert out["t"] == [1.0, 2.0, 10.0, 20.0]

    def test_roundrobin_deals_in_order(self):
        sj = splitjoin(
            roundrobin(1, 1),
            [_f("a", 1, 1, semantics="identity"),
             _f("b", 1, 1, semantics="identity")],
            join_roundrobin(1, 1),
        )
        g = flatten(pipeline(source("s", 2), sj, sink("t", 2)), "rr")
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i))
        out = vm.run(2)
        assert out["t"] == [0.0, 1.0, 2.0, 3.0]

    def test_feedback_loop_with_delay(self):
        from repro.graph.structure import FeedbackLoop, Filt

        fb = FeedbackLoop(
            body=Filt(_f("body", 2, 2, semantics="identity")),
            loopback=Filt(_f("lb", 1, 1, semantics="identity")),
            join=join_roundrobin(1, 1),
            split=roundrobin(1, 1),
            delay=2,
        )
        g = flatten(pipeline(source("s", 1), fb, sink("t", 1)), "fb")
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i + 1))
        out = vm.run(4)
        assert len(out["t"]) == 4


class TestSlicedChannels:
    def test_slice_delivers_strided_view(self):
        b = GraphBuilder("sliced")
        s = b.filter("s", pop=0, push=4, role=FilterRole.SOURCE,
                     semantics="source")
        lo = b.filter("lo", pop=2, push=2, semantics="identity")
        hi = b.filter("hi", pop=2, push=2, semantics="identity")
        t = b.filter("t", pop=4, push=0, role=FilterRole.SINK, semantics="sink")
        b.connect(s, lo, src_push=2, dst_pop=2)
        b.connect(s, hi, src_push=2, dst_pop=2)
        b.connect(lo, t, src_push=2, dst_pop=2)
        b.connect(hi, t, src_push=2, dst_pop=2)
        g = b.build()
        g.channels[0].slice_offset, g.channels[0].slice_period, g.channels[0].slice_width = 0, 4, 2
        g.channels[1].slice_offset, g.channels[1].slice_period, g.channels[1].slice_width = 2, 4, 2
        g.nodes[t].meta = {"interleave": [(2, 2), (3, 2)]}
        vm = FunctionalVM(g, source_fn=lambda name, i: float(i))
        out = vm.run(1)
        assert out["t"] == [0.0, 1.0, 2.0, 3.0]

    def test_underflow_raises(self):
        g = flatten(
            pipeline(source("s", 2), _f("op", 2, 2), sink("t", 2)), "uf"
        )
        vm = FunctionalVM(g)
        # manually fire the sink before data exists
        with pytest.raises(FunctionalError):
            vm._fire(g.node_by_name("t").node_id)
