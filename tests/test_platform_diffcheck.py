"""Differential solver checks across the named-platform catalog.

The existing harness invariants — every solver's mapping valid, every
reported objective evaluator-consistent, optimal solvers dominated by no
heuristic — must hold on heterogeneous machines exactly as on the
uniform reference tree.  Tier-1 runs the pinned corpus (minus its one
MILP-hard butterfly, which alone costs ~30 s of solver time at 4 GPUs)
across three platforms chosen to cover the heterogeneity axes:
``two-island`` (per-link specs), ``mixed-box`` (per-leaf GPU specs),
``host-star`` (a different tree shape).  The full 30-instance x
whole-catalog product — including the 8-GPU ``deep-tree-8`` — is the
``slow``-marked sweep (``make test-slow``).
"""

import os

import pytest

from repro.gpu.platforms import PLATFORM_NAMES
from repro.sweep import StageCache
from repro.synth import PINNED_CORPUS, diffcheck_corpus, generate
from repro.synth.diffcheck import diffcheck_graph

#: the one instance whose 4-GPU MILP solve runs into the time limit on
#: the 1-core CI box; the slow sweep still covers it
MILP_HARD = ("butterfly", 5, {"stages": 4, "base": 1, "max_work": 4})

TIER1_CORPUS = tuple(e for e in PINNED_CORPUS if e != MILP_HARD)

TIER1_PLATFORMS = ("two-island", "mixed-box", "host-star")


@pytest.fixture(scope="module")
def shared_cache():
    """One StageCache across every platform run: profile/partition are
    machine-independent, so each graph is generated and partitioned
    once however many platforms check it."""
    return StageCache()


class TestCorpusAcrossPlatforms:
    def test_hard_instance_is_still_pinned(self):
        """The tier-1 exclusion must name a real corpus entry — if the
        corpus changes, revisit the exclusion instead of silently
        checking everything twice or nothing."""
        assert MILP_HARD in PINNED_CORPUS
        assert len(TIER1_CORPUS) == len(PINNED_CORPUS) - 1

    @pytest.mark.parametrize("platform", TIER1_PLATFORMS)
    def test_invariants_hold(self, platform, shared_cache):
        report = diffcheck_corpus(
            TIER1_CORPUS, platform=platform, cache=shared_cache
        )
        assert len(report.instances) == len(TIER1_CORPUS)
        assert report.ok, "\n".join(report.violations)

    @pytest.mark.parametrize("platform", TIER1_PLATFORMS)
    def test_optimality_dominance(self, platform, shared_cache):
        """Where MILP proved optimality, no heuristic may beat it;
        time-limit hits are skips, never failures."""
        report = diffcheck_corpus(
            TIER1_CORPUS, platform=platform, cache=shared_cache
        )
        compared = 0
        for inst in report.instances:
            milp = inst.outcomes.get("milp")
            if milp is None or not milp.optimal:
                continue  # timeout path: skip, don't fail
            for name, outcome in inst.outcomes.items():
                if outcome.tmax is not None:
                    compared += 1
                    assert outcome.tmax >= milp.tmax * (1 - 1e-6), (
                        f"{name} beat 'optimal' MILP on {inst.label}"
                    )
        assert compared > 0

    def test_labels_carry_the_platform(self, shared_cache):
        report = diffcheck_corpus(
            TIER1_CORPUS[:2], platform="two-island", cache=shared_cache
        )
        assert all(
            inst.label.endswith("@two-island") for inst in report.instances
        )

    def test_platform_changes_the_numbers(self, shared_cache):
        """The same instance really is checked against different
        machines: a comm-heavy graph's optimal objective differs between
        the fast uniform tree and the slow-fabric island machine."""
        instance = generate("splitjoin", 3)
        fast = diffcheck_graph(
            instance, platform="gen3-balanced", cache=shared_cache
        )
        slow = diffcheck_graph(
            instance, platform="two-island", cache=shared_cache
        )
        assert fast.ok and slow.ok
        tmax_fast = fast.outcomes["milp"].tmax
        tmax_slow = slow.outcomes["milp"].tmax
        assert tmax_fast is not None and tmax_slow is not None
        assert tmax_fast != tmax_slow


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_SLOW") != "1",
    reason="full platform x corpus product; set REPRO_SLOW=1 (make test-slow)",
)
class TestFullCatalogSlow:
    """The complete pinned corpus against every named platform."""

    @pytest.mark.parametrize("platform", PLATFORM_NAMES)
    def test_whole_corpus_on(self, platform):
        report = diffcheck_corpus(PINNED_CORPUS, platform=platform)
        assert len(report.instances) == 30
        assert report.ok, "\n".join(report.violations)
