"""The sweep engine: grids, stage cache, runner, and cache-key safety.

The load-bearing properties:

* cache keys separate on *every* knob — two pipeline invocations that
  could produce different results must never share an entry;
* cached, uncached, serial, and parallel execution are bit-identical;
* the on-disk store round-trips exactly (JSON floats are lossless).
"""

import itertools

import pytest

from repro.apps import build_app
from repro.flow import (
    map_stream_graph,
    mapping_stage,
    partition_stage,
    profile_stage,
    stage_key,
)
from repro.graph.fingerprint import canonical_graph, graph_fingerprint
from repro.sweep import (
    CacheStats,
    StageCache,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    group_points,
)


class RecordingCache(StageCache):
    """StageCache that remembers every key it was asked about."""

    def __init__(self):
        super().__init__()
        self.get_keys = []

    def get(self, key):
        self.get_keys.append(key)
        return super().get(key)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic_across_builds(self):
        assert graph_fingerprint(build_app("DES", 8)) == graph_fingerprint(
            build_app("DES", 8)
        )

    def test_differs_across_instances(self):
        fps = {
            graph_fingerprint(build_app(app, n))
            for app, n in [("DES", 8), ("DES", 12), ("DCT", 6), ("Bitonic", 8)]
        }
        assert len(fps) == 4

    def test_sensitive_to_every_field(self):
        graph = build_app("Bitonic", 8)
        base = graph_fingerprint(graph)
        graph.nodes[0].spec = type(graph.nodes[0].spec)(
            name=graph.nodes[0].spec.name,
            pop=graph.nodes[0].spec.pop,
            push=graph.nodes[0].spec.push,
            peek=graph.nodes[0].spec.peek,
            work=graph.nodes[0].spec.work + 1.0,
        )
        assert graph_fingerprint(graph) != base

    def test_sensitive_to_firing_and_channels(self):
        graph = build_app("Bitonic", 8)
        base = graph_fingerprint(graph)
        graph.nodes[0].firing += 1
        changed = graph_fingerprint(graph)
        assert changed != base
        graph.nodes[0].firing -= 1
        graph.channels[0].delay += 1
        assert graph_fingerprint(graph) not in (base, changed)

    def test_canonical_is_json_shaped(self):
        import json

        payload = canonical_graph(build_app("DES", 4))
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# cache-key separation: any knob change must change the key
# ----------------------------------------------------------------------
class TestCacheKeys:
    def test_stage_name_separates(self):
        assert stage_key("partition", x=1) != stage_key("mapping", x=1)

    def test_any_part_separates(self):
        base = dict(graph="fp", mapper="ilp", num_gpus=2, p2p=True)
        keys = {stage_key("mapping", **base)}
        for knob, value in [
            ("graph", "fp2"), ("mapper", "lpt"), ("num_gpus", 4),
            ("p2p", False),
        ]:
            keys.add(stage_key("mapping", **{**base, knob: value}))
        assert len(keys) == 5

    def test_points_differing_in_any_knob_share_no_flow_entry(self):
        """Two full runs that differ in one strategy knob must not read
        each other's mapping entries (upstream sharing is the point)."""
        graph_a = build_app("Bitonic", 8)
        cases = {
            "base": dict(num_gpus=2),
            "gpus": dict(num_gpus=1),
            "mapper": dict(num_gpus=2, mapper="lpt"),
            "p2p": dict(num_gpus=2, peer_to_peer=False),
            "partitioner": dict(num_gpus=2, partitioner="single"),
        }
        mapping_keys = {}
        for label, kwargs in cases.items():
            cache = RecordingCache()
            map_stream_graph(build_app("Bitonic", 8), cache=cache, **kwargs)
            mapping_keys[label] = {
                k for k in cache.get_keys if k.startswith("mapping.")
            }
        for a, b in itertools.combinations(cases, 2):
            assert mapping_keys[a].isdisjoint(mapping_keys[b]), (a, b)

    def test_partition_phases_separate_entries(self):
        graph = build_app("FFT", 16)
        cache = StageCache()
        engine = profile_stage(graph, cache=cache)
        full, _ = partition_stage(graph, engine, phases=(1, 2, 3, 4),
                                  cache=cache)
        p2, _ = partition_stage(graph, engine, phases=(2,), cache=cache)
        # distinct entries were written (profile + two partition results)
        assert len(cache) == 3

    def test_seed_separates_profile(self):
        graph = build_app("Bitonic", 8)
        cache = StageCache()
        profile_stage(graph, seed=0, cache=cache)
        profile_stage(graph, seed=1, cache=cache)
        assert len(cache) == 2
        assert cache.stats().hits == 0


# ----------------------------------------------------------------------
# cached replay correctness
# ----------------------------------------------------------------------
class TestCachedReplay:
    def test_cached_equals_uncached(self):
        plain = map_stream_graph(build_app("DES", 4), num_gpus=2)
        cache = StageCache()
        cold = map_stream_graph(build_app("DES", 4), num_gpus=2, cache=cache)
        warm = map_stream_graph(build_app("DES", 4), num_gpus=2, cache=cache)
        assert cache.stats().hits > 0
        for other in (cold, warm):
            assert other.mapping == plain.mapping
            assert other.report == plain.report
            assert other.partitions == plain.partitions
            assert other.measurements == plain.measurements

    def test_disk_round_trip(self, tmp_path):
        point = SweepPoint(app="Bitonic", n=8, num_gpus=2)
        cold_cache = StageCache(str(tmp_path / "c"))
        runner = SweepRunner(cache=cold_cache)
        cold = runner.run([point])
        warm_cache = StageCache(str(tmp_path / "c"))  # fresh memory layer
        warm = SweepRunner(cache=warm_cache).run([point])
        assert warm_cache.stats().misses == 0
        assert warm.records[0].throughput == cold.records[0].throughput
        assert warm.records[0].assignment == cold.records[0].assignment

    def test_partitioning_reconstruction_matches(self):
        graph = build_app("DES", 8)
        cache = StageCache()
        engine = profile_stage(graph, cache=cache)
        _, first = partition_stage(graph, engine, cache=cache)
        _, replay = partition_stage(graph, engine, cache=cache)
        assert replay is not first
        assert replay.partitions == first.partitions
        assert replay.total_t == first.total_t
        assert replay.phase_counts == first.phase_counts


# ----------------------------------------------------------------------
# spec expansion and grouping
# ----------------------------------------------------------------------
class TestSpec:
    def test_size_matches_expand(self):
        spec = SweepSpec(
            cases=[("DES", 4), ("DCT", 6)], gpu_counts=(1, 2),
            mappers=("ilp", "lpt"), peer_to_peer=(True, False),
        )
        assert spec.size() == len(spec.expand()) == 16

    def test_expansion_groups_prefixes(self):
        spec = SweepSpec(
            cases=[("DES", 4), ("DCT", 6)], gpu_counts=(1, 2),
            partitioners=("ours", "single"),
        )
        groups = group_points(spec.expand())
        assert [len(g) for g in groups] == [4, 4]
        # within a group, partitioner runs are adjacent
        first = [p.partitioner for p in groups[0]]
        assert first == ["ours", "ours", "single", "single"]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SweepPoint(app="DES", n=4, partitioner="bogus")
        with pytest.raises(ValueError):
            SweepPoint(app="DES", n=4, mapper="bogus")
        with pytest.raises(ValueError):
            SweepPoint(app="DES", n=4, num_gpus=0)

    def test_labels_are_unique_across_grid(self):
        spec = SweepSpec(
            cases=[("DES", 4)], gpu_counts=(1, 2), mappers=("ilp", "lpt"),
            peer_to_peer=(True, False),
        )
        labels = [p.label() for p in spec.expand()]
        assert len(set(labels)) == len(labels)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TestRunner:
    GRID = SweepSpec(
        cases=[("Bitonic", 8), ("DES", 4)], gpu_counts=(1, 2),
        mappers=("ilp", "lpt"),
    )

    def test_serial_order_and_lookup(self):
        result = SweepRunner(cache=StageCache()).run(self.GRID)
        points = self.GRID.expand()
        assert [rec.point for rec in result.records] == points
        assert result.record(points[-1]).point == points[-1]
        rows = result.rows()
        assert len(rows) == len(points) and rows[0]["app"] == "Bitonic"

    def test_keep_flows_exposes_full_results(self):
        runner = SweepRunner()
        result = runner.run(self.GRID, keep_flows=True)
        point = self.GRID.expand()[0]
        flow = result.flow(point)
        assert flow.report.throughput == result.record(point).throughput

    def test_flows_unavailable_without_keep(self):
        result = SweepRunner().run(self.GRID)
        with pytest.raises(RuntimeError):
            result.flow(self.GRID.expand()[0])

    def test_parallel_matches_serial(self, tmp_path):
        serial = SweepRunner(cache=StageCache()).run(self.GRID)
        parallel = SweepRunner(
            cache=StageCache(str(tmp_path / "cache")), parallel=True,
            workers=2,
        ).run(self.GRID)
        for a, b in zip(serial.records, parallel.records):
            assert a.point == b.point
            assert a.throughput == b.throughput
            assert a.tmax == b.tmax
            assert a.assignment == b.assignment

    def test_parallel_keep_flows_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(parallel=True).run(self.GRID, keep_flows=True)

    def test_transform_points_isolated(self):
        """A transformed graph must form its own prefix group and its
        own cache entries."""
        plain = SweepPoint(app="Bitonic", n=16, num_gpus=1,
                           partitioner="single")
        transformed = SweepPoint(app="Bitonic", n=16, num_gpus=1,
                                 partitioner="single",
                                 transform="eliminate-movers")
        assert len(group_points([plain, transformed])) == 2
        cache = StageCache()
        result = SweepRunner(cache=cache).run([plain, transformed])
        assert cache.stats().hits == 0  # nothing shared between the two
        a, b = result.records
        assert a.throughput != b.throughput

    def test_runner_map_preserves_order(self):
        runner = SweepRunner()
        assert runner.map(str, [3, 1, 2]) == ["3", "1", "2"]


# ----------------------------------------------------------------------
# cache bookkeeping
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_hit_miss_accounting(self):
        cache = StageCache()
        assert cache.get("partition.k") is None
        cache.put("partition.k", 1)
        assert cache.get("partition.k") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.by_stage["partition"] == {"hits": 1, "misses": 1}
        assert "partition 1/2" in stats.render()

    def test_stats_json_round_trip(self):
        stats = CacheStats()
        stats.record("mapping", hit=True)
        stats.record("mapping", hit=False)
        clone = CacheStats.from_json(stats.to_json())
        assert clone.to_json() == stats.to_json()
        clone.merge(stats)
        assert clone.hits == 2 and clone.misses == 2

    def test_clear_keeps_disk(self, tmp_path):
        cache = StageCache(str(tmp_path))
        cache.put("measure.k", [1, 2])
        cache.clear()
        assert cache.get("measure.k") == [1, 2]  # reloaded from disk

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = StageCache(str(tmp_path))
        (tmp_path / "mapping.bad.json").write_text("{not json")
        assert cache.get("mapping.bad") is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSweepCli:
    def test_sweep_subcommand(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main([
            "sweep", "--case", "Bitonic:8", "--gpus", "1,2", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "points in" in out and "stage cache" in out

    def test_sweep_requires_grid_or_case(self):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["sweep"])

    def test_bad_case_spec_rejected(self):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["sweep", "--case", "DES"])


# ----------------------------------------------------------------------
# the platform axis (named machines from repro.gpu.platforms)
# ----------------------------------------------------------------------
class TestPlatformAxis:
    def test_machine_axis_mixes_trees_and_platforms(self):
        spec = SweepSpec(
            cases=[("DES", 4)], gpu_counts=(1, 2),
            platforms=(None, "two-island", "deep-tree-8"),
        )
        points = spec.expand()
        assert spec.size() == len(points) == 4
        machines = [(p.platform, p.num_gpus) for p in points]
        assert machines == [
            (None, 1), (None, 2), ("two-island", 4), ("deep-tree-8", 8),
        ]

    def test_platform_fixes_gpu_count(self):
        with pytest.raises(ValueError, match="4 GPUs"):
            SweepPoint(app="DES", n=4, num_gpus=2, platform="two-island")
        with pytest.raises(ValueError, match="unknown platform"):
            SweepPoint(app="DES", n=4, num_gpus=4, platform="exascale")

    def test_label_names_the_machine(self):
        point = SweepPoint(app="DES", n=4, num_gpus=4, platform="mixed-box")
        assert "mixed-box" in point.label() and "g4" not in point.label()

    def test_platforms_share_no_mapping_entries(self):
        """The issue's regression: one graph swept on two platforms must
        produce distinct StageCache keys and distinct results when the
        platforms' bottleneck links differ (two-island crosses gen2-x8
        hops that gen3-balanced does not have)."""
        from repro.gpu.platforms import build_platform

        keys, tmaxes = {}, {}
        for name in ("gen3-balanced", "two-island"):
            cache = RecordingCache()
            result = map_stream_graph(
                build_app("synth:dag", 7), num_gpus=4,
                topology=build_platform(name), cache=cache,
            )
            keys[name] = {
                k for k in cache.get_keys if k.startswith("mapping.")
            }
            tmaxes[name] = result.mapping.tmax
        assert keys["gen3-balanced"].isdisjoint(keys["two-island"])
        assert tmaxes["gen3-balanced"] != tmaxes["two-island"]

    def test_platform_points_share_machine_independent_stages(self):
        """Separation must not cost the sweep its point: profile,
        partition, and measurement entries are machine-independent and
        hit across platforms."""
        cache = StageCache()
        spec = SweepSpec(
            cases=[("Bitonic", 8)],
            platforms=("gen3-balanced", "two-island"),
        )
        SweepRunner(cache=cache).run(spec)
        by_stage = cache.stats().by_stage
        # one shared group: the graph is profiled once for both machines
        assert by_stage["profile"]["misses"] == 1
        assert by_stage["partition"]["hits"] >= 1
        assert by_stage["measure"]["hits"] >= 1
        # the machine-dependent stage recomputes per platform
        assert by_stage["mapping"]["hits"] == 0
        assert by_stage["mapping"]["misses"] == 2

    def test_runner_rows_carry_the_platform(self):
        spec = SweepSpec(
            cases=[("Bitonic", 8)], platforms=("host-star",),
        )
        result = SweepRunner(cache=StageCache()).run(spec)
        row = result.rows()[0]
        assert row["platform"] == "host-star" and row["gpus"] == 4
        # reference-tree rows stay platform-free (pre-existing format)
        plain = SweepRunner(cache=StageCache()).run(
            SweepSpec(cases=[("Bitonic", 8)], gpu_counts=(2,))
        )
        assert "platform" not in plain.rows()[0]

    def test_acceptance_command(self, capsys, tmp_path):
        """`repro sweep --platform two-island --case synth:dag:7` runs
        end to end (the issue's acceptance criterion)."""
        from repro.cli import main as cli_main

        code = cli_main([
            "sweep", "--case", "synth:dag:7", "--platform", "two-island",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "two-island" in out

    def test_platform_flag_conflicts_with_gpus(self):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main([
                "sweep", "--case", "DES:4", "--gpus", "2",
                "--platform", "two-island",
            ])
