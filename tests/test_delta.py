"""Platform deltas: validation, renumbering, pruning, and honest keys.

The load-bearing properties: deltas always name *base*-platform
entities regardless of application order, killed GPUs renumber the
survivors contiguously (with ``gpu_map`` carrying old ids to new ones),
emptied switches are pruned, throttles compound, and every delta is
visible in ``topology_key_parts`` so degraded machines never alias a
pristine cache entry.
"""

import pytest

from repro.flow import topology_key_parts
from repro.gpu import (
    PLATFORM_NAMES,
    PlatformDelta,
    apply_deltas,
    build_platform,
    degrade_platform,
    relative_gpu_map,
)


def _upspec(topology, child):
    return next(
        link.spec for link in topology.links
        if link.up and link.child == child
    )


class TestDeltaValidation:
    def test_kinds_validate_their_operands(self):
        with pytest.raises(ValueError):
            PlatformDelta(kind="kill-gpu")  # needs a gpu id
        with pytest.raises(ValueError):
            PlatformDelta(kind="throttle-link", link="sw1", factor=1.5)
        with pytest.raises(ValueError):
            PlatformDelta(kind="throttle-link", link="sw1", factor=0.0)
        with pytest.raises(ValueError):
            PlatformDelta(kind="slow-gpu", gpu=0, factor=0.5)
        with pytest.raises(ValueError):
            PlatformDelta(kind="restore", gpu=0)
        with pytest.raises(ValueError):
            PlatformDelta(kind="explode")

    def test_json_round_trip(self):
        for delta in (
            PlatformDelta.kill_gpu(2),
            PlatformDelta.throttle_link("sw1", 0.5),
            PlatformDelta.slow_gpu(1, 4.0),
            PlatformDelta.restore(),
        ):
            assert PlatformDelta.from_json(delta.to_json()) == delta

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown delta field"):
            PlatformDelta.from_json({"kind": "restore", "oops": 1})


class TestKillGpu:
    def test_survivors_renumber_contiguously(self):
        base = build_platform("two-island")
        hit = apply_deltas(
            base, [PlatformDelta.kill_gpu(0), PlatformDelta.kill_gpu(1)]
        )
        assert hit.topology.num_gpus == 2
        assert hit.gpu_map == (None, None, 0, 1)
        assert hit.killed == (0, 1)

    def test_deltas_name_base_entities_regardless_of_order(self):
        base = build_platform("host-star")
        a = apply_deltas(
            base, [PlatformDelta.kill_gpu(1), PlatformDelta.kill_gpu(3)]
        )
        b = apply_deltas(
            base, [PlatformDelta.kill_gpu(3), PlatformDelta.kill_gpu(1)]
        )
        assert a.gpu_map == b.gpu_map == (0, None, 1, None)

    def test_emptied_switches_are_pruned(self):
        base = build_platform("two-island")
        hit = apply_deltas(
            base, [PlatformDelta.kill_gpu(0), PlatformDelta.kill_gpu(1)]
        )
        names = {child for child, _parent in hit.topology.tree_edges()}
        names |= {parent for _child, parent in hit.topology.tree_edges()}
        # the island that lost both GPUs is gone entirely
        assert "sw2" not in names

    def test_killing_a_dead_or_unknown_gpu_raises(self):
        base = build_platform("host-star")
        with pytest.raises(ValueError):
            apply_deltas(base, [PlatformDelta.kill_gpu(0),
                                PlatformDelta.kill_gpu(0)])
        with pytest.raises(ValueError):
            apply_deltas(base, [PlatformDelta.kill_gpu(99)])

    def test_killing_the_last_gpu_raises(self):
        base = build_platform("host-star")
        deltas = [PlatformDelta.kill_gpu(g) for g in range(base.num_gpus)]
        with pytest.raises(ValueError):
            apply_deltas(base, deltas)


class TestThrottleAndSlow:
    def test_throttle_scales_one_uplink_and_compounds(self):
        base = build_platform("two-island")
        before = _upspec(base, "sw1").bandwidth_bytes_per_ns
        once = degrade_platform(
            "two-island", [PlatformDelta.throttle_link("sw1", 0.5)]
        ).topology
        assert _upspec(once, "sw1").bandwidth_bytes_per_ns == before * 0.5
        # siblings untouched
        assert (_upspec(once, "sw2").bandwidth_bytes_per_ns
                == _upspec(base, "sw2").bandwidth_bytes_per_ns)
        twice = degrade_platform(
            "two-island", [PlatformDelta.throttle_link("sw1", 0.5),
                           PlatformDelta.throttle_link("sw1", 0.5)]
        ).topology
        assert _upspec(twice, "sw1").bandwidth_bytes_per_ns == before * 0.25

    def test_throttle_unknown_child_raises(self):
        base = build_platform("host-star")
        with pytest.raises(ValueError):
            apply_deltas(base, [PlatformDelta.throttle_link("nope", 0.5)])

    def test_slow_gpu_flows_into_slowdowns(self):
        hit = degrade_platform(
            "mixed-box", [PlatformDelta.slow_gpu(1, 2.0)]
        )
        slowdowns = hit.topology.gpu_slowdowns()
        assert slowdowns[1] == pytest.approx(2.0)

    def test_restore_resets_everything(self):
        hit = degrade_platform(
            "two-island",
            [PlatformDelta.kill_gpu(0),
             PlatformDelta.throttle_link("sw1", 0.5),
             PlatformDelta.restore()],
        )
        assert hit.topology.num_gpus == 4
        assert hit.gpu_map == (0, 1, 2, 3)
        assert hit.killed == ()
        assert topology_key_parts(hit.topology) == topology_key_parts(
            build_platform("two-island")
        )


class TestHonestKeys:
    def test_every_delta_kind_changes_the_topology_key(self):
        base = topology_key_parts(build_platform("mixed-box"))
        variants = [
            topology_key_parts(degrade_platform("mixed-box", [d]).topology)
            for d in (
                PlatformDelta.kill_gpu(1),
                PlatformDelta.throttle_link("gpu0", 0.5),
                PlatformDelta.slow_gpu(0, 2.0),
            )
        ]
        seen = [base] + variants
        for i, a in enumerate(seen):
            for b in seen[i + 1:]:
                assert a != b

    def test_degraded_machines_work_platform_wide(self):
        # every catalog platform survives losing its last-numbered GPU
        for name in PLATFORM_NAMES:
            base = build_platform(name)
            hit = degrade_platform(
                name, [PlatformDelta.kill_gpu(base.num_gpus - 1)]
            )
            assert hit.topology.num_gpus == base.num_gpus - 1
            assert hit.gpu_map[-1] is None


class TestRelativeGpuMap:
    def test_composes_previous_into_current_space(self):
        base = build_platform("two-island")
        prev = apply_deltas(base, [PlatformDelta.kill_gpu(0)])
        cur = apply_deltas(
            base, [PlatformDelta.kill_gpu(0), PlatformDelta.kill_gpu(2)]
        )
        # prev space had 3 GPUs (old 1,2,3); old 2 died in cur
        assert relative_gpu_map(prev, cur) == (0, None, 1)
