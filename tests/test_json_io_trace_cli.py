"""Tests for JSON graph I/O, execution tracing, and the CLI front end."""

import json

import pytest

from repro.apps.registry import build_app
from repro.cli import main as cli_main
from repro.flow import map_stream_graph
from repro.graph import json_io
from repro.graph.builder import linear_pipeline_graph
from repro.graph.dot import partition_map, to_dot
from repro.gpu.topology import default_topology
from repro.opt.splitjoin_elim import eliminate_movers
from repro.runtime.trace import record_trace, to_chrome_trace


class TestJsonIO:
    def test_roundtrip_preserves_structure(self):
        g = build_app("FFT", 16)
        clone = json_io.loads(json_io.dumps(g))
        assert clone.name == g.name
        assert len(clone.nodes) == len(g.nodes)
        assert len(clone.channels) == len(g.channels)
        for a, b in zip(g.nodes, clone.nodes):
            assert a.spec == b.spec
            assert a.firing == b.firing
        for a, b in zip(g.channels, clone.channels):
            assert (a.src, a.dst, a.src_push, a.dst_pop) == (
                b.src, b.dst, b.src_push, b.dst_pop
            )

    def test_roundtrip_preserves_elimination_metadata(self):
        g, _ = eliminate_movers(build_app("FFT", 16))
        clone = json_io.loads(json_io.dumps(g))
        original_sliced = [
            (c.slice_offset, c.slice_period, c.slice_width)
            for c in g.channels if c.slice_period
        ]
        clone_sliced = [
            (c.slice_offset, c.slice_period, c.slice_width)
            for c in clone.channels if c.slice_period
        ]
        assert original_sliced == clone_sliced

    def test_roundtrip_pipeline_segments(self):
        g = build_app("DES", 4)
        clone = json_io.loads(json_io.dumps(g))
        assert clone.pipelines == g.pipelines

    def test_unsolved_rates_resolved_on_load(self):
        g = linear_pipeline_graph("io", stages=2)
        data = json_io.graph_to_dict(g)
        for node in data["nodes"]:
            node["firing"] = 0
        clone = json_io.graph_from_dict(data)
        assert all(n.firing > 0 for n in clone.nodes)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            json_io.graph_from_dict({"version": 99, "name": "x"})

    def test_file_roundtrip(self, tmp_path):
        g = build_app("Bitonic", 8)
        path = tmp_path / "graph.json"
        json_io.save(g, str(path))
        clone = json_io.load(str(path))
        assert len(clone.nodes) == len(g.nodes)

    def test_mapped_clone_behaves_identically(self):
        g = build_app("MatMul2", 3)
        clone = json_io.loads(json_io.dumps(g))
        a = map_stream_graph(g, num_gpus=2)
        b = map_stream_graph(clone, num_gpus=2)
        assert a.num_partitions == b.num_partitions
        assert a.report.makespan_ns == pytest.approx(b.report.makespan_ns)


class TestTrace:
    def _traced(self, gpus=2):
        flow = map_stream_graph(build_app("FFT", 32), num_gpus=gpus)
        topo = default_topology(gpus)
        return flow, record_trace(
            flow.pdg, flow.mapping.assignment, topo,
            flow.engine.simulator, flow.measurements,
        )

    def test_trace_matches_executor(self):
        flow, (report, events) = self._traced()
        assert report.makespan_ns == pytest.approx(flow.report.makespan_ns)

    def test_kernel_events_cover_all_fragments(self):
        flow, (report, events) = self._traced()
        kernels = [e for e in events if e.kind == "kernel"]
        assert len(kernels) == flow.num_partitions * report.num_fragments

    def test_events_have_positive_durations(self):
        _, (report, events) = self._traced()
        assert all(e.duration_ns > 0 for e in events)
        assert all(e.end_ns <= report.makespan_ns + 1e-6 for e in events)

    def test_no_overlap_per_resource(self):
        _, (_, events) = self._traced()
        by_resource = {}
        for event in events:
            by_resource.setdefault(event.resource, []).append(event)
        for resource, items in by_resource.items():
            items.sort(key=lambda e: e.start_ns)
            for a, b in zip(items, items[1:]):
                assert a.end_ns <= b.start_ns + 1e-6, resource

    def test_chrome_trace_is_valid_json(self):
        _, (_, events) = self._traced()
        payload = json.loads(to_chrome_trace(events))
        assert "traceEvents" in payload
        names = [e for e in payload["traceEvents"] if e.get("ph") == "M"]
        assert names  # row labels present


class TestDotExport:
    def test_contains_nodes_and_clusters(self):
        flow = map_stream_graph(build_app("FFT", 16), num_gpus=2)
        text = to_dot(flow.graph, partition_of=partition_map(flow.partitions))
        assert text.startswith("digraph")
        assert "subgraph cluster_0" in text
        assert text.count("->") >= len(flow.graph.channels)

    def test_plain_export(self):
        g = linear_pipeline_graph("dot", stages=2)
        text = to_dot(g)
        assert "digraph" in text and "n0" in text


class TestCli:
    def test_app_run(self, capsys):
        assert cli_main(["--app", "FFT", "--n", "16", "--gpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "partitions:" in out and "mapping" in out

    def test_artifacts_written(self, tmp_path, capsys):
        cuda = tmp_path / "out.cu"
        dot = tmp_path / "g.dot"
        trace = tmp_path / "t.json"
        saved = tmp_path / "g.json"
        code = cli_main([
            "--app", "Bitonic", "--n", "8", "--gpus", "2",
            "--emit-cuda", str(cuda), "--dot", str(dot),
            "--trace", str(trace), "--save-graph", str(saved),
        ])
        assert code == 0
        assert cuda.read_text().startswith("// partition 0")
        assert dot.read_text().startswith("digraph")
        json.loads(trace.read_text())
        json.loads(saved.read_text())

    def test_graph_file_input(self, tmp_path, capsys):
        path = tmp_path / "in.json"
        json_io.save(build_app("MatMul2", 2), str(path))
        assert cli_main(["--graph", str(path), "--gpus", "1"]) == 0

    def test_app_requires_n(self):
        with pytest.raises(SystemExit):
            cli_main(["--app", "FFT"])


class TestCliPlatform:
    def test_platform_run(self, capsys):
        code = cli_main([
            "--app", "Bitonic", "--n", "8", "--platform", "host-star",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 GPU(s) on host-star" in out

    def test_platform_conflicts_with_gpus(self):
        """--platform fixes the machine; an explicit --gpus must be a
        hard error (not silently overridden), matching `repro sweep`."""
        with pytest.raises(SystemExit):
            cli_main([
                "--app", "Bitonic", "--n", "8", "--gpus", "2",
                "--platform", "host-star",
            ])

    def test_platform_trace_uses_platform_topology(self, tmp_path):
        trace = tmp_path / "t.json"
        code = cli_main([
            "--app", "Bitonic", "--n", "8", "--platform", "host-star",
            "--trace", str(trace),
        ])
        assert code == 0
        payload = json.loads(trace.read_text())
        names = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e.get("name") == "thread_name"
        }
        # host-star links cable GPUs straight to the host — a shape no
        # reference tree has (those always route through sw1)
        assert any(name.endswith("->host") for name in names)
        assert not any("sw1" in name for name in names)
