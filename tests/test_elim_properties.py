"""Property-based tests for splitter/joiner elimination: on randomly
composed split-join programs, the transform must preserve the output
stream exactly."""

from hypothesis import given, settings, strategies as st

from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.flatten import flatten
from repro.graph.structure import (
    Filt,
    Pipeline,
    SplitJoin,
    duplicate,
    join_roundrobin,
    roundrobin,
)
from repro.gpu.functional import FunctionalVM
from repro.gpu.memory import partition_memory
from repro.opt.splitjoin_elim import eliminate_movers

_counter = [0]


def _fresh(prefix):
    _counter[0] += 1
    return f"{prefix}{_counter[0]}"


@st.composite
def sj_programs(draw):
    """source -> [compute | splitjoin]* -> sink with matched rates."""
    rate = draw(st.sampled_from([2, 4, 6]))
    items = [
        Filt(FilterSpec(name=_fresh("src"), pop=0, push=rate,
                        role=FilterRole.SOURCE, semantics="source"))
    ]
    for _ in range(draw(st.integers(1, 3))):
        if draw(st.booleans()):
            semantics = draw(st.sampled_from(["identity", "scale", "sort2"]))
            items.append(Filt(FilterSpec(
                name=_fresh("c"), pop=rate, push=rate, work=5.0,
                semantics=semantics,
                params=(1.5,) if semantics == "scale" else (),
            )))
        else:
            branches = draw(st.integers(1, 3))
            kind = draw(st.sampled_from(["dup", "rr"]))
            branch_filters = tuple(
                Filt(FilterSpec(
                    name=_fresh("b"), pop=rate, push=rate, work=3.0,
                    semantics=draw(st.sampled_from(["identity", "scale"])),
                    params=(2.0,),
                ))
                for _ in range(branches)
            )
            split = (
                duplicate(rate, branches) if kind == "dup"
                else roundrobin(*([rate] * branches))
            )
            sj = SplitJoin(
                split, branch_filters,
                join_roundrobin(*([rate] * branches)), name=_fresh("sj"),
            )
            items.append(sj)
            rate = rate * branches
    items.append(
        Filt(FilterSpec(name=_fresh("snk"), pop=rate, push=0,
                        role=FilterRole.SINK, semantics="sink"))
    )
    return Pipeline(tuple(items), name="Main")


@given(sj_programs(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_elimination_preserves_output(tree, iterations):
    graph = flatten(tree, "prop")
    enhanced, report = eliminate_movers(graph)
    base = FunctionalVM(graph, source_fn=lambda n, i: float(i % 17)).run(
        iterations
    )
    after = FunctionalVM(enhanced, source_fn=lambda n, i: float(i % 17)).run(
        iterations
    )
    assert base == after


@given(sj_programs())
@settings(max_examples=30, deadline=None)
def test_elimination_never_grows_memory(tree):
    graph = flatten(tree, "prop")
    enhanced, _ = eliminate_movers(graph)
    before = partition_memory(graph)
    after = partition_memory(enhanced)
    assert after.working_set <= before.working_set
    assert after.io_bytes <= before.io_bytes


@given(sj_programs())
@settings(max_examples=30, deadline=None)
def test_elimination_reduces_total_work(tree):
    graph = flatten(tree, "prop")
    enhanced, report = eliminate_movers(graph)
    if report.total_removed:
        assert sum(
            n.firing * n.spec.work for n in enhanced.nodes
        ) < sum(n.firing * n.spec.work for n in graph.nodes)
    assert len(enhanced.nodes) == len(graph.nodes) - report.total_removed
