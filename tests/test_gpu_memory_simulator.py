"""Tests for shared-memory modelling and the kernel simulator."""

import math

import pytest

from repro.graph.builder import GraphBuilder, linear_pipeline_graph
from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import duplicate, join_roundrobin, pipeline, splitjoin
from repro.gpu.kernel import DEFAULT_CONFIG, KernelConfig
from repro.gpu.memory import allocate_buffers, partition_memory
from repro.gpu.simulator import KernelSimulator, SimCosts, _hash01
from repro.gpu.specs import C2070, M2090


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


def _pipeline_graph(rate=8, stages=4):
    return linear_pipeline_graph("pipe", stages=stages, rate=rate)


def _split_graph(rate=8, branches=4):
    sj = splitjoin(
        duplicate(rate, branches),
        [_f(f"b{i}", rate, rate) for i in range(branches)],
        join_roundrobin(*([rate] * branches)),
    )
    return flatten(
        pipeline(source("s", rate), sj, sink("t", rate * branches)), "split"
    )


class TestPartitionMemory:
    def test_pipeline_working_set_liveness_vs_static(self):
        g = _pipeline_graph(rate=8, stages=4)
        live = partition_memory(g, policy="liveness")
        static = partition_memory(g)
        # channels each carry 8 elems * 4B = 32B; liveness peaks at two
        # adjacent internal buffers while static charges all five
        assert live.io_in == 32 and live.io_out == 32
        assert live.working_set <= 3 * 32
        assert static.working_set == 5 * 32

    def test_unknown_policy_rejected(self):
        g = _pipeline_graph()
        with pytest.raises(ValueError):
            partition_memory(g, policy="magic")
        with pytest.raises(ValueError):
            allocate_buffers(g, [0], 48 * 1024, policy="magic")

    def test_split_structure_needs_more_memory_than_pipeline(self):
        pipe = flatten(
            pipeline(
                source("s", 8), _f("a", 8, 8), _f("b", 8, 8), _f("c", 8, 8),
                _f("d", 8, 8), sink("t", 8)
            ),
            "pure-pipe",
        )
        split = _split_graph(rate=8, branches=4)
        ws_pipe = partition_memory(pipe).working_set
        ws_split = partition_memory(split).working_set
        # Figure 3.2: branch buffers overlap, pipeline buffers do not
        assert ws_split > ws_pipe

    def test_subset_counts_boundary_as_io(self):
        g = _pipeline_graph(rate=4, stages=3)
        nid = g.node_by_name("stage1").node_id
        mem = partition_memory(g, [nid])
        assert mem.io_in == 16 and mem.io_out == 16

    def test_smem_for_scales_with_w(self):
        g = _pipeline_graph()
        mem = partition_memory(g)
        assert mem.smem_for(4) == 4 * mem.smem_for(1)

    def test_max_executions_consistent(self):
        g = _pipeline_graph()
        mem = partition_memory(g)
        w = mem.max_executions(M2090.shared_mem_bytes)
        assert mem.smem_for(w) <= M2090.shared_mem_bytes
        assert mem.smem_for(w + 1) > M2090.shared_mem_bytes

    def test_alias_group_charged_once(self):
        # branches reduce 16 -> 2 elements, so the splitter fan-out
        # dominates the footprint and aliasing it must shrink the peak
        sj = splitjoin(
            duplicate(16, 4),
            [_f(f"b{i}", 16, 2, semantics="opaque") for i in range(4)],
            join_roundrobin(2, 2, 2, 2),
        )
        g = flatten(pipeline(source("s", 16), sj, sink("t", 8)), "alias")
        base = partition_memory(g).working_set
        splitter = next(
            n for n in g.nodes if n.spec.role is FilterRole.SPLITTER
        )
        for ch in g.out_channels(splitter.node_id):
            ch.alias_group = 1
        aliased = partition_memory(g).working_set
        assert aliased < base


class TestBufferAllocation:
    def test_offsets_do_not_overlap_live_ranges(self):
        g = _split_graph(rate=8, branches=3)
        placements = allocate_buffers(
            g, [n.node_id for n in g.nodes], M2090.shared_mem_bytes
        )
        shared = [p for p in placements if p.in_shared]
        assert shared, "expected shared placements"
        # all internal buffers fit: no spills for this small graph
        assert all(p.in_shared for p in placements)

    def test_spill_when_budget_tiny(self):
        g = _split_graph(rate=64, branches=4)
        placements = allocate_buffers(g, [n.node_id for n in g.nodes], 256)
        assert any(not p.in_shared for p in placements)

    def test_offset_reuse_after_death_under_liveness(self):
        g = _pipeline_graph(rate=8, stages=6)
        members = [n.node_id for n in g.nodes]
        live = allocate_buffers(
            g, members, M2090.shared_mem_bytes, policy="liveness"
        )
        static = allocate_buffers(g, members, M2090.shared_mem_bytes)
        live_offsets = {p.offset for p in live if p.in_shared}
        static_offsets = {p.offset for p in static if p.in_shared}
        # pipeline buffers die quickly: liveness reuses low offsets while
        # static allocation gives every buffer its own slot
        assert len(live_offsets) < len(static_offsets)


class TestKernelConfig:
    def test_thread_accounting(self):
        cfg = KernelConfig(4, 8, 64)
        assert cfg.compute_threads == 32
        assert cfg.total_threads == 96

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            KernelConfig(0, 1, 1)
        with pytest.raises(ValueError):
            KernelConfig(1, 0, 1)
        with pytest.raises(ValueError):
            KernelConfig(1, 1, -1)

    def test_fits_checks_threads_and_smem(self):
        g = _pipeline_graph()
        mem = partition_memory(g)
        assert DEFAULT_CONFIG.fits(M2090, mem)
        too_many = KernelConfig(32, 40, 0)
        assert not too_many.fits(M2090, mem)


class TestSimulatorDeterminism:
    def test_hash01_stable(self):
        assert _hash01("a", 1) == _hash01("a", 1)
        assert _hash01("a", 1) != _hash01("a", 2)

    def test_measure_is_deterministic(self):
        g = _pipeline_graph()
        sim = KernelSimulator(M2090)
        members = [n.node_id for n in g.nodes]
        cfg = KernelConfig(2, 4, 32)
        a = sim.measure(g, members, cfg)
        b = sim.measure(g, members, cfg)
        assert a.t_exec == b.t_exec

    def test_seed_changes_measurement(self):
        g = _pipeline_graph()
        members = [n.node_id for n in g.nodes]
        cfg = KernelConfig(2, 4, 32)
        a = KernelSimulator(M2090, seed=0).measure(g, members, cfg)
        b = KernelSimulator(M2090, seed=7).measure(g, members, cfg)
        assert a.t_exec != b.t_exec


class TestSimulatorPhysics:
    def _measure(self, spec=M2090, cfg=None, rate=64, stages=4, work=50.0):
        g = linear_pipeline_graph("phys", stages=stages, rate=rate, work=work)
        sim = KernelSimulator(spec, costs=SimCosts(
            compute_noise=0.0, dt_noise=0.0, conflict_probability=0.0,
            background_conflict=0.0, instruction_mix_spread=0.0,
        ))
        cfg = cfg or KernelConfig(1, 1, 32)
        return sim.measure(g, [n.node_id for n in g.nodes], cfg), sim

    def test_more_dt_threads_cut_transfer_time(self):
        m32, _ = self._measure(cfg=KernelConfig(1, 1, 32))
        m64, _ = self._measure(cfg=KernelConfig(1, 1, 64))
        assert m64.t_dt == pytest.approx(m32.t_dt / 2)

    def test_overlap_hides_smaller_phase(self):
        m, _ = self._measure(cfg=KernelConfig(1, 1, 32))
        assert m.t_exec == pytest.approx(
            max(m.t_comp, m.t_dt) + m.t_db, rel=1e-9
        )

    def test_f_zero_serializes_transfer(self):
        m, _ = self._measure(cfg=KernelConfig(1, 1, 0))
        assert m.t_exec == pytest.approx(m.t_comp + m.t_dt + m.t_db, rel=1e-9)

    def test_faster_clock_cuts_compute(self):
        slow, _ = self._measure(spec=C2070)
        fast, _ = self._measure(spec=M2090)
        assert fast.t_comp < slow.t_comp

    def test_spill_penalty_monotone(self):
        g = _pipeline_graph()
        sim = KernelSimulator(M2090)
        members = [n.node_id for n in g.nodes]
        cfg = KernelConfig(1, 1, 32)
        none = sim.measure(g, members, cfg, spilled_bytes=0)
        some = sim.measure(g, members, cfg, spilled_bytes=4096)
        more = sim.measure(g, members, cfg, spilled_bytes=8192)
        assert none.t_exec < some.t_exec < more.t_exec

    def test_s_parallelizes_high_firing_filters(self):
        b = GraphBuilder("fir")
        s = b.filter("s", pop=0, push=64, role=FilterRole.SOURCE)
        f = b.filter("f", pop=1, push=1, work=100.0)  # fires 64x
        t = b.filter("t", pop=64, push=0, role=FilterRole.SINK)
        b.connect(s, f, src_push=64)
        b.connect(f, t, src_push=1, dst_pop=64)
        g = b.build()
        sim = KernelSimulator(M2090, costs=SimCosts(
            compute_noise=0.0, conflict_probability=0.0, background_conflict=0.0
        ))
        members = [n.node_id for n in g.nodes]
        t1 = sim.measure(g, members, KernelConfig(1, 1, 32)).t_comp
        t8 = sim.measure(g, members, KernelConfig(8, 1, 32)).t_comp
        assert t8 < t1 / 4  # near-linear speedup on the hot filter

    def test_stateful_filter_not_parallelized(self):
        b = GraphBuilder("state")
        s = b.filter("s", pop=0, push=64, role=FilterRole.SOURCE)
        f = b.filter("f", pop=1, push=1, work=100.0, stateful=True)
        t = b.filter("t", pop=64, push=0, role=FilterRole.SINK)
        b.connect(s, f, src_push=64)
        b.connect(f, t, src_push=1, dst_pop=64)
        g = b.build()
        sim = KernelSimulator(M2090, costs=SimCosts(
            compute_noise=0.0, conflict_probability=0.0, background_conflict=0.0
        ))
        members = [n.node_id for n in g.nodes]
        t1 = sim.measure(g, members, KernelConfig(1, 1, 32)).t_comp
        t8 = sim.measure(g, members, KernelConfig(8, 1, 32)).t_comp
        assert t8 == pytest.approx(t1, rel=0.05)

    def test_fragment_time_scales_with_executions(self):
        m, sim = self._measure(cfg=KernelConfig(1, 2, 32))
        one = sim.fragment_time(m, sim.executions_per_launch(m.config))
        many = sim.fragment_time(m, 4 * sim.executions_per_launch(m.config))
        assert many > one
        assert many - m.launch_ns == pytest.approx(4 * (one - m.launch_ns))

    def test_per_execution_normalization(self):
        m, _ = self._measure(cfg=KernelConfig(1, 4, 32))
        assert m.per_execution == pytest.approx(m.t_exec / 4)
