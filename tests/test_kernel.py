"""Property suite for the compiled evaluation kernel.

The kernel's contract is *bit-exactness*: full evaluation, batch
evaluation, and every DeltaEvaluator state reachable through
move/swap/rollback sequences must score exactly like the interpreted
evaluator (:meth:`MappingProblem.tmax`) — not within a tolerance.  The
suite pins that across the synthetic corpus and all six named
platforms, plus adversarial random heterogeneous trees.

Real workloads carry integral byte counts, whose float sums are exact,
which is what makes incremental link-load maintenance bit-exact; the
random-tree suite deliberately uses full-mantissa byte values instead,
where committed-state sums may legitimately round — there the walk
asserts last-ulp agreement and *bitwise* rollback (rollback restores
snapshots, so it is exact no matter how the arithmetic rounds).
"""

import math
import random

import pytest

from test_platforms import random_hetero_topology, random_problem

from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.platforms import PLATFORM_NAMES, build_platform
from repro.gpu.topology import default_topology
from repro.mapping.greedy import lpt_assignment
from repro.mapping.kernel import DeltaEvaluator, EvalKernel, compile_kernel
from repro.mapping.problem import build_mapping_problem
from repro.mapping.refine import refine_mapping
from repro.synth.corpus import PINNED_CORPUS, TINY_CORPUS, generate_corpus

#: corpus slice used for the exactness sweep: the tiny CI corpus plus
#: one pinned instance per family (the largest of each)
_ENTRIES = tuple(TINY_CORPUS) + (
    ("pipeline", 3, {"depth": 12}),
    ("splitjoin", 3, {"width": 6}),
    ("butterfly", 5, {"stages": 4, "base": 1, "max_work": 4}),
    ("feedback", 3, {"loops": 2}),
    ("random", 4, {"max_branch": 4}),
    ("dag", 3, {"layers": 6}),
)


def _corpus_problems():
    """(label, problem) for every corpus entry x topology."""
    out = []
    for inst in generate_corpus(_ENTRIES):
        graph = inst.graph
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        topologies = [
            ("g2", default_topology(2)),
            ("g4", default_topology(4)),
        ] + [(name, build_platform(name)) for name in PLATFORM_NAMES]
        for tag, topo in topologies:
            problem = build_mapping_problem(
                pdg, topo.num_gpus, topology=topo
            )
            out.append((f"{inst.spec.instance_name}@{tag}", problem))
    return out


@pytest.fixture(scope="module")
def corpus_problems():
    return _corpus_problems()


def _random_assignments(problem, rng, count):
    return [
        [rng.randrange(problem.num_gpus)
         for _ in range(problem.num_partitions)]
        for _ in range(count)
    ]


class TestFullEvaluation:
    def test_full_tmax_bit_identical(self, corpus_problems):
        rng = random.Random(0xC0FFEE)
        for label, problem in corpus_problems:
            kernel = EvalKernel(problem)
            for assignment in _random_assignments(problem, rng, 8):
                assert kernel.full_tmax(assignment) == problem.tmax(
                    assignment
                ), label

    def test_breakdown_bit_identical(self, corpus_problems):
        rng = random.Random(0xBEEF)
        for label, problem in corpus_problems:
            kernel = EvalKernel(problem)
            for assignment in _random_assignments(problem, rng, 3):
                gpu_times, comm = kernel.breakdown(assignment)
                assert gpu_times == tuple(problem.gpu_times(assignment)), label
                ref = problem.comm_breakdown(assignment)
                assert comm.link_bytes == ref.link_bytes, label
                assert comm.link_times == ref.link_times, label

    def test_batch_matches_single(self, corpus_problems):
        rng = random.Random(7)
        label, problem = corpus_problems[-1]
        kernel = compile_kernel(problem)
        assignments = _random_assignments(problem, rng, 5)
        assert kernel.batch_tmax(assignments) == [
            kernel.full_tmax(a) for a in assignments
        ]

    def test_peer_to_peer_flag_respected(self, corpus_problems):
        # via-host routing must flow into the precomputed route table
        from dataclasses import replace
        for label, problem in corpus_problems[:4]:
            hosted = replace(problem, peer_to_peer=False)
            kernel = EvalKernel(hosted)
            rng = random.Random(1)
            for assignment in _random_assignments(hosted, rng, 3):
                assert kernel.full_tmax(assignment) == hosted.tmax(
                    assignment
                ), label


class TestDeltaEvaluator:
    def test_random_walk_bit_identical(self, corpus_problems):
        """Moves, swaps, probes: every reachable state scores exactly."""
        rng = random.Random(0x5EED)
        for label, problem in corpus_problems:
            parts = problem.num_partitions
            gpus = problem.num_gpus
            if parts == 0 or gpus < 2:
                continue
            kernel = EvalKernel(problem)
            current = lpt_assignment(problem)
            state = DeltaEvaluator(kernel, current)
            for _ in range(30):
                pid = rng.randrange(parts)
                if rng.random() < 0.3 and parts >= 2:
                    other = rng.randrange(parts)
                    probe = state.score_swap(pid, other)
                    candidate = list(current)
                    candidate[pid], candidate[other] = (
                        candidate[other], candidate[pid]
                    )
                    assert probe == problem.tmax(candidate), label
                    if rng.random() < 0.5:
                        state.apply_swap(pid, other)
                        current = candidate
                else:
                    gpu = rng.randrange(gpus)
                    probe = state.score_move(pid, gpu)
                    candidate = list(current)
                    candidate[pid] = gpu
                    assert probe == problem.tmax(candidate), label
                    if rng.random() < 0.5:
                        state.apply_move(pid, gpu)
                        current = candidate
                # the committed state always re-scores exactly
                assert state.assignment() == tuple(current), label
                assert state.tmax() == problem.tmax(current), label

    def test_rollback_is_bitwise(self, corpus_problems):
        rng = random.Random(0xD1CE)
        label, problem = max(
            corpus_problems, key=lambda lp: lp[1].num_partitions
        )
        kernel = EvalKernel(problem)
        start = lpt_assignment(problem)
        state = DeltaEvaluator(kernel, start)
        reference = DeltaEvaluator(kernel, start)
        tokens = []
        for _ in range(12):
            pid = rng.randrange(problem.num_partitions)
            if rng.random() < 0.5:
                tokens.append(state.apply_move(
                    pid, rng.randrange(problem.num_gpus)
                ))
            else:
                tokens.append(state.apply_swap(
                    pid, rng.randrange(problem.num_partitions)
                ))
        for token in reversed(tokens):
            state.rollback(token)
        assert state.assignment() == reference.assignment()
        assert state.link_loads == reference.link_loads  # bitwise
        assert state.gpu_times == reference.gpu_times  # bitwise
        assert state.bcast_counts == reference.bcast_counts

    def test_validates_input(self, corpus_problems):
        _label, problem = corpus_problems[0]
        kernel = EvalKernel(problem)
        with pytest.raises(ValueError):
            DeltaEvaluator(kernel, [0] * (problem.num_partitions + 1))
        with pytest.raises(ValueError):
            DeltaEvaluator(kernel, [problem.num_gpus] * problem.num_partitions)

    def test_noop_move_returns_none_token(self, corpus_problems):
        _label, problem = corpus_problems[0]
        kernel = EvalKernel(problem)
        state = DeltaEvaluator(kernel, [0] * problem.num_partitions)
        before = state.tmax()
        token = state.apply_move(0, 0)
        assert token is None
        state.rollback(token)  # harmless
        assert state.tmax() == before


class TestRandomHeteroTrees:
    """Adversarial float magnitudes: full-mantissa byte counts."""

    @pytest.mark.parametrize("seed", range(25))
    def test_full_eval_bit_identical(self, seed):
        topo = random_hetero_topology(seed)
        problem = random_problem(topo, seed)
        kernel = EvalKernel(problem)
        rng = random.Random(seed ^ 0xFACE)
        for assignment in _random_assignments(problem, rng, 6):
            assert kernel.full_tmax(assignment) == problem.tmax(assignment)

    @pytest.mark.parametrize("seed", range(25))
    def test_delta_walk_last_ulp(self, seed):
        topo = random_hetero_topology(seed)
        problem = random_problem(topo, seed)
        if problem.num_gpus < 2:
            return
        kernel = EvalKernel(problem)
        rng = random.Random(seed ^ 0xB00)
        current = [rng.randrange(problem.num_gpus)
                   for _ in range(problem.num_partitions)]
        state = DeltaEvaluator(kernel, current)
        for _ in range(40):
            pid = rng.randrange(problem.num_partitions)
            gpu = rng.randrange(problem.num_gpus)
            before = state.tmax()
            # a probe from the current state prices the candidate
            probe = state.score_move(pid, gpu)
            candidate = list(current)
            candidate[pid] = gpu
            assert math.isclose(
                probe, problem.tmax(candidate), rel_tol=1e-12
            )
            # probing leaves the state bitwise untouched
            assert state.tmax() == before
            if rng.random() < 0.5:
                state.apply_move(pid, gpu)
                current = candidate
            assert math.isclose(
                state.tmax(), problem.tmax(current), rel_tol=1e-12
            )


class TestRefineEquivalence:
    """The delta-scored refine returns what the interpreted one did."""

    @staticmethod
    def _interpreted_refine(problem, assignment, max_steps=10_000,
                            use_swaps=True):
        """The pre-kernel implementation, kept as a reference oracle."""
        current = list(assignment)
        best = problem.tmax(current)
        order = sorted(
            range(problem.num_partitions), key=lambda p: -problem.times[p]
        )
        steps = 0
        improved = True
        while improved and steps < max_steps:
            improved = False
            found = None
            for pid in order:
                original = current[pid]
                for gpu in range(problem.num_gpus):
                    if gpu == original:
                        continue
                    current[pid] = gpu
                    score = problem.tmax(current)
                    current[pid] = original
                    if score < best - 1e-9:
                        found = (pid, gpu, score)
                        break
                if found:
                    break
            if found:
                pid, gpu, score = found
                current[pid] = gpu
                best = score
                improved = True
                steps += 1
                continue
            if use_swaps:
                found = None
                for i, a in enumerate(order):
                    for b in order[i + 1:]:
                        if current[a] == current[b]:
                            continue
                        current[a], current[b] = current[b], current[a]
                        score = problem.tmax(current)
                        current[a], current[b] = current[b], current[a]
                        if score < best - 1e-9:
                            found = (a, b, score)
                            break
                    if found:
                        break
                if found:
                    a, b, score = found
                    current[a], current[b] = current[b], current[a]
                    best = score
                    improved = True
                    steps += 1
        return current, best, steps

    def test_matches_interpreted_reference(self, corpus_problems):
        for label, problem in corpus_problems:
            if problem.num_gpus < 2 or problem.num_partitions < 2:
                continue
            seed = lpt_assignment(problem)
            want_assign, want_tmax, want_steps = self._interpreted_refine(
                problem, seed
            )
            got = refine_mapping(problem, seed)
            assert list(got.assignment) == want_assign, label
            assert got.tmax == want_tmax, label
            assert dict(got.solve_stats)["refine_steps"] == float(
                want_steps
            ), label
